//! Gradual HBT resizing, narrated: drive PAC collisions until rows
//! overflow and watch the table double its associativity while staying
//! fully available (paper §V-B, §V-F3, Fig. 10).
//!
//! ```text
//! cargo run --release --example resizing_demo
//! ```

use aos_core::hbt::{CompressedBounds, HashedBoundsTable, HbtConfig};
use aos_core::{AosProcess, ProcessConfig};
use aos_core::ptrauth::PointerLayout;

fn main() {
    // Part 1: the raw table mechanics, with a tiny 11-bit PAC space so
    // collisions are easy to provoke.
    println!("== Part 1: raw table mechanics ==");
    let mut hbt = HashedBoundsTable::new(HbtConfig {
        pac_size: 11,
        initial_ways: 1,
        max_ways: 16,
        base_addr: 0x1000_0000,
        compressed: true,
    });
    println!(
        "start: {} rows x {} way(s), {} bounds capacity per row",
        hbt.rows(),
        hbt.ways(),
        hbt.row_capacity()
    );
    let pac = 0x2A;
    for i in 0..8u64 {
        hbt.store(pac, CompressedBounds::encode(0x4000 + i * 0x1000, 64))
            .expect("row has space");
    }
    println!("row {pac:#x} now holds {} records — full", hbt.row_occupancy(pac));
    let overflow = hbt.store(pac, CompressedBounds::encode(0x10_0000, 64));
    println!("ninth store: {overflow:?} -> OS begins a gradual resize");
    hbt.begin_resize();
    println!(
        "resized to {} ways; migration in flight: {}",
        hbt.ways(),
        hbt.in_migration()
    );
    hbt.store(pac, CompressedBounds::encode(0x10_0000, 64))
        .expect("space after resize");
    // The table stays queryable while rows migrate.
    let mut migrated = 0;
    while hbt.in_migration() {
        migrated += hbt.step_migration(256);
        assert!(hbt.check(pac, 0x4000 + 8, 0).is_some(), "live during migration");
    }
    println!("migrated {migrated} rows row-by-row; all bounds still present\n");

    // Part 2: the same thing happening organically inside a process.
    println!("== Part 2: a malloc-heavy process (11-bit PACs) ==");
    let mut p = AosProcess::with_config(ProcessConfig {
        layout: PointerLayout::new(46, 11),
        hbt: HbtConfig {
            pac_size: 11,
            initial_ways: 1,
            max_ways: 64,
            base_addr: 0x3800_0000_0000,
            compressed: true,
        },
        ..ProcessConfig::default()
    });
    let mut ptrs = Vec::new();
    for i in 0..60_000u64 {
        ptrs.push(p.malloc(32).expect("heap has room"));
        if i % 10_000 == 9_999 {
            println!(
                "{:>6} live chunks: {} resizes, {} ways, table {} KiB",
                i + 1,
                p.resizes(),
                p.hbt().ways(),
                p.hbt().table_bytes() / 1024
            );
        }
    }
    // Everything is still checkable.
    for &ptr in ptrs.iter().step_by(1111) {
        p.load(ptr).expect("all bounds survive resizing");
    }
    println!("all {} chunks still bounds-checked correctly", ptrs.len());
}
