//! The §VII security analysis, live: every attack class from the
//! paper staged against the functional machine, showing what the
//! attack achieves on an unprotected baseline and how AOS stops it.
//!
//! ```text
//! cargo run --release --example attack_gallery
//! ```

use aos_core::security;

fn main() {
    println!("== AOS attack gallery (paper §VII / Figs. 1, 12) ==\n");
    for outcome in security::all_scenarios() {
        println!("scenario : {}", outcome.name);
        println!("baseline : {}", outcome.baseline_effect);
        match &outcome.detected {
            Some(err) => println!("AOS      : DETECTED — {err}"),
            None => println!("AOS      : not detected (documented limitation, §VII-F)"),
        }
        println!();
    }

    // The forging numbers deserve detail: with a 16-bit PAC, a forged
    // pointer only works if its PAC collides with a live object in the
    // same row *and* the bounds cover the address.
    let attempts = 4096;
    let (successes, _) = security::pac_forging(attempts);
    println!(
        "PAC forging: {successes}/{attempts} forged PACs slipped through \
         ({:.3}% — the paper argues ~45K attempts are needed for a 50% \
         chance against one target, §VII-E)",
        successes as f64 * 100.0 / attempts as f64
    );
}
