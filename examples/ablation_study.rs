//! Design-choice ablations in simulated cycles (DESIGN.md §5): BWB
//! size, initial HBT associativity, bounds forwarding, and PAC width.
//!
//! ```text
//! cargo run --release --example ablation_study -- 0.05
//! ```

use aos_core::experiment::SystemUnderTest;
use aos_core::hbt::HbtConfig;
use aos_core::isa::SafetyConfig;
use aos_core::ptrauth::PointerLayout;
use aos_core::sim::Machine;
use aos_core::workloads::{profile, TraceGenerator};

fn cycles_with(profile_name: &str, scale: f64, tweak: impl Fn(&mut aos_core::sim::MachineConfig)) -> (u64, f64) {
    let p = profile::by_name(profile_name).expect("known workload");
    let mut cfg = SystemUnderTest::scaled(SafetyConfig::Aos, scale).machine_config();
    tweak(&mut cfg);
    let trace = TraceGenerator::new(p, SafetyConfig::Aos, scale);
    let mut machine = Machine::new(cfg);
    let stats = machine.run(trace);
    (stats.cycles, stats.bwb.hit_rate())
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let workload = "gcc";
    println!("== Ablation study on {workload} @ scale {scale} (AOS config) ==\n");

    println!("-- BWB size (Table IV uses 64 entries) --");
    for entries in [16usize, 32, 64, 128, 256] {
        let (cycles, hit) = cycles_with(workload, scale, |c| c.mcu.bwb_entries = entries);
        println!("{entries:>4} entries: {cycles:>10} cycles, {:.1}% hit rate", hit * 100.0);
    }

    println!("\n-- initial HBT associativity (paper chose 1 empirically) --");
    for ways in [1u32, 2, 4] {
        let (cycles, _) = cycles_with(workload, scale, |c| {
            c.hbt = HbtConfig { initial_ways: ways, ..c.hbt }
        });
        println!("{ways:>4} way(s):  {cycles:>10} cycles");
    }

    println!("\n-- bounds forwarding (§V-F2) --");
    for forwarding in [false, true] {
        let (cycles, _) = cycles_with(workload, scale, |c| c.mcu.bounds_forwarding = forwarding);
        println!("{:>5}:      {cycles:>10} cycles", forwarding);
    }

    println!("\n-- PAC width (11..=16 bits; smaller PAC = more collisions) --");
    for pac in [11u32, 12, 14, 16] {
        let (cycles, _) = cycles_with(workload, scale, |c| {
            c.layout = PointerLayout::new(46_u32.min(62 - pac), pac);
            c.hbt = HbtConfig { pac_size: pac, ..c.hbt };
        });
        println!("{pac:>4} bits:   {cycles:>10} cycles");
    }
}
