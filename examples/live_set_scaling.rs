//! Beyond the paper: AOS overhead as a function of the live-set size,
//! using a *custom* workload profile (all [`WorkloadProfile`] fields
//! are public, so downstream users can model their own programs).
//!
//! Sweeping the number of simultaneously live chunks shows the two
//! regimes the paper's design implies: while the bounds working set
//! fits the caches the overhead is flat and small; past that, bounds
//! misses dominate, and gradual resizes appear once rows overflow
//! (λ = live/2^16 pushing the Poisson tail past 8 records).
//!
//! ```text
//! cargo run --release --example live_set_scaling
//! ```

use aos_core::experiment::{run, SystemUnderTest};
use aos_core::isa::SafetyConfig;
use aos_core::workloads::collisions;
use aos_core::workloads::profile::{Suite, WorkloadProfile};

fn custom_profile(live: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "custom",
        suite: Suite::RealWorld,
        full_allocations: live * 2,
        full_deallocations: live * 2,
        full_max_active: live,
        window_instructions: 2_000_000,
        startup_allocations: live,
        steady_alloc_period: 400,
        window_max_live: live,
        mem_fraction: 0.40,
        store_fraction: 0.35,
        heap_fraction: 0.70,
        branch_fraction: 0.12,
        mispredict_rate: 0.04,
        fp_fraction: 0.02,
        call_period: 150,
        pointer_memop_fraction: 0.10,
        pointer_arith_fraction: 0.12,
        hot_chunks: (live as usize / 2).max(64),
        zipf_exponent: 0.5,
        stack_span: 1 << 19,
        spatial_locality: 0.6,
        load_chain_fraction: 0.3,
        code_footprint: 256 << 10,
        alloc_sizes: &[(32, 3.0), (64, 2.0), (256, 1.0)],
    }
}

fn main() {
    println!("== AOS overhead vs. live-set size (custom workload) ==");
    println!(
        "{:>10} {:>10} {:>8} {:>8} {:>14} {:>12}",
        "live", "AOS norm", "resizes", "ways", "bounds (KiB)", "Poisson>8"
    );
    for live in [1_000u64, 10_000, 50_000, 100_000, 200_000, 400_000] {
        let profile = custom_profile(live);
        let base = run(
            &profile,
            &SystemUnderTest::scaled(SafetyConfig::Baseline, 1.0),
        );
        let aos = run(&profile, &SystemUnderTest::scaled(SafetyConfig::Aos, 1.0));
        let expected_rows = collisions::expected_overflowing_rows(live, 16, 8);
        println!(
            "{:>10} {:>10.3} {:>8} {:>8} {:>14} {:>12.2}",
            live,
            aos.cycles as f64 / base.cycles as f64,
            aos.hbt_resizes,
            aos.hbt_ways,
            live * 64 / 1024, // one 64B row line per live chunk, roughly
            expected_rows
        );
    }
    println!(
        "\n(resizes begin once some PAC row needs a 9th record — the Poisson\n\
         column predicts how many rows overflow the initial capacity.)"
    );
}
