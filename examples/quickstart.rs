//! Quickstart: the functional always-on machine in twenty lines.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use aos_core::{AosProcess, MemorySafetyError};

fn main() {
    let mut process = AosProcess::new();

    // malloc returns a *signed* pointer: PAC and AHC live in the upper
    // bits and travel with it through arithmetic.
    let p = process.malloc(64).expect("allocation fits");
    println!("signed pointer: {p:#018x}");
    println!("raw address:    {:#018x}", process.layout().address(p));
    println!("PAC:            {:#06x}", process.layout().pac(p));
    println!("AHC:            {}", process.layout().ahc(p));

    // Ordinary use just works; every access is bounds checked by the
    // memory check unit.
    for i in 0..8 {
        process.store(p + i * 8, i * 100).expect("in bounds");
    }
    println!("p[3] = {}", process.load(p + 24).expect("in bounds"));

    // One past the end: caught.
    match process.load(p + 64) {
        Err(MemorySafetyError::OutOfBounds { pointer, .. }) => {
            println!("OOB load via {pointer:#x}: detected");
        }
        other => panic!("expected an OOB error, got {other:?}"),
    }

    // Free locks the pointer: it stays signed, but its bounds are gone.
    process.free(p).expect("valid free");
    match process.load(p) {
        Err(MemorySafetyError::UseAfterFree { .. }) => {
            println!("use-after-free: detected");
        }
        other => panic!("expected a UAF error, got {other:?}"),
    }
    match process.free(p) {
        Err(MemorySafetyError::InvalidFree { .. }) => {
            println!("double free: detected");
        }
        other => panic!("expected an invalid-free error, got {other:?}"),
    }

    println!(
        "\nBWB hit rate so far: {:.0}%",
        process.mcu().bwb_stats().hit_rate() * 100.0
    );
    println!("HBT: {} ways, {} bytes", process.hbt().ways(), process.hbt().table_bytes());
}
