//! A miniature "network message parser" hardened with AOS — including
//! the future-work extensions (bounds narrowing §VII-F, stack-region
//! protection §III-D) this repository implements on top of the paper's
//! evaluated design.
//!
//! The parser copies an untrusted length-prefixed payload into a
//! fixed-size field of a session object. Without narrowing, an
//! oversized payload silently overwrites the adjacent `privileges`
//! field (a classic non-control-data attack, §VII-B); with narrowing,
//! the overflow faults on the first out-of-field byte.
//!
//! ```text
//! cargo run --release --example hardened_parser
//! ```

use aos_core::{AosProcess, MemorySafetyError};

/// Session layout: 32-byte name buffer, then an 8-byte privilege word
/// (padded to 16 for the compression granularity).
const NAME_OFFSET: u64 = 0;
const NAME_SIZE: u64 = 32;
const PRIV_OFFSET: u64 = 32;

fn parse_into(
    process: &mut AosProcess,
    dest: u64,
    payload: &[u64],
) -> Result<(), MemorySafetyError> {
    for (i, &word) in payload.iter().enumerate() {
        process.store(dest + NAME_OFFSET + i as u64 * 8, word)?;
    }
    Ok(())
}

fn main() {
    let mut process = AosProcess::new();

    // The session object: { char name[32]; u64 privileges; pad }.
    let session = process.malloc(48).expect("session allocates");
    process.store(session + PRIV_OFFSET, 0).expect("privileges = user");

    let benign: Vec<u64> = vec![0x0065_6369_6C41; 4]; // 32 bytes
    let malicious: Vec<u64> = vec![0x4141_4141_4141_4141; 5]; // 40 bytes

    // --- Paper's evaluated design: whole-chunk bounds. ---
    println!("== whole-chunk bounds (paper's evaluated design) ==");
    parse_into(&mut process, session, &benign).expect("benign fits");
    parse_into(&mut process, session, &malicious)
        .expect("40 bytes stay inside the 48-byte chunk: not detected");
    let escalated = process.load(session + PRIV_OFFSET).expect("read privileges");
    println!("privileges after attack: {escalated:#x}  (silently escalated!)");

    // Repair the object for round two.
    process.store(session + PRIV_OFFSET, 0).expect("reset");

    // --- Extension: narrow the destination to the name field. ---
    println!("\n== with bounds narrowing (§VII-F extension) ==");
    // Fields at offset 0 share the chunk base (see ExtensionError::
    // SharesBaseWithParent), so hardened layouts put narrowed fields
    // at nonzero offsets: { u64 privileges; pad; char name[32] }.
    let hardened = process.malloc(48).expect("hardened session");
    process.store(hardened, 0).expect("privileges = user");
    let name_field = process
        .narrow(hardened, 16, NAME_SIZE)
        .expect("field is aligned and in bounds");

    parse_into(&mut process, name_field, &benign).expect("benign still fits");
    match parse_into(&mut process, name_field, &malicious) {
        Err(MemorySafetyError::OutOfBounds { pointer, .. }) => {
            println!("overflowing word faulted at {pointer:#x}: DETECTED");
        }
        other => panic!("expected the overflow to fault, got {other:?}"),
    }
    let privileges = process.load(hardened).expect("read privileges");
    println!("privileges after attack: {privileges:#x}  (intact)");

    // --- Extension: protect a "stack" buffer the same way. ---
    println!("\n== with stack-region protection (§III-D extension) ==");
    let frame_base = 0x3F00_0000_4000u64;
    let stack_buf = process
        .protect_region(frame_base, 64)
        .expect("frame region signs");
    process.store(stack_buf + 56, 7).expect("in frame");
    match process.store(stack_buf + 64, 0x4141) {
        Err(MemorySafetyError::OutOfBounds { .. }) => {
            println!("stack-buffer overflow past the frame: DETECTED");
        }
        other => panic!("expected the frame overflow to fault, got {other:?}"),
    }
    process.release_protection(stack_buf).expect("frame pop");
    assert!(
        process.load(stack_buf).is_err(),
        "popped frame pointer is locked"
    );
    println!("popped frame pointer locked, like a freed heap pointer");
}
