//! Run one calibrated SPEC workload model on the Table IV machine
//! under all five system configurations and print the full statistics
//! — the building block behind Figs. 14–18.
//!
//! ```text
//! cargo run --release --example workload_sim -- hmmer 0.1
//! ```

use aos_core::experiment::{run, SystemUnderTest};
use aos_core::isa::SafetyConfig;
use aos_core::workloads::profile;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "hmmer".into());
    let scale: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    let Some(p) = profile::by_name(&name) else {
        eprintln!("unknown workload '{name}'; try one of:");
        for w in profile::SPEC2006 {
            eprint!("{} ", w.name);
        }
        eprintln!();
        std::process::exit(1);
    };

    println!("== {} @ scale {scale} ==", p.name);
    let baseline = run(p, &SystemUnderTest::scaled(SafetyConfig::Baseline, scale));
    for config in SafetyConfig::ALL {
        let stats = run(p, &SystemUnderTest::scaled(config, scale));
        println!("\n-- {config} --");
        println!(
            "cycles {:>12}   normalized {:.3}   ipc {:.2}",
            stats.cycles,
            stats.cycles as f64 / baseline.cycles as f64,
            stats.ipc()
        );
        println!(
            "ops retired {:>8}   signed accesses {:>8}   bnd ops {:>6}   pac ops {:>6}",
            stats.retired_ops, stats.mcu.signed_accesses, stats.mix.bnd_ops, stats.mix.pac_ops
        );
        println!(
            "L1-D miss {:>6.2}%   L2 miss {:>6.2}%   traffic {:>11} B ({:.3}x)",
            stats.l1d.miss_rate() * 100.0,
            stats.l2.miss_rate() * 100.0,
            stats.traffic.total_bytes(),
            stats.traffic.total_bytes() as f64 / baseline.traffic.total_bytes().max(1) as f64
        );
        if config.uses_aos() {
            println!(
                "HBT ways {:>2} (resizes {})   accesses/check {:.3}   BWB hit {:.1}%   forwards {}",
                stats.hbt_ways,
                stats.hbt_resizes,
                stats.mcu.accesses_per_check(),
                stats.bwb.hit_rate() * 100.0,
                stats.mcu.forwards
            );
        }
    }
}
