//! Replayed vs. emergent branch prediction: run workloads under the
//! default trace-replay mode (profile-calibrated L-TAGE accuracy, as a
//! gem5 trace run would) and under `BranchModel::Tage`, where the
//! in-simulator L-TAGE predicts every branch itself.
//!
//! ```text
//! cargo run --release --example tage_study -- 0.1
//! ```

use aos_core::experiment::SystemUnderTest;
use aos_core::isa::SafetyConfig;
use aos_core::sim::{BranchModel, Machine};
use aos_core::workloads::{profile, TraceGenerator};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("== replayed vs. emergent (L-TAGE) branch prediction @ scale {scale} ==");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "name", "replay mr%", "tage mr%", "replay cyc", "tage cyc"
    );
    for name in ["gcc", "gobmk", "sjeng", "hmmer", "mcf", "povray"] {
        let p = profile::by_name(name).expect("known workload");
        let mut results = Vec::new();
        for model in [BranchModel::TraceProvided, BranchModel::Tage] {
            let mut cfg = SystemUnderTest::scaled(SafetyConfig::Baseline, scale).machine_config();
            cfg.branch_model = model;
            let stats =
                Machine::new(cfg).run(TraceGenerator::new(p, SafetyConfig::Baseline, scale));
            let branches = stats.mix.total - stats.mix.unsigned_loads
                - stats.mix.unsigned_stores
                - stats.mix.signed_loads
                - stats.mix.signed_stores; // upper bound; rate uses charged+waived
            let _ = branches;
            let missed = stats.charged_mispredicts + stats.waived_mispredicts;
            results.push((missed, stats.cycles, stats.retired_ops));
        }
        let (replay_miss, replay_cycles, ops) = results[0];
        let (tage_miss, tage_cycles, _) = results[1];
        println!(
            "{:<12} {:>9.2}% {:>9.2}% {:>12} {:>12}",
            name,
            replay_miss as f64 * 100.0 / ops as f64,
            tage_miss as f64 * 100.0 / ops as f64,
            replay_cycles,
            tage_cycles
        );
    }
    println!(
        "\n(replay mode charges the profile-calibrated misprediction rate of the\n\
         real benchmark; Tage mode predicts the synthetic branch outcomes, whose\n\
         Bernoulli entropy sets a floor no predictor can beat — the gap between\n\
         the columns measures that entropy, not L-TAGE quality. See\n\
         crates/sim/src/tage.rs tests for accuracy on learnable patterns.)"
    );
}
