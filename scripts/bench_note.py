#!/usr/bin/env python3
"""Report-only throughput note: compares a freshly generated
BENCH_streaming.json against the previously committed one.

Usage: bench_note.py OLD.json NEW.json

Prints per-workload simulated-cycles-per-second for the shipped
pipeline shape (batched when present, else streaming) against the old
artifact's streaming row, plus the ratio. Handles both the v1 schema
(per-shape ops_per_sec only — cycles/sec is derived) and v2
(sim_cycles_per_sec recorded directly). Always exits 0: this is a
trend note for reviewers, never a gate — the boxes running tier-1
differ too much for wall-clock to be a hard failure.
"""

import json
import sys


def rows(doc):
    out = {}
    for r in doc.get("results", []):
        ops = r.get("trace_ops", 0)
        cycles = r.get("sim_cycles", 0)
        shapes = {}
        for shape in ("streaming", "batched"):
            s = r.get(shape)
            if not isinstance(s, dict):
                continue
            cps = s.get("sim_cycles_per_sec")
            if cps is None and ops:
                # v1 artifact: derive cycles/sec from ops/sec.
                cps = cycles * s.get("ops_per_sec", 0) / ops
            if cps:
                shapes[shape] = cps
        out[r.get("workload", "?")] = shapes
    return out


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} OLD.json NEW.json")
        return
    try:
        with open(sys.argv[1]) as f:
            old = rows(json.load(f))
        with open(sys.argv[2]) as f:
            new = rows(json.load(f))
    except (OSError, ValueError) as e:
        print(f"bench note skipped: {e}")
        return

    print(f"{'workload':<10} {'old cyc/s':>12} {'new cyc/s':>12} {'ratio':>7}")
    for workload, shapes in new.items():
        current = shapes.get("batched") or shapes.get("streaming")
        previous = old.get(workload, {}).get("streaming")
        if previous and current:
            print(
                f"{workload:<10} {previous:>12.0f} {current:>12.0f} "
                f"{current / previous:>6.2f}x"
            )
        else:
            print(f"{workload:<10} {'-':>12} {current or 0:>12.0f} {'new':>7}")
    print("(report-only throughput note; never a tier-1 gate)")


if __name__ == "__main__":
    main()
