#!/usr/bin/env bash
# Tier-1 gate: the offline build-and-test cycle every change must pass.
#
# Works with no network access — proptest/criterion resolve to the
# shims vendored under vendor/ (see DESIGN.md §3).
#
# Usage: scripts/tier1.sh [--with-smoke]
#   --with-smoke  also run a scaled parallel campaign and emit
#                 BENCH_campaign.json at the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: fault-injection smoke (strict) =="
# Every fault class must be detected under AOS, missed by Baseline,
# with zero false positives — nonzero exit otherwise.
cargo run -q --release -p aos-cli -- faults --seeds 2 --strict true

# Hardened crates must not grow new unwrap() on input-reachable paths.
# The gate is advisory when clippy is not installed (offline image).
if command -v cargo-clippy >/dev/null 2>&1; then
    echo "== tier-1: clippy unwrap gate (hardened crates) =="
    for crate in aos-util aos-heap aos-mcu aos-hbt aos-isa aos-core aos-fault; do
        cargo clippy -q -p "$crate" --no-deps -- -D clippy::unwrap_used
    done
else
    echo "== tier-1: clippy not installed, skipping unwrap gate =="
fi

if [[ "${1:-}" == "--with-smoke" ]]; then
    echo "== campaign smoke: SPEC2006 x 5 systems, scaled =="
    cargo run -q --release -p aos-bench --bin campaign_smoke -- \
        --scale 0.01 --out BENCH_campaign.json
fi

echo "tier-1 OK"
