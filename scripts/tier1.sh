#!/usr/bin/env bash
# Tier-1 gate: the offline build-and-test cycle every change must pass.
#
# Works with no network access — proptest/criterion resolve to the
# shims vendored under vendor/ (see DESIGN.md §3).
#
# Usage: scripts/tier1.sh [--with-smoke]
#   --with-smoke  also run a scaled parallel campaign and emit
#                 BENCH_campaign.json at the repo root.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== tier-1: fault-injection smoke (strict) =="
# Every fault class must be detected under AOS, missed by Baseline,
# with zero false positives, and the static lint cross-check must be
# consistent — nonzero exit otherwise.
cargo run -q --release -p aos-cli -- faults --seeds 2 --strict true

echo "== tier-1: static protocol lint smoke (strict) =="
# A clean generated trace must carry zero protocol findings.
cargo run -q --release -p aos-cli -- lint >/dev/null

echo "== tier-1: cross-policy detection matrix smoke =="
# The clean row of the policy x fault-kind matrix must stay silent
# under every static policy (AOS, CryptSan, PACSan, PACTight) —
# nonzero exit on any clean-trace false positive.
cargo run -q --release -p aos-cli -- matrix --scale 0.01 --seeds 1 >/dev/null

echo "== tier-1: adversarial differential fuzz smoke (fixed seed) =="
# A fixed-seed, fixed-budget campaign must run finding-free (exit 0):
# every generated attack chain lands exactly on the pinned
# static/dynamic split. The checked-in golden corpus must replay with
# bit-stable verdicts through both oracles.
cargo run -q --release -p aos-cli -- fuzz --seed 7 --budget 4 >/dev/null
cargo run -q --release -p aos-cli -- fuzz \
    --replay-corpus tests/golden/fuzz/composites.aosc >/dev/null

echo "== tier-1: serve smoke (graceful rejection + clean shutdown) =="
# A short stdio service session: one well-formed lint job, one
# malformed line. The malformed line must answer "rejected" (not tear
# the session down), the job must answer "ok", and EOF must drain to
# a final "shutdown" line with exit 0.
serve_out="${TMPDIR:-/tmp}/aos_serve_smoke.ndjson"
printf '%s\n%s\n' \
    '{"proto":"aos-serve/v1","id":"smoke","kind":"lint","workload":"mcf","system":"aos","scale":0.004}' \
    'this is not a protocol line' \
  | cargo run -q --release -p aos-cli -- serve --workers 1 2>/dev/null >"$serve_out"
grep -q '"id":"smoke","status":"ok"' "$serve_out"
grep -q '"status":"rejected"' "$serve_out"
tail -n 1 "$serve_out" | grep -q '"status":"shutdown"'

echo "== tier-1: corpus record -> replay -> verify round-trip =="
# Record a cell, replay it (exit 0 = CRC-clean and bit-identical
# machinery engaged), verify the whole file.
corpus_file="${TMPDIR:-/tmp}/aos_tier1_corpus.aosc"
rm -f "$corpus_file"
cargo run -q --release -p aos-cli -- corpus record \
    --out "$corpus_file" --workloads mcf --systems aos --scale 0.004 >/dev/null
cargo run -q --release -p aos-cli -- corpus replay \
    "$corpus_file" --entry mcf-aos >/dev/null
cargo run -q --release -p aos-cli -- corpus verify "$corpus_file" >/dev/null
rm -f "$corpus_file"

echo "== tier-1: stage-core vs approximate model smoke =="
# The stage-structured core is the default model; the legacy analytic
# loop stays reachable for A/B runs. Both must finish a small benign
# window cleanly (exit 0 = zero violations on every sweep point).
cargo run -q --release -p aos-cli -- ablate \
    --scale 0.002 --mcq 24,48 --bwb 64 >/dev/null
cargo run -q --release -p aos-cli -- ablate \
    --scale 0.002 --mcq 48 --bwb 64 --model approximate >/dev/null

echo "== tier-1: batched pipeline smoke =="
# The streaming bench asserts bit-identical RunStats and telemetry
# across the materialized, per-op and batched pipeline shapes on every
# run — a tiny single-rep pass makes those equivalence asserts part of
# the gate without the cost of the full artifact run.
cargo run -q --release -p aos-bench --bin streaming_bench -- \
    --scale 0.004 --reps 1 --out "${TMPDIR:-/tmp}/aos_batch_smoke.json" >/dev/null

# Hardened crates must not grow new unwrap() on input-reachable paths,
# the streaming pipeline must not regress into collect-then-iterate
# (needless_collect re-materializes traces the refactor made lazy),
# library crates must not print to stdout — user-facing output belongs
# to the CLI and bench binaries, which are exempt from the gate by not
# being in the crate list — and every unsafe block or impl must carry
# a `// SAFETY:` comment stating its soundness argument.
# The gate is advisory when clippy is not installed (offline image).
if command -v cargo-clippy >/dev/null 2>&1; then
    echo "== tier-1: clippy unwrap + needless-collect + print-stdout + undocumented-unsafe gate (library crates) =="
    for crate in aos-util aos-heap aos-mcu aos-hbt aos-isa aos-sim aos-core aos-fault aos-lint aos-serve aos-fuzz; do
        cargo clippy -q -p "$crate" --no-deps -- \
            -D clippy::unwrap_used -D clippy::needless_collect \
            -D clippy::print_stdout \
            -D clippy::undocumented_unsafe_blocks
    done
else
    echo "== tier-1: clippy not installed, skipping lint gates =="
fi

# Coverage is report-only (a soft floor, never a hard failure): when
# cargo-llvm-cov is installed the line rate is printed so reviewers
# can watch the trend; the offline image without it skips cleanly.
if command -v cargo-llvm-cov >/dev/null 2>&1; then
    echo "== tier-1: coverage report (soft floor ${AOS_COVERAGE_FLOOR:-70}%, report-only) =="
    cargo llvm-cov --workspace --summary-only || \
        echo "coverage run failed (report-only, not fatal)"
else
    echo "== tier-1: cargo-llvm-cov not installed, skipping coverage report =="
fi

if [[ "${1:-}" == "--with-smoke" ]]; then
    echo "== campaign smoke: SPEC2006 x 5 systems, scaled =="
    cargo run -q --release -p aos-bench --bin campaign_smoke -- \
        --scale 0.01 --out BENCH_campaign.json
    # Streaming smoke: a 10x-longer window than the default smoke run.
    # Viable in CI memory precisely because no cell materializes its
    # trace — peak buffered trace stays O(window) per worker.
    echo "== streaming smoke: campaign at 10x window scale =="
    cargo run -q --release -p aos-bench --bin campaign_smoke -- \
        --scale 0.1 --out BENCH_campaign_long.json
    echo "== streaming bench: materialized / streaming / batched pipeline =="
    # Snapshot the committed artifact first so the regression note
    # below can compare against it after the file is overwritten.
    prev_bench="${TMPDIR:-/tmp}/aos_bench_prev.json"
    git show HEAD:BENCH_streaming.json >"$prev_bench" 2>/dev/null || prev_bench=""
    cargo run -q --release -p aos-bench --bin streaming_bench -- \
        --scale 0.02 --out BENCH_streaming.json
    echo "== bench regression note: sim-cycles/sec vs committed baseline (report-only) =="
    if [[ -n "$prev_bench" ]] && command -v python3 >/dev/null 2>&1; then
        python3 scripts/bench_note.py "$prev_bench" BENCH_streaming.json || true
    else
        echo "no committed BENCH_streaming.json (or no python3) to compare against"
    fi
fi

echo "tier-1 OK"
