//! Shared plumbing for the reproduction binaries (`src/bin/fig*.rs`,
//! `src/bin/table*.rs`) and the Criterion benchmarks (`benches/`).
//!
//! Every table and figure of the paper's evaluation has a dedicated
//! binary that prints the measured reproduction next to the paper's
//! reported values where the paper gives exact numbers. Run them all
//! with full windows:
//!
//! ```text
//! cargo run --release -p aos-bench --bin fig14_exec_time
//! ```
//!
//! Each binary accepts a `--scale <f>` argument (default 1.0) to run a
//! proportionally smaller window for smoke testing.

pub mod reports;

use aos_core::isa::SafetyConfig;
use aos_core::sim::RunStats;
use aos_core::workloads::WorkloadProfile;

/// Parses `--scale <f>` from the process arguments (default 1.0).
///
/// # Examples
///
/// ```
/// // With no --scale argument the default applies.
/// assert_eq!(aos_bench::scale_from_args(std::env::args()), 1.0);
/// ```
pub fn scale_from_args(args: impl Iterator<Item = String>) -> f64 {
    let argv: Vec<String> = args.collect();
    argv.iter()
        .position(|a| a == "--scale")
        .and_then(|i| argv.get(i + 1))
        .and_then(|s| s.parse().ok())
        .filter(|s| *s > 0.0 && *s <= 1.0)
        .unwrap_or(1.0)
}

/// Runs one (workload, system) pair at the standard optimization
/// settings.
pub fn run_standard(profile: &WorkloadProfile, safety: SafetyConfig, scale: f64) -> RunStats {
    aos_core::experiment::run(
        profile,
        &aos_core::experiment::SystemUnderTest::scaled(safety, scale),
    )
}

/// Formats a ratio column.
pub fn ratio(value: f64) -> String {
    format!("{value:>8.3}")
}

/// Prints a rule line sized to a header.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> impl Iterator<Item = String> {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(scale_from_args(args(&["bin"])), 1.0);
        assert_eq!(scale_from_args(args(&["bin", "--scale", "0.25"])), 0.25);
        assert_eq!(scale_from_args(args(&["bin", "--scale", "oops"])), 1.0);
        assert_eq!(scale_from_args(args(&["bin", "--scale", "7"])), 1.0);
        assert_eq!(scale_from_args(args(&["bin", "--scale"])), 1.0);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(ratio(1.0), "   1.000");
    }
}
