//! The table/figure reproductions as string-returning functions, shared
//! by the `src/bin/*` binaries and the `aos` CLI.
//!
//! Every timing matrix here fans out through the campaign runner
//! ([`aos_core::experiment::campaign`]) — one worker per available
//! core (or `AOS_CAMPAIGN_THREADS`) — and formats the results from
//! the deterministic, input-ordered result list.

use std::fmt::Write as _;

use aos_core::experiment::campaign::{matrix, run_campaign, CampaignOptions};
use aos_core::experiment::SystemUnderTest;
use aos_core::hwcost::table_i;
use aos_core::isa::SafetyConfig;
use aos_core::sim::{MachineConfig, RunStats};
use aos_core::workloads::microbench::pac_distribution;
use aos_core::workloads::profile::{REAL_WORLD, SPEC2006};
use aos_core::heap::profile::UsageProfile;
use aos_core::workloads::schedule::run_full_schedule;
use aos_core::workloads::WorkloadProfile;
use aos_util::par::{effective_threads, ordered_parallel_map};
use aos_util::stats::geomean;

use crate::ratio;

fn rule_line(out: &mut String, header: &str) {
    let _ = writeln!(out, "{}", "-".repeat(header.len()));
}

/// Runs the full `profiles × systems` grid through the campaign
/// runner — each worker streams its generator straight into the
/// machine, so the grid's peak trace memory is `threads × O(window)`
/// — and returns the stats row-major: index `p * systems.len() + s`.
fn campaign_grid(profiles: &[WorkloadProfile], systems: &[SystemUnderTest]) -> Vec<RunStats> {
    let cells = matrix(profiles.iter().copied(), systems.iter().copied());
    run_campaign(&cells, &CampaignOptions::default())
        .results
        .into_iter()
        .map(|r| {
            let label = r.cell.label();
            match r.outcome {
                aos_core::experiment::campaign::CellOutcome::Completed(output) => output.stats,
                aos_core::experiment::campaign::CellOutcome::Failed { error } => {
                    // Report generation needs every grid cell; a hole
                    // here means the figure itself is wrong.
                    panic!("campaign cell {label} failed: {error}")
                }
            }
        })
        .collect()
}

/// Runs the allocation schedules of all `profiles` in parallel (the
/// Tables II/III substrate — no `Machine`, so no campaign cells).
fn parallel_schedules(profiles: &[WorkloadProfile], scale: f64) -> Vec<UsageProfile> {
    ordered_parallel_map(profiles, effective_threads(None), |_, p| {
        run_full_schedule(p, scale)
    })
}

/// The five standard systems at one scale, figure plotting order.
fn standard_systems(scale: f64) -> [SystemUnderTest; 5] {
    SafetyConfig::ALL.map(|s| SystemUnderTest::scaled(s, scale))
}

/// Fig. 11: the QARMA PAC distribution study.
pub fn fig11(scale: f64) -> String {
    let allocations = (1_000_000.0 * scale) as u64;
    let mut out = String::new();
    let _ = writeln!(out, "== Fig. 11: PAC distributions by QARMA ==");
    let _ = writeln!(out, "allocations: {allocations}, PAC size: 16 bits");
    let histogram = pac_distribution(allocations, 16);
    let summary = histogram.occupancy_summary();
    let _ = writeln!(out, "measured: {summary}");
    let _ = writeln!(out, "paper:    Avg:16.0, Max:36, Min:3, Stdev: 3.99");
    let max = summary.max as usize;
    let mut occupancy = vec![0u64; max + 1];
    for count in histogram.iter() {
        occupancy[count as usize] += 1;
    }
    let _ = writeln!(out, "\nbins with N occurrences (N: count):");
    let peak = occupancy.iter().copied().max().unwrap_or(1).max(1);
    for (n, &bins) in occupancy.iter().enumerate() {
        if bins == 0 {
            continue;
        }
        let bar = "#".repeat((bins * 60 / peak) as usize);
        let _ = writeln!(out, "{n:>4}: {bins:>6} {bar}");
    }
    out
}

/// The paper's Table I values: (name, size label, area, access,
/// energy, leakage).
pub const TABLE1_PAPER: [(&str, &str, f64, f64, f64, f64); 4] = [
    ("MCQ", "1.3KB", 0.0096, 0.1383, 0.0014, 3.2269),
    ("BWB", "384B", 0.00285, 0.12755, 0.00077, 1.10712),
    ("L1-B Cache", "32KB", 0.1573, 0.2984, 0.0347, 58.295),
    ("L1-D Cache (for reference)", "64KB", 0.2628, 0.3217, 0.0436, 122.69),
];

/// Table I: hardware overhead at 45 nm.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Table I: hardware overhead (45nm) ==");
    let header = format!(
        "{:<28} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "Structure", "Size", "Area (mm2)", "Access (ns)", "Energy (pJ)", "Leakage (mW)"
    );
    let _ = writeln!(out, "{header}");
    rule_line(&mut out, &header);
    for (row, paper) in table_i().iter().zip(TABLE1_PAPER.iter()) {
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12.5} {:>12.5} {:>12.5} {:>12.4}   (measured)",
            row.name,
            paper.1,
            row.cost.area_mm2,
            row.cost.access_ns,
            row.cost.dynamic_energy_pj,
            row.cost.leakage_mw
        );
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>12.5} {:>12.5} {:>12.5} {:>12.4}   (paper)",
            "", "", paper.2, paper.3, paper.4, paper.5
        );
    }
    out
}

/// Table II: SPEC 2006 memory usage profiles.
pub fn table2(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table II: memory usage profiles for SPEC 2006 (scale {scale}) =="
    );
    let header = format!(
        "{:<12} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
        "Name", "Max Active", "#Allocation", "Dealloc.", "(paper MA)", "(paper #A)", "(paper #D)"
    );
    let _ = writeln!(out, "{header}");
    rule_line(&mut out, &header);
    let usages = parallel_schedules(SPEC2006, scale);
    for (profile, usage) in SPEC2006.iter().zip(&usages) {
        let _ = writeln!(
            out,
            "{:<12} {:>12} {:>12} {:>12}   {:>12} {:>12} {:>12}",
            profile.name,
            usage.max_live,
            usage.allocations,
            usage.deallocations,
            profile.full_max_active,
            profile.full_allocations,
            profile.full_deallocations
        );
    }
    let _ = writeln!(
        out,
        "\nNote: the paper's soplex row (peak 140 with 64 930 never-freed chunks) is\n\
         internally inconsistent; the measured peak is the arithmetic minimum.\n\
         See EXPERIMENTS.md."
    );
    out
}

/// Table III: real-world benchmark profiles.
pub fn table3(scale: f64) -> String {
    const DESCRIPTIONS: [(&str, &str); 6] = [
        ("pbzip2", "Compress 1.4GB file, 8 threads"),
        ("pigz", "Compress 1.4GB file, 8 threads"),
        ("axel", "Download 1.4GB file, 8 threads"),
        ("md5sum", "Calculate MD5 hash, 1.4GB file"),
        ("apache", "Apache bench, 10K req."),
        ("mysql", "Sysbench, 100K req."),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Table III: memory usage profiles, real-world benchmarks (scale {scale}) =="
    );
    let header = format!(
        "{:<8} {:<32} {:>10} {:>10} {:>10}",
        "Name", "Description", "Max", "#Alloc.", "Dealloc."
    );
    let _ = writeln!(out, "{header}");
    rule_line(&mut out, &header);
    let usages = parallel_schedules(REAL_WORLD, scale);
    for (profile, usage) in REAL_WORLD.iter().zip(&usages) {
        let desc = DESCRIPTIONS
            .iter()
            .find(|(n, _)| *n == profile.name)
            .map(|(_, d)| *d)
            .unwrap_or("");
        let _ = writeln!(
            out,
            "{:<8} {:<32} {:>10} {:>10} {:>10}",
            profile.name, desc, usage.max_live, usage.allocations, usage.deallocations
        );
    }
    out
}

/// Table IV: the simulation parameters.
pub fn table4() -> String {
    format!(
        "== Table IV: simulation parameters ==\n{}",
        MachineConfig::table_iv(SafetyConfig::Aos).describe()
    )
}

/// Fig. 14: normalized execution time, with the §IX-A1 resize counts.
pub fn fig14(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 14: normalized execution time (scale {scale}) =="
    );
    let header = format!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>6}",
        "name", "Watchdog", "PA", "AOS", "PA+AOS", "resz"
    );
    let _ = writeln!(out, "{header}");
    rule_line(&mut out, &header);
    let systems = standard_systems(scale);
    let grid = campaign_grid(SPEC2006, &systems);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); systems.len() - 1];
    for (p, profile) in SPEC2006.iter().enumerate() {
        let row_stats = &grid[p * systems.len()..(p + 1) * systems.len()];
        let baseline = &row_stats[0];
        let mut row = String::new();
        let mut resizes = 0;
        for (i, (sut, stats)) in systems.iter().zip(row_stats).enumerate().skip(1) {
            let normalized = stats.cycles as f64 / baseline.cycles as f64;
            columns[i - 1].push(normalized);
            row.push_str(&ratio(normalized));
            row.push(' ');
            if sut.safety == SafetyConfig::Aos {
                resizes = stats.hbt_resizes;
            }
        }
        let _ = writeln!(out, "{:<12} {row}{:>5}", profile.name, resizes);
    }
    let _ = writeln!(
        out,
        "{:<12} {} {} {} {}",
        "Geomean",
        ratio(geomean(&columns[0])),
        ratio(geomean(&columns[1])),
        ratio(geomean(&columns[2])),
        ratio(geomean(&columns[3])),
    );
    let _ = writeln!(
        out,
        "paper:       Watchdog +19.4%, PA ~0% (hmmer/omnetpp ~10%), AOS +8.4%,\n\
         PA+AOS +1.5% over AOS; resizes: sphinx3 1, omnetpp 2 (at scale 1.0)"
    );
    out
}

/// Fig. 15: the L1-B / bounds-compression ablation.
pub fn fig15(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 15: L1-B cache and bounds-compression ablation (scale {scale}) =="
    );
    let header = format!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "name", "No-opt", "L1-B", "Compr", "L1-B+C"
    );
    let _ = writeln!(out, "{header}");
    rule_line(&mut out, &header);
    let variants: [(bool, bool); 4] = [(false, false), (true, false), (false, true), (true, true)];
    // Column 0 is the Baseline divisor; columns 1..=4 the ablations.
    let mut systems = vec![SystemUnderTest::scaled(SafetyConfig::Baseline, scale)];
    systems.extend(variants.iter().map(|&(l1b, compression)| SystemUnderTest {
        l1b,
        compression,
        ..SystemUnderTest::scaled(SafetyConfig::Aos, scale)
    }));
    let grid = campaign_grid(SPEC2006, &systems);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for (p, profile) in SPEC2006.iter().enumerate() {
        let row_stats = &grid[p * systems.len()..(p + 1) * systems.len()];
        let baseline = &row_stats[0];
        let mut row = String::new();
        for (i, stats) in row_stats.iter().enumerate().skip(1) {
            let normalized = stats.cycles as f64 / baseline.cycles as f64;
            columns[i - 1].push(normalized);
            row.push_str(&ratio(normalized));
            row.push(' ');
        }
        let _ = writeln!(out, "{:<12} {row}", profile.name);
    }
    let _ = writeln!(
        out,
        "{:<12} {} {} {} {}",
        "Geomean",
        ratio(geomean(&columns[0])),
        ratio(geomean(&columns[1])),
        ratio(geomean(&columns[2])),
        ratio(geomean(&columns[3])),
    );
    let _ = writeln!(
        out,
        "paper: both optimizations matter; compression helps more (reduces L2\n\
         pollution too); gcc/omnetpp drop 60%/68% with both vs none"
    );
    out
}

/// Fig. 16: instruction-mix statistics.
pub fn fig16(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 16: instructions of interest per 1B instructions, in millions (scale {scale}) =="
    );
    let header = format!(
        "{:<12} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "name", "UnsLoad", "UnsStore", "SigLoad", "SigStore", "bnd*", "pac*", "sig%"
    );
    let _ = writeln!(out, "{header}");
    rule_line(&mut out, &header);
    let grid = campaign_grid(SPEC2006, &[SystemUnderTest::scaled(SafetyConfig::Aos, scale)]);
    for (profile, stats) in SPEC2006.iter().zip(&grid) {
        let mix = stats.mix;
        let m = 1e6;
        let _ = writeln!(
            out,
            "{:<12} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7.1}%",
            profile.name,
            mix.per_billion(mix.unsigned_loads) / m,
            mix.per_billion(mix.unsigned_stores) / m,
            mix.per_billion(mix.signed_loads) / m,
            mix.per_billion(mix.signed_stores) / m,
            mix.per_billion(mix.bnd_ops) / m,
            mix.per_billion(mix.pac_ops) / m,
            mix.signed_access_fraction() * 100.0
        );
    }
    let _ = writeln!(
        out,
        "paper: bzip2/gcc/hmmer/lbm have >80% signed accesses; hmmer >99%;\n\
         gcc/omnetpp show the largest bndstr/bndclr and pac* counts"
    );
    out
}

/// Fig. 17: bounds-table accesses per check and BWB hit rate.
pub fn fig17(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Fig. 17: bounds-table accesses and BWB hit rate (scale {scale}) =="
    );
    let header = format!(
        "{:<12} {:>12} {:>10} {:>10}",
        "name", "#Acc/check", "BWB hit", "HBT ways"
    );
    let _ = writeln!(out, "{header}");
    rule_line(&mut out, &header);
    let grid = campaign_grid(SPEC2006, &[SystemUnderTest::scaled(SafetyConfig::Aos, scale)]);
    for (profile, stats) in SPEC2006.iter().zip(&grid) {
        let _ = writeln!(
            out,
            "{:<12} {:>12.3} {:>9.1}% {:>10}",
            profile.name,
            stats.mcu.accesses_per_check(),
            stats.bwb.hit_rate() * 100.0,
            stats.hbt_ways
        );
    }
    let _ = writeln!(
        out,
        "paper: ~1 access per instruction for most workloads (omnetpp highest,\n\
         1.17); BWB hit rate above 80% for most workloads"
    );
    out
}

/// Fig. 18: normalized network traffic.
pub fn fig18(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== Fig. 18: normalized network traffic (scale {scale}) ==");
    let header = format!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "name", "Watchdog", "PA", "AOS", "PA+AOS"
    );
    let _ = writeln!(out, "{header}");
    rule_line(&mut out, &header);
    let systems = standard_systems(scale);
    let grid = campaign_grid(SPEC2006, &systems);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); systems.len() - 1];
    for (p, profile) in SPEC2006.iter().enumerate() {
        let row_stats = &grid[p * systems.len()..(p + 1) * systems.len()];
        let base_bytes = row_stats[0].traffic.total_bytes().max(1) as f64;
        let mut row = String::new();
        for (i, stats) in row_stats.iter().enumerate().skip(1) {
            let normalized = stats.traffic.total_bytes() as f64 / base_bytes;
            columns[i - 1].push(normalized);
            row.push_str(&ratio(normalized));
            row.push(' ');
        }
        let _ = writeln!(out, "{:<12} {row}", profile.name);
    }
    let _ = writeln!(
        out,
        "{:<12} {} {} {} {}",
        "Geomean",
        ratio(geomean(&columns[0])),
        ratio(geomean(&columns[1])),
        ratio(geomean(&columns[2])),
        ratio(geomean(&columns[3])),
    );
    let _ = writeln!(
        out,
        "paper: Watchdog +31% average, PA+AOS +18%; gcc/povray/omnetpp are the\n\
         outliers (4.2x / 4.5x / 3.4x for Watchdog)"
    );
    out
}

/// Beyond the paper: the Fig. 14 experiment over the Table III
/// real-world workload models.
pub fn realworld_exec_time(scale: f64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== Beyond the paper: normalized execution time, real-world models (scale {scale}) =="
    );
    let header = format!(
        "{:<12} {:>8} {:>8} {:>8} {:>8}",
        "name", "Watchdog", "PA", "AOS", "PA+AOS"
    );
    let _ = writeln!(out, "{header}");
    rule_line(&mut out, &header);
    let systems = standard_systems(scale);
    let grid = campaign_grid(REAL_WORLD, &systems);
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); systems.len() - 1];
    for (p, profile) in REAL_WORLD.iter().enumerate() {
        let row_stats = &grid[p * systems.len()..(p + 1) * systems.len()];
        let baseline = &row_stats[0];
        let mut row = String::new();
        for (i, stats) in row_stats.iter().enumerate().skip(1) {
            let normalized = stats.cycles as f64 / baseline.cycles as f64;
            columns[i - 1].push(normalized);
            row.push_str(&ratio(normalized));
            row.push(' ');
        }
        let _ = writeln!(out, "{:<12} {row}", profile.name);
    }
    let _ = writeln!(
        out,
        "{:<12} {} {} {} {}",
        "Geomean",
        ratio(geomean(&columns[0])),
        ratio(geomean(&columns[1])),
        ratio(geomean(&columns[2])),
        ratio(geomean(&columns[3])),
    );
    let _ = writeln!(
        out,
        "(The paper profiles these six programs in Table III but does not
         simulate them; this extends the Fig. 14 methodology to their models.)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_reports_render() {
        let t1 = table1();
        assert!(t1.contains("MCQ"));
        assert!(t1.contains("(paper)"));
        let t4 = table4();
        assert!(t4.contains("8-wide"));
    }

    #[test]
    fn fig11_renders_at_tiny_scale() {
        let s = fig11(0.01);
        assert!(s.contains("measured"));
        assert!(s.contains("allocations: 10000"));
    }

    #[test]
    fn timing_reports_render_at_tiny_scale() {
        for report in [fig16(0.002), fig17(0.002)] {
            assert!(report.contains("hmmer"));
            assert!(report.contains("omnetpp"));
        }
    }
}
