//! Beyond-paper experiment: see
//! [`aos_bench::reports::realworld_exec_time`].

fn main() {
    let scale = aos_bench::scale_from_args(std::env::args());
    print!("{}", aos_bench::reports::realworld_exec_time(scale));
}
