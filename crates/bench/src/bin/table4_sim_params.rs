//! Reproduction binary: see [`aos_bench::reports::table4`].

fn main() {
    print!("{}", aos_bench::reports::table4());
}
