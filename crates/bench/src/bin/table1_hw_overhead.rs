//! Reproduction binary: see [`aos_bench::reports::table1`].

fn main() {
    print!("{}", aos_bench::reports::table1());
}
