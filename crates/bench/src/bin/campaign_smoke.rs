//! The canonical, dependency-free throughput artifact: runs a scaled
//! Fig. 14 campaign (`SPEC2006 × {Baseline..PA+AOS}`) through the
//! parallel campaign runner and writes `BENCH_campaign.json`
//! (schema `aos-campaign-report/v5`: campaign wall-clock, cells/sec,
//! cell-health counters, per-cell status, sim-cycles/sec, per-cell
//! telemetry counter columns, and the streaming-pipeline columns
//! `trace_ops`, `ops_per_sec` and
//! `peak_trace_bytes`). Because every worker streams its generator
//! straight into the machine, `--scale` can be raised ~10× over the
//! old materialized default without memory growth: peak trace bytes
//! stay `O(window)` per cell.
//!
//! ```text
//! cargo run --release -p aos-bench --bin campaign_smoke -- \
//!     --scale 0.01 --threads 8 --out BENCH_campaign.json
//! ```
//!
//! `--threads` defaults to `AOS_CAMPAIGN_THREADS`, then to the
//! machine's available parallelism.

use aos_core::experiment::campaign::{
    matrix, run_campaign_with_progress, CampaignOptions, Progress,
};
use aos_core::experiment::SystemUnderTest;
use aos_core::isa::SafetyConfig;
use aos_core::workloads::profile::SPEC2006;
use aos_util::{Counter, Gauge};

fn arg_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1))
        .cloned()
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let scale = aos_bench::scale_from_args(argv.iter().cloned());
    let threads = arg_value(&argv, "--threads").and_then(|s| s.parse().ok());
    let out_path = arg_value(&argv, "--out").unwrap_or_else(|| "BENCH_campaign.json".to_string());

    let cells = matrix(
        SPEC2006.iter().copied(),
        SafetyConfig::ALL.map(|s| SystemUnderTest::scaled(s, scale).with_telemetry(true)),
    );
    println!(
        "campaign: {} cells (SPEC2006 x 5 systems) at scale {scale}",
        cells.len()
    );
    let report = run_campaign_with_progress(
        &cells,
        &CampaignOptions {
            threads,
            ..CampaignOptions::default()
        },
        &|p: Progress<'_>| {
            println!(
                "  [{:>3}/{}] {:<24} {:>8.2}s",
                p.completed,
                p.total,
                p.cell.label(),
                p.wall.as_secs_f64()
            );
        },
    );

    println!(
        "\n{} cells on {} threads in {:.2}s ({:.2} cells/sec, {:.0} sim-cycles/sec aggregate)",
        report.results.len(),
        report.threads,
        report.wall.as_secs_f64(),
        report.cells_per_sec(),
        report.total_sim_cycles() as f64 / report.wall.as_secs_f64().max(1e-12),
    );
    let total_ops: u64 = report.results.iter().map(|r| r.trace_ops()).sum();
    let peak_trace = report
        .results
        .iter()
        .map(|r| r.peak_trace_bytes())
        .max()
        .unwrap_or(0);
    println!(
        "streaming: {total_ops} trace ops ({:.0} ops/sec aggregate), \
         peak trace buffer {peak_trace} bytes per cell",
        total_ops as f64 / report.wall.as_secs_f64().max(1e-12),
    );
    let telemetry = report.telemetry();
    println!(
        "telemetry: bwb hit rate {:.2}%, mcq replays {}, forwards {}, \
         peak occupancy {}, hbt migration rows {}, batch refills {}",
        telemetry.bwb_hit_rate() * 100.0,
        telemetry.counter(Counter::McqReplays),
        telemetry.counter(Counter::McqForwards),
        telemetry.gauge(Gauge::McqPeakOccupancy),
        telemetry.counter(Counter::HbtMigrationRows),
        telemetry.counter(Counter::BatchOpsRefilled),
    );
    // The committed BENCH_campaign.json is only comparable across PRs
    // if the schema the runner renders is the one this artifact
    // advertises — catch a silent schema drift at generation time,
    // not at review time.
    assert!(
        report.to_json().contains("\"schema\": \"aos-campaign-report/v5\""),
        "campaign report schema drifted from aos-campaign-report/v5; \
         bump this assert and regenerate the committed artifact together"
    );
    match report.write_json(&out_path) {
        Ok(()) => println!("report written to {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
