//! Trace-pipeline shape benchmark: the measurable artifact for the
//! streaming and batching refactors. For a handful of workloads it
//! runs the same `(workload, AOS)` simulation three ways —
//!
//! - **materialized**: collect the whole `TraceGenerator` output into
//!   a `Vec<Op>` first, then feed the vector to the machine (the
//!   original pipeline shape);
//! - **streaming**: the generator feeds the machine one op at a time
//!   through a meter (the per-op shape);
//! - **batched**: the generator fills 1024-op struct-of-arrays
//!   batches on its own thread, double-buffered against the machine
//!   ([`run_overlapped`], the campaign's cell body) — generation and
//!   simulation each run long cache-friendly bursts instead of
//!   interleaving per op;
//!
//! — checks all three produce bit-identical `RunStats` (telemetry
//! included, up to the batch counters only the batched path can
//! increment), and writes `BENCH_streaming.json` with ops/sec,
//! sim-cycles/sec and peak buffered trace bytes for each shape. Each
//! shape gets a warmup pass and reports the best of `--reps` timed
//! runs (default 3), so the committed artifact is reproducible on a
//! noisy box.
//!
//! ```text
//! cargo run --release -p aos-bench --bin streaming_bench -- \
//!     --scale 0.02 --out BENCH_streaming.json
//! ```
//!
//! [`run_overlapped`]: aos_core::experiment::overlap::run_overlapped

use std::fmt::Write as _;
use std::time::Instant;

use aos_core::experiment::overlap::run_overlapped;
use aos_core::experiment::SystemUnderTest;
use aos_core::isa::stream::{BufferedOps, OpStream};
use aos_core::isa::{Op, SafetyConfig};
use aos_core::sim::{Machine, RunStats};
use aos_core::workloads::{profile, TraceGenerator};
use aos_util::{Counter, Gauge, TelemetrySnapshot};

const WORKLOADS: [&str; 4] = ["hmmer", "gcc", "mcf", "omnetpp"];

fn arg_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1))
        .cloned()
}

struct Measurement {
    stats: RunStats,
    trace_ops: u64,
    wall: f64,
    peak_trace_bytes: u64,
}

impl Measurement {
    fn ops_per_sec(&self) -> f64 {
        self.trace_ops as f64 / self.wall.max(1e-12)
    }

    fn sim_cycles_per_sec(&self) -> f64 {
        self.stats.cycles as f64 / self.wall.max(1e-12)
    }

    fn json(&self) -> String {
        format!(
            "{{\"ops_per_sec\": {:.0}, \"sim_cycles_per_sec\": {:.0}, \
             \"peak_trace_bytes\": {}}}",
            self.ops_per_sec(),
            self.sim_cycles_per_sec(),
            self.peak_trace_bytes,
        )
    }
}

/// One warmup pass, then the best wall-clock of `reps` timed passes.
/// The runs are deterministic, so everything except the wall is
/// identical across reps; keeping the minimum isolates the pipeline
/// cost from scheduler noise.
fn best_of(reps: usize, mut run: impl FnMut() -> Measurement) -> Measurement {
    let mut best = run(); // warmup; its wall never wins the min below
    best.wall = f64::MAX;
    for _ in 0..reps.max(1) {
        let m = run();
        if m.wall < best.wall {
            best = m;
        }
    }
    best
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let scale = aos_bench::scale_from_args(argv.iter().cloned());
    let reps: usize = arg_value(&argv, "--reps")
        .and_then(|v| v.parse().ok())
        .unwrap_or(3);
    let out_path = arg_value(&argv, "--out").unwrap_or_else(|| "BENCH_streaming.json".to_string());
    let op_bytes = std::mem::size_of::<Op>() as u64;
    let batch_ops = aos_core::isa::stream::DEFAULT_BATCH_OPS;

    let mut rows = String::new();
    let mut telemetry = TelemetrySnapshot::default();
    let mut total_cycles = 0u64;
    let (mut str_wall, mut bat_wall) = (0.0f64, 0.0f64);
    println!(
        "{:<10} {:>9} {:>9} {:>13} {:>13} {:>8} {:>10} {:>10}",
        "workload", "ops", "cycles", "str cyc/s", "bat cyc/s", "speedup", "mat peak", "bat peak"
    );
    for (w, name) in WORKLOADS.iter().enumerate() {
        let p = profile::by_name(name).expect("known workload");
        let sut = SystemUnderTest::scaled(SafetyConfig::Aos, scale).with_telemetry(true);

        // Materialized: the whole trace lives in memory at once.
        let mat = best_of(reps, || {
            let start = Instant::now();
            let trace: Vec<Op> = TraceGenerator::new(p, SafetyConfig::Aos, scale).collect();
            let stats = Machine::new(sut.machine_config()).run(trace.iter().copied());
            Measurement {
                stats,
                trace_ops: trace.len() as u64,
                wall: start.elapsed().as_secs_f64(),
                peak_trace_bytes: trace.len() as u64 * op_bytes,
            }
        });

        // Streaming: generator feeds the machine one op at a time.
        let str_ = best_of(reps, || {
            let start = Instant::now();
            let mut stream = TraceGenerator::new(p, SafetyConfig::Aos, scale).metered();
            let stats = Machine::new(sut.machine_config()).run(&mut stream);
            Measurement {
                stats,
                trace_ops: stream.ops(),
                wall: start.elapsed().as_secs_f64(),
                peak_trace_bytes: stream.peak_buffered_ops() as u64 * op_bytes,
            }
        });

        // Batched: double-buffered generator thread, SoA batches.
        let bat = best_of(reps, || {
            let start = Instant::now();
            let out = run_overlapped(p, &sut);
            Measurement {
                stats: out.stats,
                trace_ops: out.trace_ops,
                wall: start.elapsed().as_secs_f64(),
                peak_trace_bytes: out.peak_trace_bytes,
            }
        });

        assert_eq!(
            mat.stats, str_.stats,
            "{name}: streaming changed the simulation"
        );
        let zeroed = [Counter::BatchOpsRefilled, Counter::BatchFallbackOps];
        assert_eq!(
            bat.stats.without_telemetry(),
            str_.stats.without_telemetry(),
            "{name}: batching changed the simulation"
        );
        assert_eq!(
            bat.stats.telemetry.with_counters_zeroed(&zeroed),
            str_.stats.telemetry.with_counters_zeroed(&zeroed),
            "{name}: batching changed the telemetry snapshot"
        );
        assert_eq!(
            bat.stats.telemetry.counter(Counter::BatchOpsRefilled),
            bat.trace_ops,
            "{name}: every op must arrive through a batch refill"
        );
        assert_eq!(mat.trace_ops, str_.trace_ops, "{name}: op count diverged");
        assert_eq!(str_.trace_ops, bat.trace_ops, "{name}: op count diverged");
        telemetry.merge(&bat.stats.telemetry);
        total_cycles += bat.stats.cycles;
        str_wall += str_.wall;
        bat_wall += bat.wall;

        let speedup = bat.sim_cycles_per_sec() / str_.sim_cycles_per_sec().max(1e-12);
        println!(
            "{:<10} {:>9} {:>9} {:>13.0} {:>13.0} {:>7.2}x {:>10} {:>10}",
            name,
            str_.trace_ops,
            str_.stats.cycles,
            str_.sim_cycles_per_sec(),
            bat.sim_cycles_per_sec(),
            speedup,
            mat.peak_trace_bytes,
            bat.peak_trace_bytes,
        );
        let _ = write!(
            rows,
            "    {{\"workload\": \"{name}\", \"trace_ops\": {}, \"sim_cycles\": {}, \
             \"materialized\": {}, \"streaming\": {}, \"batched\": {}, \
             \"batched_speedup\": {:.3}}}{}\n",
            str_.trace_ops,
            str_.stats.cycles,
            mat.json(),
            str_.json(),
            bat.json(),
            speedup,
            if w + 1 < WORKLOADS.len() { "," } else { "" },
        );
    }

    let agg_str = total_cycles as f64 / str_wall.max(1e-12);
    let agg_bat = total_cycles as f64 / bat_wall.max(1e-12);
    println!(
        "\naggregate sim-cycles/sec: streaming {:.0}, batched {:.0} ({:.2}x)",
        agg_str,
        agg_bat,
        agg_bat / agg_str.max(1e-12)
    );
    println!(
        "telemetry: bwb hit rate {:.2}% ({} hits / {} lookups), \
         mcq replays {}, forwards {}, peak occupancy {}, batch refills {}",
        telemetry.bwb_hit_rate() * 100.0,
        telemetry.counter(Counter::BwbHits),
        telemetry.counter(Counter::BwbHits) + telemetry.counter(Counter::BwbMisses),
        telemetry.counter(Counter::McqReplays),
        telemetry.counter(Counter::McqForwards),
        telemetry.gauge(Gauge::McqPeakOccupancy),
        telemetry.counter(Counter::BatchOpsRefilled),
    );

    let json = format!(
        "{{\n  \"schema\": \"aos-streaming-bench/v2\",\n  \"scale\": {scale},\n  \
         \"op_bytes\": {op_bytes},\n  \"batch_ops\": {batch_ops},\n  \"reps\": {reps},\n  \
         \"aggregate_sim_cycles_per_sec\": {{\"streaming\": {agg_str:.0}, \
         \"batched\": {agg_bat:.0}}},\n  \"results\": [\n{rows}  ]\n}}\n"
    );
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("\nreport written to {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
