//! Streaming-vs-materialized trace pipeline benchmark: the measurable
//! artifact for the streaming refactor. For a handful of workloads it
//! runs the same `(workload, AOS)` simulation twice —
//!
//! - **materialized**: collect the whole `TraceGenerator` output into
//!   a `Vec<Op>` first, then feed the vector to the machine (the old
//!   pipeline shape);
//! - **streaming**: feed the generator straight into the machine
//!   through a meter (the new shape);
//!
//! — checks the `RunStats` (telemetry snapshot included) are
//! bit-identical, and writes `BENCH_streaming.json` with ops/sec and
//! peak trace bytes for both shapes. The peak column is the point:
//! materialized peaks at the full trace, streaming at the generator's
//! event buffer. Each run records pipeline telemetry, and the headline
//! rates (BWB hit rate, MCQ replays/forwards) are printed at the end.
//!
//! ```text
//! cargo run --release -p aos-bench --bin streaming_bench -- \
//!     --scale 0.02 --out BENCH_streaming.json
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use aos_core::experiment::SystemUnderTest;
use aos_core::isa::stream::{BufferedOps, OpStream};
use aos_core::isa::{Op, SafetyConfig};
use aos_core::sim::Machine;
use aos_core::workloads::{profile, TraceGenerator};
use aos_util::{Counter, Gauge, TelemetrySnapshot};

const WORKLOADS: [&str; 4] = ["hmmer", "gcc", "mcf", "omnetpp"];

fn arg_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter()
        .position(|a| a == flag)
        .and_then(|i| argv.get(i + 1))
        .cloned()
}

struct Measurement {
    trace_ops: u64,
    ops_per_sec: f64,
    peak_trace_bytes: u64,
    cycles: u64,
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let scale = aos_bench::scale_from_args(argv.iter().cloned());
    let out_path = arg_value(&argv, "--out").unwrap_or_else(|| "BENCH_streaming.json".to_string());
    let op_bytes = std::mem::size_of::<Op>() as u64;

    let mut rows = String::new();
    let mut telemetry = TelemetrySnapshot::default();
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>16} {:>16}",
        "workload", "trace ops", "mat ops/s", "str ops/s", "mat peak bytes", "str peak bytes"
    );
    for (w, name) in WORKLOADS.iter().enumerate() {
        let p = profile::by_name(name).expect("known workload");
        let sut = SystemUnderTest::scaled(SafetyConfig::Aos, scale).with_telemetry(true);

        // Materialized: the whole trace lives in memory at once.
        let start = Instant::now();
        let trace: Vec<Op> = TraceGenerator::new(p, SafetyConfig::Aos, scale).collect();
        let mat_peak = trace.len() as u64 * op_bytes;
        let mat_stats = Machine::new(sut.machine_config()).run(trace.iter().copied());
        let mat = Measurement {
            trace_ops: trace.len() as u64,
            ops_per_sec: trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-12),
            peak_trace_bytes: mat_peak,
            cycles: mat_stats.cycles,
        };
        drop(trace);

        // Streaming: generator feeds the machine through a meter.
        let start = Instant::now();
        let mut stream = TraceGenerator::new(p, SafetyConfig::Aos, scale).metered();
        let str_stats = Machine::new(sut.machine_config()).run(&mut stream);
        let str_ = Measurement {
            trace_ops: stream.ops(),
            ops_per_sec: stream.ops() as f64 / start.elapsed().as_secs_f64().max(1e-12),
            peak_trace_bytes: stream.peak_buffered_ops() as u64 * op_bytes,
            cycles: str_stats.cycles,
        };

        assert_eq!(
            mat_stats, str_stats,
            "{name}: streaming changed the simulation"
        );
        assert_eq!(
            mat_stats.telemetry, str_stats.telemetry,
            "{name}: streaming changed the telemetry snapshot"
        );
        assert_eq!(mat.trace_ops, str_.trace_ops, "{name}: op count diverged");
        telemetry.merge(&str_stats.telemetry);

        println!(
            "{:<12} {:>12} {:>14.0} {:>14.0} {:>16} {:>16}",
            name, str_.trace_ops, mat.ops_per_sec, str_.ops_per_sec, mat.peak_trace_bytes,
            str_.peak_trace_bytes
        );
        let _ = write!(
            rows,
            "    {{\"workload\": \"{name}\", \"trace_ops\": {}, \"sim_cycles\": {}, \
             \"materialized\": {{\"ops_per_sec\": {:.0}, \"peak_trace_bytes\": {}}}, \
             \"streaming\": {{\"ops_per_sec\": {:.0}, \"peak_trace_bytes\": {}}}}}{}\n",
            str_.trace_ops,
            str_.cycles,
            mat.ops_per_sec,
            mat.peak_trace_bytes,
            str_.ops_per_sec,
            str_.peak_trace_bytes,
            if w + 1 < WORKLOADS.len() { "," } else { "" },
        );
    }

    println!(
        "\ntelemetry: bwb hit rate {:.2}% ({} hits / {} lookups), \
         mcq replays {}, forwards {}, peak occupancy {}",
        telemetry.bwb_hit_rate() * 100.0,
        telemetry.counter(Counter::BwbHits),
        telemetry.counter(Counter::BwbHits) + telemetry.counter(Counter::BwbMisses),
        telemetry.counter(Counter::McqReplays),
        telemetry.counter(Counter::McqForwards),
        telemetry.gauge(Gauge::McqPeakOccupancy),
    );

    let json = format!(
        "{{\n  \"schema\": \"aos-streaming-bench/v1\",\n  \"scale\": {scale},\n  \
         \"op_bytes\": {op_bytes},\n  \"results\": [\n{rows}  ]\n}}\n"
    );
    match std::fs::write(&out_path, json) {
        Ok(()) => println!("\nreport written to {out_path}"),
        Err(e) => {
            eprintln!("failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
}
