//! Reproduction binary: see [`aos_bench::reports::fig18`].

fn main() {
    let scale = aos_bench::scale_from_args(std::env::args());
    print!("{}", aos_bench::reports::fig18(scale));
}
