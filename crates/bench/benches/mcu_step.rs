//! Criterion bench: memory check unit — one full synchronous check
//! and a malloc/access/free round through the functional machine.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aos_core::AosProcess;
use aos_hbt::{HashedBoundsTable, HbtConfig};
use aos_mcu::{McuConfig, McuOp, MemoryCheckUnit};
use aos_ptrauth::PointerLayout;

fn bench_mcu(c: &mut Criterion) {
    c.bench_function("mcu_run_sync_check", |b| {
        let layout = PointerLayout::default();
        let mut hbt = HashedBoundsTable::new(HbtConfig::default());
        let mut mcu = MemoryCheckUnit::new(McuConfig::default(), layout);
        let ptr = layout.compose(0x4000_0000, 0x1234, 1);
        mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 4096 }, &mut hbt)
            .unwrap();
        b.iter(|| {
            let out = mcu.run_sync(
                McuOp::Access {
                    pointer: black_box(ptr + 64),
                    is_store: false,
                },
                &mut hbt,
            );
            hbt.discard_accesses();
            black_box(out).unwrap()
        })
    });
    c.bench_function("process_malloc_access_free", |b| {
        let mut p = AosProcess::new();
        b.iter(|| {
            let ptr = p.malloc(64).unwrap();
            p.store(ptr, 1).unwrap();
            black_box(p.load(ptr).unwrap());
            p.free(ptr).unwrap();
        })
    });
    c.bench_function("process_checked_load", |b| {
        let mut p = AosProcess::new();
        let ptr = p.malloc(4096).unwrap();
        p.store(ptr, 7).unwrap();
        b.iter(|| black_box(p.load(black_box(ptr + 8))))
    });
}

criterion_group!(benches, bench_mcu);
criterion_main!(benches);
