//! Criterion bench: simulated cycles per second of wall-clock for the
//! stage-structured core vs the legacy analytic loop, on the same AOS
//! hmmer window. The stage core pays for real structures (circular
//! ROB, RAT, issue heap, split LSQ) — this bench is the regression
//! fence that keeps that price visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aos_core::experiment::{run, SystemUnderTest};
use aos_core::isa::SafetyConfig;
use aos_core::sim::SimModel;
use aos_core::workloads::profile::by_name;

fn bench_stage_core(c: &mut Criterion) {
    let profile = by_name("hmmer").unwrap();
    let scale = 0.01;
    let mut group = c.benchmark_group("stage_core");
    group.sample_size(10);
    for model in [SimModel::Stage, SimModel::Approximate] {
        let sut = SystemUnderTest::scaled(SafetyConfig::Aos, scale).with_model(model);
        // sim-cycles/sec = this run's cycle count divided by the
        // measured wall time per iteration (the vendored criterion
        // shim has no Throughput axis, so the division is the
        // reader's; the cycle count is deterministic per model).
        group.bench_with_input(
            BenchmarkId::new("aos_hmmer_1pct", model.name()),
            &sut,
            |b, sut| b.iter(|| black_box(run(profile, sut))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stage_core);
criterion_main!(benches);
