//! Criterion bench: QARMA `ComputePAC` throughput — the primitive on
//! AOS's pointer-signing path (4 cycles in hardware; here we measure
//! the software model).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aos_qarma::{truncate_pac, PacKey, Qarma64};

fn bench_qarma(c: &mut Criterion) {
    let q = Qarma64::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
    c.bench_function("qarma_compute_pac", |b| {
        let mut x = 0x4000_0000u64;
        b.iter(|| {
            x = x.wrapping_add(16);
            black_box(q.compute(black_box(x), 0x477d469dec0b8762))
        })
    });
    c.bench_function("qarma_compute_and_truncate", |b| {
        let mut x = 0x4000_0000u64;
        b.iter(|| {
            x = x.wrapping_add(16);
            black_box(truncate_pac(q.compute(black_box(x), 0x477d469dec0b8762), 16))
        })
    });
    c.bench_function("qarma_invert", |b| {
        let y = q.compute(0xfb623599da6e8127, 0x477d469dec0b8762);
        b.iter(|| black_box(q.invert(black_box(y), 0x477d469dec0b8762)))
    });
}

criterion_group!(benches, bench_qarma);
criterion_main!(benches);
