//! Criterion bench: trace-pipeline shape regression guard. Times the
//! same `(hmmer, AOS)` cell through each pipeline shape — per-op
//! streaming, in-thread batched, threaded double-buffered overlap —
//! plus the batch transport in isolation (generator into an `OpBatch`
//! arena, no simulation), so a regression in refill, decode, or
//! rendezvous cost shows up attributed to its stage rather than
//! smeared across the end-to-end number.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aos_core::experiment::overlap::{run_overlapped, run_overlapped_threaded};
use aos_core::experiment::{run_metered, SystemUnderTest};
use aos_core::isa::stream::{BatchSource, OpBatch, OpStream, DEFAULT_BATCH_OPS};
use aos_core::isa::SafetyConfig;
use aos_core::sim::Machine;
use aos_core::workloads::profile::by_name;
use aos_core::workloads::TraceGenerator;

const SCALE: f64 = 0.01;

fn bench_pipeline(c: &mut Criterion) {
    let profile = by_name("hmmer").unwrap();
    let sut = SystemUnderTest::scaled(SafetyConfig::Aos, SCALE);
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("streaming_per_op", |b| {
        b.iter(|| black_box(run_metered(profile, &sut)))
    });
    group.bench_function("batched_in_thread", |b| {
        b.iter(|| {
            let gen = TraceGenerator::new(profile, SafetyConfig::Aos, SCALE).metered();
            black_box(Machine::new(sut.machine_config()).run_batched(gen))
        })
    });
    group.bench_function("batched_overlapped", |b| {
        b.iter(|| black_box(run_overlapped_threaded(profile, &sut)))
    });
    group.bench_function("batched_adaptive", |b| {
        b.iter(|| black_box(run_overlapped(profile, &sut)))
    });
    // Transport only: how fast ops move through the SoA arena without
    // a machine on the far end.
    group.bench_function("batch_refill_only", |b| {
        b.iter(|| {
            let mut gen = TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
            let mut batch = OpBatch::with_capacity(DEFAULT_BATCH_OPS);
            let mut total = 0usize;
            loop {
                batch.clear();
                let n = gen.refill_batch(&mut batch);
                if n == 0 {
                    break;
                }
                total += n;
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
