//! Criterion bench: hashed bounds table operations — store, check
//! (hit and way-iteration), clear, and a full gradual resize.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use aos_hbt::{CompressedBounds, HashedBoundsTable, HbtConfig};

fn populated_table(chunks: u64) -> HashedBoundsTable {
    let mut t = HashedBoundsTable::new(HbtConfig::default());
    for i in 0..chunks {
        let pac = (i * 0x9E37) & 0xFFFF;
        let base = 0x4000_0000 + i * 0x100;
        let _ = t.store(pac, CompressedBounds::encode(base, 64));
    }
    t.discard_accesses();
    t
}

fn bench_hbt(c: &mut Criterion) {
    c.bench_function("hbt_store_clear_pair", |b| {
        let mut t = populated_table(10_000);
        let bounds = CompressedBounds::encode(0x7000_0000, 64);
        b.iter(|| {
            t.store(0xABCD, bounds).unwrap();
            t.clear(0xABCD, 0x7000_0000).unwrap();
            t.discard_accesses();
        })
    });
    c.bench_function("hbt_check_hit", |b| {
        let mut t = populated_table(10_000);
        b.iter(|| {
            let hit = t.check(black_box(0x9E37 & 0xFFFF), 0x4000_0000 + 8, 0);
            t.discard_accesses();
            black_box(hit)
        })
    });
    c.bench_function("hbt_compress_decompress", |b| {
        b.iter(|| {
            let bounds = CompressedBounds::encode(black_box(0x4000_0010), black_box(4096));
            black_box(bounds.check(0x4000_0100))
        })
    });
    let mut group = c.benchmark_group("hbt_resize");
    group.sample_size(10);
    group.bench_function("hbt_full_resize_migration_10k", |b| {
        b.iter_with_setup(
            || populated_table(10_000),
            |mut t| {
                t.begin_resize();
                t.finish_migration();
                black_box(t.ways())
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_hbt);
criterion_main!(benches);
