//! Criterion bench: end-to-end simulator throughput (ops simulated
//! per second) for Baseline and AOS machines on a small hmmer window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aos_core::experiment::{run, SystemUnderTest};
use aos_core::isa::SafetyConfig;
use aos_core::workloads::profile::by_name;

fn bench_sim(c: &mut Criterion) {
    let profile = by_name("hmmer").unwrap();
    let mut group = c.benchmark_group("sim_throughput");
    group.sample_size(10);
    for config in [SafetyConfig::Baseline, SafetyConfig::Aos, SafetyConfig::Watchdog] {
        group.bench_with_input(
            BenchmarkId::new("hmmer_1pct", config.to_string()),
            &config,
            |b, &config| {
                b.iter(|| black_box(run(profile, &SystemUnderTest::scaled(config, 0.01))))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
