//! Criterion bench: design-choice ablations beyond the paper's own
//! Fig. 15 — BWB size, initial HBT associativity, bounds forwarding,
//! and PAC width. These measure *simulated cycles* (reported via
//! custom measurement of the run) as wall-time proxies; the
//! corresponding simulated-cycle numbers are printed by
//! `examples/ablation_study.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use aos_core::experiment::SystemUnderTest;
use aos_core::isa::SafetyConfig;
use aos_core::sim::Machine;
use aos_core::workloads::{profile::by_name, TraceGenerator};

fn bench_ablation(c: &mut Criterion) {
    let profile = by_name("gcc").unwrap();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    for bwb_entries in [16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("bwb_entries", bwb_entries),
            &bwb_entries,
            |b, &entries| {
                b.iter(|| {
                    let mut cfg =
                        SystemUnderTest::scaled(SafetyConfig::Aos, 0.01).machine_config();
                    cfg.mcu.bwb_entries = entries;
                    let trace = TraceGenerator::new(profile, SafetyConfig::Aos, 0.01);
                    black_box(Machine::new(cfg).run(trace).cycles)
                })
            },
        );
    }

    for forwarding in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("bounds_forwarding", forwarding),
            &forwarding,
            |b, &fwd| {
                b.iter(|| {
                    let mut sut = SystemUnderTest::scaled(SafetyConfig::Aos, 0.01);
                    sut.forwarding = fwd;
                    let trace = TraceGenerator::new(profile, SafetyConfig::Aos, 0.01);
                    black_box(Machine::new(sut.machine_config()).run(trace).cycles)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
