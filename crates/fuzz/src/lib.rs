//! Adversarial scenario engine + differential fuzzing of the static
//! (`aos-lint`) and dynamic (fault oracle) verdicts.
//!
//! The paper's §VII evaluation probes AOS with *single-step* attacks;
//! real heap exploitation composes primitives. This crate generates
//! seeded multi-step attack scenarios — chains of the six base fault
//! injectors plus five composite primitives (heap spray, PAC
//! brute-force over the 2^16 key space, AHC size-class confusion,
//! dangling re-sign abuse, and a TOCTOU race timed against the
//! in-flight Fig. 10 gradual HBT resize migration) — splices them
//! into a clean generated trace as a streaming
//! [`aos_isa::stream::SpliceMany`] transform, and then *differentially
//! replays* every scenario through both oracles on all five systems.
//!
//! Any verdict that falls outside the pinned static/dynamic
//! expectation split is a **finding**: a bug in the linter, the
//! machine model, or the scenario itself. Finding-triggering streams
//! are banked into CRC-checked [`aos_isa::corpus`] files as permanent
//! regression inputs.
//!
//! The layering mirrors `aos-fault`:
//!
//! - [`primitive`] — the composite attack primitives and their
//!   pinned static/dynamic expectations, including the per-policy
//!   rule splits of the cross-paper detection matrix;
//! - [`scenario`] — seeded scenario specs and the planner that turns
//!   one into concrete [`Splice`](aos_isa::stream::Splice) edits
//!   against a trace;
//! - [`differential`] — the five-system replay against *all four*
//!   static policies (one [`aos_lint::MatrixScan`] pass) and the
//!   finding classification;
//! - [`coverage`] — the campaign coverage map (step kinds × policy
//!   rules × dynamic verdicts) that feeds the engine's
//!   coverage-guided scheduler;
//! - [`engine`] — the budgeted campaign driver, corpus banking, and
//!   the `aos-fuzz-report/v1` JSON emitter.

pub mod coverage;
pub mod differential;
pub mod engine;
pub mod primitive;
pub mod scenario;

pub use coverage::CoverageMap;
pub use differential::{DifferentialOutcome, Finding, FindingKind, PolicyVerdict};
pub use engine::{bank_scenarios, replay_corpus, run_fuzz, FuzzConfig, FuzzReport, ReplayReport};
pub use primitive::{CompositeKind, Expectation};
pub use scenario::{ScenarioPlan, ScenarioSpec, StepKind};
