//! The budgeted fuzzing campaign driver: seeded scenario generation,
//! differential replay, finding-corpus banking, and the
//! `aos-fuzz-report/v1` JSON emitter.
//!
//! Everything here is a pure function of [`FuzzConfig`]: the same
//! `(workload, scale, seed, budget)` draws the same chains, plans the
//! same edits, and produces a bit-identical [`FuzzReport::digest`] —
//! the property `aos fuzz`'s determinism contract (and the golden
//! replay tests) pin.

use std::collections::HashSet;
use std::path::PathBuf;

use aos_core::experiment::SystemUnderTest;
use aos_isa::corpus::{CorpusReader, CorpusWriter};
use aos_isa::{Op, SafetyConfig};
use aos_lint::{MatrixScan, Policy};
use aos_ptrauth::PointerLayout;
use aos_sim::Machine;
use aos_util::{AosError, Counter, Telemetry, Xoshiro256StarStar};
use aos_workloads::{profile::by_name, TraceGenerator, WorkloadProfile};

use crate::coverage::{fnv1a64, fnv1a64_init, CoverageMap};
use crate::differential::{run_scenario, CleanBaseline, DifferentialOutcome};
use crate::scenario::{plan_scenario, ScenarioPlan, ScenarioSpec, StepKind};

/// One fuzzing campaign's shape.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Workload profile name (any SPEC 2006 / real-world profile).
    pub workload: String,
    /// Trace scale in `(0, 1]`.
    pub scale: f64,
    /// Master seed: drives chain drawing and every per-step stream.
    pub seed: u64,
    /// Scenarios to generate and replay.
    pub budget: usize,
    /// Longest chain the generator draws (steps per scenario).
    pub max_chain: usize,
    /// When set, the scheduler steers chain generation by coverage:
    /// uncovered step kinds are seeded first, and chains that lit new
    /// coverage points get mutated in preference to fresh uniform
    /// draws. When unset the engine draws uniformly — byte-identical
    /// RNG consumption to the pre-coverage engine, so existing seeds
    /// reproduce their historical campaigns.
    pub coverage_guided: bool,
    /// When set, finding-triggering faulted streams are banked here
    /// as a CRC-checked [`aos_isa::corpus`] file.
    pub corpus_out: Option<PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            workload: "hmmer".to_string(),
            scale: 0.004,
            seed: 1,
            budget: 8,
            max_chain: 3,
            coverage_guided: false,
            corpus_out: None,
        }
    }
}

/// The campaign's full result.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Workload fuzzed.
    pub workload: String,
    /// Trace scale used.
    pub scale: f64,
    /// Master seed used.
    pub seed: u64,
    /// Scenarios requested.
    pub budget: usize,
    /// Per-scenario differential outcomes, in generation order.
    pub outcomes: Vec<DifferentialOutcome>,
    /// Chains the planner could not realize (scenario id, error).
    pub planning_failures: Vec<(String, String)>,
    /// Finding streams banked to `corpus`.
    pub banked: u64,
    /// Path of the banked corpus, when one was written.
    pub corpus: Option<String>,
    /// Whether the coverage-guided scheduler drove chain generation.
    pub coverage_guided: bool,
    /// The coverage the campaign reached (tracked in both modes; only
    /// *steering* is gated by `coverage_guided`).
    pub coverage: CoverageMap,
}

impl FuzzReport {
    /// Total findings across all scenarios.
    pub fn findings(&self) -> u64 {
        self.outcomes.iter().map(|o| o.findings.len() as u64).sum()
    }

    /// FNV-1a 64 digest over the canonical verdict lines — identical
    /// across two runs of the same config iff every scenario produced
    /// the identical static and dynamic verdicts.
    pub fn digest(&self) -> u64 {
        let mut hash = fnv1a64_init();
        for outcome in &self.outcomes {
            hash = fnv1a64(hash, canonical_line(outcome).as_bytes());
            hash = fnv1a64(hash, b"\n");
        }
        for (id, error) in &self.planning_failures {
            hash = fnv1a64(hash, format!("skip {id}: {error}\n").as_bytes());
        }
        hash
    }

    /// The `aos-fuzz-report/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"aos-fuzz-report/v1\",\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", esc(&self.workload)));
        out.push_str(&format!("  \"scale\": {},\n", self.scale));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"budget\": {},\n", self.budget));
        out.push_str(&format!("  \"digest\": \"{:016x}\",\n", self.digest()));
        out.push_str(&format!(
            "  \"coverage\": {{\"guided\": {}, \"points\": {}, \"fingerprint\": \"{:016x}\"}},\n",
            self.coverage_guided,
            self.coverage.len(),
            self.coverage.fingerprint()
        ));
        out.push_str("  \"scenarios\": [\n");
        for (i, o) in self.outcomes.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"id\": \"{}\", ", esc(&o.scenario)));
            out.push_str(&format!(
                "\"steps\": [{}], ",
                o.steps
                    .iter()
                    .map(|s| format!("\"{s}\""))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(&format!(
                "\"lint\": {{\"diagnostics\": {}, \"rules\": [{}]}}, ",
                o.lint_diagnostics,
                o.lint_rules
                    .iter()
                    .map(|r| format!("\"{}\"", r.name()))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(&format!(
                "\"policies\": [{}], ",
                o.policies
                    .iter()
                    .map(|v| format!(
                        "{{\"policy\": \"{}\", \"diagnostics\": {}, \"rules\": [{}]}}",
                        v.policy.name(),
                        v.diagnostics,
                        v.rules
                            .iter()
                            .map(|r| format!("\"{r}\""))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(&format!(
                "\"systems\": [{}], ",
                o.systems
                    .iter()
                    .map(|v| format!(
                        "{{\"system\": \"{}\", \"clean\": {}, \"faulty\": {}}}",
                        v.system, v.clean_violations, v.faulty_violations
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(&format!(
                "\"findings\": [{}]",
                o.findings
                    .iter()
                    .map(|f| format!(
                        "{{\"kind\": \"{}\", \"system\": {}, \"detail\": \"{}\"}}",
                        f.kind,
                        f.system
                            .map(|s| format!("\"{s}\""))
                            .unwrap_or_else(|| "null".to_string()),
                        esc(&f.detail)
                    ))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            out.push_str(if i + 1 < self.outcomes.len() {
                "},\n"
            } else {
                "}\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"planning_failures\": [{}],\n",
            self.planning_failures
                .iter()
                .map(|(id, e)| format!("{{\"id\": \"{}\", \"error\": \"{}\"}}", esc(id), esc(e)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(&format!("  \"findings\": {},\n", self.findings()));
        out.push_str(&format!("  \"banked\": {},\n", self.banked));
        out.push_str(&format!(
            "  \"corpus\": {}\n",
            self.corpus
                .as_ref()
                .map(|p| format!("\"{}\"", esc(p)))
                .unwrap_or_else(|| "null".to_string())
        ));
        out.push_str("}\n");
        out
    }
}

/// Runs one budgeted campaign: draws `budget` seeded chains, plans
/// and differentially replays each, and banks every
/// finding-triggering faulted stream when a corpus path is set.
///
/// # Errors
///
/// Fails on an unknown workload name or a corpus I/O error.
/// Individual chains the planner cannot realize are recorded in
/// [`FuzzReport::planning_failures`], not errors.
pub fn run_fuzz(config: &FuzzConfig, telemetry: &Telemetry) -> Result<FuzzReport, AosError> {
    let profile = resolve_workload(&config.workload)?;
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, config.scale);
    let layout = PointerLayout::default();
    let baseline = CleanBaseline::measure(profile, config.scale);
    let kinds: Vec<StepKind> = StepKind::all().collect();
    let mut rng = Xoshiro256StarStar::seed_from_u64(config.seed);
    let mut plans: Vec<ScenarioPlan> = Vec::with_capacity(config.budget);
    let mut outcomes: Vec<DifferentialOutcome> = Vec::with_capacity(config.budget);
    let mut planning_failures = Vec::new();
    let mut coverage = CoverageMap::new();
    // Chains that lit at least one new coverage point, queued for
    // mutation (coverage-guided mode only).
    let mut interesting: Vec<Vec<StepKind>> = Vec::new();
    for _ in 0..config.budget {
        let steps: Vec<StepKind> = if config.coverage_guided {
            if let Some(frontier) = kinds
                .iter()
                .find(|k| !coverage.covers(&format!("step:{}", k.name())))
            {
                // Frontier first: every step kind gets exercised
                // before any mutation or uniform draw happens.
                let tail = rng.next_index(config.max_chain.max(1));
                std::iter::once(*frontier)
                    .chain((0..tail).map(|_| kinds[rng.next_index(kinds.len())]))
                    .collect()
            } else if let Some(parent) = interesting.pop() {
                // Mutate an interesting chain: replace one step, or
                // append one when the chain has room.
                let mut child = parent;
                let step = kinds[rng.next_index(kinds.len())];
                if child.len() < config.max_chain.max(1) && rng.next_index(2) == 0 {
                    child.push(step);
                } else {
                    let slot = rng.next_index(child.len());
                    child[slot] = step;
                }
                child
            } else {
                uniform_chain(&mut rng, &kinds, config.max_chain)
            }
        } else {
            // Uniform mode draws exactly as the pre-coverage engine
            // did — byte-identical RNG consumption, so historical
            // seeds reproduce their campaigns.
            uniform_chain(&mut rng, &kinds, config.max_chain)
        };
        let spec = ScenarioSpec {
            seed: rng.next_u64(),
            steps,
        };
        telemetry.count(Counter::FuzzScenarios);
        match plan_scenario(&spec, stream, layout) {
            Ok(plan) => {
                telemetry.add(Counter::FuzzSteps, plan.steps.len() as u64);
                let outcome = run_scenario(profile, config.scale, &plan, &baseline);
                telemetry.add(Counter::FuzzFindings, outcome.findings.len() as u64);
                let fresh = coverage.observe(&outcome);
                telemetry.add(Counter::FuzzCoveragePoints, fresh as u64);
                if config.coverage_guided && fresh > 0 {
                    interesting.push(plan.spec.steps.clone());
                }
                plans.push(plan);
                outcomes.push(outcome);
            }
            Err(e) => planning_failures.push((spec.id(), e.to_string())),
        }
    }

    let mut banked = 0u64;
    if let Some(path) = &config.corpus_out {
        let mut writer = CorpusWriter::create(path, telemetry.clone())?;
        let mut names = HashSet::new();
        for (plan, outcome) in plans.iter().zip(&outcomes) {
            if !outcome.is_finding() || !names.insert(outcome.scenario.clone()) {
                continue;
            }
            writer.record(
                &outcome.scenario,
                &metadata_line(&config.workload, config.scale, plan, outcome),
                plan.apply(stream()),
            )?;
            banked += 1;
        }
        writer.finish()?;
        telemetry.add(Counter::FuzzCorpusBanked, banked);
    }

    Ok(FuzzReport {
        workload: config.workload.clone(),
        scale: config.scale,
        seed: config.seed,
        budget: config.budget,
        outcomes,
        planning_failures,
        banked,
        corpus: config
            .corpus_out
            .as_ref()
            .map(|p| p.display().to_string()),
        coverage_guided: config.coverage_guided,
        coverage,
    })
}

/// The pre-coverage chain draw: uniform over kinds, length in
/// `1..=max_chain`.
fn uniform_chain(
    rng: &mut Xoshiro256StarStar,
    kinds: &[StepKind],
    max_chain: usize,
) -> Vec<StepKind> {
    let len = 1 + rng.next_index(max_chain.max(1));
    (0..len).map(|_| kinds[rng.next_index(kinds.len())]).collect()
}

/// Plans and differentially replays `specs`, banking every faulted
/// stream (finding or not) into a corpus at `path` with replayable
/// expected-verdict metadata. This is how the golden regression
/// corpus under `tests/golden/fuzz/` is generated.
///
/// # Errors
///
/// Fails on an unknown workload, an unplannable chain (golden specs
/// must always plan), or a corpus I/O error.
pub fn bank_scenarios(
    workload: &str,
    scale: f64,
    specs: &[ScenarioSpec],
    path: impl Into<PathBuf>,
    telemetry: &Telemetry,
) -> Result<Vec<DifferentialOutcome>, AosError> {
    let profile = resolve_workload(workload)?;
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, scale);
    let layout = PointerLayout::default();
    let baseline = CleanBaseline::measure(profile, scale);
    let mut writer = CorpusWriter::create(path.into(), telemetry.clone())?;
    let mut outcomes = Vec::with_capacity(specs.len());
    for spec in specs {
        let plan = plan_scenario(spec, stream, layout)?;
        let outcome = run_scenario(profile, scale, &plan, &baseline);
        writer.record(
            &outcome.scenario,
            &metadata_line(workload, scale, &plan, &outcome),
            plan.apply(stream()),
        )?;
        telemetry.count(Counter::FuzzCorpusBanked);
        outcomes.push(outcome);
    }
    writer.finish()?;
    Ok(outcomes)
}

/// One banked entry's replay verdict.
#[derive(Debug, Clone)]
pub struct ReplayCheck {
    /// Entry name (the scenario id).
    pub name: String,
    /// Ops the entry holds.
    pub ops: u64,
    /// Every verdict that diverged from the banked expectation
    /// (empty = stable).
    pub mismatches: Vec<String>,
}

/// The result of replaying a banked corpus.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Corpus path.
    pub path: String,
    /// Per-entry checks, in corpus order.
    pub checks: Vec<ReplayCheck>,
}

impl ReplayReport {
    /// True when every banked entry reproduced its recorded verdicts
    /// exactly.
    pub fn is_stable(&self) -> bool {
        self.checks.iter().all(|c| c.mismatches.is_empty())
    }

    /// Total mismatched verdicts.
    pub fn mismatches(&self) -> usize {
        self.checks.iter().map(|c| c.mismatches.len()).sum()
    }
}

/// Replays every entry of a banked corpus through both oracles and
/// compares the verdicts against the counts recorded at banking time
/// — from the banked ops alone, with no workload regeneration.
///
/// # Errors
///
/// Fails on corpus I/O or CRC corruption, or on metadata that does
/// not parse as [`metadata_line`] output.
pub fn replay_corpus(
    path: impl Into<PathBuf>,
    telemetry: &Telemetry,
) -> Result<ReplayReport, AosError> {
    let path = path.into();
    let reader = CorpusReader::open(&path, telemetry.clone())?;
    let entries = reader.entries().to_vec();
    let mut checks = Vec::with_capacity(entries.len());
    for entry in entries {
        let expected = parse_metadata(&entry.metadata)?;
        let ops: Vec<Op> = reader.replay(&entry)?.collect::<Result<_, _>>()?;
        let mut mismatches = Vec::new();
        // One matrix pass re-derives every static verdict; the AOS
        // report is bit-identical to the old dedicated lint pass.
        let reports = MatrixScan::run(
            &Policy::ALL,
            ops.iter().copied(),
            PointerLayout::default(),
            telemetry,
        );
        if reports[0].total_diagnostics() != expected.lint_diagnostics {
            mismatches.push(format!(
                "lint raised {} diagnostics, banked {}",
                reports[0].total_diagnostics(),
                expected.lint_diagnostics
            ));
        }
        for (policy, banked) in &expected.policy_diagnostics {
            let got = reports
                .iter()
                .find(|r| r.policy == *policy)
                .map(|r| r.total_diagnostics())
                .unwrap_or(0);
            if got != *banked {
                mismatches.push(format!(
                    "{policy} raised {got} diagnostics, banked {banked}"
                ));
            }
        }
        for (system, banked) in &expected.faulty_violations {
            let sut = SystemUnderTest::scaled(*system, expected.scale);
            let got = Machine::new(sut.machine_config())
                .run(ops.iter().copied())
                .violations;
            if got != *banked {
                mismatches.push(format!(
                    "{system} raised {got} violations, banked {banked}"
                ));
            }
        }
        checks.push(ReplayCheck {
            name: entry.name.clone(),
            ops: entry.op_count,
            mismatches,
        });
    }
    Ok(ReplayReport {
        path: path.display().to_string(),
        checks,
    })
}

fn resolve_workload(name: &str) -> Result<&'static WorkloadProfile, AosError> {
    by_name(name).ok_or_else(|| {
        AosError::invalid_input("workload", format!("unknown workload profile '{name}'"))
    })
}

/// The banked-entry metadata line: `key=value` pairs joined by `;`.
/// Records everything replay needs — the scale (for machine
/// configuration) plus the expected lint total and per-system faulty
/// violation counts. Rust's shortest-roundtrip float formatting makes
/// `scale` parse back bit-exact.
fn metadata_line(
    workload: &str,
    scale: f64,
    plan: &ScenarioPlan,
    outcome: &DifferentialOutcome,
) -> String {
    let mut parts = vec![
        format!("workload={workload}"),
        format!("scale={scale}"),
        format!("seed={}", plan.spec.seed),
        format!("steps={}", outcome.steps.join("+")),
        format!("lint={}", outcome.lint_diagnostics),
    ];
    for v in &outcome.systems {
        parts.push(format!("{}={}", v.system, v.faulty_violations));
    }
    // Cross-paper policy totals (the AOS column is `lint=` above).
    // Policy names are lowercase and system names are not, so the
    // keys cannot collide.
    for v in &outcome.policies {
        if v.policy != Policy::Aos {
            parts.push(format!("{}={}", v.policy.name(), v.diagnostics));
        }
    }
    parts.join(";")
}

struct BankedExpectation {
    scale: f64,
    lint_diagnostics: u64,
    faulty_violations: Vec<(SafetyConfig, u64)>,
    /// Non-AOS policy totals; empty when replaying a corpus banked
    /// before the cross-policy keys existed (those replay on the
    /// dynamic + AOS checks alone).
    policy_diagnostics: Vec<(Policy, u64)>,
}

fn parse_metadata(metadata: &str) -> Result<BankedExpectation, AosError> {
    let bad = |what: &str| {
        AosError::invalid_input(
            "fuzz corpus metadata",
            format!("{what} in banked metadata '{metadata}'"),
        )
    };
    let mut scale = None;
    let mut lint = None;
    let mut faulty = Vec::new();
    let mut policies = Vec::new();
    for part in metadata.split(';') {
        let (key, value) = part.split_once('=').ok_or_else(|| bad("missing '='"))?;
        match key {
            "scale" => scale = Some(value.parse::<f64>().map_err(|_| bad("bad scale"))?),
            "lint" => lint = Some(value.parse::<u64>().map_err(|_| bad("bad lint count"))?),
            "workload" | "seed" | "steps" => {}
            other => {
                if let Some(config) = SafetyConfig::ALL
                    .into_iter()
                    .find(|c| c.to_string() == other)
                {
                    faulty.push((
                        config,
                        value.parse::<u64>().map_err(|_| bad("bad violation count"))?,
                    ));
                } else if let Some(policy) =
                    Policy::parse(other).filter(|p| *p != Policy::Aos)
                {
                    policies.push((
                        policy,
                        value
                            .parse::<u64>()
                            .map_err(|_| bad("bad policy diagnostic count"))?,
                    ));
                }
            }
        }
    }
    if faulty.len() != SafetyConfig::ALL.len() {
        return Err(bad("missing per-system violation counts"));
    }
    Ok(BankedExpectation {
        scale: scale.ok_or_else(|| bad("missing scale"))?,
        lint_diagnostics: lint.ok_or_else(|| bad("missing lint count"))?,
        faulty_violations: faulty,
        policy_diagnostics: policies,
    })
}

/// The canonical one-line verdict summary the report digest hashes.
fn canonical_line(o: &DifferentialOutcome) -> String {
    let rules: Vec<&str> = o.lint_rules.iter().map(|r| r.name()).collect();
    let systems: Vec<String> = o
        .systems
        .iter()
        .map(|v| format!("{}={}/{}", v.system, v.clean_violations, v.faulty_violations))
        .collect();
    let findings: Vec<String> = o.findings.iter().map(|f| f.to_string()).collect();
    let policies: Vec<String> = o
        .policies
        .iter()
        .map(|v| format!("{}:{}[{}]", v.policy.name(), v.diagnostics, v.rules.join(",")))
        .collect();
    format!(
        "{}|steps={}|lint={}|rules={}|policies={}|{}|findings={}",
        o.scenario,
        o.steps.join("+"),
        o.lint_diagnostics,
        rules.join(","),
        policies.join(","),
        systems.join("|"),
        findings.join(";")
    )
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FuzzConfig {
        FuzzConfig {
            budget: 3,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn same_config_same_digest() {
        let telemetry = Telemetry::disabled();
        let a = run_fuzz(&small_config(), &telemetry).expect("fuzz");
        let b = run_fuzz(&small_config(), &telemetry).expect("fuzz");
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.outcomes.len() + a.planning_failures.len(), 3);
    }

    #[test]
    fn different_seeds_differ() {
        let telemetry = Telemetry::disabled();
        let a = run_fuzz(&small_config(), &telemetry).expect("fuzz");
        let b = run_fuzz(
            &FuzzConfig {
                seed: 2,
                ..small_config()
            },
            &telemetry,
        )
        .expect("fuzz");
        assert_ne!(a.digest(), b.digest(), "seed must steer the campaign");
    }

    #[test]
    fn report_json_is_schema_tagged() {
        let telemetry = Telemetry::disabled();
        let report = run_fuzz(
            &FuzzConfig {
                budget: 1,
                ..FuzzConfig::default()
            },
            &telemetry,
        )
        .expect("fuzz");
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"aos-fuzz-report/v1\""));
        assert!(json.contains("\"digest\": \""));
    }

    #[test]
    fn banked_corpus_replays_stable() {
        use crate::primitive::CompositeKind;

        let dir = std::env::temp_dir().join("aos-fuzz-engine-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("bank.aosc");
        let telemetry = Telemetry::disabled();
        let specs: Vec<ScenarioSpec> = [CompositeKind::HeapSpray, CompositeKind::DanglingResign]
            .into_iter()
            .map(|kind| ScenarioSpec {
                seed: 77,
                steps: vec![StepKind::Composite(kind)],
            })
            .collect();
        let outcomes =
            bank_scenarios("mcf", 0.004, &specs, &path, &telemetry).expect("bank");
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| !o.is_finding()));
        let replay = replay_corpus(&path, &telemetry).expect("replay");
        assert!(replay.is_stable(), "{:?}", replay.checks);
        assert_eq!(replay.checks.len(), 2);
        std::fs::remove_file(&path).ok();
    }
}
