//! The differential harness: replays one planned scenario through
//! *every* static policy — `aos-lint`'s four abstract interpreters in
//! one [`MatrixScan`] pass — and the machine-model fault oracle on
//! all five systems, and flags any verdict that falls outside the
//! scenario's pinned expectation split.
//!
//! The harness never decides *which* oracle is right. A
//! [`Finding`] means the static verdict, the dynamic verdict, and
//! the pinned expectation do not triangulate — a bug in a policy
//! verifier, in the machine model, or in the primitive's own
//! pinning, and in every case worth banking as a regression input.
//! The AOS column keeps its dedicated finding kinds
//! ([`FindingKind::StaticDisagreement`], [`FindingKind::MissingRule`])
//! and stays bit-identical to the pre-framework `lint_stream` pass;
//! the cross-paper columns report through
//! [`FindingKind::PolicyDisagreement`].

use aos_core::experiment::SystemUnderTest;
use aos_isa::SafetyConfig;
use aos_lint::{MatrixScan, Policy, PolicyReport, Rule};
use aos_ptrauth::PointerLayout;
use aos_sim::Machine;
use aos_util::Telemetry;
use aos_workloads::{TraceGenerator, WorkloadProfile};

use crate::scenario::ScenarioPlan;

/// Why a scenario was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The linter's verdict contradicts the pinned static class
    /// (flagged a pinned dynamic-only chain, or fired rules outside
    /// a fully pinned chain's expected set).
    StaticDisagreement,
    /// A pinned rule did not fire on a statically detectable chain.
    MissingRule,
    /// An AOS-checked machine executed the faulted stream without an
    /// extra violation.
    DynamicMiss,
    /// An unprotected machine raised extra violations — it has no
    /// mechanism that should see these faults.
    UnexpectedDetection,
    /// An AOS-checked machine raised a different number of extra
    /// violations than the chain pins exactly (e.g. a probe that
    /// must hit mid-migration was charged as a miss).
    DeltaMismatch,
    /// The *clean* trace raised violations on some system.
    FalsePositive,
    /// The clean trace did not lint clean, so static expectations
    /// cannot be trusted for this workload.
    DirtyCleanLint,
    /// A cross-paper policy's verdict contradicts the chain's pinned
    /// per-policy rule split (a pinned rule stayed silent, or a rule
    /// outside the pinned set fired beyond its clean-trace count).
    PolicyDisagreement,
}

impl FindingKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::StaticDisagreement => "static-disagreement",
            FindingKind::MissingRule => "missing-rule",
            FindingKind::DynamicMiss => "dynamic-miss",
            FindingKind::UnexpectedDetection => "unexpected-detection",
            FindingKind::DeltaMismatch => "delta-mismatch",
            FindingKind::FalsePositive => "false-positive",
            FindingKind::DirtyCleanLint => "dirty-clean-lint",
            FindingKind::PolicyDisagreement => "policy-disagreement",
        }
    }
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One oracle disagreement.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The scenario that produced it ([`crate::ScenarioSpec::id`]).
    pub scenario: String,
    /// The system the disagreement occurred on (`None` for static
    /// findings, which are system-independent).
    pub system: Option<SafetyConfig>,
    /// The disagreement class.
    pub kind: FindingKind,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.system {
            Some(system) => write!(
                f,
                "[{}] {} on {system}: {}",
                self.scenario, self.kind, self.detail
            ),
            None => write!(f, "[{}] {}: {}", self.scenario, self.kind, self.detail),
        }
    }
}

/// The dynamic oracle's measurement on one system.
#[derive(Debug, Clone, Copy)]
pub struct SystemVerdict {
    /// The system the faulted stream ran on.
    pub system: SafetyConfig,
    /// Violations the clean trace raised on this system.
    pub clean_violations: u64,
    /// Violations the faulted stream raised on this system.
    pub faulty_violations: u64,
}

impl SystemVerdict {
    /// Extra violations the scenario added.
    pub fn delta(&self) -> u64 {
        self.faulty_violations.saturating_sub(self.clean_violations)
    }
}

/// Clean-trace measurements shared by every scenario of a campaign:
/// one machine run per system plus one four-policy [`MatrixScan`],
/// all against the unmodified generated trace. Measuring this once
/// per `(workload, scale)` instead of once per trial keeps a
/// budget-`B` campaign at `B × (5 machine runs + 1 matrix scan)`
/// instead of twice that.
#[derive(Debug, Clone)]
pub struct CleanBaseline {
    /// Clean violations per system, in [`SafetyConfig::ALL`] order.
    pub violations: Vec<(SafetyConfig, u64)>,
    /// Diagnostics the clean trace raises in the AOS linter (expected
    /// 0; anything else poisons static expectations). Always equals
    /// the AOS row of `policy_rule_counts` — kept separate because it
    /// is the pre-framework wire field.
    pub lint_diagnostics: u64,
    /// Per-policy per-rule counts on the clean trace, in
    /// [`Policy::ALL`] order. Faulted-stream verdicts are judged on
    /// the *delta* against this row, so a policy with inherent
    /// clean-trace noise cannot fake (or mask) a detection.
    pub policy_rule_counts: Vec<Vec<u64>>,
}

impl CleanBaseline {
    /// Measures the clean trace for `(profile, scale)` on all five
    /// systems and all four static policies.
    pub fn measure(profile: &WorkloadProfile, scale: f64) -> CleanBaseline {
        let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, scale);
        let violations = SafetyConfig::ALL
            .into_iter()
            .map(|system| {
                let sut = SystemUnderTest::scaled(system, scale);
                let result = Machine::new(sut.machine_config()).run(stream());
                (system, result.violations)
            })
            .collect();
        let reports = MatrixScan::run(
            &Policy::ALL,
            stream(),
            PointerLayout::default(),
            &Telemetry::disabled(),
        );
        let lint_diagnostics = reports[0].total_diagnostics();
        CleanBaseline {
            violations,
            lint_diagnostics,
            policy_rule_counts: reports.into_iter().map(|r| r.rule_counts).collect(),
        }
    }

    fn clean_violations(&self, system: SafetyConfig) -> u64 {
        self.violations
            .iter()
            .find(|(s, _)| *s == system)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// One static policy's verdict on a faulted stream.
#[derive(Debug, Clone)]
pub struct PolicyVerdict {
    /// The policy that scanned.
    pub policy: Policy,
    /// Total diagnostics on the faulted stream.
    pub diagnostics: u64,
    /// Wire names of the rules that fired, in taxonomy order.
    pub rules: Vec<&'static str>,
}

/// Everything the harness measured for one scenario.
#[derive(Debug, Clone)]
pub struct DifferentialOutcome {
    /// The scenario id.
    pub scenario: String,
    /// Step names in chain order (dropped steps excluded).
    pub steps: Vec<&'static str>,
    /// Total diagnostics the AOS linter raised on the faulted stream.
    pub lint_diagnostics: u64,
    /// The AOS rules that fired, in taxonomy order.
    pub lint_rules: Vec<Rule>,
    /// Every static policy's verdict, in [`Policy::ALL`] order (the
    /// AOS entry restates `lint_diagnostics`/`lint_rules`).
    pub policies: Vec<PolicyVerdict>,
    /// Per-system dynamic measurements, in [`SafetyConfig::ALL`]
    /// order.
    pub systems: Vec<SystemVerdict>,
    /// Oracle disagreements (empty when the scenario behaved exactly
    /// as pinned).
    pub findings: Vec<Finding>,
}

impl DifferentialOutcome {
    /// Whether this scenario produced at least one finding.
    pub fn is_finding(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// Replays `plan` through both oracles on all five systems and
/// classifies every disagreement with its pinned expectations.
pub fn run_scenario(
    profile: &WorkloadProfile,
    scale: f64,
    plan: &ScenarioPlan,
    baseline: &CleanBaseline,
) -> DifferentialOutcome {
    let scenario = plan.spec.id();
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, scale);
    let layout = PointerLayout::default();
    let mut findings = Vec::new();

    if baseline.lint_diagnostics > 0 {
        findings.push(Finding {
            scenario: scenario.clone(),
            system: None,
            kind: FindingKind::DirtyCleanLint,
            detail: format!(
                "clean trace raised {} lint diagnostics",
                baseline.lint_diagnostics
            ),
        });
    }

    // Static oracles: one matrix pass over the faulted stream drives
    // all four policies. The AOS report is the Linter's own output
    // (bit-identical to the pre-framework lint_stream pass).
    let policy_reports = MatrixScan::run(
        &Policy::ALL,
        plan.apply(stream()),
        layout,
        &Telemetry::disabled(),
    );
    let report = &policy_reports[0];
    let lint_rules = report.aos_rules_fired();
    let all_pinned = plan.steps.iter().all(|s| s.static_pinned);
    match plan.expected_static() {
        Some(true) => {
            let expected = plan.expected_rules();
            for rule in &expected {
                if report.count(*rule as usize) == 0 {
                    findings.push(Finding {
                        scenario: scenario.clone(),
                        system: None,
                        kind: FindingKind::MissingRule,
                        detail: format!("pinned rule '{}' did not fire", rule.name()),
                    });
                }
            }
            if all_pinned && lint_rules != expected {
                let fired: Vec<&str> = lint_rules.iter().map(|r| r.name()).collect();
                let pinned: Vec<&str> = expected.iter().map(|r| r.name()).collect();
                findings.push(Finding {
                    scenario: scenario.clone(),
                    system: None,
                    kind: FindingKind::StaticDisagreement,
                    detail: format!("fired {fired:?}, pinned exactly {pinned:?}"),
                });
            }
        }
        // Every step is pinned dynamic-only: the faulted stream must
        // lint exactly as clean as the trace itself.
        Some(false) if report.total_diagnostics() != baseline.lint_diagnostics => {
            let fired: Vec<&str> = lint_rules.iter().map(|r| r.name()).collect();
            findings.push(Finding {
                scenario: scenario.clone(),
                system: None,
                kind: FindingKind::StaticDisagreement,
                detail: format!(
                    "dynamic-only chain raised {} diagnostics ({fired:?})",
                    report.total_diagnostics()
                ),
            });
        }
        Some(false) => {}
        None => {} // a collision unpinned the static side; nothing to hold it to
    }

    // Cross-paper policies: each non-AOS column is held to the
    // chain's pinned per-policy rule split, measured as a delta over
    // the clean baseline. Only fully pinned chains are judged — a
    // collision-unpinned tamper/forge step makes every policy's
    // verdict legitimately input-dependent, exactly as it does for
    // the AOS column above.
    if all_pinned {
        for (p, policy_report) in policy_reports.iter().enumerate().skip(1) {
            let policy = policy_report.policy;
            let expected = plan.expected_policy_rules(policy);
            for (ri, info) in policy.rules().iter().enumerate() {
                let clean = baseline.policy_rule_counts[p][ri];
                let delta = policy_report.rule_counts[ri].saturating_sub(clean);
                let pinned = expected.contains(&info.name);
                if pinned && delta == 0 {
                    findings.push(Finding {
                        scenario: scenario.clone(),
                        system: None,
                        kind: FindingKind::PolicyDisagreement,
                        detail: format!("{policy}: pinned rule '{}' did not fire", info.name),
                    });
                } else if !pinned && delta > 0 {
                    findings.push(Finding {
                        scenario: scenario.clone(),
                        system: None,
                        kind: FindingKind::PolicyDisagreement,
                        detail: format!(
                            "{policy}: unpinned rule '{}' fired {delta} time(s) over baseline",
                            info.name
                        ),
                    });
                }
            }
        }
    }

    // Dynamic oracle: the faulted stream on every system.
    let exact_delta = plan.expected_exact_delta();
    let expect_detection = !plan.steps.is_empty();
    let mut systems = Vec::with_capacity(SafetyConfig::ALL.len());
    for system in SafetyConfig::ALL {
        let sut = SystemUnderTest::scaled(system, scale);
        let result = Machine::new(sut.machine_config()).run(plan.apply(stream()));
        let verdict = SystemVerdict {
            system,
            clean_violations: baseline.clean_violations(system),
            faulty_violations: result.violations,
        };
        if verdict.clean_violations > 0 {
            findings.push(Finding {
                scenario: scenario.clone(),
                system: Some(system),
                kind: FindingKind::FalsePositive,
                detail: format!(
                    "clean trace raised {} violations",
                    verdict.clean_violations
                ),
            });
        }
        let delta = verdict.delta();
        if system.uses_aos() {
            if expect_detection && delta == 0 {
                findings.push(Finding {
                    scenario: scenario.clone(),
                    system: Some(system),
                    kind: FindingKind::DynamicMiss,
                    detail: "faulted stream added no violations".to_string(),
                });
            } else if let Some(pinned) = exact_delta {
                if delta != pinned {
                    findings.push(Finding {
                        scenario: scenario.clone(),
                        system: Some(system),
                        kind: FindingKind::DeltaMismatch,
                        detail: format!("added {delta} violations, pinned exactly {pinned}"),
                    });
                }
            }
        } else if delta != 0 {
            findings.push(Finding {
                scenario: scenario.clone(),
                system: Some(system),
                kind: FindingKind::UnexpectedDetection,
                detail: format!("unprotected machine added {delta} violations"),
            });
        }
        systems.push(verdict);
    }

    DifferentialOutcome {
        scenario,
        steps: plan.steps.iter().map(|s| s.kind.name()).collect(),
        lint_diagnostics: report.total_diagnostics(),
        lint_rules,
        policies: policy_reports.iter().map(policy_verdict).collect(),
        systems,
        findings,
    }
}

/// Collapses one policy's report into the wire verdict.
fn policy_verdict(report: &PolicyReport) -> PolicyVerdict {
    PolicyVerdict {
        policy: report.policy,
        diagnostics: report.total_diagnostics(),
        rules: report.rule_names_fired(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::CompositeKind;
    use crate::scenario::{plan_scenario, ScenarioSpec, StepKind};
    use aos_workloads::profile::by_name;

    const SCALE: f64 = 0.004;

    #[test]
    fn every_composite_chain_is_clean_of_findings() {
        let profile = by_name("mcf").expect("mcf profile exists");
        let baseline = CleanBaseline::measure(profile, SCALE);
        assert_eq!(baseline.lint_diagnostics, 0, "clean trace must lint clean");
        let trace = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
        for kind in CompositeKind::ALL {
            let spec = ScenarioSpec {
                seed: 11,
                steps: vec![StepKind::Composite(kind)],
            };
            let plan = plan_scenario(&spec, trace, PointerLayout::default()).expect("plan");
            let outcome = run_scenario(profile, SCALE, &plan, &baseline);
            assert!(
                !outcome.is_finding(),
                "{kind}: unexpected findings {:?}",
                outcome.findings
            );
            let aos = outcome
                .systems
                .iter()
                .find(|v| v.system == SafetyConfig::Aos)
                .expect("aos verdict");
            assert_eq!(
                Some(aos.delta()),
                kind.expectation().exact_delta,
                "{kind} delta"
            );
        }
    }

    #[test]
    fn a_deliberately_mispinned_chain_is_flagged() {
        // Sanity-check the harness itself: run a statically
        // detectable chain but lie about the expected class by
        // linting a *clean* stream against the plan's expectations.
        let profile = by_name("mcf").expect("mcf profile exists");
        let baseline = CleanBaseline::measure(profile, SCALE);
        let trace = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
        let spec = ScenarioSpec {
            seed: 5,
            steps: vec![StepKind::Composite(CompositeKind::DanglingResign)],
        };
        let mut plan = plan_scenario(&spec, trace, PointerLayout::default()).expect("plan");
        // Drop the edits: the "faulted" stream is now the clean trace,
        // so the pinned rule cannot fire and AOS cannot detect.
        plan.edits.clear();
        let outcome = run_scenario(profile, SCALE, &plan, &baseline);
        let kinds: Vec<FindingKind> = outcome.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::MissingRule), "{kinds:?}");
        assert!(kinds.contains(&FindingKind::DynamicMiss), "{kinds:?}");
        // The cross-policy oracle must catch the same lie: CryptSan's
        // pinned revoked-key cannot fire on the clean trace either.
        assert!(kinds.contains(&FindingKind::PolicyDisagreement), "{kinds:?}");
    }

    #[test]
    fn policy_verdicts_split_exactly_as_the_matrix_pins() {
        let profile = by_name("mcf").expect("mcf profile exists");
        let baseline = CleanBaseline::measure(profile, SCALE);
        assert_eq!(baseline.policy_rule_counts.len(), Policy::ALL.len());
        assert!(
            baseline.policy_rule_counts.iter().all(|row| row.iter().sum::<u64>() == 0),
            "clean trace must be clean under every policy"
        );
        let trace = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
        let spec = ScenarioSpec {
            seed: 23,
            steps: vec![StepKind::Composite(CompositeKind::DanglingResign)],
        };
        let plan = plan_scenario(&spec, trace, PointerLayout::default()).expect("plan");
        let outcome = run_scenario(profile, SCALE, &plan, &baseline);
        assert!(!outcome.is_finding(), "{:?}", outcome.findings);
        let verdict = |p: Policy| {
            outcome
                .policies
                .iter()
                .find(|v| v.policy == p)
                .expect("verdict per policy")
        };
        // AOS and CryptSan see the dangling pointer; PACSan's re-seal
        // laundering and PACTight's liveness-blindness miss it.
        assert_eq!(verdict(Policy::Aos).rules, vec!["access-after-clear"]);
        assert_eq!(verdict(Policy::Aos).diagnostics, outcome.lint_diagnostics);
        assert_eq!(verdict(Policy::CryptSan).rules, vec!["revoked-key"]);
        assert_eq!(verdict(Policy::PacSan).diagnostics, 0);
        assert_eq!(verdict(Policy::PacTight).diagnostics, 0);
    }
}
