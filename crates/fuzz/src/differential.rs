//! The differential harness: replays one planned scenario through
//! both oracles — `aos-lint` (static) and the machine-model fault
//! oracle (dynamic) — on all five systems, and flags any verdict
//! that falls outside the scenario's pinned expectation split.
//!
//! The harness never decides *which* oracle is right. A
//! [`Finding`] means the static verdict, the dynamic verdict, and
//! the pinned expectation do not triangulate — a bug in the linter,
//! in the machine model, or in the primitive's own pinning, and in
//! every case worth banking as a regression input.

use aos_core::experiment::SystemUnderTest;
use aos_isa::SafetyConfig;
use aos_lint::{lint_stream, Rule};
use aos_ptrauth::PointerLayout;
use aos_sim::Machine;
use aos_workloads::{TraceGenerator, WorkloadProfile};

use crate::scenario::ScenarioPlan;

/// Why a scenario was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// The linter's verdict contradicts the pinned static class
    /// (flagged a pinned dynamic-only chain, or fired rules outside
    /// a fully pinned chain's expected set).
    StaticDisagreement,
    /// A pinned rule did not fire on a statically detectable chain.
    MissingRule,
    /// An AOS-checked machine executed the faulted stream without an
    /// extra violation.
    DynamicMiss,
    /// An unprotected machine raised extra violations — it has no
    /// mechanism that should see these faults.
    UnexpectedDetection,
    /// An AOS-checked machine raised a different number of extra
    /// violations than the chain pins exactly (e.g. a probe that
    /// must hit mid-migration was charged as a miss).
    DeltaMismatch,
    /// The *clean* trace raised violations on some system.
    FalsePositive,
    /// The clean trace did not lint clean, so static expectations
    /// cannot be trusted for this workload.
    DirtyCleanLint,
}

impl FindingKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            FindingKind::StaticDisagreement => "static-disagreement",
            FindingKind::MissingRule => "missing-rule",
            FindingKind::DynamicMiss => "dynamic-miss",
            FindingKind::UnexpectedDetection => "unexpected-detection",
            FindingKind::DeltaMismatch => "delta-mismatch",
            FindingKind::FalsePositive => "false-positive",
            FindingKind::DirtyCleanLint => "dirty-clean-lint",
        }
    }
}

impl std::fmt::Display for FindingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One oracle disagreement.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The scenario that produced it ([`crate::ScenarioSpec::id`]).
    pub scenario: String,
    /// The system the disagreement occurred on (`None` for static
    /// findings, which are system-independent).
    pub system: Option<SafetyConfig>,
    /// The disagreement class.
    pub kind: FindingKind,
    /// Human-readable evidence.
    pub detail: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.system {
            Some(system) => write!(
                f,
                "[{}] {} on {system}: {}",
                self.scenario, self.kind, self.detail
            ),
            None => write!(f, "[{}] {}: {}", self.scenario, self.kind, self.detail),
        }
    }
}

/// The dynamic oracle's measurement on one system.
#[derive(Debug, Clone, Copy)]
pub struct SystemVerdict {
    /// The system the faulted stream ran on.
    pub system: SafetyConfig,
    /// Violations the clean trace raised on this system.
    pub clean_violations: u64,
    /// Violations the faulted stream raised on this system.
    pub faulty_violations: u64,
}

impl SystemVerdict {
    /// Extra violations the scenario added.
    pub fn delta(&self) -> u64 {
        self.faulty_violations.saturating_sub(self.clean_violations)
    }
}

/// Clean-trace measurements shared by every scenario of a campaign:
/// one machine run per system plus one lint pass, all against the
/// unmodified generated trace. Measuring this once per `(workload,
/// scale)` instead of once per trial keeps a budget-`B` campaign at
/// `B × (5 machine runs + 1 lint)` instead of twice that.
#[derive(Debug, Clone)]
pub struct CleanBaseline {
    /// Clean violations per system, in [`SafetyConfig::ALL`] order.
    pub violations: Vec<(SafetyConfig, u64)>,
    /// Diagnostics the clean trace raises in the linter (expected 0;
    /// anything else poisons static expectations).
    pub lint_diagnostics: u64,
}

impl CleanBaseline {
    /// Measures the clean trace for `(profile, scale)` on all five
    /// systems.
    pub fn measure(profile: &WorkloadProfile, scale: f64) -> CleanBaseline {
        let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, scale);
        let violations = SafetyConfig::ALL
            .into_iter()
            .map(|system| {
                let sut = SystemUnderTest::scaled(system, scale);
                let result = Machine::new(sut.machine_config()).run(stream());
                (system, result.violations)
            })
            .collect();
        let lint_diagnostics =
            lint_stream(stream(), PointerLayout::default()).total_diagnostics();
        CleanBaseline {
            violations,
            lint_diagnostics,
        }
    }

    fn clean_violations(&self, system: SafetyConfig) -> u64 {
        self.violations
            .iter()
            .find(|(s, _)| *s == system)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }
}

/// Everything the harness measured for one scenario.
#[derive(Debug, Clone)]
pub struct DifferentialOutcome {
    /// The scenario id.
    pub scenario: String,
    /// Step names in chain order (dropped steps excluded).
    pub steps: Vec<&'static str>,
    /// Total diagnostics the linter raised on the faulted stream.
    pub lint_diagnostics: u64,
    /// The rules that fired, in taxonomy order.
    pub lint_rules: Vec<Rule>,
    /// Per-system dynamic measurements, in [`SafetyConfig::ALL`]
    /// order.
    pub systems: Vec<SystemVerdict>,
    /// Oracle disagreements (empty when the scenario behaved exactly
    /// as pinned).
    pub findings: Vec<Finding>,
}

impl DifferentialOutcome {
    /// Whether this scenario produced at least one finding.
    pub fn is_finding(&self) -> bool {
        !self.findings.is_empty()
    }
}

/// Replays `plan` through both oracles on all five systems and
/// classifies every disagreement with its pinned expectations.
pub fn run_scenario(
    profile: &WorkloadProfile,
    scale: f64,
    plan: &ScenarioPlan,
    baseline: &CleanBaseline,
) -> DifferentialOutcome {
    let scenario = plan.spec.id();
    let stream = || TraceGenerator::new(profile, SafetyConfig::Aos, scale);
    let layout = PointerLayout::default();
    let mut findings = Vec::new();

    if baseline.lint_diagnostics > 0 {
        findings.push(Finding {
            scenario: scenario.clone(),
            system: None,
            kind: FindingKind::DirtyCleanLint,
            detail: format!(
                "clean trace raised {} lint diagnostics",
                baseline.lint_diagnostics
            ),
        });
    }

    // Static oracle: one lint pass over the faulted stream.
    let report = lint_stream(plan.apply(stream()), layout);
    let lint_rules = report.rules_fired();
    let all_pinned = plan.steps.iter().all(|s| s.static_pinned);
    match plan.expected_static() {
        Some(true) => {
            let expected = plan.expected_rules();
            for rule in &expected {
                if report.count(*rule) == 0 {
                    findings.push(Finding {
                        scenario: scenario.clone(),
                        system: None,
                        kind: FindingKind::MissingRule,
                        detail: format!("pinned rule '{}' did not fire", rule.name()),
                    });
                }
            }
            if all_pinned && lint_rules != expected {
                let fired: Vec<&str> = lint_rules.iter().map(|r| r.name()).collect();
                let pinned: Vec<&str> = expected.iter().map(|r| r.name()).collect();
                findings.push(Finding {
                    scenario: scenario.clone(),
                    system: None,
                    kind: FindingKind::StaticDisagreement,
                    detail: format!("fired {fired:?}, pinned exactly {pinned:?}"),
                });
            }
        }
        // Every step is pinned dynamic-only: the faulted stream must
        // lint exactly as clean as the trace itself.
        Some(false) if report.total_diagnostics() != baseline.lint_diagnostics => {
            let fired: Vec<&str> = lint_rules.iter().map(|r| r.name()).collect();
            findings.push(Finding {
                scenario: scenario.clone(),
                system: None,
                kind: FindingKind::StaticDisagreement,
                detail: format!(
                    "dynamic-only chain raised {} diagnostics ({fired:?})",
                    report.total_diagnostics()
                ),
            });
        }
        Some(false) => {}
        None => {} // a collision unpinned the static side; nothing to hold it to
    }

    // Dynamic oracle: the faulted stream on every system.
    let exact_delta = plan.expected_exact_delta();
    let expect_detection = !plan.steps.is_empty();
    let mut systems = Vec::with_capacity(SafetyConfig::ALL.len());
    for system in SafetyConfig::ALL {
        let sut = SystemUnderTest::scaled(system, scale);
        let result = Machine::new(sut.machine_config()).run(plan.apply(stream()));
        let verdict = SystemVerdict {
            system,
            clean_violations: baseline.clean_violations(system),
            faulty_violations: result.violations,
        };
        if verdict.clean_violations > 0 {
            findings.push(Finding {
                scenario: scenario.clone(),
                system: Some(system),
                kind: FindingKind::FalsePositive,
                detail: format!(
                    "clean trace raised {} violations",
                    verdict.clean_violations
                ),
            });
        }
        let delta = verdict.delta();
        if system.uses_aos() {
            if expect_detection && delta == 0 {
                findings.push(Finding {
                    scenario: scenario.clone(),
                    system: Some(system),
                    kind: FindingKind::DynamicMiss,
                    detail: "faulted stream added no violations".to_string(),
                });
            } else if let Some(pinned) = exact_delta {
                if delta != pinned {
                    findings.push(Finding {
                        scenario: scenario.clone(),
                        system: Some(system),
                        kind: FindingKind::DeltaMismatch,
                        detail: format!("added {delta} violations, pinned exactly {pinned}"),
                    });
                }
            }
        } else if delta != 0 {
            findings.push(Finding {
                scenario: scenario.clone(),
                system: Some(system),
                kind: FindingKind::UnexpectedDetection,
                detail: format!("unprotected machine added {delta} violations"),
            });
        }
        systems.push(verdict);
    }

    DifferentialOutcome {
        scenario,
        steps: plan.steps.iter().map(|s| s.kind.name()).collect(),
        lint_diagnostics: report.total_diagnostics(),
        lint_rules,
        systems,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primitive::CompositeKind;
    use crate::scenario::{plan_scenario, ScenarioSpec, StepKind};
    use aos_workloads::profile::by_name;

    const SCALE: f64 = 0.004;

    #[test]
    fn every_composite_chain_is_clean_of_findings() {
        let profile = by_name("mcf").expect("mcf profile exists");
        let baseline = CleanBaseline::measure(profile, SCALE);
        assert_eq!(baseline.lint_diagnostics, 0, "clean trace must lint clean");
        let trace = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
        for kind in CompositeKind::ALL {
            let spec = ScenarioSpec {
                seed: 11,
                steps: vec![StepKind::Composite(kind)],
            };
            let plan = plan_scenario(&spec, trace, PointerLayout::default()).expect("plan");
            let outcome = run_scenario(profile, SCALE, &plan, &baseline);
            assert!(
                !outcome.is_finding(),
                "{kind}: unexpected findings {:?}",
                outcome.findings
            );
            let aos = outcome
                .systems
                .iter()
                .find(|v| v.system == SafetyConfig::Aos)
                .expect("aos verdict");
            assert_eq!(
                Some(aos.delta()),
                kind.expectation().exact_delta,
                "{kind} delta"
            );
        }
    }

    #[test]
    fn a_deliberately_mispinned_chain_is_flagged() {
        // Sanity-check the harness itself: run a statically
        // detectable chain but lie about the expected class by
        // linting a *clean* stream against the plan's expectations.
        let profile = by_name("mcf").expect("mcf profile exists");
        let baseline = CleanBaseline::measure(profile, SCALE);
        let trace = || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE);
        let spec = ScenarioSpec {
            seed: 5,
            steps: vec![StepKind::Composite(CompositeKind::DanglingResign)],
        };
        let mut plan = plan_scenario(&spec, trace, PointerLayout::default()).expect("plan");
        // Drop the edits: the "faulted" stream is now the clean trace,
        // so the pinned rule cannot fire and AOS cannot detect.
        plan.edits.clear();
        let outcome = run_scenario(profile, SCALE, &plan, &baseline);
        let kinds: Vec<FindingKind> = outcome.findings.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FindingKind::MissingRule), "{kinds:?}");
        assert!(kinds.contains(&FindingKind::DynamicMiss), "{kinds:?}");
    }
}
