//! Campaign coverage: which step kinds, policy rules, and dynamic
//! verdicts a fuzzing run has exercised.
//!
//! A [`CoverageMap`] is a set of *coverage points* — short canonical
//! strings like `step:heap-spray`, `rule:cryptsan:revoked-key`, or
//! `dyn:AOS:detected` — stored as FNV-1a 64 fingerprints in a sorted
//! set. The map is what makes the engine's `--coverage-guided` mode
//! work: a scenario that lights a point no earlier scenario lit is
//! *interesting*, and interesting chains get mutation priority over
//! fresh uniform draws.
//!
//! Two invariants the tests pin:
//!
//! - **Determinism** — the same outcomes observed in any order
//!   produce the same [`fingerprint`](CoverageMap::fingerprint)
//!   (points are hashed individually and the set is sorted);
//! - **Monotonicity** — [`merge`](CoverageMap::merge) is a set union:
//!   points are never lost, and the merged fingerprint depends only
//!   on the union.

use std::collections::BTreeSet;

use crate::differential::DifferentialOutcome;

/// FNV-1a 64 offset basis.
pub(crate) const fn fnv1a64_init() -> u64 {
    0xcbf2_9ce4_8422_2325
}

/// One FNV-1a 64 round over `bytes`, continuing from `hash`.
pub(crate) fn fnv1a64(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The set of coverage points a campaign has reached.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoverageMap {
    points: BTreeSet<u64>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Adds one named point; `true` if it was new.
    pub fn insert(&mut self, point: &str) -> bool {
        self.points.insert(fnv1a64(fnv1a64_init(), point.as_bytes()))
    }

    /// Whether a named point has been reached.
    pub fn covers(&self, point: &str) -> bool {
        self.points
            .contains(&fnv1a64(fnv1a64_init(), point.as_bytes()))
    }

    /// Distinct points reached.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Folds one differential outcome into the map, returning how
    /// many of its points were new. The points are:
    ///
    /// - `step:<kind>` per planned step;
    /// - `rule:<policy>:<rule>` per static rule a policy fired;
    /// - `dyn:<system>:<detected|missed>` per dynamic verdict
    ///   (detected = the faulted stream added violations).
    pub fn observe(&mut self, outcome: &DifferentialOutcome) -> usize {
        let mut fresh = 0;
        for step in &outcome.steps {
            fresh += usize::from(self.insert(&format!("step:{step}")));
        }
        for verdict in &outcome.policies {
            for rule in &verdict.rules {
                fresh += usize::from(
                    self.insert(&format!("rule:{}:{rule}", verdict.policy.name())),
                );
            }
        }
        for verdict in &outcome.systems {
            let label = if verdict.delta() > 0 { "detected" } else { "missed" };
            fresh += usize::from(self.insert(&format!("dyn:{}:{label}", verdict.system)));
        }
        fresh
    }

    /// Set-union with another map, returning how many points were new
    /// to `self`. Monotone: no point present in either map is lost.
    pub fn merge(&mut self, other: &CoverageMap) -> usize {
        let before = self.points.len();
        self.points.extend(other.points.iter().copied());
        self.points.len() - before
    }

    /// Order-independent FNV-1a 64 fingerprint of the reached set.
    /// Equal iff the two maps cover exactly the same points.
    pub fn fingerprint(&self) -> u64 {
        let mut hash = fnv1a64_init();
        for point in &self.points {
            hash = fnv1a64(hash, &point.to_le_bytes());
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insertion_order_does_not_change_the_fingerprint() {
        let mut a = CoverageMap::new();
        let mut b = CoverageMap::new();
        for p in ["step:uaf", "rule:aos:access-after-clear", "dyn:AOS:detected"] {
            assert!(a.insert(p));
        }
        for p in ["dyn:AOS:detected", "step:uaf", "rule:aos:access-after-clear"] {
            assert!(b.insert(p));
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.len(), 3);
        assert!(a.covers("step:uaf"));
        assert!(!a.covers("step:double-free"));
    }

    #[test]
    fn duplicate_points_are_not_new() {
        let mut map = CoverageMap::new();
        assert!(map.insert("step:heap-spray"));
        assert!(!map.insert("step:heap-spray"));
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn merge_is_a_monotone_union() {
        let mut a = CoverageMap::new();
        a.insert("step:uaf");
        a.insert("dyn:Baseline:missed");
        let mut b = CoverageMap::new();
        b.insert("step:uaf");
        b.insert("rule:pactight:forged-pointer");
        let mut union = a.clone();
        assert_eq!(union.merge(&b), 1, "only the rule point is new");
        assert_eq!(union.len(), 3);
        for p in [&a, &b] {
            let mut again = union.clone();
            assert_eq!(again.merge(p), 0, "union already covers both inputs");
            assert_eq!(again.fingerprint(), union.fingerprint());
        }
        // Union fingerprint is order-independent too.
        let mut other = b.clone();
        other.merge(&a);
        assert_eq!(other.fingerprint(), union.fingerprint());
    }
}
