//! Seeded attack scenarios: compositions of base injector faults and
//! composite primitives, planned into concrete stream edits.
//!
//! A [`ScenarioSpec`] is pure data — `(seed, steps)` — and planning
//! one against a workload trace is a pure function: the same spec
//! against the same `(workload, scale)` yields bit-identical edits,
//! which is what lets finding corpora replay exactly and report
//! digests pin across runs.
//!
//! Planning walks the clean trace twice: once through
//! [`PreScan`] (length + signed-PAC census, shared by every
//! composite step), then once per base-injector step through
//! [`plan_fault`]'s own `O(window)` scan. Every step's edit is
//! expressed in *original* trace indices, so the whole chain applies
//! in one [`SpliceMany`](aos_isa::stream::SpliceMany) pass.

use aos_fault::campaign::{expected_lint_rules, expected_policy_rules, LintClass};
use aos_fault::{plan_fault, FaultAction, FaultKind, FaultSpec};
use aos_lint::Policy;
use aos_isa::stream::{Splice, SpliceMany};
use aos_isa::Op;
use aos_ptrauth::PointerLayout;
use aos_util::rng::Xoshiro256StarStar;
use aos_util::AosError;

use crate::primitive::{
    plan_composite, CompositeKind, Expectation, PreScan, REGION_STRIDE, SYNTHETIC_REGION,
};

/// One step of an attack chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// One of the six seeded base injectors.
    Base(FaultKind),
    /// One of the five composite primitives.
    Composite(CompositeKind),
}

impl StepKind {
    /// Every step kind the engine can draw, base kinds first.
    pub const COUNT: usize = FaultKind::ALL.len() + CompositeKind::ALL.len();

    /// All step kinds in wire order.
    pub fn all() -> impl Iterator<Item = StepKind> {
        FaultKind::ALL
            .into_iter()
            .map(StepKind::Base)
            .chain(CompositeKind::ALL.into_iter().map(StepKind::Composite))
    }

    /// Stable wire name (the base injectors' names are reused as-is).
    pub fn name(self) -> &'static str {
        match self {
            StepKind::Base(kind) => kind.name(),
            StepKind::Composite(kind) => kind.name(),
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<StepKind> {
        FaultKind::parse(name)
            .ok()
            .map(StepKind::Base)
            .or_else(|| CompositeKind::parse(name).map(StepKind::Composite))
    }

    /// The step's pinned expectation, before any per-instance
    /// adjustment (a tampered PAC that happens to collide with a
    /// signed key unpins the static side; see
    /// [`PlannedStep::expectation`]).
    pub fn expectation(self) -> Expectation {
        match self {
            StepKind::Base(kind) => Expectation {
                static_class: LintClass::expected_for(kind),
                rules: expected_lint_rules(kind),
                // Base anchors live in the workload trace; their
                // exact violation arithmetic is the trace's business,
                // so chains containing them pin only `delta >= 1`.
                exact_delta: None,
            },
            StepKind::Composite(kind) => kind.expectation(),
        }
    }

    /// The rules `policy` is pinned to fire on this step: the base
    /// injectors' cross-paper table lives in
    /// [`aos_fault::campaign::expected_policy_rules`], the composites'
    /// in [`CompositeKind::policy_rules`].
    pub fn policy_rules(self, policy: Policy) -> &'static [&'static str] {
        match self {
            StepKind::Base(kind) => expected_policy_rules(policy, kind),
            StepKind::Composite(kind) => kind.policy_rules(policy),
        }
    }
}

impl std::fmt::Display for StepKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded attack chain, before planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Master seed; each step forks its own deterministic stream.
    pub seed: u64,
    /// The chain, in splice-priority order (on a site collision the
    /// earlier step wins and the later one is dropped).
    pub steps: Vec<StepKind>,
}

impl ScenarioSpec {
    /// A stable identifier: `s<seed>-<step>+<step>+...`.
    pub fn id(&self) -> String {
        let steps = self
            .steps
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join("+");
        format!("s{}-{steps}", self.seed)
    }
}

/// One planned step: what it spliced and what it is pinned to do.
#[derive(Debug, Clone)]
pub struct PlannedStep {
    /// The step kind.
    pub kind: StepKind,
    /// Where/what was planned, for reports.
    pub description: String,
    /// The step's expectation. `static_class` is `None`-like (see
    /// `static_pinned`) when a randomly forged PAC collided with a
    /// key the clean trace signs — the linter's verdict is then
    /// legitimately input-dependent and the harness must not pin it.
    pub expectation: Expectation,
    /// Whether the static side of `expectation` is pinned for this
    /// instance.
    pub static_pinned: bool,
}

/// A fully planned scenario: the edits to splice and the per-step
/// book-keeping the differential harness compares against.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    /// The spec this plan realizes.
    pub spec: ScenarioSpec,
    /// Stream edits in original-trace index space.
    pub edits: Vec<Splice>,
    /// The steps that made it into `edits`.
    pub steps: Vec<PlannedStep>,
    /// Steps dropped on a replace-site collision, with the reason.
    pub dropped: Vec<(StepKind, String)>,
}

impl ScenarioPlan {
    /// Applies the chain to a fresh clean stream.
    pub fn apply<I: Iterator<Item = Op>>(&self, stream: I) -> SpliceMany<I> {
        SpliceMany::new(stream, self.edits.clone())
    }

    /// Whether the chain must raise lint errors (some step is pinned
    /// statically detectable), must lint clean (every step is pinned
    /// dynamic-only), or is unpinned for this instance (`None`: a
    /// collision-unpinned step could flag or not).
    pub fn expected_static(&self) -> Option<bool> {
        let mut any_static = false;
        let mut all_pinned = true;
        for step in &self.steps {
            if !step.static_pinned {
                all_pinned = false;
                continue;
            }
            any_static |= step.expectation.static_class == LintClass::StaticallyDetectable;
        }
        if any_static {
            Some(true)
        } else if all_pinned {
            Some(false)
        } else {
            None
        }
    }

    /// The rules every pinned statically-detectable step must fire.
    pub fn expected_rules(&self) -> Vec<aos_lint::Rule> {
        let mut rules: Vec<aos_lint::Rule> = self
            .steps
            .iter()
            .filter(|s| s.static_pinned)
            .flat_map(|s| s.expectation.rules.iter().copied())
            .collect();
        rules.sort_by_key(|r| *r as usize);
        rules.dedup();
        rules
    }

    /// The rule wire-names the chain's pinned steps oblige `policy`
    /// to fire — the per-policy analogue of
    /// [`expected_rules`](ScenarioPlan::expected_rules), honoring the
    /// same collision unpinning (a step whose static side is unpinned
    /// contributes nothing).
    pub fn expected_policy_rules(&self, policy: Policy) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = self
            .steps
            .iter()
            .filter(|s| s.static_pinned)
            .flat_map(|s| s.kind.policy_rules(policy).iter().copied())
            .collect();
        rules.sort_unstable();
        rules.dedup();
        rules
    }

    /// The exact extra-violation count the chain pins on an AOS
    /// machine, when every step pins one.
    pub fn expected_exact_delta(&self) -> Option<u64> {
        self.steps
            .iter()
            .map(|s| s.expectation.exact_delta)
            .sum::<Option<u64>>()
    }
}

/// Golden-ratio step-seed derivation: spreads one master seed into
/// decorrelated per-step seeds without coupling step order to the
/// RNG draw sequence.
fn step_seed(master: u64, index: usize) -> u64 {
    master ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Plans `spec` against the clean trace produced by `trace` (a
/// factory so the planner can take the multiple passes it needs
/// without materializing anything).
///
/// # Errors
///
/// Fails when a base step cannot find an anchor in the trace (same
/// conditions as [`plan_fault`]); composite steps always plan.
pub fn plan_scenario<I, F>(
    spec: &ScenarioSpec,
    trace: F,
    layout: PointerLayout,
) -> Result<ScenarioPlan, AosError>
where
    I: Iterator<Item = Op>,
    F: Fn() -> I,
{
    let scan = PreScan::new(trace(), layout);
    let mut master = Xoshiro256StarStar::seed_from_u64(spec.seed);
    let mut pacs = scan.pac_allocator(&mut master);
    let mut edits: Vec<Splice> = Vec::with_capacity(spec.steps.len());
    let mut steps = Vec::with_capacity(spec.steps.len());
    let mut dropped = Vec::new();
    let mut replaced_sites: Vec<usize> = Vec::new();
    let mut composites = 0u64;
    for (index, &kind) in spec.steps.iter().enumerate() {
        let expectation = kind.expectation();
        let mut static_pinned = true;
        match kind {
            StepKind::Base(fault) => {
                let plan = plan_fault(
                    trace(),
                    layout,
                    FaultSpec {
                        kind: fault,
                        seed: step_seed(spec.seed, index),
                    },
                )?;
                let (site, splice) = match plan.action {
                    FaultAction::Insert(op) => (plan.site, Splice::insert(plan.site, vec![op])),
                    FaultAction::Replace(op) => {
                        if replaced_sites.contains(&plan.site) {
                            dropped.push((
                                kind,
                                format!(
                                    "replace site {} already claimed by an earlier step",
                                    plan.site
                                ),
                            ));
                            continue;
                        }
                        replaced_sites.push(plan.site);
                        // A tamper/forge that lands on a PAC the clean
                        // trace signs is legitimately ambiguous to the
                        // linter: unpin the static side.
                        if let Some(pointer) = op_pointer(&op) {
                            if scan.is_signed(layout.pac(pointer)) {
                                static_pinned = false;
                            }
                        }
                        (plan.site, Splice::replace(plan.site, vec![op]))
                    }
                };
                edits.push(splice);
                steps.push(PlannedStep {
                    kind,
                    description: format!("[op {site}] {}", plan.description),
                    expectation,
                    static_pinned,
                });
            }
            StepKind::Composite(composite) => {
                let mut rng = Xoshiro256StarStar::seed_from_u64(
                    step_seed(spec.seed, index) ^ composite.salt(),
                );
                let region = SYNTHETIC_REGION + composites * REGION_STRIDE;
                composites += 1;
                let plan = plan_composite(composite, region, &mut pacs, &mut rng, layout);
                // Land the block somewhere in the middle half of the
                // trace: far enough in that the machine is warm, far
                // enough from the end that a following step's insert
                // cannot starve it.
                let span = (scan.len / 2).max(1);
                let site = scan.len / 4 + (rng.next_range(span as u64) as usize);
                edits.push(Splice::insert(site, plan.ops));
                steps.push(PlannedStep {
                    kind,
                    description: format!("[op {site}] {}", plan.description),
                    expectation,
                    static_pinned,
                });
            }
        }
    }
    Ok(ScenarioPlan {
        spec: spec.clone(),
        edits,
        steps,
        dropped,
    })
}

/// The pointer operand of an access op, if any.
fn op_pointer(op: &Op) -> Option<u64> {
    match *op {
        Op::Load { pointer, .. }
        | Op::Store { pointer, .. }
        | Op::Autm { pointer }
        | Op::Pacma { pointer, .. }
        | Op::BndStr { pointer, .. }
        | Op::BndClr { pointer } => Some(pointer),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_isa::SafetyConfig;
    use aos_workloads::{profile::by_name, TraceGenerator};

    const SCALE: f64 = 0.004;

    fn mcf_stream() -> impl Fn() -> TraceGenerator {
        let profile = by_name("mcf").expect("mcf profile exists");
        move || TraceGenerator::new(profile, SafetyConfig::Aos, SCALE)
    }

    #[test]
    fn step_names_roundtrip_and_are_distinct() {
        let names: Vec<&str> = StepKind::all().map(|s| s.name()).collect();
        assert_eq!(names.len(), StepKind::COUNT);
        for (i, name) in names.iter().enumerate() {
            assert_eq!(
                names.iter().position(|n| n == name),
                Some(i),
                "duplicate step name {name}"
            );
            assert_eq!(StepKind::parse(name).map(|s| s.name()), Some(*name));
        }
    }

    #[test]
    fn planning_is_deterministic() {
        let spec = ScenarioSpec {
            seed: 42,
            steps: vec![
                StepKind::Base(FaultKind::OverflowWrite),
                StepKind::Composite(CompositeKind::HeapSpray),
            ],
        };
        let trace = mcf_stream();
        let a = plan_scenario(&spec, &trace, PointerLayout::default()).expect("plan");
        let b = plan_scenario(&spec, &trace, PointerLayout::default()).expect("plan");
        assert_eq!(a.edits, b.edits);
        let ops_a: Vec<Op> = a.apply(trace()).collect();
        let ops_b: Vec<Op> = b.apply(trace()).collect();
        assert_eq!(ops_a, ops_b);
        assert_eq!(spec.id(), "s42-overflow+heap-spray");
    }

    #[test]
    fn chain_expectations_compose() {
        let spec = ScenarioSpec {
            seed: 3,
            steps: vec![
                StepKind::Composite(CompositeKind::HeapSpray),
                StepKind::Composite(CompositeKind::DanglingResign),
            ],
        };
        let trace = mcf_stream();
        let plan = plan_scenario(&spec, &trace, PointerLayout::default()).expect("plan");
        assert_eq!(plan.expected_static(), Some(true), "dangling-resign is static");
        assert_eq!(plan.expected_rules(), vec![aos_lint::Rule::AccessAfterClear]);
        assert_eq!(plan.expected_exact_delta(), Some(2), "one probe per primitive");
        assert!(plan.dropped.is_empty());
        // Cross-policy split: only CryptSan shares AOS's view of the
        // dangling re-sign; the spray is invisible to every policy.
        assert_eq!(plan.expected_policy_rules(Policy::CryptSan), vec!["revoked-key"]);
        assert!(plan.expected_policy_rules(Policy::PacSan).is_empty());
        assert!(plan.expected_policy_rules(Policy::PacTight).is_empty());
    }

    #[test]
    fn composite_sites_and_regions_do_not_collide() {
        let spec = ScenarioSpec {
            seed: 9,
            steps: CompositeKind::ALL
                .into_iter()
                .map(StepKind::Composite)
                .collect(),
        };
        let trace = mcf_stream();
        let plan = plan_scenario(&spec, &trace, PointerLayout::default()).expect("plan");
        assert_eq!(plan.steps.len(), 5);
        // Every composite is an insert; inserts never collide.
        assert!(plan.edits.iter().all(|e| !e.replace));
        assert!(plan.dropped.is_empty());
    }
}
