//! The composite attack primitives: multi-op exploitation building
//! blocks the six base injectors cannot express.
//!
//! Each primitive plans a *contiguous block* of synthetic ops that is
//! inserted into a clean trace at one site (via
//! [`aos_isa::stream::Splice`]). The block carries its own victim
//! allocations on PACs the clean trace never signs (established by
//! [`PreScan`]), so its static and dynamic behaviour is a pure
//! function of the block itself — independent of where in the trace
//! it lands and of which workload generated the surrounding ops.
//! That independence is what lets every primitive pin an exact
//! [`Expectation`]: its static lint class, the precise rules it
//! fires, and the exact number of extra dynamic violations it adds
//! on an AOS machine.
//!
//! Synthetic chunks live in an address region
//! ([`SYNTHETIC_REGION`]) disjoint from the generator's heap and
//! stack; because the HBT keys records by `(PAC, address)` and every
//! primitive owns its PACs exclusively, no record from the
//! surrounding trace can satisfy — or collide with — a primitive's
//! probes.

use aos_fault::{LintClass, UAF_DELAY_OPS};
use aos_isa::Op;
use aos_lint::{Policy, Rule};
use aos_ptrauth::{compute_ahc, PointerLayout};
use aos_util::rng::Xoshiro256StarStar;

/// Base of the synthetic victim-allocation region. Far below the
/// generator's heap (`0x3800_0000_0000`) and stack
/// (`0x3F00_0000_0000`) segments and comfortably inside the 46-bit
/// VA space.
pub const SYNTHETIC_REGION: u64 = 0x2000_0000_0000;

/// Address stride between consecutive composite instances inside one
/// scenario, so two primitives never share chunk addresses.
pub const REGION_STRIDE: u64 = 0x0100_0000;

/// Chunks a heap-spray primitive plants.
pub const SPRAY_CHUNKS: usize = 16;

/// Forged keys a PAC brute-force primitive probes (a seeded sample
/// of the 2^16 key space; every probe uses a distinct never-signed
/// PAC).
pub const BRUTE_FORCE_PROBES: usize = 48;

/// Same-PAC allocations a TOCTOU-resize primitive plants: enough to
/// overflow a one-way row three times over (8 bounds per way), so
/// the row forces repeated `try_begin_resize` doublings and the
/// probe lands while Fig. 10 gradual migration is in flight.
pub const TOCTOU_CHUNKS: usize = 128;

/// The five composite attack primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompositeKind {
    /// Plant many small well-formed allocations, then store one slot
    /// past the end of the first — the classic spray-then-overflow
    /// shape. Protocol-clean, so only the dynamic bounds check can
    /// see it.
    HeapSpray,
    /// Sweep loads through pointers forged with PACs no `pacma` ever
    /// produced — the §VII-C 1/2^16 forgery bound, probed many keys
    /// at a time. Every probe misses its (empty) HBT row *and* fires
    /// the static `unknown-pac` rule.
    PacBruteForce,
    /// Allocate a chunk in one AHC size class, then access one slot
    /// past its end with the AHC bits rewritten to a different class
    /// — Algorithm 1 confusion. The dynamic check catches the
    /// out-of-bounds address; the linter catches the class mismatch.
    AhcConfusion,
    /// The Fig. 7 temporal tail abused: free a chunk, re-sign the
    /// dangling pointer with size 0, then dereference it. The
    /// cleared row misses dynamically; statically it is an
    /// access-after-clear.
    DanglingResign,
    /// Overflow one PAC's row with same-key allocations until the
    /// table doubles its ways repeatedly, then — with Fig. 10
    /// gradual migration still in flight — probe the gap between two
    /// chunks (must be detected) and a live chunk (must still hit).
    /// Protocol-clean; a TOCTOU race against the resize machinery.
    ToctouResize,
}

impl CompositeKind {
    /// Every composite, in report order.
    pub const ALL: [CompositeKind; 5] = [
        CompositeKind::HeapSpray,
        CompositeKind::PacBruteForce,
        CompositeKind::AhcConfusion,
        CompositeKind::DanglingResign,
        CompositeKind::ToctouResize,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            CompositeKind::HeapSpray => "heap-spray",
            CompositeKind::PacBruteForce => "pac-brute-force",
            CompositeKind::AhcConfusion => "ahc-confusion",
            CompositeKind::DanglingResign => "dangling-resign",
            CompositeKind::ToctouResize => "toctou-resize",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<CompositeKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }

    /// The pinned differential expectation of this primitive.
    pub fn expectation(self) -> Expectation {
        match self {
            CompositeKind::HeapSpray => Expectation {
                static_class: LintClass::DynamicOnly,
                rules: &[],
                exact_delta: Some(1),
            },
            CompositeKind::PacBruteForce => Expectation {
                static_class: LintClass::StaticallyDetectable,
                rules: &[Rule::UnknownPac],
                exact_delta: Some(BRUTE_FORCE_PROBES as u64),
            },
            CompositeKind::AhcConfusion => Expectation {
                static_class: LintClass::StaticallyDetectable,
                rules: &[Rule::AccessAhcMismatch],
                exact_delta: Some(1),
            },
            CompositeKind::DanglingResign => Expectation {
                static_class: LintClass::StaticallyDetectable,
                rules: &[Rule::AccessAfterClear],
                exact_delta: Some(1),
            },
            CompositeKind::ToctouResize => Expectation {
                static_class: LintClass::DynamicOnly,
                rules: &[],
                exact_delta: Some(1),
            },
        }
    }

    /// The rules each static [`Policy`] is pinned to fire on this
    /// primitive — the composite rows of the cross-paper detection
    /// matrix. The AOS column mirrors [`expectation`]
    /// (CompositeKind::expectation); the others encode each paper's
    /// blind spots: CryptSan has no size classes (misses
    /// `ahc-confusion`), PACSan's re-seal launders the dangling
    /// pointer (misses `dangling-resign`), PACTight only
    /// authenticates signatures (catches forgery, nothing temporal),
    /// and the two protocol-clean primitives (`heap-spray`,
    /// `toctou-resize`) pass every static policy.
    pub fn policy_rules(self, policy: Policy) -> &'static [&'static str] {
        match (self, policy) {
            (CompositeKind::HeapSpray | CompositeKind::ToctouResize, _) => &[],
            (CompositeKind::PacBruteForce, Policy::Aos) => &["unknown-pac"],
            (CompositeKind::PacBruteForce, Policy::CryptSan) => &["unallocated-key"],
            (CompositeKind::PacBruteForce, Policy::PacSan) => &["unsealed-pointer"],
            (CompositeKind::PacBruteForce, Policy::PacTight) => &["forged-pointer"],
            (CompositeKind::AhcConfusion, Policy::Aos) => &["access-ahc-mismatch"],
            (CompositeKind::AhcConfusion, Policy::CryptSan) => &[],
            (CompositeKind::AhcConfusion, Policy::PacSan) => &["seal-class-mismatch"],
            (CompositeKind::AhcConfusion, Policy::PacTight) => &["integrity-class-mismatch"],
            (CompositeKind::DanglingResign, Policy::Aos) => &["access-after-clear"],
            (CompositeKind::DanglingResign, Policy::CryptSan) => &["revoked-key"],
            (CompositeKind::DanglingResign, Policy::PacSan | Policy::PacTight) => &[],
        }
    }

    /// Per-kind RNG salt (the composite analogue of the base
    /// injectors' `fault_salt`).
    pub fn salt(self) -> u64 {
        match self {
            CompositeKind::HeapSpray => 0x5350_5259,
            CompositeKind::PacBruteForce => 0x4252_5554,
            CompositeKind::AhcConfusion => 0x4148_434D,
            CompositeKind::DanglingResign => 0x5253_4E44,
            CompositeKind::ToctouResize => 0x544F_4354,
        }
    }
}

impl std::fmt::Display for CompositeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a scenario step is pinned to do on each oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expectation {
    /// Whether the linter must flag the step
    /// ([`LintClass::StaticallyDetectable`]) or must stay silent
    /// ([`LintClass::DynamicOnly`]).
    pub static_class: LintClass,
    /// The exact rules a statically detectable step fires (empty for
    /// dynamic-only steps).
    pub rules: &'static [Rule],
    /// The exact number of extra violations the step adds on an AOS
    /// machine, when the step controls its victims fully (composite
    /// primitives). `None` for base injector steps, whose anchors
    /// live in the workload trace — those pin only `delta >= 1`.
    pub exact_delta: Option<u64>,
}

/// One pass of clean-trace facts every composite planner draws on.
#[derive(Debug, Clone)]
pub struct PreScan {
    /// Ops in the clean trace.
    pub len: usize,
    /// Bitmap over the 2^16 PAC space: bit set iff some `pacma` or
    /// `bndstr` in the clean trace uses that PAC.
    signed: Vec<u64>,
    pac_space: u64,
}

impl PreScan {
    /// Scans `trace` once, recording its length and every PAC it
    /// signs.
    pub fn new(trace: impl Iterator<Item = Op>, layout: PointerLayout) -> PreScan {
        let pac_space = layout.pac_space();
        let words = (pac_space as usize).div_ceil(64);
        let mut signed = vec![0u64; words];
        let mut len = 0usize;
        for op in trace {
            len += 1;
            let pac = match op {
                Op::Pacma { pointer, .. } | Op::BndStr { pointer, .. } => layout.pac(pointer),
                _ => continue,
            };
            signed[(pac / 64) as usize] |= 1u64 << (pac % 64);
        }
        PreScan {
            len,
            signed,
            pac_space,
        }
    }

    /// Whether the clean trace signs `pac`.
    pub fn is_signed(&self, pac: u64) -> bool {
        self.signed[(pac / 64) as usize] & (1u64 << (pac % 64)) != 0
    }

    /// Hands out never-signed PACs, each at most once per scenario.
    pub fn pac_allocator(&self, rng: &mut Xoshiro256StarStar) -> PacAllocator {
        PacAllocator {
            taken: self.signed.clone(),
            cursor: rng.next_range(self.pac_space),
            pac_space: self.pac_space,
        }
    }
}

/// Deterministic allocator over the PACs the clean trace never signs.
/// Starting from a seeded cursor, it linear-probes the space and
/// marks every key it hands out, so no two composite instances (or
/// brute-force probes) in one scenario share a PAC.
#[derive(Debug, Clone)]
pub struct PacAllocator {
    taken: Vec<u64>,
    cursor: u64,
    pac_space: u64,
}

impl PacAllocator {
    /// The next unused PAC.
    ///
    /// # Panics
    ///
    /// Panics if the whole 2^16 space is exhausted — a scenario would
    /// need tens of thousands of composite victims to get there.
    pub fn take(&mut self) -> u64 {
        for _ in 0..self.pac_space {
            let pac = self.cursor;
            self.cursor = (self.cursor + 1) % self.pac_space;
            let (word, bit) = ((pac / 64) as usize, 1u64 << (pac % 64));
            if self.taken[word] & bit == 0 {
                self.taken[word] |= bit;
                return pac;
            }
        }
        panic!("PAC space exhausted: every key is signed or already allocated");
    }
}

/// A planned composite block: the ops to insert and the bookkeeping
/// the report needs.
#[derive(Debug, Clone)]
pub struct CompositePlan {
    /// The contiguous synthetic op block.
    pub ops: Vec<Op>,
    /// Human-readable description for reports.
    pub description: String,
}

/// Plans one composite primitive. `region` is the instance's private
/// address sub-region (16-byte aligned), `pacs` its private key
/// allocator, `rng` the step's forked deterministic stream.
pub fn plan_composite(
    kind: CompositeKind,
    region: u64,
    pacs: &mut PacAllocator,
    rng: &mut Xoshiro256StarStar,
    layout: PointerLayout,
) -> CompositePlan {
    debug_assert_eq!(region % 16, 0, "chunk bases must be 16-aligned");
    match kind {
        CompositeKind::HeapSpray => heap_spray(region, pacs, layout),
        CompositeKind::PacBruteForce => pac_brute_force(region, pacs, rng, layout),
        CompositeKind::AhcConfusion => ahc_confusion(region, pacs, layout),
        CompositeKind::DanglingResign => dangling_resign(region, pacs, layout),
        CompositeKind::ToctouResize => toctou_resize(region, pacs, layout),
    }
}

/// Signs and stores bounds for a chunk at `(addr, size)` under `pac`,
/// with the Algorithm 1 AHC, returning the signed pointer.
fn plant_chunk(ops: &mut Vec<Op>, addr: u64, size: u64, pac: u64, layout: PointerLayout) -> u64 {
    let ahc = compute_ahc(addr, size, layout.va_size()).bits();
    let pointer = layout.compose(addr, pac, ahc);
    ops.push(Op::Pacma { pointer, size });
    ops.push(Op::BndStr { pointer, size });
    pointer
}

/// Rebases a signed pointer to a different address, keeping its PAC
/// and AHC bits.
fn rebase(pointer: u64, addr: u64, layout: PointerLayout) -> u64 {
    layout.compose(addr, layout.pac(pointer), layout.ahc(pointer))
}

fn heap_spray(region: u64, pacs: &mut PacAllocator, layout: PointerLayout) -> CompositePlan {
    const SIZE: u64 = 64;
    const STRIDE: u64 = 128;
    let mut ops = Vec::with_capacity(SPRAY_CHUNKS * 2 + 1);
    let mut first = None;
    for i in 0..SPRAY_CHUNKS as u64 {
        let pointer = plant_chunk(&mut ops, region + i * STRIDE, SIZE, pacs.take(), layout);
        first.get_or_insert(pointer);
    }
    // One slot past the first chunk: inside the spray's address range,
    // outside every chunk's bounds. Same PAC and AHC class as the
    // victim, so the linter has nothing to object to.
    let victim = first.expect("spray plants at least one chunk");
    ops.push(Op::Store {
        pointer: rebase(victim, region + SIZE, layout),
        bytes: 8,
    });
    CompositePlan {
        ops,
        description: format!(
            "sprayed {SPRAY_CHUNKS} chunks of {SIZE}B at {region:#x}, then stored 8B at base+{SIZE} of chunk 0"
        ),
    }
}

fn pac_brute_force(
    region: u64,
    pacs: &mut PacAllocator,
    rng: &mut Xoshiro256StarStar,
    layout: PointerLayout,
) -> CompositePlan {
    let mut ops = Vec::with_capacity(BRUTE_FORCE_PROBES);
    for i in 0..BRUTE_FORCE_PROBES as u64 {
        // A fresh never-signed key per probe; the AHC bits are forged
        // nonzero so the MCU actually checks the access.
        let ahc = 1 + (rng.next_u64() % 3) as u8;
        let pointer = layout.compose(region + i * 16, pacs.take(), ahc);
        ops.push(Op::Load {
            pointer,
            bytes: 8,
            chained: false,
        });
    }
    CompositePlan {
        ops,
        description: format!(
            "swept {BRUTE_FORCE_PROBES} loads through never-signed PACs at {region:#x}"
        ),
    }
}

fn ahc_confusion(region: u64, pacs: &mut PacAllocator, layout: PointerLayout) -> CompositePlan {
    const SIZE: u64 = 64;
    let mut ops = Vec::with_capacity(3);
    let victim = plant_chunk(&mut ops, region, SIZE, pacs.take(), layout);
    let real = layout.ahc(victim);
    // A different (still nonzero) class: way selection diverges from
    // the bndstr's, and the address is one slot out of bounds.
    let confused = (real % 3) + 1;
    debug_assert_ne!(confused, real);
    let pointer = layout.compose(region + SIZE, layout.pac(victim), confused);
    ops.push(Op::Load {
        pointer,
        bytes: 8,
        chained: false,
    });
    CompositePlan {
        ops,
        description: format!(
            "allocated {SIZE}B at {region:#x} in AHC class {real}, then loaded base+{SIZE} as class {confused}"
        ),
    }
}

fn dangling_resign(region: u64, pacs: &mut PacAllocator, layout: PointerLayout) -> CompositePlan {
    const SIZE: u64 = 64;
    let mut ops = Vec::with_capacity(7 + UAF_DELAY_OPS);
    let victim = plant_chunk(&mut ops, region, SIZE, pacs.take(), layout);
    // A legitimate access while live, then the Fig. 7b free sequence.
    ops.push(Op::Load {
        pointer: victim,
        bytes: 8,
        chained: false,
    });
    ops.push(Op::BndClr { pointer: victim });
    ops.push(Op::Xpacm);
    // The abuse: re-sign the dangling pointer with size 0 (the Fig. 7
    // temporal tail), then dereference it. The HBT row is empty, so
    // the load misses; statically it is an access-after-clear.
    ops.push(Op::Pacma {
        pointer: victim,
        size: 0,
    });
    // Space the dangling access past every Table IV ROB (the same
    // window the UAF injector uses): close in, §V-F2 store→load
    // bounds forwarding from the still-in-flight bndstr would satisfy
    // the probe before the bndclr's table store ever lands.
    ops.extend(std::iter::repeat_n(Op::IntAlu, UAF_DELAY_OPS));
    ops.push(Op::Load {
        pointer: victim,
        bytes: 8,
        chained: false,
    });
    CompositePlan {
        ops,
        description: format!(
            "freed a {SIZE}B chunk at {region:#x}, re-signed the dangling pointer with size 0, then loaded it"
        ),
    }
}

fn toctou_resize(region: u64, pacs: &mut PacAllocator, layout: PointerLayout) -> CompositePlan {
    const SIZE: u64 = 64;
    const STRIDE: u64 = 128;
    let pac = pacs.take();
    let mut ops = Vec::with_capacity(TOCTOU_CHUNKS * 2 + 2);
    let mut first = None;
    for i in 0..TOCTOU_CHUNKS as u64 {
        let pointer = plant_chunk(&mut ops, region + i * STRIDE, SIZE, pac, layout);
        first.get_or_insert(pointer);
    }
    let victim = first.expect("toctou plants at least one chunk");
    // With the row resized 1→16 ways and gradual migration still
    // walking the table, a live chunk must still hit...
    let live_probe = region + (TOCTOU_CHUNKS as u64 - 1) * STRIDE;
    ops.push(Op::Load {
        pointer: rebase(victim, live_probe, layout),
        bytes: 8,
        chained: false,
    });
    // ...and the gap between chunk 0 and chunk 1 must still miss.
    ops.push(Op::Store {
        pointer: rebase(victim, region + SIZE, layout),
        bytes: 8,
    });
    CompositePlan {
        ops,
        description: format!(
            "overflowed one PAC row with {TOCTOU_CHUNKS} same-key chunks at {region:#x} (forcing way doublings mid-stream), then probed a live chunk and the gap after chunk 0 during migration"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh(kind: CompositeKind) -> (CompositePlan, PacAllocator) {
        let layout = PointerLayout::default();
        let scan = PreScan::new(std::iter::empty(), layout);
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let mut pacs = scan.pac_allocator(&mut rng);
        let plan = plan_composite(kind, SYNTHETIC_REGION, &mut pacs, &mut rng, layout);
        (plan, pacs)
    }

    #[test]
    fn prescan_records_signed_pacs() {
        let layout = PointerLayout::default();
        let p = layout.compose(0x4000, 0xBEE, 1);
        let scan = PreScan::new(
            [
                Op::Pacma {
                    pointer: p,
                    size: 64,
                },
                Op::IntAlu,
            ]
            .into_iter(),
            layout,
        );
        assert_eq!(scan.len, 2);
        assert!(scan.is_signed(0xBEE));
        assert!(!scan.is_signed(0xBEF));
    }

    #[test]
    fn pac_allocator_never_hands_out_a_signed_or_repeated_key() {
        let layout = PointerLayout::default();
        let p = layout.compose(0x4000, 5, 1);
        let scan = PreScan::new(
            std::iter::once(Op::BndStr {
                pointer: p,
                size: 16,
            }),
            layout,
        );
        let mut rng = Xoshiro256StarStar::seed_from_u64(1);
        let mut pacs = scan.pac_allocator(&mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..4096 {
            let pac = pacs.take();
            assert_ne!(pac, 5, "handed out a signed PAC");
            assert!(seen.insert(pac), "handed out {pac:#x} twice");
        }
    }

    #[test]
    fn every_composite_plans_deterministically() {
        for kind in CompositeKind::ALL {
            let (a, _) = fresh(kind);
            let (b, _) = fresh(kind);
            assert_eq!(a.ops, b.ops, "{kind} plan is not deterministic");
            assert!(!a.ops.is_empty());
        }
    }

    #[test]
    fn expectations_cover_every_kind_and_name_roundtrip() {
        for kind in CompositeKind::ALL {
            assert_eq!(CompositeKind::parse(kind.name()), Some(kind));
            let e = kind.expectation();
            match e.static_class {
                LintClass::StaticallyDetectable => assert!(!e.rules.is_empty()),
                LintClass::DynamicOnly => assert!(e.rules.is_empty()),
                LintClass::Mixed => panic!("no composite pins a mixed class"),
            }
            assert!(e.exact_delta.is_some(), "composites pin exact deltas");
        }
    }

    #[test]
    fn policy_rule_pins_agree_with_the_aos_expectation() {
        for kind in CompositeKind::ALL {
            let aos: Vec<&str> = kind.expectation().rules.iter().map(|r| r.name()).collect();
            assert_eq!(kind.policy_rules(Policy::Aos), aos.as_slice(), "{kind}");
            for policy in Policy::ALL {
                for rule in kind.policy_rules(policy) {
                    assert!(
                        policy.rules().iter().any(|info| info.name == *rule),
                        "{kind}: '{rule}' is not in {policy}'s taxonomy"
                    );
                }
            }
        }
    }

    #[test]
    fn spray_block_is_protocol_clean_except_the_probe() {
        let (plan, _) = fresh(CompositeKind::HeapSpray);
        assert_eq!(plan.ops.len(), SPRAY_CHUNKS * 2 + 1);
        assert!(matches!(plan.ops[plan.ops.len() - 1], Op::Store { .. }));
    }
}
