//! The operating-system side of AOS (paper §IV-D).
//!
//! The OS creates the bounds table at process start, grows it when
//! `bndstr` overflows a row, and decides what happens on a
//! bounds-checking failure. The paper leaves the failure policy to the
//! developer: terminate, or report and resume. [`OsHandler`]
//! centralizes that state machine so the functional process and any
//! embedder apply identical semantics.

use aos_hbt::HashedBoundsTable;
use aos_mcu::{AosException, MemoryCheckUnit};

/// What the exception handler does with a bounds-checking failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExceptionPolicy {
    /// Kill the process on the first violation (the secure default).
    #[default]
    Terminate,
    /// Log the violation and let the program continue — the paper's
    /// "report an error and resume" option, useful for survey runs.
    ReportAndResume,
}

/// Counters of everything the OS handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OsStats {
    /// Gradual resizes performed on `bndstr` overflow.
    pub resizes: u64,
    /// Bounds-check failures (spatial/temporal violations) seen.
    pub check_failures: u64,
    /// Bounds-clear failures (double/invalid frees) seen.
    pub clear_failures: u64,
    /// `bndstr` ops dropped because their bounds were malformed or the
    /// table could not grow any further.
    pub dropped_stores: u64,
}

/// The decision an [`OsHandler`] returns to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsDecision {
    /// The faulting operation was repaired (table resized); retry it.
    Retry,
    /// Deliver the violation to the process (fatal under
    /// [`ExceptionPolicy::Terminate`]).
    Deliver {
        /// Whether the process must die.
        fatal: bool,
    },
}

/// The OS exception handler for AOS exceptions.
///
/// # Examples
///
/// ```
/// use aos_core::os::{ExceptionPolicy, OsDecision, OsHandler};
/// use aos_core::hbt::{HashedBoundsTable, HbtConfig};
/// use aos_core::mcu::{AosException, McuConfig, MemoryCheckUnit};
/// use aos_core::ptrauth::PointerLayout;
///
/// let mut os = OsHandler::new(ExceptionPolicy::ReportAndResume);
/// let mut hbt = HashedBoundsTable::new(HbtConfig::default());
/// let mut mcu = MemoryCheckUnit::new(McuConfig::default(), PointerLayout::default());
/// let decision = os.handle(
///     &AosException::BoundsStoreFailure { pac: 7 },
///     None,
///     &mut hbt,
///     &mut mcu,
/// );
/// assert_eq!(decision, OsDecision::Retry);
/// assert_eq!(os.stats().resizes, 1);
/// ```
#[derive(Debug, Clone)]
pub struct OsHandler {
    policy: ExceptionPolicy,
    stats: OsStats,
}

impl OsHandler {
    /// Creates a handler with the given failure policy.
    pub fn new(policy: ExceptionPolicy) -> Self {
        Self {
            policy,
            stats: OsStats::default(),
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> ExceptionPolicy {
        self.policy
    }

    /// What the OS has handled so far.
    pub fn stats(&self) -> OsStats {
        self.stats
    }

    /// Handles one AOS exception. For a `bndstr` overflow the table is
    /// resized (gradually — accesses keep flowing during migration)
    /// and, when the faulting MCQ entry id is supplied, the entry is
    /// reset to retry. Violations are counted and delivered per the
    /// policy.
    pub fn handle(
        &mut self,
        exception: &AosException,
        mcq_id: Option<u64>,
        hbt: &mut HashedBoundsTable,
        mcu: &mut MemoryCheckUnit,
    ) -> OsDecision {
        match exception {
            AosException::BoundsStoreFailure { .. } => {
                if hbt.try_begin_resize().is_err() {
                    // Table at max associativity: the store can never
                    // be placed. Drop it and deliver instead of
                    // panicking the whole machine.
                    self.stats.dropped_stores += 1;
                    if let Some(id) = mcq_id {
                        mcu.drop_failed(id);
                    }
                    return OsDecision::Deliver {
                        fatal: self.policy == ExceptionPolicy::Terminate,
                    };
                }
                self.stats.resizes += 1;
                if let Some(id) = mcq_id {
                    mcu.retry(id);
                }
                OsDecision::Retry
            }
            AosException::MalformedBounds { .. } => {
                // A tampered or malformed trace: retrying cannot help.
                self.stats.dropped_stores += 1;
                if let Some(id) = mcq_id {
                    mcu.drop_failed(id);
                }
                OsDecision::Deliver {
                    fatal: self.policy == ExceptionPolicy::Terminate,
                }
            }
            AosException::BoundsCheckFailure { .. } => {
                self.stats.check_failures += 1;
                if let Some(id) = mcq_id {
                    mcu.drop_failed(id);
                }
                OsDecision::Deliver {
                    fatal: self.policy == ExceptionPolicy::Terminate,
                }
            }
            AosException::BoundsClearFailure { .. } => {
                self.stats.clear_failures += 1;
                if let Some(id) = mcq_id {
                    mcu.drop_failed(id);
                }
                OsDecision::Deliver {
                    fatal: self.policy == ExceptionPolicy::Terminate,
                }
            }
        }
    }
}

impl Default for OsHandler {
    fn default() -> Self {
        Self::new(ExceptionPolicy::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_hbt::HbtConfig;
    use aos_mcu::McuConfig;
    use aos_ptrauth::PointerLayout;

    fn parts() -> (HashedBoundsTable, MemoryCheckUnit) {
        (
            HashedBoundsTable::new(HbtConfig::default()),
            MemoryCheckUnit::new(McuConfig::default(), PointerLayout::default()),
        )
    }

    #[test]
    fn store_failure_resizes_and_retries() {
        let (mut hbt, mut mcu) = parts();
        let mut os = OsHandler::default();
        let before = hbt.ways();
        let d = os.handle(
            &AosException::BoundsStoreFailure { pac: 3 },
            None,
            &mut hbt,
            &mut mcu,
        );
        assert_eq!(d, OsDecision::Retry);
        assert_eq!(hbt.ways(), before * 2);
        assert_eq!(os.stats().resizes, 1);
    }

    #[test]
    fn check_failure_is_fatal_under_terminate() {
        let (mut hbt, mut mcu) = parts();
        let mut os = OsHandler::new(ExceptionPolicy::Terminate);
        let d = os.handle(
            &AosException::BoundsCheckFailure {
                pointer: 0x10,
                is_store: false,
            },
            None,
            &mut hbt,
            &mut mcu,
        );
        assert_eq!(d, OsDecision::Deliver { fatal: true });
        assert_eq!(os.stats().check_failures, 1);
    }

    #[test]
    fn clear_failure_survivable_under_report_and_resume() {
        let (mut hbt, mut mcu) = parts();
        let mut os = OsHandler::new(ExceptionPolicy::ReportAndResume);
        let d = os.handle(
            &AosException::BoundsClearFailure { pointer: 0x20 },
            None,
            &mut hbt,
            &mut mcu,
        );
        assert_eq!(d, OsDecision::Deliver { fatal: false });
        assert_eq!(os.stats().clear_failures, 1);
    }

    #[test]
    fn default_policy_is_terminate() {
        assert_eq!(OsHandler::default().policy(), ExceptionPolicy::Terminate);
    }
}
