//! The campaign runner: every figure in the paper is a matrix of
//! `(workload × system)` simulations, and each cell is an independent
//! deterministic run — embarrassingly parallel work. This module fans
//! a cell list out across a scoped worker pool
//! ([`aos_util::par::ordered_parallel_catch`]), returns per-cell
//! [`CellResult`]s **in input order**, and renders a machine-readable
//! JSON report (`aos-campaign-report/v5`, with per-cell telemetry
//! counter columns and the cell's simulation model) so perf
//! trajectories can be tracked across PRs.
//!
//! Determinism: a cell's simulation consumes no shared mutable state
//! (each worker builds its own [`TraceGenerator`] and [`Machine`]
//! from the cell's profile and system), so the stats a cell produces
//! are identical whether the campaign runs on 1 thread or 64 — the
//! parallel path only changes wall-clock, never results.
//!
//! Degradation semantics: one poisoned cell must never sink a whole
//! figure. Each cell runs under `catch_unwind` (and optionally a
//! wall-clock timeout and bounded retry with linear backoff, see
//! [`CampaignOptions`]); a cell that still fails is recorded as
//! [`CellOutcome::Failed`] with the captured panic message while every
//! other cell completes normally. A cell that needed more than one
//! attempt completes but is marked *degraded* in the report.
//!
//! # Examples
//!
//! ```
//! use aos_core::experiment::campaign::{matrix, run_campaign, CampaignOptions};
//! use aos_core::experiment::SystemUnderTest;
//! use aos_core::isa::SafetyConfig;
//! use aos_core::workloads::profile;
//!
//! let cells = matrix(
//!     [*profile::by_name("mcf").unwrap()],
//!     [SystemUnderTest::scaled(SafetyConfig::Aos, 0.005)],
//! );
//! let report = run_campaign(&cells, &CampaignOptions::default());
//! assert_eq!(report.results.len(), 1);
//! assert!(report.results[0].stats().unwrap().cycles > 0);
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use aos_sim::RunStats;
use aos_util::guard::{run_guarded, Backoff, GuardOptions};
use aos_util::par::{effective_threads, ordered_parallel_map};
use aos_workloads::WorkloadProfile;

use super::SystemUnderTest;

/// One `(workload × system)` matrix cell.
#[derive(Debug, Clone, Copy)]
pub struct CampaignCell {
    /// The workload model driving the cell.
    pub profile: WorkloadProfile,
    /// The system configuration under test.
    pub sut: SystemUnderTest,
}

impl CampaignCell {
    /// `workload/system` — the cell's display and report key.
    pub fn label(&self) -> String {
        format!("{}/{}", self.profile.name, self.sut.safety)
    }
}

/// The cross product `profiles × systems` in row-major order
/// (workload-major, matching how the figures print).
pub fn matrix(
    profiles: impl IntoIterator<Item = WorkloadProfile>,
    systems: impl IntoIterator<Item = SystemUnderTest> + Clone,
) -> Vec<CampaignCell> {
    profiles
        .into_iter()
        .flat_map(|profile| {
            systems
                .clone()
                .into_iter()
                .map(move |sut| CampaignCell { profile, sut })
        })
        .collect()
}

/// What a cell runner produces: the machine statistics plus the
/// streaming-pipeline metering that backs the report's per-cell
/// `trace_ops`, `ops_per_sec` and `peak_trace_bytes` columns.
#[derive(Debug, Clone)]
pub struct CellOutput {
    /// The machine's statistics for the cell.
    pub stats: RunStats,
    /// Ops the cell's trace stream yielded into the machine.
    pub trace_ops: u64,
    /// Peak bytes of trace the pipeline held buffered — `O(window)`
    /// under the streaming path, where the old materialized path held
    /// the whole trace.
    pub peak_trace_bytes: u64,
}

/// A bare `RunStats` is a valid cell output with no metering —
/// used by custom runners that do not stream through a meter.
impl From<RunStats> for CellOutput {
    fn from(stats: RunStats) -> Self {
        Self {
            stats,
            trace_ops: 0,
            peak_trace_bytes: 0,
        }
    }
}

/// How a cell ended: with statistics, or with a captured failure.
// The Completed/Failed size gap is the telemetry snapshot embedded in
// `RunStats`; one outcome exists per cell and lives exactly as long as
// the report row, so boxing would trade a harmless stack copy for a
// per-cell allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum CellOutcome {
    /// The simulation ran to completion.
    Completed(CellOutput),
    /// Every attempt panicked or timed out; the cell was skipped so the
    /// rest of the campaign could finish.
    Failed {
        /// The captured panic message (or timeout description) of the
        /// final attempt.
        error: String,
    },
}

/// A finished cell: its outcome plus how long it took to simulate.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: CampaignCell,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// Wall-clock spent on this cell, across all attempts.
    pub wall: Duration,
    /// Attempts consumed (1 = clean first run).
    pub attempts: u32,
}

impl CellResult {
    /// The machine statistics, when the cell completed.
    pub fn stats(&self) -> Option<&RunStats> {
        self.output().map(|o| &o.stats)
    }

    /// The full runner output (stats + stream metering), when the cell
    /// completed.
    pub fn output(&self) -> Option<&CellOutput> {
        match &self.outcome {
            CellOutcome::Completed(output) => Some(output),
            CellOutcome::Failed { .. } => None,
        }
    }

    /// Ops the cell's trace stream yielded. Zero for failed cells and
    /// for custom runners that do not meter.
    pub fn trace_ops(&self) -> u64 {
        self.output().map(|o| o.trace_ops).unwrap_or(0)
    }

    /// Peak bytes of trace the cell's pipeline held buffered.
    pub fn peak_trace_bytes(&self) -> u64 {
        self.output().map(|o| o.peak_trace_bytes).unwrap_or(0)
    }

    /// Trace ops simulated per host second — the streaming throughput
    /// metric in `BENCH_streaming.json`. Zero for failed or unmetered
    /// cells.
    pub fn ops_per_sec(&self) -> f64 {
        self.trace_ops() as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// The final attempt's error, when the cell failed.
    pub fn error(&self) -> Option<&str> {
        match &self.outcome {
            CellOutcome::Completed(_) => None,
            CellOutcome::Failed { error } => Some(error),
        }
    }

    /// Completed, but only after at least one failed attempt.
    pub fn is_degraded(&self) -> bool {
        self.stats().is_some() && self.attempts > 1
    }

    /// Every attempt failed.
    pub fn is_failed(&self) -> bool {
        self.stats().is_none()
    }

    /// The report's per-cell status string: `completed`, `degraded`,
    /// or `failed`.
    pub fn status(&self) -> &'static str {
        if self.is_failed() {
            "failed"
        } else if self.is_degraded() {
            "degraded"
        } else {
            "completed"
        }
    }

    /// Simulated machine cycles per host second — the per-cell
    /// throughput metric in `BENCH_campaign.json`. Zero for failed
    /// cells.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        self.stats()
            .map(|s| s.cycles as f64 / self.wall.as_secs_f64().max(1e-12))
            .unwrap_or(0.0)
    }
}

/// Campaign execution knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignOptions {
    /// Worker-thread count. `None` defers to the `AOS_CAMPAIGN_THREADS`
    /// environment variable, then to the machine's available
    /// parallelism (see [`aos_util::par::effective_threads`]).
    pub threads: Option<usize>,
    /// Per-cell wall-clock limit. A cell that exceeds it counts as a
    /// failed attempt (subject to [`CampaignOptions::retries`]). `None`
    /// (the default) disables the limit. The timed-out simulation runs
    /// on a detached thread that cannot be cancelled; it is abandoned
    /// and its work discarded when it eventually finishes.
    pub cell_timeout: Option<Duration>,
    /// Extra attempts after a failed one (0 = fail fast, the default).
    pub retries: u32,
    /// Base backoff slept between attempts; attempt `n` waits
    /// `retry_backoff * n`. Default: no backoff.
    pub retry_backoff: Duration,
}

impl CampaignOptions {
    /// Options pinned to an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads),
            ..Self::default()
        }
    }

    /// Sets a per-cell wall-clock limit.
    pub fn timeout(mut self, limit: Duration) -> Self {
        self.cell_timeout = Some(limit);
        self
    }

    /// Sets the retry budget and linear-backoff base.
    pub fn retry(mut self, retries: u32, backoff: Duration) -> Self {
        self.retries = retries;
        self.retry_backoff = backoff;
        self
    }
}

/// A finished-cell notification, delivered from worker threads.
#[derive(Debug, Clone, Copy)]
pub struct Progress<'a> {
    /// Input index of the finished cell.
    pub index: usize,
    /// Cells finished so far, including this one.
    pub completed: usize,
    /// Total cells in the campaign.
    pub total: usize,
    /// The finished cell.
    pub cell: &'a CampaignCell,
    /// Wall-clock the cell took.
    pub wall: Duration,
}

/// The whole campaign's results and timing.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-cell results, in the input order of the cell list.
    pub results: Vec<CellResult>,
    /// Wall-clock for the whole campaign.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
    /// Extra top-level report fields as `(key, raw JSON value)` pairs,
    /// spliced verbatim into [`CampaignReport::to_json`]. Lets callers
    /// (e.g. the fault-injection harness) attach domain data without
    /// this crate knowing its shape.
    pub annotations: Vec<(String, String)>,
}

impl CampaignReport {
    /// Finished cells per host second (failed cells included: the rate
    /// measures campaign progress, not simulation success).
    pub fn cells_per_sec(&self) -> f64 {
        self.results.len() as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Total simulated machine cycles across all completed cells.
    pub fn total_sim_cycles(&self) -> u64 {
        self.results
            .iter()
            .filter_map(|r| r.stats().map(|s| s.cycles))
            .sum()
    }

    /// The campaign-level telemetry aggregate: every completed cell's
    /// snapshot merged (counters summed, gauges peak-of-peaks).
    pub fn telemetry(&self) -> aos_util::TelemetrySnapshot {
        let mut merged = aos_util::TelemetrySnapshot::default();
        for r in &self.results {
            if let Some(stats) = r.stats() {
                merged.merge(&stats.telemetry);
            }
        }
        merged
    }

    /// Cells that completed on the first attempt.
    pub fn completed(&self) -> usize {
        self.results
            .iter()
            .filter(|r| !r.is_failed() && !r.is_degraded())
            .count()
    }

    /// Cells that completed, but needed more than one attempt.
    pub fn degraded(&self) -> usize {
        self.results.iter().filter(|r| r.is_degraded()).count()
    }

    /// Cells whose every attempt failed.
    pub fn failed(&self) -> usize {
        self.results.iter().filter(|r| r.is_failed()).count()
    }

    /// Attaches an extra top-level JSON field. `value` must already be
    /// valid JSON (number, string with quotes, object, ...).
    pub fn annotate(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.annotations.push((key.into(), value.into()));
    }

    /// The `aos-campaign-report/v5` JSON document (schema documented
    /// in DESIGN.md §11 and pinned by `tests/report_schema_golden.rs`):
    /// campaign wall-clock, cell-health counters and cells/sec at the
    /// top, then one record per cell with its simulation model, status,
    /// attempts, wall-clock, (for completed cells) simulated cycles per
    /// second and the cell's telemetry counters — always present,
    /// all-zero when the cell ran with telemetry disabled, so consumers
    /// see a stable shape. Failed cells carry the captured error
    /// instead. v5 added the per-cell `model` token and the stage-core
    /// stall/replay/flush counters to the telemetry column.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"aos-campaign-report/v5\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"cells\": {},\n", self.results.len()));
        out.push_str(&format!("  \"completed\": {},\n", self.completed()));
        out.push_str(&format!("  \"degraded\": {},\n", self.degraded()));
        out.push_str(&format!("  \"failed\": {},\n", self.failed()));
        out.push_str(&format!(
            "  \"wall_seconds\": {:.6},\n",
            self.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"cells_per_sec\": {:.3},\n",
            self.cells_per_sec()
        ));
        out.push_str(&format!(
            "  \"total_sim_cycles\": {},\n",
            self.total_sim_cycles()
        ));
        for (key, value) in &self.annotations {
            out.push_str(&format!("  \"{}\": {},\n", json_escape(key), value));
        }
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            let body = match &r.outcome {
                CellOutcome::Completed(output) => format!(
                    "\"sim_cycles\": {}, \"sim_cycles_per_sec\": {:.0}, \
                     \"trace_ops\": {}, \"ops_per_sec\": {:.0}, \"peak_trace_bytes\": {}, \
                     \"telemetry\": {}",
                    output.stats.cycles,
                    r.sim_cycles_per_sec(),
                    output.trace_ops,
                    r.ops_per_sec(),
                    output.peak_trace_bytes,
                    output.stats.telemetry.to_json("    "),
                ),
                CellOutcome::Failed { error } => {
                    format!("\"error\": \"{}\"", json_escape(error))
                }
            };
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"system\": \"{}\", \"scale\": {}, \
                 \"model\": \"{}\", \"status\": \"{}\", \"attempts\": {}, \
                 \"wall_seconds\": {:.6}, {}}}{}\n",
                r.cell.profile.name,
                r.cell.sut.safety,
                r.cell.sut.scale,
                r.cell.sut.model.name(),
                r.status(),
                r.attempts,
                r.wall.as_secs_f64(),
                body,
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`CampaignReport::to_json`] to `path`.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// enough for panic messages; keeps the report free of a JSON
/// dependency.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The function a campaign invokes per cell. Shared (`Arc`) because a
/// timed-out attempt leaves a clone running on its abandoned thread.
/// Runners that do not meter their stream can return a bare
/// [`RunStats`] via `.into()`.
pub type CellRunner = Arc<dyn Fn(usize, &CampaignCell) -> CellOutput + Send + Sync>;

/// Runs every cell across the worker pool and collects results in
/// input order. See the [module docs](self) for the determinism
/// guarantee and failure isolation.
pub fn run_campaign(cells: &[CampaignCell], options: &CampaignOptions) -> CampaignReport {
    run_campaign_with_progress(cells, options, &|_| {})
}

/// [`run_campaign`] with a per-cell completion callback.
///
/// `progress` is invoked from worker threads (hence `Sync`), once per
/// finished cell (completed **or** failed), in completion order — not
/// input order.
pub fn run_campaign_with_progress(
    cells: &[CampaignCell],
    options: &CampaignOptions,
    progress: &(dyn Fn(Progress<'_>) + Sync),
) -> CampaignReport {
    run_campaign_custom(
        cells,
        options,
        progress,
        Arc::new(|_index, cell: &CampaignCell| {
            super::overlap::run_overlapped(&cell.profile, &cell.sut)
        }),
    )
}

/// [`run_campaign_with_progress`] with a caller-supplied per-cell
/// runner — the extension point the fault-injection harness uses to
/// simulate transformed traces under campaign isolation.
pub fn run_campaign_custom(
    cells: &[CampaignCell],
    options: &CampaignOptions,
    progress: &(dyn Fn(Progress<'_>) + Sync),
    runner: CellRunner,
) -> CampaignReport {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = effective_threads(options.threads);
    let completed = AtomicUsize::new(0);
    let start = Instant::now();
    let results = ordered_parallel_map(cells, threads, |index, cell| {
        let cell_start = Instant::now();
        let (outcome, attempts) = run_cell_guarded(&runner, index, cell, options);
        let wall = cell_start.elapsed();
        progress(Progress {
            index,
            completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
            total: cells.len(),
            cell,
            wall,
        });
        CellResult {
            cell: *cell,
            outcome,
            wall,
            attempts,
        }
    });
    CampaignReport {
        results,
        wall: start.elapsed(),
        threads,
        annotations: Vec::new(),
    }
}

/// One cell under the full protection stack
/// ([`aos_util::guard::run_guarded`]): `catch_unwind` per attempt,
/// optional wall-clock timeout on a watchdog thread (a timed-out
/// attempt is abandoned — it keeps simulating in the background and
/// its eventual result is dropped; acceptable for a campaign, whose
/// process exits when the campaign does), bounded retry with linear
/// backoff. Returns the final outcome and attempts consumed.
fn run_cell_guarded(
    runner: &CellRunner,
    index: usize,
    cell: &CampaignCell,
    options: &CampaignOptions,
) -> (CellOutcome, u32) {
    let work = {
        let runner = Arc::clone(runner);
        let cell = *cell;
        Arc::new(move || runner(index, &cell))
    };
    let guard = GuardOptions {
        timeout: options.cell_timeout,
        retries: options.retries,
        backoff: Backoff::Linear(options.retry_backoff),
    };
    match run_guarded(work, &guard) {
        (Ok(output), attempts) => (CellOutcome::Completed(output), attempts),
        (Err(error), attempts) => (
            CellOutcome::Failed {
                error: format!("cell {} {error}", cell.label()),
            },
            attempts,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_isa::SafetyConfig;
    use aos_workloads::profile::by_name;

    fn small_cells() -> Vec<CampaignCell> {
        matrix(
            ["mcf", "hmmer"].map(|n| *by_name(n).unwrap()),
            SafetyConfig::ALL.map(|s| SystemUnderTest::scaled(s, 0.004)),
        )
    }

    #[test]
    fn matrix_is_workload_major() {
        let cells = small_cells();
        assert_eq!(cells.len(), 10);
        assert_eq!(cells[0].label(), "mcf/Baseline");
        assert_eq!(cells[4].label(), "mcf/PA+AOS");
        assert_eq!(cells[5].label(), "hmmer/Baseline");
    }

    #[test]
    fn campaign_preserves_input_order_and_counts_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cells = small_cells();
        let seen = AtomicUsize::new(0);
        let report = run_campaign_with_progress(
            &cells,
            &CampaignOptions::with_threads(4),
            &|p: Progress<'_>| {
                assert!(p.total == 10 && p.completed >= 1 && p.completed <= 10);
                seen.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 10);
        assert_eq!(report.results.len(), 10);
        for (cell, result) in cells.iter().zip(&report.results) {
            assert_eq!(cell.label(), result.cell.label());
            assert_eq!(result.status(), "completed");
            assert_eq!(result.attempts, 1);
            assert!(result.stats().unwrap().cycles > 0);
        }
        assert_eq!(report.completed(), 10);
        assert_eq!(report.degraded() + report.failed(), 0);
    }

    #[test]
    fn report_json_is_well_formed() {
        let cells = small_cells()[..3].to_vec();
        let mut report = run_campaign(&cells, &CampaignOptions::with_threads(2));
        report.annotate("note", "{\"tag\": \"smoke\"}");
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"aos-campaign-report/v5\""));
        assert!(json.contains("\"cells\": 3"));
        assert!(json.contains("\"completed\": 3"));
        assert!(json.contains("\"failed\": 0"));
        assert!(json.contains("\"workload\": \"mcf\""));
        assert_eq!(json.matches("\"model\": \"stage\"").count(), 3);
        assert!(json.contains("\"note\": {\"tag\": \"smoke\"}"));
        assert_eq!(json.matches("sim_cycles_per_sec").count(), 3);
        assert_eq!(json.matches("\"trace_ops\": ").count(), 3);
        assert_eq!(json.matches("\"ops_per_sec\": ").count(), 3);
        assert_eq!(json.matches("\"peak_trace_bytes\": ").count(), 3);
        assert_eq!(json.matches("\"status\": \"completed\"").count(), 3);
        // v4+: every completed cell carries the full counter column
        // set, zero-valued here because telemetry was not enabled.
        assert_eq!(json.matches("\"telemetry\": {").count(), 3);
        assert_eq!(json.matches("\"enabled\": false").count(), 3);
        assert_eq!(json.matches("\"bwb_hits\": 0").count(), 3);
        assert_eq!(json.matches("\"mcq_peak_occupancy\": 0").count(), 3);
        // Balanced braces/brackets: cheap structural sanity without a
        // JSON parser in the dependency set.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn default_runner_meters_the_stream() {
        let cells = small_cells()[..2].to_vec();
        let report = run_campaign(&cells, &CampaignOptions::with_threads(1));
        for r in &report.results {
            assert!(r.trace_ops() > 0, "{}", r.cell.label());
            assert!(r.ops_per_sec() > 0.0);
            let peak = r.peak_trace_bytes();
            assert!(peak > 0, "the generator buffers at least one event");
            // Batch-granular, not trace-granular: the overlapped
            // runner holds two ping-pong arenas plus the generator's
            // event buffer, independent of trace length.
            let bound = (2 * aos_isa::stream::DEFAULT_BATCH_OPS + 64) as u64
                * std::mem::size_of::<aos_isa::Op>() as u64;
            assert!(
                peak <= bound,
                "peak {peak} bytes looks like a materialized trace"
            );
        }
    }

    #[test]
    fn poisoned_cell_fails_without_sinking_the_campaign() {
        let cells = small_cells()[..4].to_vec();
        let report = run_campaign_custom(
            &cells,
            &CampaignOptions::with_threads(2),
            &|_| {},
            Arc::new(|index, cell: &CampaignCell| {
                if index == 1 {
                    panic!("deliberately poisoned cell");
                }
                crate::experiment::run(&cell.profile, &cell.sut).into()
            }),
        );
        assert_eq!(report.results.len(), 4);
        assert_eq!(report.failed(), 1);
        assert_eq!(report.completed(), 3);
        let poisoned = &report.results[1];
        assert_eq!(poisoned.status(), "failed");
        assert!(poisoned.error().unwrap().contains("deliberately poisoned"));
        let json = report.to_json();
        assert!(json.contains("\"status\": \"failed\""));
        assert!(json.contains("deliberately poisoned cell"));
    }

    #[test]
    fn flaky_cell_recovers_via_retry_and_is_marked_degraded() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cells = small_cells()[..1].to_vec();
        let calls = Arc::new(AtomicUsize::new(0));
        let calls_in_runner = Arc::clone(&calls);
        let options = CampaignOptions::with_threads(1).retry(2, Duration::from_millis(0));
        let report = run_campaign_custom(
            &cells,
            &options,
            &|_| {},
            Arc::new(move |_, cell: &CampaignCell| {
                if calls_in_runner.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("transient fault");
                }
                crate::experiment::run(&cell.profile, &cell.sut).into()
            }),
        );
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        let cell = &report.results[0];
        assert_eq!(cell.status(), "degraded");
        assert_eq!(cell.attempts, 2);
        assert!(cell.stats().unwrap().cycles > 0);
        assert_eq!(report.degraded(), 1);
    }

    #[test]
    fn hung_cell_times_out_and_is_reported_failed() {
        let cells = small_cells()[..1].to_vec();
        let options = CampaignOptions::with_threads(1).timeout(Duration::from_millis(50));
        let report = run_campaign_custom(
            &cells,
            &options,
            &|_| {},
            Arc::new(|_, _: &CampaignCell| {
                std::thread::sleep(Duration::from_secs(60));
                unreachable!("the watchdog must have given up on us")
            }),
        );
        let cell = &report.results[0];
        assert!(cell.is_failed());
        assert!(cell.error().unwrap().contains("timed out after"));
    }

    #[test]
    fn json_escape_neutralizes_panic_payloads() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("say \"hi\"\n"), "say \\\"hi\\\"\\n");
        assert_eq!(json_escape("back\\slash\t"), "back\\\\slash\\t");
        assert_eq!(json_escape("bell\u{7}"), "bell\\u0007");
    }
}
