//! The campaign runner: every figure in the paper is a matrix of
//! `(workload × system)` simulations, and each cell is an independent
//! deterministic run — embarrassingly parallel work. This module fans
//! a cell list out across a scoped worker pool
//! ([`aos_util::par::ordered_parallel_map`]), returns per-cell
//! [`RunStats`] **in input order**, and renders a machine-readable
//! JSON report so perf trajectories can be tracked across PRs.
//!
//! Determinism: a cell's simulation consumes no shared mutable state
//! (each worker builds its own [`TraceGenerator`] and [`Machine`]
//! from the cell's profile and system), so the stats a cell produces
//! are identical whether the campaign runs on 1 thread or 64 — the
//! parallel path only changes wall-clock, never results.
//!
//! # Examples
//!
//! ```
//! use aos_core::experiment::campaign::{matrix, run_campaign, CampaignOptions};
//! use aos_core::experiment::SystemUnderTest;
//! use aos_core::isa::SafetyConfig;
//! use aos_core::workloads::profile;
//!
//! let cells = matrix(
//!     [*profile::by_name("mcf").unwrap()],
//!     [SystemUnderTest::scaled(SafetyConfig::Aos, 0.005)],
//! );
//! let report = run_campaign(&cells, &CampaignOptions::default());
//! assert_eq!(report.results.len(), 1);
//! assert!(report.results[0].stats.cycles > 0);
//! ```

use std::time::{Duration, Instant};

use aos_sim::RunStats;
use aos_util::par::{effective_threads, ordered_parallel_map};
use aos_workloads::WorkloadProfile;

use super::SystemUnderTest;

/// One `(workload × system)` matrix cell.
#[derive(Debug, Clone, Copy)]
pub struct CampaignCell {
    /// The workload model driving the cell.
    pub profile: WorkloadProfile,
    /// The system configuration under test.
    pub sut: SystemUnderTest,
}

impl CampaignCell {
    /// `workload/system` — the cell's display and report key.
    pub fn label(&self) -> String {
        format!("{}/{}", self.profile.name, self.sut.safety)
    }
}

/// The cross product `profiles × systems` in row-major order
/// (workload-major, matching how the figures print).
pub fn matrix(
    profiles: impl IntoIterator<Item = WorkloadProfile>,
    systems: impl IntoIterator<Item = SystemUnderTest> + Clone,
) -> Vec<CampaignCell> {
    profiles
        .into_iter()
        .flat_map(|profile| {
            systems
                .clone()
                .into_iter()
                .map(move |sut| CampaignCell { profile, sut })
        })
        .collect()
}

/// A completed cell: its stats plus how long it took to simulate.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: CampaignCell,
    /// The machine statistics (identical to `experiment::run`).
    pub stats: RunStats,
    /// Wall-clock spent simulating this cell.
    pub wall: Duration,
}

impl CellResult {
    /// Simulated machine cycles per host second — the per-cell
    /// throughput metric in `BENCH_campaign.json`.
    pub fn sim_cycles_per_sec(&self) -> f64 {
        self.stats.cycles as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// Campaign execution knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct CampaignOptions {
    /// Worker-thread count. `None` defers to the `AOS_CAMPAIGN_THREADS`
    /// environment variable, then to the machine's available
    /// parallelism (see [`aos_util::par::effective_threads`]).
    pub threads: Option<usize>,
}

impl CampaignOptions {
    /// Options pinned to an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: Some(threads),
        }
    }
}

/// A finished-cell notification, delivered from worker threads.
#[derive(Debug, Clone, Copy)]
pub struct Progress<'a> {
    /// Input index of the finished cell.
    pub index: usize,
    /// Cells finished so far, including this one.
    pub completed: usize,
    /// Total cells in the campaign.
    pub total: usize,
    /// The finished cell.
    pub cell: &'a CampaignCell,
    /// Wall-clock the cell took.
    pub wall: Duration,
}

/// The whole campaign's results and timing.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Per-cell results, in the input order of the cell list.
    pub results: Vec<CellResult>,
    /// Wall-clock for the whole campaign.
    pub wall: Duration,
    /// Worker threads actually used.
    pub threads: usize,
}

impl CampaignReport {
    /// Completed cells per host second.
    pub fn cells_per_sec(&self) -> f64 {
        self.results.len() as f64 / self.wall.as_secs_f64().max(1e-12)
    }

    /// Total simulated machine cycles across all cells.
    pub fn total_sim_cycles(&self) -> u64 {
        self.results.iter().map(|r| r.stats.cycles).sum()
    }

    /// The `aos-campaign-report/v1` JSON document (schema documented
    /// in DESIGN.md): campaign wall-clock and cells/sec at the top,
    /// then one record per cell with its wall-clock and simulated
    /// cycles per second.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"aos-campaign-report/v1\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"cells\": {},\n", self.results.len()));
        out.push_str(&format!(
            "  \"wall_seconds\": {:.6},\n",
            self.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"cells_per_sec\": {:.3},\n",
            self.cells_per_sec()
        ));
        out.push_str(&format!(
            "  \"total_sim_cycles\": {},\n",
            self.total_sim_cycles()
        ));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"workload\": \"{}\", \"system\": \"{}\", \"scale\": {}, \
                 \"wall_seconds\": {:.6}, \"sim_cycles\": {}, \"sim_cycles_per_sec\": {:.0}}}{}\n",
                r.cell.profile.name,
                r.cell.sut.safety,
                r.cell.sut.scale,
                r.wall.as_secs_f64(),
                r.stats.cycles,
                r.sim_cycles_per_sec(),
                if i + 1 < self.results.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`CampaignReport::to_json`] to `path`.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Runs every cell across the worker pool and collects results in
/// input order. See the [module docs](self) for the determinism
/// guarantee.
pub fn run_campaign(cells: &[CampaignCell], options: &CampaignOptions) -> CampaignReport {
    run_campaign_with_progress(cells, options, &|_| {})
}

/// [`run_campaign`] with a per-cell completion callback.
///
/// `progress` is invoked from worker threads (hence `Sync`), once per
/// finished cell, in completion order — not input order.
pub fn run_campaign_with_progress(
    cells: &[CampaignCell],
    options: &CampaignOptions,
    progress: &(dyn Fn(Progress<'_>) + Sync),
) -> CampaignReport {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let threads = effective_threads(options.threads);
    let completed = AtomicUsize::new(0);
    let start = Instant::now();
    let results = ordered_parallel_map(cells, threads, |index, cell| {
        let cell_start = Instant::now();
        let stats = super::run(&cell.profile, &cell.sut);
        let wall = cell_start.elapsed();
        progress(Progress {
            index,
            completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
            total: cells.len(),
            cell,
            wall,
        });
        CellResult {
            cell: *cell,
            stats,
            wall,
        }
    });
    CampaignReport {
        results,
        wall: start.elapsed(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_isa::SafetyConfig;
    use aos_workloads::profile::by_name;

    fn small_cells() -> Vec<CampaignCell> {
        matrix(
            ["mcf", "hmmer"].map(|n| *by_name(n).unwrap()),
            SafetyConfig::ALL.map(|s| SystemUnderTest::scaled(s, 0.004)),
        )
    }

    #[test]
    fn matrix_is_workload_major() {
        let cells = small_cells();
        assert_eq!(cells.len(), 10);
        assert_eq!(cells[0].label(), "mcf/Baseline");
        assert_eq!(cells[4].label(), "mcf/PA+AOS");
        assert_eq!(cells[5].label(), "hmmer/Baseline");
    }

    #[test]
    fn campaign_preserves_input_order_and_counts_progress() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cells = small_cells();
        let seen = AtomicUsize::new(0);
        let report = run_campaign_with_progress(
            &cells,
            &CampaignOptions::with_threads(4),
            &|p: Progress<'_>| {
                assert!(p.total == 10 && p.completed >= 1 && p.completed <= 10);
                seen.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 10);
        assert_eq!(report.results.len(), 10);
        for (cell, result) in cells.iter().zip(&report.results) {
            assert_eq!(cell.label(), result.cell.label());
            assert!(result.stats.cycles > 0);
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let cells = small_cells()[..3].to_vec();
        let report = run_campaign(&cells, &CampaignOptions::with_threads(2));
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"aos-campaign-report/v1\""));
        assert!(json.contains("\"cells\": 3"));
        assert!(json.contains("\"workload\": \"mcf\""));
        assert_eq!(json.matches("sim_cycles_per_sec").count(), 3);
        // Balanced braces/brackets: cheap structural sanity without a
        // JSON parser in the dependency set.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
