//! Overlapped trace generation: the cell body that double-buffers
//! [`OpBatch`] arenas between a generator thread and the simulating
//! thread, so trace synthesis and simulation run concurrently instead
//! of interleaving per op.
//!
//! Why this is worth a thread even on a single core: the per-op
//! streaming path alternates generator and machine code every few
//! dozen instructions, and the two working sets (heap model + RNG on
//! one side, ROB/MCQ/cache hierarchy on the other) evict each other's
//! cache and branch-predictor state at every switch. Batching restores
//! long single-owner bursts — the generator fills a whole arena, the
//! machine drains a whole arena — and the second thread lets the fill
//! of batch `k+1` overlap the simulation of batch `k` when a second
//! hardware thread exists.
//!
//! Memory stays bounded and scale-independent: exactly **two** arenas
//! of [`DEFAULT_BATCH_OPS`] ops ping-pong between the threads (plus
//! the generator's own `O(window)` event buffer). The filled arena
//! travels through a rendezvous channel; the drained arena is recycled
//! back, so steady state allocates nothing.
//!
//! Determinism: the op sequence is exactly what the generator would
//! yield per op, so [`RunStats`] — fault verdicts and lint findings
//! included — are bit-identical to [`run`]/[`run_metered`] on the same
//! cell. The only observable difference is the two batch telemetry
//! counters (`batch_ops_refilled`, `batch_fallback_ops`), which the
//! per-op path leaves at zero; `tests/batch_equivalence.rs` pins both
//! facts. The generator thread owns no telemetry handle — all counting
//! happens on the simulating side, preserving the single-writer
//! contract.
//!
//! [`run`]: super::run
//! [`run_metered`]: super::run_metered
//! [`OpBatch`]: aos_isa::stream::OpBatch
//! [`DEFAULT_BATCH_OPS`]: aos_isa::stream::DEFAULT_BATCH_OPS

use std::sync::mpsc;

use aos_isa::stream::{BatchSource, BufferedOps, OpBatch, OpStream, DEFAULT_BATCH_OPS};
use aos_sim::Machine;
use aos_workloads::{TraceGenerator, WorkloadProfile};

use super::campaign::CellOutput;
use super::SystemUnderTest;

/// The simulating side of the double buffer: a [`BatchSource`] that
/// receives filled arenas from the generator thread and recycles
/// drained ones back.
///
/// Each refill is a constant-time arena swap — no op is ever copied
/// between buffers. When the generator hangs up (stream exhausted),
/// refills return 0 and the driver winds down; when this source drops,
/// the recycle channel disconnects and the generator thread exits even
/// mid-rendezvous, so neither side can deadlock on shutdown.
#[derive(Debug)]
pub struct OverlapSource {
    filled: mpsc::Receiver<OpBatch>,
    recycle: mpsc::Sender<OpBatch>,
    /// Whether the producing side fills arenas batch-natively (true
    /// for [`TraceGenerator`]); forwarded so fallback telemetry stays
    /// accurate through the channel hop.
    native: bool,
    done: bool,
}

impl BatchSource for OverlapSource {
    fn refill_batch(&mut self, batch: &mut OpBatch) -> usize {
        if self.done {
            return 0;
        }
        match self.filled.recv() {
            Ok(mut full) => {
                std::mem::swap(batch, &mut full);
                // `full` is now the drained arena the driver just
                // cleared; hand it back for the next fill. The
                // generator may already have exited — then the op
                // stream is ending anyway and the arena just drops.
                let _ = self.recycle.send(full);
                batch.len()
            }
            Err(mpsc::RecvError) => {
                self.done = true;
                0
            }
        }
    }

    fn batch_native(&self) -> bool {
        self.native
    }
}

/// What the generator thread reports back when it finishes.
struct ProducerReport {
    /// Ops pushed into arenas (equals what the machine consumed).
    ops: u64,
    /// The generator's own peak event-buffer occupancy, in ops.
    peak_buffered_ops: usize,
}

/// Runs one cell batch-granular, overlapping generation with
/// simulation when the host can actually run both at once. Drop-in
/// replacement for [`super::run_metered`]: same stats, same metering
/// columns, batch-granular memory bound.
///
/// On a single-hardware-thread host the rendezvous per batch costs
/// more than the overlap returns, so the cell degrades to the
/// in-thread batched driver ([`Machine::run_batched`]) — identical op
/// sequence, identical stats and batch counters, one arena instead of
/// two. The stats are bit-identical across all three shapes (per-op,
/// in-thread batched, threaded overlap); only the `peak_trace_bytes`
/// metering reflects which shape ran.
pub fn run_overlapped(profile: &WorkloadProfile, sut: &SystemUnderTest) -> CellOutput {
    if aos_util::par::effective_threads(None) >= 2 {
        return run_overlapped_threaded(profile, sut);
    }
    let mut gen = TraceGenerator::new(profile, sut.safety, sut.scale).metered();
    let mut machine = Machine::new(sut.machine_config());
    let stats = machine.run_batched(&mut gen);
    CellOutput {
        stats,
        trace_ops: gen.ops(),
        peak_trace_bytes: (DEFAULT_BATCH_OPS + gen.peak_buffered_ops()) as u64
            * std::mem::size_of::<aos_isa::Op>() as u64,
    }
}

/// The always-threaded double buffer behind [`run_overlapped`]:
/// generator thread fills, simulating thread drains, two arenas
/// ping-pong. Exposed so the equivalence suite (and callers that know
/// their core budget) can exercise the overlap path regardless of
/// what the host advertises.
pub fn run_overlapped_threaded(profile: &WorkloadProfile, sut: &SystemUnderTest) -> CellOutput {
    let batch_ops = DEFAULT_BATCH_OPS;
    let (fill_tx, fill_rx) = mpsc::sync_channel::<OpBatch>(1);
    let (recycle_tx, recycle_rx) = mpsc::channel::<OpBatch>();
    // Seed the producer with one arena; the driver's own arena joins
    // the rotation at the first swap, giving exactly two in flight.
    recycle_tx
        .send(OpBatch::with_capacity(batch_ops))
        .expect("receiver held below");

    let profile = *profile;
    let sut = *sut;
    let (stats, report) = std::thread::scope(|scope| {
        let producer = scope.spawn(move || {
            let mut gen = TraceGenerator::new(&profile, sut.safety, sut.scale).metered();
            while let Ok(mut arena) = recycle_rx.recv() {
                arena.clear();
                let n = gen.refill_batch(&mut arena);
                // Exhausted, or the simulating side hung up early:
                // either way stop producing. Dropping `fill_tx` is the
                // end-of-stream signal.
                if n == 0 || fill_tx.send(arena).is_err() {
                    break;
                }
            }
            ProducerReport {
                ops: gen.ops(),
                peak_buffered_ops: gen.peak_buffered_ops(),
            }
        });

        let source = OverlapSource {
            filled: fill_rx,
            recycle: recycle_tx,
            native: true,
            done: false,
        };
        let mut machine = Machine::new(sut.machine_config());
        let stats = machine.run_batched(source);
        let report = producer
            .join()
            .expect("generator thread only runs panic-free library code");
        (stats, report)
    });

    CellOutput {
        stats,
        trace_ops: report.ops,
        // Peak buffered trace: both ping-pong arenas plus the
        // generator's event buffer — constant in the trace length.
        peak_trace_bytes: (2 * batch_ops + report.peak_buffered_ops) as u64
            * std::mem::size_of::<aos_isa::Op>() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_isa::SafetyConfig;
    use aos_util::Counter;
    use aos_workloads::profile::by_name;

    #[test]
    fn overlapped_run_matches_metered_run() {
        let p = by_name("hmmer").unwrap();
        for (safety, threaded) in [
            (SafetyConfig::Baseline, false),
            (SafetyConfig::Aos, false),
            (SafetyConfig::Baseline, true),
            (SafetyConfig::Aos, true),
        ] {
            let sut = SystemUnderTest::scaled(safety, 0.004).with_telemetry(true);
            let metered = super::super::run_metered(p, &sut);
            let overlapped = if threaded {
                run_overlapped_threaded(p, &sut)
            } else {
                run_overlapped(p, &sut)
            };
            assert_eq!(overlapped.trace_ops, metered.trace_ops);
            assert_eq!(
                overlapped.stats.without_telemetry(),
                metered.stats.without_telemetry(),
                "{safety}: overlap changed the simulation"
            );
            // Telemetry identical up to the batch counters the per-op
            // path cannot increment.
            let zeroed = [Counter::BatchOpsRefilled, Counter::BatchFallbackOps];
            assert_eq!(
                overlapped.stats.telemetry.with_counters_zeroed(&zeroed),
                metered.stats.telemetry.with_counters_zeroed(&zeroed),
            );
            assert_eq!(
                overlapped.stats.telemetry.counter(Counter::BatchOpsRefilled),
                overlapped.trace_ops,
                "every op must arrive through a batch refill"
            );
            assert_eq!(
                overlapped
                    .stats
                    .telemetry
                    .counter(Counter::BatchFallbackOps),
                0,
                "the generator is batch-native; nothing may fall back"
            );
        }
    }

    #[test]
    fn overlapped_peak_memory_is_batch_granular() {
        let p = by_name("mcf").unwrap();
        let sut = SystemUnderTest::scaled(SafetyConfig::Aos, 0.01);
        let op_bytes = std::mem::size_of::<aos_isa::Op>() as u64;
        for out in [run_overlapped(p, &sut), run_overlapped_threaded(p, &sut)] {
            // At least one full arena, far below the materialized
            // trace, independent of scale.
            assert!(out.peak_trace_bytes >= DEFAULT_BATCH_OPS as u64 * op_bytes);
            assert!(out.peak_trace_bytes < out.trace_ops * op_bytes / 4);
        }
    }
}
