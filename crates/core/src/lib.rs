//! AOS: hardware-based always-on heap memory safety (MICRO 2020) —
//! the top-level crate of the reproduction.
//!
//! This crate ties the substrates together and exposes the two ways to
//! use the system:
//!
//! - **Functional:** [`AosProcess`] is an always-on memory-safety
//!   machine. Allocate with [`AosProcess::malloc`], access memory with
//!   [`AosProcess::load`]/[`AosProcess::store`], release with
//!   [`AosProcess::free`] — every access by a signed pointer is bounds
//!   checked exactly as the hardware MCU would, and spatial violations,
//!   use-after-free, double free and invalid free all surface as
//!   [`MemorySafetyError`]s. The [`security`] module packages the
//!   paper's §VII attack scenarios against it.
//!
//! - **Timing:** [`experiment`] drives the Table IV machine
//!   ([`aos_sim`]) over calibrated workload models
//!   ([`aos_workloads`]) to regenerate every figure and table of the
//!   paper's evaluation; [`hwcost`] reproduces the Table I hardware
//!   overhead estimates.
//!
//! # Quickstart
//!
//! ```
//! use aos_core::{AosProcess, MemorySafetyError};
//!
//! let mut process = AosProcess::new();
//! let p = process.malloc(64).unwrap();
//!
//! // In-bounds accesses work like normal memory.
//! process.store(p + 8, 0xDEAD_BEEF).unwrap();
//! assert_eq!(process.load(p + 8).unwrap(), 0xDEAD_BEEF);
//!
//! // One byte past the allocation faults.
//! assert!(matches!(
//!     process.load(p + 64),
//!     Err(MemorySafetyError::OutOfBounds { .. })
//! ));
//!
//! // Use-after-free faults too: the pointer stays signed but its
//! // bounds are gone.
//! process.free(p).unwrap();
//! assert!(process.load(p).is_err());
//! ```

pub mod experiment;
pub mod ext;
pub mod hwcost;
mod memory;
pub mod os;
mod process;
pub mod security;

pub use ext::ExtensionError;
pub use memory::SparseMemory;
pub use process::{AosProcess, MemorySafetyError, ProcessConfig};

// Re-export the substrate crates so downstream users need a single
// dependency.
pub use aos_hbt as hbt;
pub use aos_heap as heap;
pub use aos_isa as isa;
pub use aos_mcu as mcu;
pub use aos_ptrauth as ptrauth;
pub use aos_qarma as qarma;
pub use aos_sim as sim;
pub use aos_util as util;
pub use aos_workloads as workloads;
