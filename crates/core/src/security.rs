//! The §VII security analysis as executable scenarios.
//!
//! Each function stages one of the paper's attack classes against a
//! fresh [`AosProcess`] and returns what happened, so the test suite
//! (and `examples/attack_gallery.rs`) can assert both halves of every
//! claim: the attack *works* on an unprotected baseline and is
//! *detected* by AOS.

use crate::process::{AosProcess, MemorySafetyError};

/// Outcome of one staged attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: &'static str,
    /// What the attack achieves on a machine without AOS.
    pub baseline_effect: String,
    /// The error AOS raised, if any.
    pub detected: Option<MemorySafetyError>,
}

impl ScenarioOutcome {
    /// Whether AOS stopped the attack.
    pub fn is_detected(&self) -> bool {
        self.detected.is_some()
    }
}

/// Heap out-of-bounds read (Fig. 12 line 6): an adjacent over-read
/// that leaks a neighbouring chunk's secret.
pub fn oob_read() -> ScenarioOutcome {
    let mut p = AosProcess::new();
    let victim = p
        .malloc(64)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    let secret_holder = p
        .malloc(64)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    p.store(secret_holder, 0x5EC2E7)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");

    // Baseline: reading past `victim` reaches the neighbour's data
    // (16-byte header gap, then the secret).
    let secret_addr = p.layout().address(secret_holder);
    let victim_addr = p.layout().address(victim);
    let leak = p.load_unchecked(victim + (secret_addr - victim_addr));

    let detected = p.load(victim + 64).err();
    ScenarioOutcome {
        name: "heap OOB read",
        baseline_effect: format!("leaked neighbour value {leak:#x}"),
        detected,
    }
}

/// Heap out-of-bounds write (Fig. 12 line 7): corrupting an adjacent
/// chunk.
pub fn oob_write() -> ScenarioOutcome {
    let mut p = AosProcess::new();
    let attacker = p
        .malloc(64)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    let target = p
        .malloc(64)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    p.store(target, 0x600D)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");

    let delta = p.layout().address(target) - p.layout().address(attacker);
    p.store_unchecked(attacker + delta, 0xBAD);
    let corrupted = p
        .load(target)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");

    let detected = p.store(attacker + 64, 0xBAD).err();
    ScenarioOutcome {
        name: "heap OOB write",
        baseline_effect: format!("corrupted neighbour to {corrupted:#x}"),
        detected,
    }
}

/// A *non-adjacent* illegal access that jumps far past the object —
/// the case redzone/trip-wire schemes like REST miss (§I), but bounds
/// checking catches.
pub fn non_adjacent_oob() -> ScenarioOutcome {
    let mut p = AosProcess::new();
    let a = p
        .malloc(64)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    let far_victim = p
        .malloc(64)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    p.store(far_victim, 0x1337)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");

    // Jump 1 MiB past the allocation: over any plausible redzone.
    let detected = p.load(a + (1 << 20)).err();
    ScenarioOutcome {
        name: "non-adjacent OOB (jumps over redzones)",
        baseline_effect: "reads arbitrary heap memory".to_string(),
        detected,
    }
}

/// Use-after-free / dangling pointer (Fig. 12 line 14).
pub fn use_after_free() -> ScenarioOutcome {
    let mut p = AosProcess::new();
    let ptr = p
        .malloc(128)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    p.store(ptr, 0xA11CE)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    p.free(ptr)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");

    let stale = p.load_unchecked(ptr);
    let detected = p.load(ptr).err();
    ScenarioOutcome {
        name: "use-after-free",
        baseline_effect: format!("read stale value {stale:#x} through dangling pointer"),
        detected,
    }
}

/// Double free (Fig. 12 lines 16–19).
pub fn double_free() -> ScenarioOutcome {
    let mut p = AosProcess::new();
    let ptr = p
        .malloc(64)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    p.free(ptr)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    let detected = p.free(ptr).err();
    ScenarioOutcome {
        name: "double free",
        baseline_effect: "corrupts the allocator free list".to_string(),
        detected,
    }
}

/// House of Spirit (paper Fig. 1): the attacker crafts a fake chunk
/// and frees a pointer to it; the next `malloc` of that size returns
/// attacker-chosen memory.
pub fn house_of_spirit() -> ScenarioOutcome {
    // Baseline half: the classic glibc fastbin behaviour, shown
    // against the raw allocator.
    let mut baseline_heap = aos_heap::HeapAllocator::new(aos_heap::HeapConfig::default());
    let crafted = 0x7000_0000u64;
    baseline_heap
        .fastbin_insert_raw(crafted, 48)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    let victim = baseline_heap
        .malloc(48)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    let baseline_effect = format!(
        "malloc returned attacker-controlled address {:#x}",
        victim.base
    );

    // AOS half: free() of the crafted pointer dies in bndclr, because
    // the crafted address was never signed and has no bounds.
    let mut p = AosProcess::new();
    let _real = p
        .malloc(48)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    let detected = p.free(crafted).err();
    ScenarioOutcome {
        name: "House of Spirit (crafted free)",
        baseline_effect,
        detected,
    }
}

/// PAC forging (§VII-C): the attacker rewrites the PAC bits of a
/// signed pointer hoping to alias another object's row. Returns the
/// number of forged PACs (out of `attempts`) that slipped through —
/// expected ≈ `attempts × live_chunks / 2^16`.
pub fn pac_forging(attempts: u64) -> (u64, ScenarioOutcome) {
    let mut p = AosProcess::new();
    // A modest set of live objects for the attacker to hope to hit.
    for _ in 0..64 {
        let q = p
            .malloc(4096)
            .expect("staged scenario: a legal operation on a fresh process cannot fail");
        p.store(q, 1)
            .expect("staged scenario: a legal operation on a fresh process cannot fail");
    }
    let target = p
        .malloc(64)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    let addr = p.layout().address(target);
    let layout = p.layout();
    let mut successes = 0;
    let mut first_error = None;
    for forged_pac in 0..attempts {
        let forged = layout.compose(addr, forged_pac & 0xFFFF, 1);
        match p.load(forged) {
            Ok(_) => successes += 1,
            Err(e) => {
                first_error.get_or_insert(e);
            }
        }
    }
    (
        successes,
        ScenarioOutcome {
            name: "PAC forging",
            baseline_effect: "n/a (attack on AOS itself)".to_string(),
            detected: first_error,
        },
    )
}

/// AHC forging (§VII-C): stripping or zeroing the AHC to bypass
/// checking is caught by the `autm` on-load authentication when AOS is
/// paired with pointer integrity (Fig. 13).
pub fn ahc_forging() -> ScenarioOutcome {
    let mut p = AosProcess::new();
    let ptr = p
        .malloc(64)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    // The attacker clears the metadata bits so the access looks
    // unsigned and skips bounds checking...
    let stripped = p.signer().xpacm(ptr);
    assert!(
        p.load(stripped).is_ok(),
        "bounds checking alone is bypassed"
    );
    // ...but on-load authentication rejects the unsigned data pointer.
    let detected = p.authenticate(stripped).err();
    ScenarioOutcome {
        name: "AHC forging (autm authentication)",
        baseline_effect: "stripped pointer would skip bounds checks".to_string(),
        detected,
    }
}

/// Return-address corruption / ROP (§VII-B): with PA integrated,
/// return addresses are signed with the stack pointer as modifier
/// (paper Fig. 3). The attacker overwrites the saved return address
/// with a gadget address; authentication on return recomputes the PAC
/// and rejects the forgery.
pub fn rop_hijack() -> ScenarioOutcome {
    let mut p = AosProcess::new();
    let layout = p.layout();
    let sp = 0x3F00_0000_1000u64; // stack frame address (the modifier)
    let ra = 0x0040_1234u64; // legitimate return site
    let gadget = 0x0040_9999u64; // attacker's gadget

    // Prologue: pacia lr, sp — sign and spill the return address.
    let signed_ra = layout.compose(ra, p.signer().pac_for(ra, sp), 0);
    p.store_unchecked(sp, signed_ra);

    // Baseline: the attacker overwrites the slot and the return jumps
    // to the gadget.
    p.store_unchecked(sp, gadget);
    let hijacked = p.load_unchecked(sp);
    let baseline_effect = format!(
        "return jumps to attacker gadget {:#x}",
        layout.address(hijacked)
    );

    // Epilogue with PA: autia lr, sp — recompute and compare the PAC.
    let loaded = p.load_unchecked(sp);
    let expected_pac = p.signer().pac_for(layout.address(loaded), sp);
    let detected = if layout.pac(loaded) == expected_pac {
        None
    } else {
        Some(MemorySafetyError::AuthenticationFailure { pointer: loaded })
    };
    ScenarioOutcome {
        name: "ROP return-address hijack (PA cooperation)",
        baseline_effect,
        detected,
    }
}

/// Intra-object overflow: overflowing one field into another inside
/// the same allocation. AOS bounds are per-chunk, so this is **not**
/// detected — the paper defers bounds narrowing to future work
/// (§VII-F). Returns `None` in `detected`, documenting the limitation.
pub fn intra_object_overflow() -> ScenarioOutcome {
    let mut p = AosProcess::new();
    // struct { char buf[16]; u64 is_admin; }
    let obj = p
        .malloc(24)
        .expect("staged scenario: a legal operation on a fresh process cannot fail");
    p.store(obj + 16, 0)
        .expect("staged scenario: a legal operation on a fresh process cannot fail"); // is_admin = false
                                                                                      // Overflow buf by one element: stays inside the chunk.
    let detected = p.store(obj + 16, 1).err();
    ScenarioOutcome {
        name: "intra-object overflow (documented limitation)",
        baseline_effect: "field corrupted within the same chunk".to_string(),
        detected,
    }
}

/// Runs every scenario, returning the outcomes in a stable order.
pub fn all_scenarios() -> Vec<ScenarioOutcome> {
    let (_, forging) = pac_forging(256);
    vec![
        oob_read(),
        oob_write(),
        non_adjacent_oob(),
        use_after_free(),
        double_free(),
        house_of_spirit(),
        forging,
        ahc_forging(),
        rop_hijack(),
        intra_object_overflow(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_attacks_detected() {
        assert!(matches!(
            oob_read().detected,
            Some(MemorySafetyError::OutOfBounds {
                is_store: false,
                ..
            })
        ));
        assert!(matches!(
            oob_write().detected,
            Some(MemorySafetyError::OutOfBounds { is_store: true, .. })
        ));
        assert!(non_adjacent_oob().is_detected());
    }

    #[test]
    fn temporal_attacks_detected() {
        assert!(matches!(
            use_after_free().detected,
            Some(MemorySafetyError::UseAfterFree { .. })
        ));
        assert!(matches!(
            double_free().detected,
            Some(MemorySafetyError::InvalidFree { .. })
        ));
    }

    #[test]
    fn house_of_spirit_blocked_by_bndclr() {
        let o = house_of_spirit();
        assert!(
            o.baseline_effect.contains("0x70000000"),
            "{}",
            o.baseline_effect
        );
        assert!(matches!(
            o.detected,
            Some(MemorySafetyError::InvalidFree { .. })
        ));
    }

    #[test]
    fn pac_forging_rarely_succeeds() {
        let (successes, outcome) = pac_forging(512);
        // 65 live chunks over a 16-bit PAC space: expect ~0.5 hits in
        // 512 tries; allow generous slack but demand near-total
        // failure.
        assert!(successes <= 5, "forging succeeded {successes}/512 times");
        assert!(outcome.is_detected());
    }

    #[test]
    fn ahc_forging_caught_by_authentication() {
        assert!(matches!(
            ahc_forging().detected,
            Some(MemorySafetyError::AuthenticationFailure { .. })
        ));
    }

    #[test]
    fn intra_object_limitation_is_honest() {
        assert!(!intra_object_overflow().is_detected());
    }

    #[test]
    fn rop_hijack_caught_by_return_address_signing() {
        let o = rop_hijack();
        assert!(
            o.baseline_effect.contains("0x409999"),
            "{}",
            o.baseline_effect
        );
        assert!(matches!(
            o.detected,
            Some(MemorySafetyError::AuthenticationFailure { .. })
        ));
    }

    #[test]
    fn legitimate_return_authenticates() {
        // The dual of the attack: an untouched signed return address
        // passes authentication.
        let p = AosProcess::new();
        let layout = p.layout();
        let (sp, ra) = (0x3F00_0000_2000u64, 0x0040_5678u64);
        let signed = layout.compose(ra, p.signer().pac_for(ra, sp), 0);
        assert_eq!(
            layout.pac(signed),
            p.signer().pac_for(layout.address(signed), sp)
        );
    }

    #[test]
    fn gallery_covers_all_classes() {
        let all = all_scenarios();
        assert_eq!(all.len(), 10);
        let detected = all.iter().filter(|o| o.is_detected()).count();
        assert_eq!(detected, 9, "all but the documented limitation");
    }
}
