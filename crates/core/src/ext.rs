//! Extensions beyond the paper's evaluated system, implementing its
//! stated future-work directions.
//!
//! - **Bounds narrowing** (§VII-F): the evaluated AOS checks whole-chunk
//!   bounds, so intra-object overflows (one struct field into another)
//!   pass. [`AosProcess::narrow`] derives a *sub-object* pointer whose
//!   PAC indexes its own bounds record, so accesses through it are
//!   checked against the field, not the chunk.
//! - **Non-heap protection** (§III-D): the paper signs heap pointers
//!   and notes the approach "can be applied to other data-pointer
//!   types (e.g., stack pointers)". [`AosProcess::protect_region`]
//!   signs an arbitrary region — a stack frame, a global buffer — with
//!   the same machinery.
//!
//! Both extensions reuse the unmodified signing and table paths: a
//! narrowed or region pointer is indistinguishable from a heap pointer
//! to the MCU, so all of §VII's detection guarantees carry over.
//!
//! # Examples
//!
//! ```
//! use aos_core::AosProcess;
//!
//! let mut p = AosProcess::new();
//! // struct { char buf[16]; u64 is_admin; } — with 16-byte fields so
//! // the compression granularity is respected.
//! let obj = p.malloc(32).unwrap();
//! let field = p.narrow(obj, 16, 16).unwrap();
//! p.store(field, 0x41).unwrap();
//! // Overflowing the field is now caught:
//! assert!(p.store(field + 16, 1).is_err());
//! // ...while the whole-object pointer still reaches everything.
//! assert!(p.store(obj + 16, 0).is_ok());
//! ```

use aos_mcu::{AosException, McuOp};

use crate::process::AosProcess;

/// Errors raised by the narrowing/region extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtensionError {
    /// The requested range is not 16-byte aligned or not a multiple of
    /// 16 bytes — the granularity the Fig. 9 bounds compression can
    /// represent.
    Misaligned {
        /// The offending address, offset or size.
        value: u64,
    },
    /// The sub-range does not lie within the source pointer's valid
    /// bounds (or the source pointer has none).
    OutsideSourceBounds {
        /// The source pointer.
        pointer: u64,
    },
    /// No bounds record exists for the pointer being released — double
    /// release, or a pointer that was never protected.
    NotProtected {
        /// The pointer passed to the release call.
        pointer: u64,
    },
    /// Narrowing at offset 0 is not representable: the sub-object
    /// would share its base address — and therefore its PAC row and
    /// its lower-bound match key — with the parent chunk, making the
    /// two records indistinguishable to the table.
    SharesBaseWithParent {
        /// The source pointer.
        pointer: u64,
    },
}

impl std::fmt::Display for ExtensionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtensionError::Misaligned { value } => {
                write!(f, "{value:#x} is not 16-byte granular")
            }
            ExtensionError::OutsideSourceBounds { pointer } => {
                write!(f, "range not within the bounds of {pointer:#x}")
            }
            ExtensionError::NotProtected { pointer } => {
                write!(f, "{pointer:#x} has no bounds record to release")
            }
            ExtensionError::SharesBaseWithParent { pointer } => {
                write!(f, "cannot narrow {pointer:#x} at offset 0")
            }
        }
    }
}

impl std::error::Error for ExtensionError {}

impl AosProcess {
    /// **Extension (§VII-F):** derives a signed sub-object pointer
    /// covering `[offset, offset + size)` inside the object `ptr`
    /// points to. Accesses through the returned pointer are checked
    /// against the *field* bounds, detecting the intra-object
    /// overflows the base design documents as future work.
    ///
    /// Release the narrowed bounds with
    /// [`AosProcess::release_protection`] when done (and before the
    /// underlying chunk is freed).
    ///
    /// # Errors
    ///
    /// - [`ExtensionError::SharesBaseWithParent`] for `offset == 0`
    ///   (the sub-object would alias the parent's table record);
    /// - [`ExtensionError::Misaligned`] unless `offset` and `size` are
    ///   16-byte granular (the compression resolution);
    /// - [`ExtensionError::OutsideSourceBounds`] if the range is not
    ///   fully covered by `ptr`'s current bounds.
    pub fn narrow(&mut self, ptr: u64, offset: u64, size: u64) -> Result<u64, ExtensionError> {
        if offset == 0 {
            return Err(ExtensionError::SharesBaseWithParent { pointer: ptr });
        }
        if !offset.is_multiple_of(16) {
            return Err(ExtensionError::Misaligned { value: offset });
        }
        if size == 0 || !size.is_multiple_of(16) {
            return Err(ExtensionError::Misaligned { value: size });
        }
        // Both ends of the sub-range must pass a bounds check against
        // the *source* pointer's record.
        let (mcu, hbt, _) = self.mcu_hbt_signer();
        for probe in [ptr + offset, ptr + offset + size - 8] {
            let checked = mcu.run_sync(
                McuOp::Access {
                    pointer: probe,
                    is_store: false,
                },
                hbt,
            );
            match checked {
                Ok(out) if !out.skipped => {}
                _ => return Err(ExtensionError::OutsideSourceBounds { pointer: ptr }),
            }
        }
        self.sign_and_store(self.strip_addr(ptr) + offset, size)
    }

    /// **Extension (§III-D):** signs an arbitrary 16-byte-aligned
    /// region (stack frame, global buffer) so accesses through the
    /// returned pointer are bounds checked like heap accesses.
    ///
    /// # Errors
    ///
    /// Returns [`ExtensionError::Misaligned`] for unaligned bases or
    /// non-granular/oversized sizes.
    pub fn protect_region(&mut self, base: u64, size: u64) -> Result<u64, ExtensionError> {
        if !base.is_multiple_of(16) {
            return Err(ExtensionError::Misaligned { value: base });
        }
        if size == 0 || !size.is_multiple_of(16) || size > u32::MAX as u64 {
            return Err(ExtensionError::Misaligned { value: size });
        }
        self.sign_and_store(base, size)
    }

    /// Releases the bounds of a pointer produced by
    /// [`AosProcess::narrow`] or [`AosProcess::protect_region`]. The
    /// pointer stays signed but loses its bounds — exactly like a
    /// freed heap pointer, any further use faults.
    ///
    /// # Errors
    ///
    /// Returns [`ExtensionError::NotProtected`] when no matching
    /// bounds record exists (double release).
    pub fn release_protection(&mut self, ptr: u64) -> Result<(), ExtensionError> {
        let (mcu, hbt, _) = self.mcu_hbt_signer();
        match mcu.run_sync(McuOp::BndClr { pointer: ptr }, hbt) {
            Ok(_) => Ok(()),
            Err(AosException::BoundsClearFailure { .. }) => {
                Err(ExtensionError::NotProtected { pointer: ptr })
            }
            Err(other) => unreachable!("bndclr cannot raise {other}"),
        }
    }

    fn strip_addr(&self, ptr: u64) -> u64 {
        self.layout().address(ptr)
    }

    /// pacma + bndstr for a derived pointer, resizing on row overflow
    /// exactly as `malloc` does.
    fn sign_and_store(&mut self, base: u64, size: u64) -> Result<u64, ExtensionError> {
        let context = self.context();
        let (_, _, signer) = self.mcu_hbt_signer();
        let signed = signer.pacma(base, context, size);
        loop {
            let (mcu, hbt, _) = self.mcu_hbt_signer();
            match mcu.run_sync(
                McuOp::BndStr {
                    pointer: signed,
                    size,
                },
                hbt,
            ) {
                Ok(_) => return Ok(signed),
                Err(AosException::BoundsStoreFailure { .. }) => {
                    let (_, hbt, _) = self.mcu_hbt_signer();
                    hbt.begin_resize();
                    self.note_resize();
                }
                Err(other) => unreachable!("bndstr cannot raise {other}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemorySafetyError;

    #[test]
    fn narrowing_detects_intra_object_overflow() {
        let mut p = AosProcess::new();
        // struct { char name[16]; char buf[16]; u64 is_admin; }
        let obj = p.malloc(48).unwrap();
        p.store(obj + 32, 0).unwrap(); // is_admin = 0
        let buf = p.narrow(obj, 16, 16).unwrap();
        p.store(buf + 8, 0x42).unwrap();
        let err = p.store(buf + 16, 1).unwrap_err();
        assert!(matches!(err, MemorySafetyError::OutOfBounds { .. }));
        // The object pointer still covers the whole chunk.
        assert!(p.store(obj + 32, 0).is_ok());
    }

    #[test]
    fn narrowed_interior_field() {
        let mut p = AosProcess::new();
        let obj = p.malloc(64).unwrap();
        let field = p.narrow(obj, 32, 16).unwrap();
        assert!(p.load(field).is_ok());
        assert!(p.load(field + 8).is_ok());
        assert!(p.load(field + 16).is_err(), "past the field");
        assert!(p.load(field - 8).is_err(), "before the field");
    }

    #[test]
    fn narrow_rejects_misaligned_and_oob_ranges() {
        let mut p = AosProcess::new();
        let obj = p.malloc(32).unwrap();
        assert_eq!(
            p.narrow(obj, 8, 16),
            Err(ExtensionError::Misaligned { value: 8 })
        );
        assert_eq!(
            p.narrow(obj, 16, 24),
            Err(ExtensionError::Misaligned { value: 24 })
        );
        assert_eq!(
            p.narrow(obj, 0, 16),
            Err(ExtensionError::SharesBaseWithParent { pointer: obj })
        );
        assert_eq!(
            p.narrow(obj, 16, 32),
            Err(ExtensionError::OutsideSourceBounds { pointer: obj })
        );
        let unsigned = p.layout().address(obj);
        assert!(matches!(
            p.narrow(unsigned, 16, 16),
            Err(ExtensionError::OutsideSourceBounds { .. })
        ));
    }

    #[test]
    fn narrowed_pointer_can_be_released() {
        let mut p = AosProcess::new();
        let obj = p.malloc(32).unwrap();
        let field = p.narrow(obj, 16, 16).unwrap();
        p.release_protection(field).unwrap();
        assert!(p.load(field).is_err(), "released field is locked");
        assert_eq!(
            p.release_protection(field),
            Err(ExtensionError::NotProtected { pointer: field })
        );
        assert!(p.load(obj).is_ok(), "object bounds unaffected");
    }

    #[test]
    fn stack_frame_protection_roundtrip() {
        let mut p = AosProcess::new();
        let frame = 0x3F00_0000_0000u64; // a "stack" region
        let fp = p.protect_region(frame, 256).unwrap();
        assert!(p.layout().is_signed(fp));
        p.store(fp + 128, 7).unwrap();
        assert_eq!(p.load(fp + 128).unwrap(), 7);
        assert!(p.store(fp + 256, 7).is_err(), "frame overflow caught");
        p.release_protection(fp).unwrap();
        assert!(p.load(fp).is_err(), "popped frame is locked");
    }

    #[test]
    fn protect_region_validates_arguments() {
        let mut p = AosProcess::new();
        assert!(matches!(
            p.protect_region(0x1001, 16),
            Err(ExtensionError::Misaligned { .. })
        ));
        assert!(matches!(
            p.protect_region(0x1000, 0),
            Err(ExtensionError::Misaligned { .. })
        ));
        assert!(matches!(
            p.protect_region(0x1000, (u32::MAX as u64) + 16),
            Err(ExtensionError::Misaligned { .. })
        ));
    }

    #[test]
    fn extension_errors_display() {
        assert!(ExtensionError::Misaligned { value: 3 }
            .to_string()
            .contains("granular"));
        assert!(ExtensionError::OutsideSourceBounds { pointer: 1 }
            .to_string()
            .contains("bounds"));
        assert!(ExtensionError::NotProtected { pointer: 1 }
            .to_string()
            .contains("release"));
    }
}
