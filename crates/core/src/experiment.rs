//! The experiment runner: one place that builds a Table IV machine for
//! a system-under-test and drives a calibrated workload through it.
//!
//! Every figure reproduction in `crates/bench/src/bin/` is a thin
//! formatter over [`run`]:
//!
//! - Fig. 14 — [`run`] per (workload × system), normalized to
//!   Baseline;
//! - Fig. 15 — AOS with the four [`SystemUnderTest`] optimization
//!   combinations;
//! - Fig. 16 — [`aos_sim::RunStats::mix`] from the AOS runs;
//! - Fig. 17 — [`aos_sim::RunStats::mcu`] / `bwb`;
//! - Fig. 18 — [`aos_sim::RunStats::traffic`] normalized to Baseline.

use aos_hbt::HbtConfig;
use aos_isa::SafetyConfig;
use aos_sim::{Machine, MachineConfig, RunStats, SimModel};
use aos_workloads::{TraceGenerator, WorkloadProfile};

pub mod campaign;
pub mod overlap;

/// A fully specified system configuration to evaluate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemUnderTest {
    /// Which of the five systems (Baseline/Watchdog/PA/AOS/PA+AOS).
    pub safety: SafetyConfig,
    /// L1-B bounds cache present (§V-F1). Ignored by non-AOS systems.
    pub l1b: bool,
    /// Bounds compression enabled (§V-D).
    pub compression: bool,
    /// Bounds way buffer enabled (§V-C).
    pub bwb: bool,
    /// Store→load bounds forwarding enabled (§V-F2).
    pub forwarding: bool,
    /// Window scale in `(0, 1]`: 1.0 = the profile's full window.
    pub scale: f64,
    /// Whether the machine records pipeline telemetry (the simulated
    /// behaviour is identical either way; see
    /// [`aos_util::telemetry`]).
    pub telemetry: bool,
    /// Which simulation model executes the trace (the stage-structured
    /// core by default; [`SimModel::Approximate`] selects the legacy
    /// analytic loop for A/B comparison).
    pub model: SimModel,
}

impl SystemUnderTest {
    /// The standard configuration of a system: all AOS optimizations
    /// on, full-scale window.
    pub fn standard(safety: SafetyConfig) -> Self {
        Self {
            safety,
            l1b: true,
            compression: true,
            bwb: true,
            forwarding: true,
            scale: 1.0,
            telemetry: false,
            model: SimModel::default(),
        }
    }

    /// Same, at a reduced window scale (tests, smoke runs).
    pub fn scaled(safety: SafetyConfig, scale: f64) -> Self {
        Self {
            scale,
            ..Self::standard(safety)
        }
    }

    /// Same system with telemetry recording switched on or off.
    pub fn with_telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Same system under a different simulation model.
    pub fn with_model(mut self, model: SimModel) -> Self {
        self.model = model;
        self
    }

    /// The machine configuration this system implies.
    pub fn machine_config(&self) -> MachineConfig {
        let mut config = MachineConfig::table_iv(self.safety);
        config.with_l1b = self.l1b;
        config.hbt = HbtConfig {
            compressed: self.compression,
            ..config.hbt
        };
        config.mcu.use_bwb = self.bwb;
        config.mcu.bounds_forwarding = self.forwarding;
        config.telemetry = self.telemetry;
        config.model = self.model;
        config
    }
}

/// Runs one workload on one system and returns the machine's
/// statistics.
///
/// # Examples
///
/// ```
/// use aos_core::experiment::{run, SystemUnderTest};
/// use aos_core::isa::SafetyConfig;
/// use aos_core::workloads::profile;
///
/// let p = profile::by_name("mcf").unwrap();
/// let stats = run(p, &SystemUnderTest::scaled(SafetyConfig::Aos, 0.01));
/// assert!(stats.cycles > 0);
/// ```
pub fn run(profile: &WorkloadProfile, sut: &SystemUnderTest) -> RunStats {
    let trace = TraceGenerator::new(profile, sut.safety, sut.scale);
    let mut machine = Machine::new(sut.machine_config());
    machine.run(trace)
}

/// [`run`] through a stream meter: same simulation, but the trace
/// flows through [`aos_isa::stream::Metered`] so the cell can report
/// how many ops it simulated and how much trace the pipeline ever held
/// buffered (the generator's event buffer — `O(window)`, not the
/// trace). The campaign's default cell body is the double-buffered
/// [`overlap::run_overlapped`], which produces identical stats; this
/// per-op variant remains the equivalence reference the batched path
/// is pinned against.
pub fn run_metered(profile: &WorkloadProfile, sut: &SystemUnderTest) -> campaign::CellOutput {
    use aos_isa::stream::{BufferedOps, OpStream};

    let mut trace = TraceGenerator::new(profile, sut.safety, sut.scale).metered();
    let mut machine = Machine::new(sut.machine_config());
    let stats = machine.run(&mut trace);
    campaign::CellOutput {
        stats,
        trace_ops: trace.ops(),
        peak_trace_bytes: trace.peak_buffered_ops() as u64
            * std::mem::size_of::<aos_isa::Op>() as u64,
    }
}

/// Convenience: execution time of `sut` normalized to the Baseline
/// system at the same scale (the y-axis of Figs. 14 and 15).
pub fn normalized_time(profile: &WorkloadProfile, sut: &SystemUnderTest) -> f64 {
    let baseline = run(
        profile,
        &SystemUnderTest {
            safety: SafetyConfig::Baseline,
            ..*sut
        },
    );
    let subject = run(profile, sut);
    subject.cycles as f64 / baseline.cycles as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_workloads::profile::by_name;

    #[test]
    fn standard_sut_matches_table_iv() {
        let sut = SystemUnderTest::standard(SafetyConfig::Aos);
        let cfg = sut.machine_config();
        assert!(cfg.aos_enabled);
        assert!(cfg.with_l1b);
        assert!(cfg.hbt.compressed);
        assert!(cfg.mcu.use_bwb);
        let base = SystemUnderTest::standard(SafetyConfig::Baseline).machine_config();
        assert!(!base.aos_enabled);
    }

    #[test]
    fn aos_run_checks_and_baseline_does_not() {
        let p = by_name("hmmer").unwrap();
        let aos = run(p, &SystemUnderTest::scaled(SafetyConfig::Aos, 0.01));
        let base = run(p, &SystemUnderTest::scaled(SafetyConfig::Baseline, 0.01));
        assert!(aos.mcu.signed_accesses > 0);
        assert_eq!(base.mcu.signed_accesses, 0);
        assert_eq!(aos.violations, 0, "benign workloads never fault");
    }

    #[test]
    fn metered_run_matches_plain_run() {
        let p = by_name("hmmer").unwrap();
        let sut = SystemUnderTest::scaled(SafetyConfig::Aos, 0.004);
        let plain = run(p, &sut);
        let metered = run_metered(p, &sut);
        assert_eq!(plain, metered.stats, "metering must be transparent");
        assert!(metered.trace_ops > 0);
        assert!(metered.peak_trace_bytes > 0);
    }

    #[test]
    fn normalized_time_of_baseline_is_one() {
        let p = by_name("libquantum").unwrap();
        let sut = SystemUnderTest::scaled(SafetyConfig::Baseline, 0.01);
        let n = normalized_time(p, &sut);
        assert!((n - 1.0).abs() < 1e-9, "{n}");
    }

    #[test]
    fn aos_overhead_is_positive_but_moderate_on_hmmer() {
        let p = by_name("hmmer").unwrap();
        let n = normalized_time(p, &SystemUnderTest::scaled(SafetyConfig::Aos, 0.02));
        assert!(n > 1.0, "hmmer checks nearly every access: {n}");
        assert!(n < 2.0, "but AOS must stay moderate: {n}");
    }
}
