//! Hardware-cost estimates (paper Table I).
//!
//! The paper sizes the AOS structures with CACTI 6.0 at 45 nm. CACTI
//! itself is a large C++ tool we cannot ship; instead this module uses
//! a piecewise power-law model **fit to CACTI's published outputs**
//! (the four structures of Table I), which reproduces the table and
//! extrapolates sensibly for the ablation sweeps (e.g. BWB sizing).
//! Small buffer-like structures (≲4 KiB: MCQ, BWB) and SRAM cache
//! arrays (L1-B, L1-D) follow different scaling regimes, hence the two
//! segments per metric.

/// Estimated costs of one SRAM structure at 45 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramCost {
    /// Area in mm².
    pub area_mm2: f64,
    /// Access time in ns.
    pub access_ns: f64,
    /// Dynamic access energy in pJ.
    pub dynamic_energy_pj: f64,
    /// Leakage power in mW.
    pub leakage_mw: f64,
}

/// One row of the Table I reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StructureCost {
    /// Structure name as the paper prints it.
    pub name: &'static str,
    /// Capacity in bytes.
    pub bytes: u64,
    /// Estimated costs.
    pub cost: SramCost,
}

/// Crossover between the buffer regime and the cache-array regime.
const REGIME_SPLIT_BYTES: f64 = 4096.0;

/// (small: (a, b), large: (a, b)) per metric; cost = a · (KiB)^b.
const AREA: ((f64, f64), (f64, f64)) = ((0.007_43, 0.976_7), (0.012_07, 0.740_6));
const ACCESS: ((f64, f64), (f64, f64)) = ((0.135_96, 0.065_1), (0.204_85, 0.108_5));
const ENERGY: ((f64, f64), (f64, f64)) = ((0.001_234, 0.480_8), (0.011_077, 0.329_5));
const LEAKAGE: ((f64, f64), (f64, f64)) = ((2.574_5, 0.860_6), (1.411_39, 1.073_7));

fn power_law(bytes: u64, params: ((f64, f64), (f64, f64))) -> f64 {
    let kib = bytes as f64 / 1024.0;
    let (a, b) = if (bytes as f64) < REGIME_SPLIT_BYTES {
        params.0
    } else {
        params.1
    };
    a * kib.powf(b)
}

/// Estimates the 45 nm cost of an SRAM structure of `bytes` capacity.
///
/// # Examples
///
/// ```
/// let c = aos_core::hwcost::estimate(32 * 1024); // the L1-B
/// assert!((c.area_mm2 - 0.1573).abs() < 0.01);
/// ```
pub fn estimate(bytes: u64) -> SramCost {
    SramCost {
        area_mm2: power_law(bytes, AREA),
        access_ns: power_law(bytes, ACCESS),
        dynamic_energy_pj: power_law(bytes, ENERGY),
        leakage_mw: power_law(bytes, LEAKAGE),
    }
}

/// The four structures of Table I: the 48-entry MCQ (~1.3 KiB of
/// entry state), the 64-entry BWB (384 B of tags + ways), the 32 KiB
/// L1-B, and the 64 KiB L1-D reference.
pub fn table_i() -> Vec<StructureCost> {
    let rows = [
        ("MCQ", 1331u64), // 48 entries × ~28 B ≈ 1.3 KB
        ("BWB", 384),     // 64 entries × 6 B
        ("L1-B Cache", 32 * 1024),
        ("L1-D Cache (for reference)", 64 * 1024),
    ];
    rows.iter()
        .map(|&(name, bytes)| StructureCost {
            name,
            bytes,
            cost: estimate(bytes),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table I values: (bytes, area, access, energy,
    /// leakage).
    const PAPER: [(u64, f64, f64, f64, f64); 4] = [
        (1331, 0.0096, 0.1383, 0.0014, 3.2269),
        (384, 0.00285, 0.12755, 0.00077, 1.10712),
        (32 * 1024, 0.1573, 0.2984, 0.0347, 58.295),
        (64 * 1024, 0.2628, 0.3217, 0.0436, 122.69),
    ];

    #[test]
    fn model_reproduces_table_i_within_5_percent() {
        for &(bytes, area, access, energy, leakage) in &PAPER {
            let c = estimate(bytes);
            for (got, want, what) in [
                (c.area_mm2, area, "area"),
                (c.access_ns, access, "access"),
                (c.dynamic_energy_pj, energy, "energy"),
                (c.leakage_mw, leakage, "leakage"),
            ] {
                let rel = (got - want).abs() / want;
                assert!(rel < 0.05, "{what} at {bytes}B: {got} vs {want}");
            }
        }
    }

    #[test]
    fn costs_grow_monotonically_with_size() {
        let sizes = [256u64, 1024, 8192, 32768, 131_072];
        let costs: Vec<SramCost> = sizes.iter().map(|&s| estimate(s)).collect();
        for w in costs.windows(2) {
            assert!(w[1].area_mm2 > w[0].area_mm2);
            assert!(w[1].leakage_mw > w[0].leakage_mw);
        }
    }

    #[test]
    fn table_i_has_four_rows_in_order() {
        let t = table_i();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].name, "MCQ");
        assert_eq!(t[2].bytes, 32 * 1024);
        assert!(t[0].cost.area_mm2 < t[2].cost.area_mm2);
    }

    #[test]
    fn aos_structures_are_small_relative_to_l1d() {
        let t = table_i();
        let l1d = t[3].cost;
        assert!(t[0].cost.area_mm2 < 0.05 * l1d.area_mm2, "MCQ is tiny");
        assert!(t[1].cost.leakage_mw < 0.02 * l1d.leakage_mw, "BWB is tiny");
        assert!(
            t[2].cost.area_mm2 < l1d.area_mm2,
            "L1-B under half the L1-D"
        );
    }
}
