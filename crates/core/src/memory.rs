//! A sparse 64-bit byte-addressable memory for the functional machine.

use std::collections::HashMap;

const PAGE_BITS: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// Page-granular sparse memory. Unwritten bytes read as zero, like
/// fresh anonymous pages.
///
/// # Examples
///
/// ```
/// use aos_core::SparseMemory;
/// let mut m = SparseMemory::new();
/// m.write_u64(0x1000, 42);
/// assert_eq!(m.read_u64(0x1000), 42);
/// assert_eq!(m.read_u64(0x2000), 0, "untouched memory reads zero");
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl SparseMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of materialized pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_BITS)) {
            Some(page) => page[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Writes one byte, materializing the page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_BITS)
            .or_insert_with(|| Box::new([0; PAGE_SIZE]));
        page[(addr as usize) & (PAGE_SIZE - 1)] = value;
    }

    /// Reads a little-endian u64 (may straddle pages).
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut bytes = [0u8; 8];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u64::from_le_bytes(bytes)
    }

    /// Writes a little-endian u64 (may straddle pages).
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        for (i, b) in value.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Copies `buf.len()` bytes starting at `addr` into `buf`.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) {
        for (i, b) in buf.iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = SparseMemory::new();
        m.write_u64(0xABC0, 0x0123_4567_89AB_CDEF);
        assert_eq!(m.read_u64(0xABC0), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn straddles_page_boundaries() {
        let mut m = SparseMemory::new();
        let addr = (1 << 12) - 4;
        m.write_u64(addr, u64::MAX);
        assert_eq!(m.read_u64(addr), u64::MAX);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn bytes_interface() {
        let mut m = SparseMemory::new();
        m.write_bytes(0x100, b"hello world");
        let mut buf = [0u8; 11];
        m.read_bytes(0x100, &mut buf);
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn unwritten_reads_zero() {
        let m = SparseMemory::new();
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.read_u64(0xFFFF_FFFF_0000), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn little_endian_layout() {
        let mut m = SparseMemory::new();
        m.write_u64(0, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u8(0), 0x88);
        assert_eq!(m.read_u8(7), 0x11);
    }
}
