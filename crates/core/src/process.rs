//! The functional always-on machine: AOS semantics without timing.

use std::collections::VecDeque;

use aos_hbt::{HashedBoundsTable, HbtConfig};
use aos_heap::{HeapAllocator, HeapConfig, HeapError};
use aos_mcu::{AosException, McuConfig, McuOp, MemoryCheckUnit};
use aos_ptrauth::{PointerLayout, PointerSigner};
use aos_qarma::PacKey;

use crate::memory::SparseMemory;

/// How many freed regions are remembered for error diagnosis.
const FREED_HISTORY: usize = 4096;

/// Configuration of an [`AosProcess`].
#[derive(Debug, Clone, Copy)]
pub struct ProcessConfig {
    /// Pointer bit layout.
    pub layout: PointerLayout,
    /// The PA key (modeled key M).
    pub key: PacKey,
    /// Signing modifier (the paper uses SP; we use a fixed context).
    pub context: u64,
    /// Allocator parameters.
    pub heap: HeapConfig,
    /// Bounds-table parameters.
    pub hbt: HbtConfig,
    /// MCU parameters.
    pub mcu: McuConfig,
    /// Whether to record pipeline telemetry (signer, heap, HBT, MCU
    /// and BWB events share one registry).
    pub telemetry: bool,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        Self {
            layout: PointerLayout::default(),
            key: PacKey::from_u128(aos_workloads::generator::SIGNING_KEY),
            context: aos_workloads::generator::SIGNING_CONTEXT,
            heap: HeapConfig::default(),
            hbt: HbtConfig::default(),
            mcu: McuConfig::default(),
            telemetry: false,
        }
    }
}

/// A memory-safety violation detected by AOS.
///
/// In hardware all of these surface as the single AOS exception class
/// (§IV-D); the variants here add the diagnosis a debugger would
/// derive — `UseAfterFree` versus `OutOfBounds` is distinguished by
/// whether the faulting address lies in a freed region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemorySafetyError {
    /// A signed access outside every live chunk with its PAC.
    OutOfBounds {
        /// The faulting pointer (still signed).
        pointer: u64,
        /// Whether the access was a store.
        is_store: bool,
    },
    /// A signed access to memory that has been freed (dangling
    /// pointer / use-after-free).
    UseAfterFree {
        /// The faulting pointer (still signed).
        pointer: u64,
        /// Whether the access was a store.
        is_store: bool,
    },
    /// `free` of a pointer with no bounds: double free, an unsigned
    /// pointer, or a crafted address (House of Spirit).
    InvalidFree {
        /// The pointer passed to `free`.
        pointer: u64,
    },
    /// `autm` authentication failed: the pointer does not carry an
    /// AOS signature (AHC forging / corruption, §VII-C).
    AuthenticationFailure {
        /// The unauthenticated pointer.
        pointer: u64,
    },
}

impl std::fmt::Display for MemorySafetyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemorySafetyError::OutOfBounds { pointer, is_store } => write!(
                f,
                "out-of-bounds {} via {pointer:#x}",
                if *is_store { "store" } else { "load" }
            ),
            MemorySafetyError::UseAfterFree { pointer, is_store } => write!(
                f,
                "use-after-free {} via {pointer:#x}",
                if *is_store { "store" } else { "load" }
            ),
            MemorySafetyError::InvalidFree { pointer } => {
                write!(f, "invalid or double free of {pointer:#x}")
            }
            MemorySafetyError::AuthenticationFailure { pointer } => {
                write!(f, "pointer authentication failed for {pointer:#x}")
            }
        }
    }
}

impl std::error::Error for MemorySafetyError {}

/// The always-on machine. See the [crate docs](crate) for a worked
/// example.
#[derive(Debug)]
pub struct AosProcess {
    config: ProcessConfig,
    signer: PointerSigner,
    heap: HeapAllocator,
    hbt: HashedBoundsTable,
    mcu: MemoryCheckUnit,
    memory: SparseMemory,
    freed_regions: VecDeque<(u64, u64)>,
    resizes: u64,
    telemetry: aos_util::Telemetry,
}

impl AosProcess {
    /// Creates a process with the paper's default parameters.
    pub fn new() -> Self {
        Self::with_config(ProcessConfig::default())
    }

    /// Creates a process with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration; configurations assembled
    /// from untrusted input go through
    /// [`AosProcess::try_with_config`].
    pub fn with_config(config: ProcessConfig) -> Self {
        Self::try_with_config(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`AosProcess::with_config`].
    ///
    /// # Errors
    ///
    /// Returns [`aos_util::AosError::InvalidInput`] when the heap
    /// configuration is rejected (e.g. a misaligned base address).
    pub fn try_with_config(config: ProcessConfig) -> Result<Self, aos_util::AosError> {
        let telemetry = aos_util::Telemetry::new(config.telemetry);
        Ok(Self {
            signer: PointerSigner::new(config.key, config.layout)
                .with_telemetry(telemetry.clone()),
            heap: HeapAllocator::try_new(config.heap)?.with_telemetry(telemetry.clone()),
            hbt: HashedBoundsTable::new(config.hbt).with_telemetry(telemetry.clone()),
            mcu: MemoryCheckUnit::new(config.mcu, config.layout)
                .with_telemetry(telemetry.clone()),
            memory: SparseMemory::new(),
            freed_regions: VecDeque::new(),
            resizes: 0,
            telemetry,
            config,
        })
    }

    /// A snapshot of the process-wide telemetry registry (all-zero
    /// when the config did not enable telemetry).
    pub fn telemetry_snapshot(&self) -> aos_util::TelemetrySnapshot {
        self.telemetry.snapshot()
    }

    /// The pointer layout in use.
    pub fn layout(&self) -> PointerLayout {
        self.config.layout
    }

    /// The signer (exposed for attack scenarios that forge pointers).
    pub fn signer(&self) -> &PointerSigner {
        &self.signer
    }

    /// The allocator state.
    pub fn heap(&self) -> &HeapAllocator {
        &self.heap
    }

    /// The bounds table state.
    pub fn hbt(&self) -> &HashedBoundsTable {
        &self.hbt
    }

    /// The MCU (stats: BWB hit rate, checks, …).
    pub fn mcu(&self) -> &MemoryCheckUnit {
        &self.mcu
    }

    /// Raw memory (for scenarios that inspect attack effects).
    pub fn memory_mut(&mut self) -> &mut SparseMemory {
        &mut self.memory
    }

    /// Gradual resizes performed by the OS so far.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    /// Split borrow for the extension methods in [`crate::ext`].
    pub(crate) fn mcu_hbt_signer(
        &mut self,
    ) -> (&mut MemoryCheckUnit, &mut HashedBoundsTable, &PointerSigner) {
        (&mut self.mcu, &mut self.hbt, &self.signer)
    }

    pub(crate) fn note_resize(&mut self) {
        self.resizes += 1;
    }

    pub(crate) fn context(&self) -> u64 {
        self.config.context
    }

    /// `malloc(size)` with AOS instrumentation (Fig. 7a): allocates,
    /// signs the pointer (`pacma`) and stores its bounds (`bndstr`),
    /// resizing the table if the row overflows.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError`] if the allocator fails, or
    /// [`HeapError::BoundsMetadata`] — with the chunk rolled back — if
    /// the bounds cannot be stored: the table is already at max
    /// associativity, or the usable size exceeds the 32-bit field of
    /// the Fig. 9 encoding.
    pub fn malloc(&mut self, size: u64) -> Result<u64, HeapError> {
        let alloc = self.heap.malloc(size)?;
        let ptr = self
            .signer
            .pacma(alloc.base, self.config.context, alloc.usable_size);
        loop {
            match self.mcu.run_sync(
                McuOp::BndStr {
                    pointer: ptr,
                    size: alloc.usable_size,
                },
                &mut self.hbt,
            ) {
                Ok(_) => break,
                Err(AosException::BoundsStoreFailure { .. }) => {
                    // OS handler: grow the table and retry (§IV-D). A
                    // table already at max associativity cannot grow;
                    // the allocation is rolled back and refused.
                    if self.hbt.try_begin_resize().is_ok() {
                        self.resizes += 1;
                    } else {
                        let _ = self.heap.free(alloc.base);
                        return Err(HeapError::BoundsMetadata {
                            requested: size,
                            reason: "bounds table at max associativity",
                        });
                    }
                }
                Err(AosException::MalformedBounds { .. }) => {
                    // Usable size too wide for the 32-bit bounds field.
                    let _ = self.heap.free(alloc.base);
                    return Err(HeapError::BoundsMetadata {
                        requested: size,
                        reason: "size exceeds the 32-bit bounds encoding",
                    });
                }
                Err(other) => unreachable!("bndstr cannot raise {other}"),
            }
        }
        Ok(ptr)
    }

    /// `calloc`-style allocation: like [`AosProcess::malloc`] but the
    /// chunk's memory reads as zero even when the allocator recycles a
    /// previously-written chunk.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError`] if the allocator fails.
    pub fn calloc(&mut self, count: u64, size: u64) -> Result<u64, HeapError> {
        let total = count.saturating_mul(size);
        let ptr = self.malloc(total)?;
        let addr = self.config.layout.address(ptr);
        let usable = self
            .heap
            .chunk_at(addr)
            .expect("fresh chunk exists")
            .usable_size();
        for offset in (0..usable).step_by(8) {
            self.memory.write_u64(addr + offset, 0);
        }
        Ok(ptr)
    }

    /// `realloc(ptr, new_size)` with AOS instrumentation: the old
    /// bounds are cleared, the chunk is resized (moving if it must
    /// grow), surviving data is copied, and the result is re-signed
    /// with fresh bounds. When the base moves, the old pointer is left
    /// signed-but-boundless — locked, like a freed pointer.
    ///
    /// # Errors
    ///
    /// Returns [`MemorySafetyError::InvalidFree`] for pointers without
    /// bounds (double realloc-after-free, crafted pointers); allocator
    /// failures surface as `InvalidFree` too, with the original
    /// allocation left intact.
    pub fn realloc(&mut self, ptr: u64, new_size: u64) -> Result<u64, MemorySafetyError> {
        // Only heap chunks can be reallocated; region-protected or
        // crafted pointers are rejected before any bounds are touched.
        let old_addr = self.signer.xpacm(ptr);
        let Some(old_usable) = self
            .heap
            .chunk_at(old_addr)
            .map(aos_heap::Chunk::usable_size)
        else {
            return Err(MemorySafetyError::InvalidFree { pointer: ptr });
        };
        // Sizes the 32-bit bounds field cannot represent are refused
        // before any state changes (the 15-byte slack covers granule
        // rounding).
        if new_size > u64::from(u32::MAX) - 15 {
            return Err(MemorySafetyError::InvalidFree { pointer: ptr });
        }
        // bndclr next, exactly like free (Fig. 7b): a pointer without
        // bounds cannot be reallocated.
        match self
            .mcu
            .run_sync(McuOp::BndClr { pointer: ptr }, &mut self.hbt)
        {
            Ok(_) => {}
            Err(AosException::BoundsClearFailure { .. }) => {
                return Err(MemorySafetyError::InvalidFree { pointer: ptr });
            }
            Err(other) => unreachable!("bndclr cannot raise {other}"),
        }
        let alloc = match self.heap.realloc(old_addr, new_size) {
            Ok(a) => a,
            Err(_) => {
                // Restore the cleared bounds and report failure.
                self.store_bounds(ptr, old_usable)?;
                return Err(MemorySafetyError::InvalidFree { pointer: ptr });
            }
        };
        if alloc.base != old_addr {
            // Copy surviving data and remember the freed region.
            let mut buf = vec![0u8; old_usable.min(alloc.usable_size) as usize];
            self.memory.read_bytes(old_addr, &mut buf);
            self.memory.write_bytes(alloc.base, &buf);
            if self.freed_regions.len() == FREED_HISTORY {
                self.freed_regions.pop_front();
            }
            self.freed_regions
                .push_back((old_addr, old_addr + old_usable));
        }
        let new_ptr = self
            .signer
            .pacma(alloc.base, self.config.context, alloc.usable_size);
        self.store_bounds(new_ptr, alloc.usable_size)?;
        Ok(new_ptr)
    }

    /// bndstr with the OS resize-on-overflow loop.
    ///
    /// # Errors
    ///
    /// Returns [`MemorySafetyError::InvalidFree`] (the pointer ends up
    /// boundless, i.e. locked) when the table cannot grow past its max
    /// associativity or the bounds cannot be encoded — both only
    /// reachable from pathological configurations, neither worth a
    /// panic.
    fn store_bounds(&mut self, ptr: u64, size: u64) -> Result<(), MemorySafetyError> {
        loop {
            match self
                .mcu
                .run_sync(McuOp::BndStr { pointer: ptr, size }, &mut self.hbt)
            {
                Ok(_) => return Ok(()),
                Err(AosException::BoundsStoreFailure { .. }) => {
                    if self.hbt.try_begin_resize().is_ok() {
                        self.resizes += 1;
                    } else {
                        return Err(MemorySafetyError::InvalidFree { pointer: ptr });
                    }
                }
                Err(AosException::MalformedBounds { .. }) => {
                    return Err(MemorySafetyError::InvalidFree { pointer: ptr });
                }
                Err(other) => unreachable!("bndstr cannot raise {other}"),
            }
        }
    }

    /// `free(ptr)` with AOS instrumentation (Fig. 7b): clears the
    /// bounds (`bndclr`), strips (`xpacm`), frees, and leaves the
    /// caller's pointer signed-but-boundless, i.e. locked.
    ///
    /// # Errors
    ///
    /// Returns [`MemorySafetyError::InvalidFree`] when no bounds match
    /// — a double free, an unsigned pointer, or a crafted chunk.
    pub fn free(&mut self, ptr: u64) -> Result<(), MemorySafetyError> {
        match self
            .mcu
            .run_sync(McuOp::BndClr { pointer: ptr }, &mut self.hbt)
        {
            Ok(_) => {}
            Err(AosException::BoundsClearFailure { .. }) => {
                return Err(MemorySafetyError::InvalidFree { pointer: ptr });
            }
            Err(other) => unreachable!("bndclr cannot raise {other}"),
        }
        let raw = self.signer.xpacm(ptr);
        let freed = self
            .heap
            .free(raw)
            .map_err(|_| MemorySafetyError::InvalidFree { pointer: ptr })?;
        if self.freed_regions.len() == FREED_HISTORY {
            self.freed_regions.pop_front();
        }
        self.freed_regions
            .push_back((freed.base, freed.base + freed.usable_size));
        Ok(())
    }

    fn check(&mut self, ptr: u64, is_store: bool) -> Result<(), MemorySafetyError> {
        match self.mcu.run_sync(
            McuOp::Access {
                pointer: ptr,
                is_store,
            },
            &mut self.hbt,
        ) {
            Ok(_) => Ok(()),
            Err(AosException::BoundsCheckFailure { pointer, is_store }) => {
                Err(self.diagnose(pointer, is_store))
            }
            Err(other) => unreachable!("access cannot raise {other}"),
        }
    }

    /// Classifies a bounds-check failure for the error message.
    fn diagnose(&self, pointer: u64, is_store: bool) -> MemorySafetyError {
        let addr = self.config.layout.address(pointer);
        let freed = self
            .freed_regions
            .iter()
            .any(|&(lo, hi)| (lo..hi).contains(&addr));
        if freed {
            MemorySafetyError::UseAfterFree { pointer, is_store }
        } else {
            MemorySafetyError::OutOfBounds { pointer, is_store }
        }
    }

    /// A checked 8-byte load through `ptr`.
    ///
    /// # Errors
    ///
    /// Fails when the pointer is signed and no valid bounds cover the
    /// address — the precise-exception guarantee means the data is
    /// *not* returned on failure (§III-C4).
    pub fn load(&mut self, ptr: u64) -> Result<u64, MemorySafetyError> {
        self.check(ptr, false)?;
        Ok(self.memory.read_u64(self.config.layout.address(ptr)))
    }

    /// A checked 8-byte store through `ptr`.
    ///
    /// # Errors
    ///
    /// Fails like [`AosProcess::load`]; memory is untouched on failure.
    pub fn store(&mut self, ptr: u64, value: u64) -> Result<(), MemorySafetyError> {
        self.check(ptr, true)?;
        self.memory
            .write_u64(self.config.layout.address(ptr), value);
        Ok(())
    }

    /// An *unchecked* load — what a machine without AOS does. Used by
    /// the security scenarios to demonstrate what the attacks achieve
    /// on an unprotected baseline.
    pub fn load_unchecked(&mut self, ptr: u64) -> u64 {
        self.memory.read_u64(self.config.layout.address(ptr))
    }

    /// An *unchecked* store (baseline behaviour).
    pub fn store_unchecked(&mut self, ptr: u64, value: u64) {
        self.memory
            .write_u64(self.config.layout.address(ptr), value);
    }

    /// `autm` on-load authentication (Fig. 13): verifies the pointer
    /// carries an AOS signature.
    ///
    /// # Errors
    ///
    /// Returns [`MemorySafetyError::AuthenticationFailure`] when the
    /// AHC is zero.
    pub fn authenticate(&self, ptr: u64) -> Result<u64, MemorySafetyError> {
        self.signer
            .autm(ptr)
            .map_err(|e| MemorySafetyError::AuthenticationFailure {
                pointer: e.pointer(),
            })
    }
}

impl Default for AosProcess {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_returns_signed_pointer() {
        let mut p = AosProcess::new();
        let ptr = p.malloc(100).unwrap();
        assert!(p.layout().is_signed(ptr));
        assert_eq!(p.layout().address(ptr) % 16, 0);
    }

    #[test]
    fn in_bounds_roundtrip() {
        let mut p = AosProcess::new();
        let ptr = p.malloc(64).unwrap();
        for i in 0..8 {
            p.store(ptr + i * 8, i).unwrap();
        }
        for i in 0..8 {
            assert_eq!(p.load(ptr + i * 8).unwrap(), i);
        }
    }

    #[test]
    fn oob_is_detected_and_memory_untouched() {
        let mut p = AosProcess::new();
        let ptr = p.malloc(64).unwrap();
        let err = p.store(ptr + 64, 0x41414141).unwrap_err();
        assert!(matches!(
            err,
            MemorySafetyError::OutOfBounds { is_store: true, .. }
        ));
        // Precise exception: the poisoned value never landed.
        let addr = p.layout().address(ptr) + 64;
        assert_eq!(p.memory_mut().read_u64(addr), 0);
    }

    #[test]
    fn uaf_is_detected_and_classified() {
        let mut p = AosProcess::new();
        let ptr = p.malloc(64).unwrap();
        p.store(ptr, 7).unwrap();
        p.free(ptr).unwrap();
        let err = p.load(ptr).unwrap_err();
        assert!(
            matches!(err, MemorySafetyError::UseAfterFree { .. }),
            "{err}"
        );
    }

    #[test]
    fn double_free_is_detected() {
        let mut p = AosProcess::new();
        let ptr = p.malloc(64).unwrap();
        p.free(ptr).unwrap();
        assert_eq!(
            p.free(ptr),
            Err(MemorySafetyError::InvalidFree { pointer: ptr })
        );
    }

    #[test]
    fn free_of_unsigned_pointer_is_invalid() {
        let mut p = AosProcess::new();
        let _ = p.malloc(64).unwrap();
        let err = p.free(0x4000_0010).unwrap_err();
        assert!(matches!(err, MemorySafetyError::InvalidFree { .. }));
    }

    #[test]
    fn unsigned_accesses_skip_checking() {
        let mut p = AosProcess::new();
        p.store(0x7000, 99).unwrap();
        assert_eq!(p.load(0x7000).unwrap(), 99);
    }

    #[test]
    fn reallocation_after_free_gets_fresh_bounds() {
        let mut p = AosProcess::new();
        let a = p.malloc(64).unwrap();
        p.free(a).unwrap();
        let b = p.malloc(64).unwrap();
        // Fastbin reuse: same address, new signature & bounds.
        assert_eq!(p.layout().address(a), p.layout().address(b));
        assert!(p.load(b).is_ok());
        // The OLD pointer still fails even though the address is live
        // again? No — same base ⇒ same PAC ⇒ same bounds row; the new
        // bounds make the old pointer usable again. That is the
        // documented PAC-reuse property, not a defect in the model.
        assert!(p.load(a).is_ok());
    }

    #[test]
    fn calloc_zeroes_recycled_memory() {
        let mut p = AosProcess::new();
        let a = p.malloc(64).unwrap();
        p.store(a, 0xDEAD).unwrap();
        p.free(a).unwrap();
        // Fastbin reuse returns the same chunk — calloc must scrub it.
        let b = p.calloc(8, 8).unwrap();
        assert_eq!(p.layout().address(b), p.layout().address(a));
        assert_eq!(p.load(b).unwrap(), 0);
    }

    #[test]
    fn realloc_preserves_data_and_locks_old_pointer() {
        let mut p = AosProcess::new();
        let a = p.malloc(64).unwrap();
        let _spacer = p.malloc(64).unwrap();
        for i in 0..8 {
            p.store(a + i * 8, 0x100 + i).unwrap();
        }
        let b = p.realloc(a, 4096).unwrap();
        assert_ne!(
            p.layout().address(b),
            p.layout().address(a),
            "grew by moving"
        );
        for i in 0..8 {
            assert_eq!(p.load(b + i * 8).unwrap(), 0x100 + i, "data copied");
        }
        // The old pointer is locked, and classified as use-after-free.
        assert!(matches!(
            p.load(a),
            Err(MemorySafetyError::UseAfterFree { .. })
        ));
        // The new pointer covers the grown extent.
        assert!(p.store(b + 4088, 1).is_ok());
        assert!(p.store(b + 4096, 1).is_err());
    }

    #[test]
    fn realloc_shrink_tightens_bounds_in_place() {
        let mut p = AosProcess::new();
        let a = p.malloc(1024).unwrap();
        let _spacer = p.malloc(64).unwrap();
        let b = p.realloc(a, 64).unwrap();
        assert_eq!(p.layout().address(b), p.layout().address(a));
        assert!(p.load(b + 56).is_ok());
        assert!(p.load(b + 64).is_err(), "shrunk bounds enforce 64 bytes");
    }

    #[test]
    fn realloc_of_freed_pointer_is_invalid() {
        let mut p = AosProcess::new();
        let a = p.malloc(64).unwrap();
        p.free(a).unwrap();
        assert!(matches!(
            p.realloc(a, 128),
            Err(MemorySafetyError::InvalidFree { .. })
        ));
    }

    #[test]
    fn realloc_of_protected_region_is_invalid_and_harmless() {
        // A region-protected pointer is not a heap chunk; realloc must
        // refuse it without disturbing its bounds.
        let mut p = AosProcess::new();
        let region = p.protect_region(0x3F00_0000_8000, 64).unwrap();
        assert!(matches!(
            p.realloc(region, 128),
            Err(MemorySafetyError::InvalidFree { .. })
        ));
        assert!(p.load(region).is_ok(), "bounds untouched by the refusal");
    }

    #[test]
    fn pac_collisions_resize_the_table() {
        // Force collisions with an 11-bit PAC space and lots of live
        // chunks.
        let config = ProcessConfig {
            layout: PointerLayout::new(46, 11),
            hbt: HbtConfig {
                pac_size: 11,
                initial_ways: 1,
                max_ways: 64,
                base_addr: 0x3800_0000_0000,
                compressed: true,
            },
            ..ProcessConfig::default()
        };
        let mut p = AosProcess::with_config(config);
        let ptrs: Vec<u64> = (0..40_000).map(|_| p.malloc(32).unwrap()).collect();
        assert!(p.resizes() >= 1, "2048 rows × 8 slots must overflow");
        // Everything stays checkable across the resize.
        for &ptr in ptrs.iter().step_by(997) {
            assert!(p.load(ptr).is_ok());
        }
    }

    #[test]
    fn hbt_exhaustion_rolls_malloc_back_instead_of_panicking() {
        // A deliberately tiny table: 2^11 rows but max 1 way, so ~8
        // same-row chunks fill a row for good.
        let config = ProcessConfig {
            layout: PointerLayout::new(46, 11),
            hbt: HbtConfig {
                pac_size: 11,
                initial_ways: 1,
                max_ways: 1,
                base_addr: 0x3800_0000_0000,
                compressed: true,
            },
            ..ProcessConfig::default()
        };
        let mut p = AosProcess::with_config(config);
        let mut ok = 0u64;
        let err = loop {
            match p.malloc(32) {
                Ok(_) => ok += 1,
                Err(e) => break e,
            }
            assert!(ok < 100_000, "exhaustion never surfaced");
        };
        assert!(
            matches!(err, HeapError::BoundsMetadata { .. }),
            "expected metadata exhaustion, got {err}"
        );
        // The rolled-back chunk is reusable once a slot frees up: the
        // heap itself stayed consistent.
        let live = p.heap().profile().live;
        assert_eq!(live, ok, "failed malloc left no live chunk behind");
    }

    #[test]
    fn oversized_malloc_is_refused_not_panicked() {
        let mut p = AosProcess::new();
        // Usable size would exceed the 32-bit bounds field (Fig. 9).
        let err = p.malloc((1 << 33) + 8).unwrap_err();
        assert!(matches!(err, HeapError::BoundsMetadata { .. }), "got {err}");
        assert_eq!(p.heap().profile().live, 0);
        // The process remains fully usable afterwards.
        let ptr = p.malloc(64).unwrap();
        assert!(p.load(ptr).is_ok());
    }

    #[test]
    fn oversized_realloc_is_refused_and_harmless() {
        let mut p = AosProcess::new();
        let a = p.malloc(64).unwrap();
        p.store(a, 42).unwrap();
        assert!(matches!(
            p.realloc(a, 1 << 33),
            Err(MemorySafetyError::InvalidFree { .. })
        ));
        // Original allocation untouched, bounds intact.
        assert_eq!(p.load(a).unwrap(), 42);
    }

    #[test]
    fn try_with_config_rejects_bad_heap_base() {
        let config = ProcessConfig {
            heap: aos_heap::HeapConfig {
                base_addr: 0x4000_0001,
                ..aos_heap::HeapConfig::default()
            },
            ..ProcessConfig::default()
        };
        let err = AosProcess::try_with_config(config).unwrap_err();
        assert!(err.to_string().contains("16-byte aligned"), "{err}");
    }

    #[test]
    fn authenticate_accepts_signed_rejects_stripped() {
        let mut p = AosProcess::new();
        let ptr = p.malloc(32).unwrap();
        assert!(p.authenticate(ptr).is_ok());
        let stripped = p.signer().xpacm(ptr);
        assert!(matches!(
            p.authenticate(stripped),
            Err(MemorySafetyError::AuthenticationFailure { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = MemorySafetyError::OutOfBounds {
            pointer: 0x10,
            is_store: false,
        };
        assert!(e.to_string().contains("out-of-bounds load"));
        let e = MemorySafetyError::InvalidFree { pointer: 0x10 };
        assert!(e.to_string().contains("free"));
    }

    #[test]
    fn process_telemetry_covers_signer_heap_and_table() {
        use aos_util::{Counter, Hist};

        let mut p = AosProcess::try_with_config(ProcessConfig {
            telemetry: true,
            ..ProcessConfig::default()
        })
        .unwrap();
        let a = p.malloc(100).unwrap();
        let b = p.malloc(24).unwrap();
        p.store(a, 1).unwrap();
        let _ = p.load(a).unwrap();
        p.free(b).unwrap();
        let _ = p.authenticate(p.signer().xpacm(a));

        let t = p.telemetry_snapshot();
        assert!(t.enabled);
        // Signing path: every malloc signs, which computes a PAC.
        assert_eq!(t.counter(Counter::PtrSigns), 2);
        assert!(t.counter(Counter::PacComputations) >= 2);
        assert_eq!(t.counter(Counter::AuthFailures), 1);
        // Heap path: allocs, frees and the size-class histogram.
        assert_eq!(t.counter(Counter::HeapAllocs), 2);
        assert_eq!(t.counter(Counter::HeapFrees), 1);
        let sizes: u64 = t.hist(Hist::HeapAllocSize).iter().sum();
        assert_eq!(sizes, 2);
        // Table path: both allocations landed bounds records.
        assert!(t.counter(Counter::HbtInserts) >= 2);
    }

    #[test]
    fn disabled_process_telemetry_stays_empty() {
        let mut p = AosProcess::new();
        let ptr = p.malloc(64).unwrap();
        p.store(ptr, 1).unwrap();
        p.free(ptr).unwrap();
        let t = p.telemetry_snapshot();
        assert!(!t.enabled);
        assert!(t.is_empty());
    }
}
