//! The QARMA component operations from the Armv8.3 `ComputePAC`
//! pseudocode, working directly on a 64-bit state viewed as sixteen
//! 4-bit cells (cell *n* occupies bits `[4n+3:4n]`).

/// Extracts the 4-bit cell `n`.
#[inline]
fn cell(state: u64, n: u32) -> u64 {
    (state >> (4 * n)) & 0xF
}

/// Rotates a 4-bit cell left by `n` (1..=3).
#[inline]
fn rot_cell(cell: u64, n: u32) -> u64 {
    debug_assert!((1..4).contains(&n));
    ((cell << n) | (cell >> (4 - n))) & 0xF
}

/// `PACCellShuffle`: the QARMA cell permutation τ.
pub(crate) fn cell_shuffle(i: u64) -> u64 {
    // Source cell index, per output cell 0..15.
    const SRC: [u32; 16] = [13, 6, 11, 0, 7, 12, 1, 10, 8, 3, 14, 5, 2, 9, 4, 15];
    let mut o = 0u64;
    for (n, &s) in SRC.iter().enumerate() {
        o |= cell(i, s) << (4 * n);
    }
    o
}

/// `PACCellInvShuffle`: inverse of [`cell_shuffle`].
pub(crate) fn cell_inv_shuffle(i: u64) -> u64 {
    const SRC: [u32; 16] = [3, 6, 12, 9, 14, 11, 1, 4, 8, 13, 7, 2, 5, 0, 10, 15];
    let mut o = 0u64;
    for (n, &s) in SRC.iter().enumerate() {
        o |= cell(i, s) << (4 * n);
    }
    o
}

/// `PACSub`: the σ2 S-box applied to every cell.
pub(crate) fn sub(i: u64) -> u64 {
    const SUB: [u64; 16] = [
        0xB, 0x6, 0x8, 0xF, 0xC, 0x0, 0x9, 0xE, 0x3, 0x7, 0x4, 0x5, 0xD, 0x2, 0x1, 0xA,
    ];
    let mut o = 0u64;
    for n in 0..16 {
        o |= SUB[cell(i, n) as usize] << (4 * n);
    }
    o
}

/// `PACInvSub`: inverse of [`sub`].
pub(crate) fn inv_sub(i: u64) -> u64 {
    const INV: [u64; 16] = [
        0x5, 0xE, 0xD, 0x8, 0xA, 0xB, 0x1, 0x9, 0x2, 0x6, 0xF, 0x0, 0x4, 0xC, 0x7, 0x3,
    ];
    let mut o = 0u64;
    for n in 0..16 {
        o |= INV[cell(i, n) as usize] << (4 * n);
    }
    o
}

/// `PACMult`: MixColumns with the involutory circulant matrix
/// M = circ(0, 1, 2, 1) over the four cells of each column (cells n,
/// n+4, n+8, n+12).
pub(crate) fn mult(i: u64) -> u64 {
    let mut o = 0u64;
    for b in 0..4 {
        let i0 = cell(i, b);
        let i4 = cell(i, b + 4);
        let i8 = cell(i, b + 8);
        let ic = cell(i, b + 12);

        let t0 = rot_cell(i8, 1) ^ rot_cell(i4, 2) ^ rot_cell(i0, 1);
        let t1 = rot_cell(ic, 1) ^ rot_cell(i4, 1) ^ rot_cell(i0, 2);
        let t2 = rot_cell(ic, 2) ^ rot_cell(i8, 1) ^ rot_cell(i0, 1);
        let t3 = rot_cell(ic, 1) ^ rot_cell(i8, 2) ^ rot_cell(i4, 1);

        o |= t3 << (4 * b);
        o |= t2 << (4 * (b + 4));
        o |= t1 << (4 * (b + 8));
        o |= t0 << (4 * (b + 12));
    }
    o
}

/// The ω LFSR clocked forward: (b3,b2,b1,b0) → (b0⊕b1, b3, b2, b1).
#[inline]
fn tweak_cell_rot(cell: u64) -> u64 {
    (cell >> 1) | (((cell ^ (cell >> 1)) & 1) << 3)
}

/// Inverse of [`tweak_cell_rot`]. The production datapath derives the
/// whole tweak sequence forward (the schedule keeps every tᵢ), so the
/// inverse direction survives only as the tests' oracle.
#[cfg_attr(not(test), allow(dead_code))]
#[inline]
fn tweak_cell_inv_rot(cell: u64) -> u64 {
    ((cell << 1) & 0xF) | ((cell & 1) ^ (cell >> 3))
}

/// The forward tweak update (`TweakShuffle` ∘ ω on selected cells).
pub(crate) fn tweak_shuffle(i: u64) -> u64 {
    // (source cell, whether ω is applied), per output cell 0..15.
    const SRC: [(u32, bool); 16] = [
        (4, false),
        (5, false),
        (6, true),
        (7, false),
        (11, true),
        (2, false),
        (3, false),
        (8, true),
        (12, false),
        (13, false),
        (14, false),
        (15, true),
        (0, true),
        (1, false),
        (10, true),
        (9, true),
    ];
    let mut o = 0u64;
    for (n, &(s, rot)) in SRC.iter().enumerate() {
        let c = cell(i, s);
        let c = if rot { tweak_cell_rot(c) } else { c };
        o |= c << (4 * n);
    }
    o
}

/// Inverse of [`tweak_shuffle`], kept as the oracle proving the forward
/// schedule in [`crate::Qarma64`] replays the same tweak sequence the
/// pseudocode's interleaved inverse walk would.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn tweak_inv_shuffle(i: u64) -> u64 {
    const SRC: [(u32, bool); 16] = [
        (12, true),
        (13, false),
        (5, false),
        (6, false),
        (0, false),
        (1, false),
        (2, true),
        (3, false),
        (7, true),
        (15, true),
        (14, true),
        (4, true),
        (8, false),
        (9, false),
        (10, false),
        (11, true),
    ];
    let mut o = 0u64;
    for (n, &(s, rot)) in SRC.iter().enumerate() {
        let c = cell(i, s);
        let c = if rot { tweak_cell_inv_rot(c) } else { c };
        o |= c << (4 * n);
    }
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLES: [u64; 5] = [
        0,
        u64::MAX,
        0x0123_4567_89AB_CDEF,
        0xFEDC_BA98_7654_3210,
        0xDEAD_BEEF_CAFE_F00D,
    ];

    #[test]
    fn cell_shuffle_roundtrips() {
        for s in SAMPLES {
            assert_eq!(cell_inv_shuffle(cell_shuffle(s)), s);
            assert_eq!(cell_shuffle(cell_inv_shuffle(s)), s);
        }
    }

    #[test]
    fn sub_roundtrips() {
        for s in SAMPLES {
            assert_eq!(inv_sub(sub(s)), s);
            assert_eq!(sub(inv_sub(s)), s);
        }
    }

    #[test]
    fn mult_is_involutory() {
        for s in SAMPLES {
            assert_eq!(mult(mult(s)), s);
        }
        assert_ne!(mult(SAMPLES[2]), SAMPLES[2]);
    }

    #[test]
    fn tweak_shuffle_roundtrips() {
        for s in SAMPLES {
            assert_eq!(tweak_inv_shuffle(tweak_shuffle(s)), s);
            assert_eq!(tweak_shuffle(tweak_inv_shuffle(s)), s);
        }
    }

    #[test]
    fn tweak_cell_rot_roundtrips_all_nibbles() {
        for x in 0u64..16 {
            assert_eq!(tweak_cell_inv_rot(tweak_cell_rot(x)), x);
        }
    }

    #[test]
    fn lfsr_has_period_15_on_nonzero() {
        let mut x = 1u64;
        let mut period = 0;
        loop {
            x = tweak_cell_rot(x);
            period += 1;
            if x == 1 {
                break;
            }
        }
        assert_eq!(period, 15);
        assert_eq!(tweak_cell_rot(0), 0);
    }

    #[test]
    fn shuffles_preserve_cell_multiset() {
        // A permutation of cells must keep the sorted cell list intact.
        let s = 0x0123_4567_89AB_CDEFu64;
        let mut before: Vec<u64> = (0..16).map(|n| (s >> (4 * n)) & 0xF).collect();
        let shuffled = cell_shuffle(s);
        let mut after: Vec<u64> = (0..16).map(|n| (shuffled >> (4 * n)) & 0xF).collect();
        before.sort_unstable();
        after.sort_unstable();
        assert_eq!(before, after);
    }
}
