//! The `ComputePAC` datapath: whitening, five forward rounds, the
//! reflector, five backward rounds.

use crate::ops::{cell_inv_shuffle, cell_shuffle, inv_sub, mult, sub, tweak_shuffle};

/// Round constants c₀..c₄ (leading digits of π, shared with PRINCE).
const RC: [u64; 5] = [
    0x0000_0000_0000_0000,
    0x1319_8A2E_0370_7344,
    0xA409_3822_299F_31D0,
    0x082E_FA98_EC4E_6C89,
    0x4528_21E6_38D0_1377,
];

/// The α constant XORed into every backward-round key.
const ALPHA: u64 = 0xC0AC_29B7_C97C_50DD;

/// A 128-bit pointer-authentication key, split as the architecture
/// does: `hi` holds key bits ⟨127:64⟩, `lo` holds bits ⟨63:0⟩.
///
/// In hardware these live in privileged system registers
/// (`APIAKey`, `APDAKey`, …) and are invisible to user space — the AOS
/// threat model (paper §III-D) assumes the attacker cannot read them.
///
/// # Examples
///
/// ```
/// use aos_qarma::PacKey;
/// let key = PacKey::from_u128(0x84be85ce9804e94b_ec2802d4e0a488e9);
/// assert_eq!(key.hi(), 0x84be85ce9804e94b);
/// assert_eq!(key.lo(), 0xec2802d4e0a488e9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PacKey {
    hi: u64,
    lo: u64,
}

impl PacKey {
    /// Creates a key from its two 64-bit halves.
    pub fn new(hi: u64, lo: u64) -> Self {
        Self { hi, lo }
    }

    /// Creates a key from a single 128-bit value.
    pub fn from_u128(key: u128) -> Self {
        Self {
            hi: (key >> 64) as u64,
            lo: key as u64,
        }
    }

    /// Key bits ⟨127:64⟩.
    pub fn hi(self) -> u64 {
        self.hi
    }

    /// Key bits ⟨63:0⟩.
    pub fn lo(self) -> u64 {
        self.lo
    }

    /// The key as one 128-bit value.
    pub fn to_u128(self) -> u128 {
        ((self.hi as u128) << 64) | self.lo as u128
    }
}

impl From<u128> for PacKey {
    fn from(key: u128) -> Self {
        Self::from_u128(key)
    }
}

/// The Armv8.3 `ComputePAC` function: QARMA-64 with five rounds and the
/// σ2 S-box, keyed by a [`PacKey`] and tweaked by a 64-bit modifier.
///
/// # Examples
///
/// ```
/// use aos_qarma::{PacKey, Qarma64};
/// let q = Qarma64::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
/// assert_eq!(q.compute(0xfb623599da6e8127, 0x477d469dec0b8762), 0xc003b93999b33765);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Qarma64 {
    key: PacKey,
    /// `o(key0)`: the orthomorphism-derived whitening key.
    modk0: u64,
    /// Forward round keys `key1 ⊕ cᵢ`.
    fwd_keys: [u64; 5],
    /// Backward round keys `c₄₋ᵢ ⊕ key1 ⊕ α`, in application order.
    bwd_keys: [u64; 5],
}

impl Qarma64 {
    /// Creates an instance with the given key, precomputing the
    /// whitening and per-round key material that is constant across
    /// calls — `compute` sits on the pointer-signing hot path and runs
    /// once per simulated malloc/load/store, so the schedule is built
    /// here instead of per invocation.
    pub fn new(key: PacKey) -> Self {
        let key0 = key.hi;
        let key1 = key.lo;
        let mut fwd_keys = [0u64; 5];
        let mut bwd_keys = [0u64; 5];
        for i in 0..RC.len() {
            fwd_keys[i] = key1 ^ RC[i];
            bwd_keys[i] = RC[RC.len() - 1 - i] ^ key1 ^ ALPHA;
        }
        Self {
            key,
            modk0: (key0 << 63) | ((key0 >> 1) ^ (key0 >> 63)),
            fwd_keys,
            bwd_keys,
        }
    }

    /// The configured key.
    pub fn key(&self) -> PacKey {
        self.key
    }

    /// The tweak sequence t₀..t₅ a single `ComputePAC` invocation walks
    /// through: t₀ is the modifier, tᵢ₊₁ = `tweak_shuffle(tᵢ)`. Forward
    /// round *i* consumes tᵢ, the central construction t₅, and backward
    /// round *i* re-consumes t₄₋ᵢ — so with the sequence in hand no
    /// inverse shuffles are needed at all.
    #[inline]
    fn tweak_schedule(modifier: u64) -> [u64; 6] {
        let mut t = [modifier; 6];
        for i in 1..t.len() {
            t[i] = tweak_shuffle(t[i - 1]);
        }
        t
    }

    /// The cipher datapath over `L` independent lanes sharing one tweak
    /// schedule. The round structure is the outer loop and the lanes the
    /// inner one, so every per-cell shuffle/S-box/MixColumns step runs
    /// as `L` independent dependency chains — autovectorizable shifts
    /// and masks with no per-call setup.
    #[inline]
    fn compute_lanes<const L: usize>(&self, data: &[u64; L], tweaks: &[u64; 6]) -> [u64; L] {
        let key0 = self.key.hi;
        let key1 = self.key.lo;
        let mut w = *data;
        for lane in &mut w {
            *lane ^= key0;
        }

        for (i, round_key) in self.fwd_keys.iter().enumerate() {
            let k = round_key ^ tweaks[i];
            for lane in &mut w {
                let mut x = *lane ^ k;
                if i > 0 {
                    x = cell_shuffle(x);
                    x = mult(x);
                }
                *lane = sub(x);
            }
        }

        // Central construction: full forward round keyed by
        // o(key0) ⊕ tweak, the keyed reflector, full backward round
        // keyed by key0 ⊕ tweak.
        let center_key = self.modk0 ^ tweaks[5];
        let exit_key = key0 ^ tweaks[5];
        for lane in &mut w {
            let mut x = *lane ^ center_key;
            x = cell_shuffle(x);
            x = mult(x);
            x = sub(x);
            x = cell_shuffle(x);
            x = mult(x);
            x ^= key1;
            x = cell_inv_shuffle(x);
            x = inv_sub(x);
            x = mult(x);
            x = cell_inv_shuffle(x);
            *lane = x ^ exit_key;
        }

        for (i, round_key) in self.bwd_keys.iter().enumerate() {
            let k = round_key ^ tweaks[RC.len() - 1 - i];
            for lane in &mut w {
                let mut x = inv_sub(*lane);
                if i < RC.len() - 1 {
                    x = mult(x);
                    x = cell_inv_shuffle(x);
                }
                *lane = x ^ k;
            }
        }

        for lane in &mut w {
            *lane ^= self.modk0;
        }
        w
    }

    /// Runs `ComputePAC(data, modifier)`: the full 64-bit cipher
    /// output, before PAC truncation.
    pub fn compute(&self, data: u64, modifier: u64) -> u64 {
        self.compute_lanes(&[data], &Self::tweak_schedule(modifier))[0]
    }

    /// How many pointers [`Qarma64::compute_batch`] ciphers per inner
    /// lane group. Chosen to fill 512-bit vector units (8 × u64) while
    /// keeping the lane state register-resident.
    pub const BATCH_LANES: usize = 8;

    /// Runs `ComputePAC` over a batch: `out[i] = compute(data[i],
    /// modifiers[i])`, bit-identical to the per-call path.
    ///
    /// When every modifier in the batch is equal — the common case for
    /// pointer signing, where the modifier is a fixed context — the
    /// tweak schedule is derived once for the whole batch and the
    /// cipher runs [`Qarma64::BATCH_LANES`] lanes at a time. Mixed
    /// modifiers fall back to per-element schedules but still skip the
    /// inverse tweak shuffles of the backward half.
    ///
    /// # Panics
    ///
    /// Panics if `data`, `modifiers`, and `out` differ in length.
    ///
    /// # Examples
    ///
    /// ```
    /// use aos_qarma::{PacKey, Qarma64};
    /// let q = Qarma64::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
    /// let data = [0xfb623599da6e8127u64; 3];
    /// let modifiers = [0x477d469dec0b8762u64; 3];
    /// let mut out = [0u64; 3];
    /// q.compute_batch(&data, &modifiers, &mut out);
    /// assert_eq!(out, [0xc003b93999b33765; 3]);
    /// ```
    pub fn compute_batch(&self, data: &[u64], modifiers: &[u64], out: &mut [u64]) {
        assert_eq!(data.len(), modifiers.len(), "data/modifier length mismatch");
        assert_eq!(data.len(), out.len(), "data/out length mismatch");
        let Some(&first) = modifiers.first() else {
            return;
        };

        if modifiers.iter().all(|&m| m == first) {
            self.compute_batch_uniform(data, first, out);
        } else {
            for ((&d, &m), o) in data.iter().zip(modifiers).zip(out.iter_mut()) {
                *o = self.compute(d, m);
            }
        }
    }

    /// The uniform-modifier fast path of [`Qarma64::compute_batch`],
    /// callable directly when the caller knows the whole batch shares
    /// one modifier (pointer signing under a fixed context) — no
    /// modifier slice to materialize, no equality scan.
    ///
    /// # Panics
    ///
    /// Panics if `data` and `out` differ in length.
    pub fn compute_batch_uniform(&self, data: &[u64], modifier: u64, out: &mut [u64]) {
        assert_eq!(data.len(), out.len(), "data/out length mismatch");
        let tweaks = Self::tweak_schedule(modifier);
        let mut chunks = data.chunks_exact(Self::BATCH_LANES);
        let mut outs = out.chunks_exact_mut(Self::BATCH_LANES);
        for (d, o) in (&mut chunks).zip(&mut outs) {
            let lanes: &[u64; Self::BATCH_LANES] =
                d.try_into().expect("chunks_exact yields full chunks");
            o.copy_from_slice(&self.compute_lanes(lanes, &tweaks));
        }
        for (&d, o) in chunks.remainder().iter().zip(outs.into_remainder()) {
            *o = self.compute_lanes(&[d], &tweaks)[0];
        }
    }

    /// [`Qarma64::compute_batch`], recording one
    /// [`Counter::PacComputations`](aos_util::telemetry::Counter) event
    /// per element so batched signing stays indistinguishable from
    /// per-call signing in the telemetry report.
    pub fn compute_batch_with(
        &self,
        data: &[u64],
        modifiers: &[u64],
        out: &mut [u64],
        telemetry: &aos_util::Telemetry,
    ) {
        telemetry.add(aos_util::Counter::PacComputations, data.len() as u64);
        self.compute_batch(data, modifiers, out);
    }

    /// [`Qarma64::compute`], recording the invocation as a
    /// [`Counter::PacComputations`](aos_util::telemetry::Counter)
    /// event. The cipher itself is `Copy` and cannot hold a handle, so
    /// callers that own one (the signer, the MCU) pass it per call.
    pub fn compute_with(
        &self,
        data: u64,
        modifier: u64,
        telemetry: &aos_util::Telemetry,
    ) -> u64 {
        telemetry.count(aos_util::Counter::PacComputations);
        self.compute(data, modifier)
    }

    /// Inverts [`Qarma64::compute`] for a given modifier.
    ///
    /// Hardware never needs this direction — a PAC is verified by
    /// recomputation — but the inverse both documents that `ComputePAC`
    /// is a permutation of the 64-bit space for every modifier and lets
    /// the tests prove it.
    pub fn invert(&self, output: u64, modifier: u64) -> u64 {
        let key0 = self.key.hi;
        let key1 = self.key.lo;
        let modk0 = self.modk0;

        // Reconstruct the tweak sequence: t0..t5 forward.
        let mut tweaks = [0u64; 6];
        tweaks[0] = modifier;
        for i in 1..6 {
            tweaks[i] = tweak_shuffle(tweaks[i - 1]);
        }

        let mut w = output ^ modk0;
        // Undo the backward half (it ran i = 0..=4 with tweaks
        // t4..t0 after inverse updates).
        for i in (0..RC.len()).rev() {
            let t = tweaks[RC.len() - 1 - i];
            w ^= RC[RC.len() - 1 - i] ^ key1 ^ t ^ ALPHA;
            if i < RC.len() - 1 {
                w = cell_shuffle(w);
                w = mult(w);
            }
            w = sub(w);
        }

        // Undo the central construction (each line inverts the
        // corresponding forward line, in reverse order).
        w ^= key0 ^ tweaks[5];
        w = cell_shuffle(w);
        w = mult(w);
        w = sub(w);
        w = cell_shuffle(w);
        w ^= key1;
        w = mult(w);
        w = cell_inv_shuffle(w);
        w = inv_sub(w);
        w = mult(w);
        w = cell_inv_shuffle(w);
        w ^= modk0 ^ tweaks[5];

        // Undo the forward rounds, highest round first.
        for i in (0..RC.len()).rev() {
            w = inv_sub(w);
            if i > 0 {
                w = mult(w);
                w = cell_inv_shuffle(w);
            }
            w ^= key1 ^ tweaks[i] ^ RC[i];
        }
        w ^ key0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::tweak_inv_shuffle;

    /// Reference vectors generated from QEMU's independent
    /// implementation of the Armv8.3 `ComputePAC` pseudocode
    /// (`target/arm/pauth_helper.c`): (data, modifier, key_hi, key_lo,
    /// expected).
    const VECTORS: [(u64, u64, u64, u64, u64); 8] = [
        (
            0xfb623599da6e8127,
            0x477d469dec0b8762,
            0x84be85ce9804e94b,
            0xec2802d4e0a488e9,
            0xc003b93999b33765,
        ),
        (0, 0, 0, 0, 0x76243b953592993d),
        (
            0,
            0,
            0x84be85ce9804e94b,
            0xec2802d4e0a488e9,
            0x47723a1bff2218da,
        ),
        (
            0xffffffffffffffff,
            0xffffffffffffffff,
            0xffffffffffffffff,
            0xffffffffffffffff,
            0x56b6776df0bf2ec3,
        ),
        (
            0x0000aaaabbbb0010,
            0,
            0x0123456789abcdef,
            0xfedcba9876543210,
            0x3c94e68f1b50a375,
        ),
        (
            0x0000aaaabbbb0020,
            0x00007ffff0001234,
            0x0123456789abcdef,
            0xfedcba9876543210,
            0x24245ee40e4adda5,
        ),
        (
            0x123456789abcdef0,
            0xdeadbeefcafef00d,
            0x0123456789abcdef,
            0xfedcba9876543210,
            0x0255863301394ec1,
        ),
        (
            0x0000ffff00001000,
            0x477d469dec0b8762,
            0x84be85ce9804e94b,
            0xec2802d4e0a488e9,
            0x97e69e78011b56b8,
        ),
    ];

    #[test]
    fn matches_qemu_reference_vectors() {
        for &(data, modifier, hi, lo, want) in &VECTORS {
            let q = Qarma64::new(PacKey::new(hi, lo));
            assert_eq!(
                q.compute(data, modifier),
                want,
                "data={data:#x} modifier={modifier:#x}"
            );
        }
    }

    #[test]
    fn invert_undoes_compute_on_vectors() {
        for &(data, modifier, hi, lo, want) in &VECTORS {
            let q = Qarma64::new(PacKey::new(hi, lo));
            assert_eq!(q.invert(want, modifier), data);
        }
    }

    #[test]
    fn invert_undoes_compute_on_random_inputs() {
        let q = Qarma64::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for i in 0..512 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let modifier = x.rotate_left((i % 63) + 1);
            let y = q.compute(x, modifier);
            assert_eq!(q.invert(y, modifier), x);
        }
    }

    #[test]
    fn modifier_changes_output() {
        let q = Qarma64::new(PacKey::new(1, 2));
        assert_ne!(q.compute(42, 0), q.compute(42, 1));
    }

    #[test]
    fn key_changes_output() {
        let a = Qarma64::new(PacKey::new(1, 2));
        let b = Qarma64::new(PacKey::new(1, 3));
        assert_ne!(a.compute(42, 0), b.compute(42, 0));
    }

    #[test]
    fn avalanche_on_single_bit_flip() {
        let q = Qarma64::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
        let base = q.compute(0xfb623599da6e8127, 0x477d469dec0b8762);
        let flipped = q.compute(0xfb623599da6e8127 ^ 1, 0x477d469dec0b8762);
        let differing = (base ^ flipped).count_ones();
        assert!(differing >= 16, "only {differing} bits differ");
    }

    /// The pre-refactor `compute`: derives `modk0` and every round key
    /// inline per call. Kept as the oracle for the precomputation
    /// refactor — [`Qarma64::new`] now builds that material once.
    fn reference_compute(key: PacKey, data: u64, modifier: u64) -> u64 {
        let key0 = key.hi();
        let key1 = key.lo();
        let modk0 = (key0 << 63) | ((key0 >> 1) ^ (key0 >> 63));
        let mut running_mod = modifier;
        let mut w = data ^ key0;

        for (i, rc) in RC.iter().enumerate() {
            w ^= key1 ^ running_mod ^ rc;
            if i > 0 {
                w = cell_shuffle(w);
                w = mult(w);
            }
            w = sub(w);
            running_mod = tweak_shuffle(running_mod);
        }

        w ^= modk0 ^ running_mod;
        w = cell_shuffle(w);
        w = mult(w);
        w = sub(w);
        w = cell_shuffle(w);
        w = mult(w);
        w ^= key1;
        w = cell_inv_shuffle(w);
        w = inv_sub(w);
        w = mult(w);
        w = cell_inv_shuffle(w);
        w ^= key0 ^ running_mod;

        for i in 0..RC.len() {
            w = inv_sub(w);
            if i < RC.len() - 1 {
                w = mult(w);
                w = cell_inv_shuffle(w);
            }
            running_mod = tweak_inv_shuffle(running_mod);
            w ^= RC[RC.len() - 1 - i] ^ key1 ^ running_mod ^ ALPHA;
        }
        w ^ modk0
    }

    #[test]
    fn precomputed_schedule_matches_per_call_derivation() {
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for round in 0..256 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(round);
            let key = PacKey::new(x.rotate_left(17), x.rotate_right(23));
            let q = Qarma64::new(key);
            for probe in 0..4u64 {
                let data = x ^ (probe << 40);
                let modifier = x.wrapping_add(probe.wrapping_mul(0x0123_4567));
                assert_eq!(
                    q.compute(data, modifier),
                    reference_compute(key, data, modifier),
                    "key={key:?} data={data:#x} modifier={modifier:#x}"
                );
            }
        }
    }

    #[test]
    fn section_vi_reference_vector_survives_precompute() {
        // The §VI signing example the paper's walkthrough uses; pinned
        // explicitly so a schedule regression cannot hide behind the
        // vector table.
        let q = Qarma64::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
        let pac = q.compute(0xfb623599da6e8127, 0x477d469dec0b8762);
        assert_eq!(pac, 0xc003b93999b33765);
        assert_eq!(q.invert(pac, 0x477d469dec0b8762), 0xfb623599da6e8127);
    }

    #[test]
    fn instances_with_equal_keys_stay_equal() {
        // The precomputed material is a pure function of the key, so
        // the derived PartialEq/Hash still mean "same key".
        let a = Qarma64::new(PacKey::new(7, 9));
        let b = Qarma64::new(PacKey::new(7, 9));
        let c = Qarma64::new(PacKey::new(7, 10));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.key(), PacKey::new(7, 9));
    }

    #[test]
    fn compute_batch_matches_per_call_uniform_modifier() {
        // The lane-parallel fast path: one modifier shared by the whole
        // batch, lengths that exercise full lane groups, the scalar
        // remainder, and the empty batch.
        let q = Qarma64::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9));
        let mut x = 0x243F_6A88_85A3_08D3u64;
        for len in [0usize, 1, 7, 8, 9, 16, 37] {
            let data: Vec<u64> = (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    x
                })
                .collect();
            let modifiers = vec![0x477d_469d_ec0b_8762u64; len];
            let mut out = vec![0u64; len];
            q.compute_batch(&data, &modifiers, &mut out);
            for i in 0..len {
                assert_eq!(out[i], q.compute(data[i], modifiers[i]), "len={len} i={i}");
            }
        }
    }

    #[test]
    fn compute_batch_matches_per_call_mixed_modifiers() {
        let q = Qarma64::new(PacKey::new(0x0123456789abcdef, 0xfedcba9876543210));
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        let mut data = Vec::new();
        let mut modifiers = Vec::new();
        for i in 0..23u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
            data.push(x);
            modifiers.push(x.rotate_left(13) ^ i);
        }
        let mut out = vec![0u64; data.len()];
        q.compute_batch(&data, &modifiers, &mut out);
        for i in 0..data.len() {
            assert_eq!(out[i], q.compute(data[i], modifiers[i]), "i={i}");
        }
    }

    #[test]
    fn compute_batch_hits_qemu_vectors() {
        for &(data, modifier, hi, lo, want) in &VECTORS {
            let q = Qarma64::new(PacKey::new(hi, lo));
            let mut out = [0u64; Qarma64::BATCH_LANES + 3];
            let d = [data; Qarma64::BATCH_LANES + 3];
            let m = [modifier; Qarma64::BATCH_LANES + 3];
            q.compute_batch(&d, &m, &mut out);
            assert!(out.iter().all(|&o| o == want), "data={data:#x}");
        }
    }

    #[test]
    fn compute_batch_with_counts_every_element() {
        let telemetry = aos_util::Telemetry::enabled();
        let q = Qarma64::new(PacKey::new(1, 2));
        let data = [3u64; 11];
        let modifiers = [4u64; 11];
        let mut out = [0u64; 11];
        q.compute_batch_with(&data, &modifiers, &mut out, &telemetry);
        assert_eq!(
            telemetry.snapshot().counter(aos_util::Counter::PacComputations),
            11
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn compute_batch_rejects_mismatched_lengths() {
        let q = Qarma64::new(PacKey::new(1, 2));
        let mut out = [0u64; 2];
        q.compute_batch(&[1, 2, 3], &[0, 0, 0], &mut out);
    }

    #[test]
    fn pac_key_accessors_roundtrip() {
        let k = PacKey::from_u128(0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210);
        assert_eq!(k.hi(), 0x0123_4567_89AB_CDEF);
        assert_eq!(k.lo(), 0xFEDC_BA98_7654_3210);
        assert_eq!(k.to_u128(), 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210);
        assert_eq!(PacKey::from(1u128), PacKey::new(0, 1));
        assert_eq!(PacKey::default(), PacKey::new(0, 0));
    }
}
