//! QARMA-64 as specified for Arm Pointer Authentication (`ComputePAC`).
//!
//! AOS computes each pointer authentication code (PAC) by running the
//! pointer through the Armv8.3-A `ComputePAC` function — a five-round
//! QARMA-64 instance with the σ2 S-box — keyed by a 128-bit key held in
//! system registers and tweaked by a 64-bit *modifier* (paper §II-B).
//! This crate implements that function bit-exactly per the Arm
//! Architecture Reference Manual pseudocode.
//!
//! Validation: the test suite pins the implementation to reference
//! vectors generated from QEMU's independent implementation of the same
//! pseudocode (`target/arm/pauth_helper.c`), including the vector for
//! the key `0x84be85ce9804e94b_ec2802d4e0a488e9` and context
//! `0x477d469dec0b8762` that the AOS paper uses for its Fig. 11 PAC
//! distribution study (output `0xc003b93999b33765` for the canonical
//! QARMA plaintext).
//!
//! # Examples
//!
//! ```
//! use aos_qarma::{PacKey, Qarma64};
//!
//! let key = PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9);
//! let cipher = Qarma64::new(key);
//! let out = cipher.compute(0xfb623599da6e8127, 0x477d469dec0b8762);
//! assert_eq!(out, 0xc003b93999b33765);
//! // The cipher is a (tweaked) permutation, so it is invertible:
//! assert_eq!(cipher.invert(out, 0x477d469dec0b8762), 0xfb623599da6e8127);
//! ```

mod ops;
mod pac;

pub use pac::{PacKey, Qarma64};

/// Truncates a 64-bit QARMA output to a `bits`-wide PAC (the low `bits`
/// bits), as a PA core does before inserting the PAC into a pointer's
/// unused upper bits.
///
/// # Panics
///
/// Panics unless `1 <= bits <= 32`, the PAC size range the paper cites
/// for typical virtual address schemes.
///
/// # Examples
///
/// ```
/// assert_eq!(aos_qarma::truncate_pac(0xABCD_1234_5678_9ABC, 16), 0x9ABC);
/// ```
pub fn truncate_pac(cipher_output: u64, bits: u32) -> u64 {
    assert!(
        (1..=32).contains(&bits),
        "PAC size must be 1..=32 bits, got {bits}"
    );
    cipher_output & ((1u64 << bits) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_pac_masks_low_bits() {
        assert_eq!(truncate_pac(u64::MAX, 11), 0x7FF);
        assert_eq!(truncate_pac(u64::MAX, 32), 0xFFFF_FFFF);
        assert_eq!(truncate_pac(0, 16), 0);
    }

    #[test]
    #[should_panic(expected = "PAC size")]
    fn truncate_pac_rejects_zero_width() {
        truncate_pac(1, 0);
    }

    #[test]
    #[should_panic(expected = "PAC size")]
    fn truncate_pac_rejects_wide() {
        truncate_pac(1, 33);
    }
}
