//! Statistical quality tests for `ComputePAC` used as a hash — the
//! property the whole HBT design rests on (paper §VI assumption 1).

use aos_qarma::{truncate_pac, PacKey, Qarma64};

fn cipher() -> Qarma64 {
    Qarma64::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9))
}

#[test]
fn chi_square_uniformity_over_pac_buckets() {
    // 2^16 sequential 16-byte-aligned addresses (the worst realistic
    // input: maximally structured) into 256 buckets of the 16-bit PAC.
    let q = cipher();
    let n = 65536u64;
    let buckets = 256usize;
    let mut counts = vec![0u64; buckets];
    for i in 0..n {
        let addr = 0x4000_0000 + i * 16;
        let pac = truncate_pac(q.compute(addr, 0x477d469dec0b8762), 16);
        counts[(pac as usize) % buckets] += 1;
    }
    let expected = n as f64 / buckets as f64;
    let chi2: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    // 255 degrees of freedom: mean 255, σ ≈ 22.6. Accept within ±6σ.
    assert!(
        (120.0..400.0).contains(&chi2),
        "chi-square {chi2:.1} outside the uniform band"
    );
}

#[test]
fn output_bits_are_unbiased() {
    let q = cipher();
    let n = 20_000u64;
    let mut ones = [0u64; 64];
    for i in 0..n {
        let out = q.compute(0x4000_0000 + i * 16, 0x477d469dec0b8762);
        for (bit, count) in ones.iter_mut().enumerate() {
            *count += (out >> bit) & 1;
        }
    }
    for (bit, &count) in ones.iter().enumerate() {
        let rate = count as f64 / n as f64;
        assert!(
            (0.47..0.53).contains(&rate),
            "output bit {bit} biased: {rate:.4}"
        );
    }
}

#[test]
fn strict_avalanche_on_input_bits() {
    // Flipping any single address bit flips ~half the output bits.
    let q = cipher();
    let base_in = 0x0000_2345_6780u64;
    let base_out = q.compute(base_in, 0x477d469dec0b8762);
    for bit in 0..46 {
        let flipped = q.compute(base_in ^ (1 << bit), 0x477d469dec0b8762);
        let hamming = (base_out ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&hamming),
            "input bit {bit}: only {hamming} output bits flipped"
        );
    }
}

#[test]
fn avalanche_on_modifier_bits() {
    let q = cipher();
    let base_out = q.compute(0x4000_0000, 0x477d469dec0b8762);
    for bit in 0..64 {
        let flipped = q.compute(0x4000_0000, 0x477d469dec0b8762 ^ (1u64 << bit));
        let hamming = (base_out ^ flipped).count_ones();
        assert!(
            (16..=48).contains(&hamming),
            "modifier bit {bit}: only {hamming} output bits flipped"
        );
    }
}

#[test]
fn sequential_pacs_show_no_stride_correlation() {
    // Adjacent allocations (stride 16) must not produce adjacent or
    // otherwise linearly related PACs.
    let q = cipher();
    let pacs: Vec<u64> = (0..4096u64)
        .map(|i| truncate_pac(q.compute(0x4000_0000 + i * 16, 0x477d469dec0b8762), 16))
        .collect();
    let mut small_deltas = 0;
    for w in pacs.windows(2) {
        if w[1].abs_diff(w[0]) <= 4 {
            small_deltas += 1;
        }
    }
    // Uniform expectation: P(|Δ| ≤ 4) ≈ 9/65536 → ~0.6 of 4095 pairs.
    assert!(
        small_deltas < 12,
        "{small_deltas} near-collisions among sequential PACs"
    );
}
