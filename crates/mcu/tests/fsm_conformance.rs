//! Conformance tests for the Fig. 8 FSMs: drive the MCQ cycle by cycle
//! with a controllable memory port and assert the documented state
//! transitions, including way iteration (IncCnt), failure at the queue
//! head, commit-gated bounds stores, and replay.

use aos_hbt::{CompressedBounds, HashedBoundsTable, HbtConfig};
use aos_mcu::{BoundsMemory, McqState, McuConfig, McuEvent, McuOp, MemoryCheckUnit};
use aos_ptrauth::PointerLayout;

/// A memory port with scriptable latency.
struct PortWithLatency(u64);

impl BoundsMemory for PortWithLatency {
    fn load_line(&mut self, _addr: u64) -> u64 {
        self.0
    }
    fn store_line(&mut self, _addr: u64) -> u64 {
        self.0
    }
}

fn setup(ways: u32) -> (MemoryCheckUnit, HashedBoundsTable, PointerLayout) {
    let layout = PointerLayout::default();
    let mut hbt = HashedBoundsTable::new(HbtConfig {
        pac_size: 11,
        initial_ways: 1,
        max_ways: 16,
        base_addr: 0x1000_0000,
        compressed: true,
    });
    while hbt.ways() < ways {
        hbt.begin_resize();
        hbt.finish_migration();
    }
    (
        MemoryCheckUnit::new(McuConfig::default(), layout),
        hbt,
        layout,
    )
}

#[test]
fn unsigned_access_goes_init_to_done_in_one_step() {
    let (mut mcu, mut hbt, _) = setup(1);
    let id = mcu
        .issue(McuOp::Access { pointer: 0x5000, is_store: false }, 0)
        .unwrap();
    assert_eq!(mcu.state_of(id), Some(McqState::Init));
    let mut events = Vec::new();
    mcu.tick(0, &mut hbt, &mut PortWithLatency(0), &mut events);
    // Done and deallocated in the same tick (unsigned, no commit wait).
    assert_eq!(mcu.state_of(id), None);
    assert!(matches!(events[0], McuEvent::Retired { .. }));
}

#[test]
fn signed_access_walks_init_bndchk_done() {
    let (mut mcu, mut hbt, layout) = setup(1);
    hbt.store(7, CompressedBounds::encode(0x4000, 64)).unwrap();
    let ptr = layout.compose(0x4000, 7, 1);
    let id = mcu
        .issue(McuOp::Access { pointer: ptr, is_store: false }, 0)
        .unwrap();
    let mut events = Vec::new();
    let mut port = PortWithLatency(3);
    // Tick 0: Init → BndChk with a line load in flight.
    mcu.tick(0, &mut hbt, &mut port, &mut events);
    assert_eq!(mcu.state_of(id), Some(McqState::BndChk));
    // The line arrives at cycle 0+1+3; earlier ticks leave it pending.
    mcu.tick(2, &mut hbt, &mut port, &mut events);
    assert_eq!(mcu.state_of(id), Some(McqState::BndChk));
    mcu.tick(4, &mut hbt, &mut port, &mut events);
    assert_eq!(mcu.state_of(id), None, "checked and deallocated");
}

#[test]
fn way_iteration_inccnt_until_found() {
    let (mut mcu, mut hbt, layout) = setup(2);
    // Fill way 0 for PAC 7, target bounds land in way 1.
    for i in 0..8u64 {
        hbt.store(7, CompressedBounds::encode(0x10_000 + i * 0x100, 64))
            .unwrap();
    }
    hbt.store(7, CompressedBounds::encode(0x9_0000, 64)).unwrap();
    let ptr = layout.compose(0x9_0000, 7, 1);
    let id = mcu
        .issue(McuOp::Access { pointer: ptr, is_store: false }, 0)
        .unwrap();
    let mut events = Vec::new();
    let mut port = PortWithLatency(0);
    mcu.tick(0, &mut hbt, &mut port, &mut events); // Init → BndChk(way 0)
    mcu.tick(1, &mut hbt, &mut port, &mut events); // miss way 0 → IncCnt → way 1
    assert_eq!(mcu.state_of(id), Some(McqState::BndChk));
    mcu.tick(2, &mut hbt, &mut port, &mut events); // hit way 1 → Done (dealloc)
    assert_eq!(mcu.state_of(id), None);
    let retired_ways = events
        .iter()
        .find_map(|e| match e {
            McuEvent::Retired { ways_touched, .. } => Some(*ways_touched),
            _ => None,
        })
        .unwrap();
    assert_eq!(retired_ways, 2, "Count reached 1 before the hit");
}

#[test]
fn count_exhaustion_fails_and_faults_at_head() {
    let (mut mcu, mut hbt, layout) = setup(2);
    hbt.store(7, CompressedBounds::encode(0x10_000, 64)).unwrap();
    // Address with PAC 7 covered by nothing.
    let ptr = layout.compose(0x9_0000, 7, 1);
    let id = mcu
        .issue(McuOp::Access { pointer: ptr, is_store: true }, 0)
        .unwrap();
    let mut events = Vec::new();
    let mut port = PortWithLatency(0);
    for now in 0..3 {
        mcu.tick(now, &mut hbt, &mut port, &mut events);
    }
    assert_eq!(mcu.state_of(id), Some(McqState::Fail));
    assert!(
        events.iter().any(|e| matches!(e, McuEvent::Exception { .. })),
        "failure at the head raises the AOS exception"
    );
    assert!(!mcu.can_retire(id), "a failed check never retires");
    assert_eq!(mcu.stats().exceptions, 1);
}

#[test]
fn bndstr_occchk_waits_for_commit_then_stores() {
    let (mut mcu, mut hbt, layout) = setup(1);
    let ptr = layout.compose(0x4000, 7, 1);
    let id = mcu.issue(McuOp::BndStr { pointer: ptr, size: 64 }, 0).unwrap();
    let mut events = Vec::new();
    let mut port = PortWithLatency(0);
    mcu.tick(0, &mut hbt, &mut port, &mut events); // Init → OccChk
    mcu.tick(1, &mut hbt, &mut port, &mut events); // slot found → BndStr
    assert_eq!(mcu.state_of(id), Some(McqState::BndStr));
    assert!(mcu.can_retire(id), "occupancy done: ROB may commit");
    // Without commit the store is never sent.
    for now in 2..10 {
        mcu.tick(now, &mut hbt, &mut port, &mut events);
    }
    assert_eq!(mcu.state_of(id), Some(McqState::BndStr));
    assert!(hbt.check(7, 0x4000, 0).is_none(), "no store before commit");
    // Commit releases the store.
    mcu.mark_committed(id);
    mcu.tick(10, &mut hbt, &mut port, &mut events);
    mcu.tick(11, &mut hbt, &mut port, &mut events);
    assert_eq!(mcu.state_of(id), None);
    assert!(hbt.check(7, 0x4000, 0).is_some(), "bounds landed at commit");
}

#[test]
fn bndclr_occchk_matches_base_only() {
    let (mut mcu, mut hbt, layout) = setup(1);
    hbt.store(7, CompressedBounds::encode(0x4000, 64)).unwrap();
    // bndclr with an interior pointer must NOT match (occupancy check
    // compares the lower bound, §V-A2).
    let interior = layout.compose(0x4010, 7, 1);
    let id = mcu.issue(McuOp::BndClr { pointer: interior }, 0).unwrap();
    mcu.mark_committed(id);
    let mut events = Vec::new();
    let mut port = PortWithLatency(0);
    for now in 0..4 {
        mcu.tick(now, &mut hbt, &mut port, &mut events);
    }
    assert_eq!(mcu.state_of(id), Some(McqState::Fail));
    assert!(hbt.check(7, 0x4000, 0).is_some(), "bounds untouched");
}

#[test]
fn replay_rescues_fail_before_it_reaches_the_head() {
    // An older bndstr whose store lands late must replay a younger
    // check that already failed — and the check must then succeed
    // without raising an exception.
    let layout = PointerLayout::default();
    let mut hbt = HashedBoundsTable::new(HbtConfig {
        pac_size: 11,
        initial_ways: 1,
        max_ways: 16,
        base_addr: 0x1000_0000,
        compressed: true,
    });
    let mut mcu = MemoryCheckUnit::new(
        McuConfig {
            bounds_forwarding: false,
            ..McuConfig::default()
        },
        layout,
    );
    let ptr = layout.compose(0x4000, 7, 1);
    let str_id = mcu.issue(McuOp::BndStr { pointer: ptr, size: 64 }, 0).unwrap();
    let chk_id = mcu
        .issue(McuOp::Access { pointer: ptr + 8, is_store: false }, 0)
        .unwrap();
    let mut events = Vec::new();
    let mut port = PortWithLatency(0);
    // Let the younger check fail first (the bndstr is not committed).
    for now in 0..4 {
        mcu.tick(now, &mut hbt, &mut port, &mut events);
    }
    assert_eq!(mcu.state_of(chk_id), Some(McqState::Fail));
    assert!(
        !events.iter().any(|e| matches!(e, McuEvent::Exception { .. })),
        "not at the head yet: no exception"
    );
    // Commit the bndstr; its store must replay the failed check.
    mcu.mark_committed(str_id);
    for now in 4..12 {
        mcu.tick(now, &mut hbt, &mut port, &mut events);
    }
    assert!(mcu.is_empty(), "both completed after the replay");
    assert!(mcu.stats().replays >= 1);
    assert!(!events.iter().any(|e| matches!(e, McuEvent::Exception { .. })));
}

#[test]
fn retry_after_resize_reruns_the_fsm() {
    let (mut mcu, mut hbt, layout) = setup(1);
    for i in 0..8u64 {
        hbt.store(7, CompressedBounds::encode(0x10_000 + i * 0x100, 64))
            .unwrap();
    }
    let ptr = layout.compose(0x9_0000, 7, 1);
    let id = mcu.issue(McuOp::BndStr { pointer: ptr, size: 64 }, 0).unwrap();
    mcu.mark_committed(id);
    let mut events = Vec::new();
    let mut port = PortWithLatency(0);
    for now in 0..4 {
        mcu.tick(now, &mut hbt, &mut port, &mut events);
    }
    assert_eq!(mcu.state_of(id), Some(McqState::Fail));
    // OS path: resize, retry the entry.
    hbt.begin_resize();
    mcu.retry(id);
    for now in 4..12 {
        mcu.tick(now, &mut hbt, &mut port, &mut events);
    }
    assert!(mcu.is_empty());
    assert!(hbt.check(7, 0x9_0000, 0).is_some(), "store succeeded after resize");
}
