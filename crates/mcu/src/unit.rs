//! The memory check unit: issue, FSM stepping, replay, forwarding,
//! retirement.

use crate::bwb::BoundsWayBuffer;
use crate::mcq::{McqEntry, McqState, McuOp};
use aos_hbt::{CompressedBounds, HashedBoundsTable, BOUNDS_PER_WAY};
use aos_ptrauth::{bwb_tag, Ahc, PointerLayout};

/// The port through which the MCU reaches the memory hierarchy.
///
/// The timing simulator implements this with its cache model so bounds
/// traffic contends with (and pollutes) ordinary data accesses; the
/// functional machine uses [`ZeroLatencyMemory`].
pub trait BoundsMemory {
    /// Requests the 64-byte line at `addr`; returns the latency in
    /// cycles until the data is available.
    fn load_line(&mut self, addr: u64) -> u64;

    /// Writes the 64-byte line at `addr`; returns the occupancy
    /// latency in cycles.
    fn store_line(&mut self, addr: u64) -> u64;
}

/// A [`BoundsMemory`] that answers instantly — functional mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroLatencyMemory;

impl BoundsMemory for ZeroLatencyMemory {
    fn load_line(&mut self, _addr: u64) -> u64 {
        0
    }

    fn store_line(&mut self, _addr: u64) -> u64 {
        0
    }
}

/// MCU configuration (defaults from Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McuConfig {
    /// Memory check queue capacity.
    pub mcq_entries: usize,
    /// Bounds way buffer capacity.
    pub bwb_entries: usize,
    /// Whether the BWB is consulted (ablation knob).
    pub use_bwb: bool,
    /// Whether store→load bounds forwarding is enabled (§V-F2).
    pub bounds_forwarding: bool,
}

impl Default for McuConfig {
    fn default() -> Self {
        Self {
            mcq_entries: 48,
            bwb_entries: 64,
            use_bwb: true,
            bounds_forwarding: true,
        }
    }
}

/// The new exception class AOS introduces (paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AosException {
    /// A signed load/store found no valid bounds: a spatial or
    /// temporal memory safety violation.
    BoundsCheckFailure {
        /// The faulting signed pointer.
        pointer: u64,
        /// `true` if the access was a store.
        is_store: bool,
    },
    /// `bndstr` found no empty slot: the OS must resize the table.
    BoundsStoreFailure {
        /// The row that overflowed.
        pac: u64,
    },
    /// `bndclr` found no matching bounds: double free or free of an
    /// invalid address.
    BoundsClearFailure {
        /// The pointer being freed.
        pointer: u64,
    },
    /// `bndstr` carried bounds the Fig. 9 scheme cannot encode — a
    /// misaligned base or a zero/oversized size. Real `malloc` never
    /// produces these, so the op came from a malformed or tampered
    /// trace; the entry fails without touching the table.
    MalformedBounds {
        /// The pointer whose bounds were rejected.
        pointer: u64,
        /// The rejected size.
        size: u64,
    },
}

impl std::fmt::Display for AosException {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AosException::BoundsCheckFailure { pointer, is_store } => write!(
                f,
                "bounds check failed for {} of {pointer:#x}",
                if *is_store { "store" } else { "load" }
            ),
            AosException::BoundsStoreFailure { pac } => {
                write!(f, "bounds store failed: row {pac:#x} full")
            }
            AosException::BoundsClearFailure { pointer } => {
                write!(f, "bounds clear failed for {pointer:#x}")
            }
            AosException::MalformedBounds { pointer, size } => {
                write!(f, "malformed bounds for {pointer:#x} (size {size})")
            }
        }
    }
}

impl std::error::Error for AosException {}

/// Events surfaced by [`MemoryCheckUnit::tick`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McuEvent {
    /// A failed entry reached the MCQ head; the OS must handle it
    /// (then [`MemoryCheckUnit::retry`] or drop the entry).
    Exception {
        /// MCQ entry id.
        id: u64,
        /// What went wrong.
        exception: AosException,
    },
    /// An entry completed and left the queue.
    Retired {
        /// MCQ entry id.
        id: u64,
        /// Ways touched while checking (0 for unsigned/forwarded).
        ways_touched: u32,
    },
}

/// Result of a synchronous (functional) MCU operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckOutcome {
    /// `true` when the access was unsigned and skipped checking.
    pub skipped: bool,
    /// `true` when satisfied by store→load bounds forwarding.
    pub forwarded: bool,
    /// HBT way lines touched.
    pub ways_touched: u32,
}

/// Cumulative MCU statistics (Figs. 16 and 17 draw on these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct McuStats {
    /// Operations issued into the MCQ.
    pub issued: u64,
    /// Accesses that were unsigned (no checking needed).
    pub unsigned_accesses: u64,
    /// Accesses that required bounds checking.
    pub signed_accesses: u64,
    /// `bndstr` operations.
    pub bndstrs: u64,
    /// `bndclr` operations.
    pub bndclrs: u64,
    /// Checks satisfied by bounds forwarding.
    pub forwards: u64,
    /// Entries replayed by the store-load replay rule.
    pub replays: u64,
    /// HBT way lines loaded.
    pub line_loads: u64,
    /// HBT lines written (bounds stores/clears).
    pub line_stores: u64,
    /// Total ways touched across completed checks.
    pub way_iterations: u64,
    /// Checks that completed successfully against the table.
    pub completed_checks: u64,
    /// Exceptions raised.
    pub exceptions: u64,
    /// Entries that completed and left the queue cleanly.
    pub retired: u64,
    /// Highest queue occupancy ever reached.
    pub peak_occupancy: u64,
}

impl McuStats {
    /// Average HBT accesses per completed (non-forwarded) check — the
    /// per-workload series of Fig. 17.
    pub fn accesses_per_check(&self) -> f64 {
        if self.completed_checks == 0 {
            0.0
        } else {
            self.way_iterations as f64 / self.completed_checks as f64
        }
    }
}

/// The memory check unit. See the [crate docs](crate) for an overview
/// and an example.
#[derive(Debug, Clone)]
pub struct MemoryCheckUnit {
    config: McuConfig,
    layout: PointerLayout,
    queue: Vec<McqEntry>,
    /// In-flight `BndStr` entries — the forwarding scan in
    /// [`step_init`](Self::step_init) only matches bounds stores, so
    /// it is skipped outright while this is zero (the common case).
    bndstr_live: u32,
    /// Lower bound on the earliest `ready_at` of any non-terminal
    /// entry. While `now` is below it (and nothing is releasable or
    /// failing at the head), [`tick`](Self::tick) returns without
    /// touching the queue at all. Recomputed exactly whenever the
    /// step pass runs; mutations between ticks only ever lower it.
    ready_floor: u64,
    /// Whether a ROB commit since the last tick may have turned a
    /// `Done` bndstr/bndclr releasable. Entries that reach `Done`
    /// *during* a tick are released by that same tick's drain pass, so
    /// between ticks this flag is the only releasable-entry source.
    release_pending: bool,
    bwb: BoundsWayBuffer,
    next_id: u64,
    stats: McuStats,
    /// Stats already published to telemetry; see
    /// [`flush_telemetry`](Self::flush_telemetry).
    published: McuStats,
    /// Whether [`tick`](Self::tick) reports clean completions as
    /// [`McuEvent::Retired`]. The timing simulator only consumes
    /// exception events, so it turns this off and saves one event
    /// push-and-scan per retired operation; the functional path
    /// ([`run_sync`](Self::run_sync)) forces it back on.
    emit_retired: bool,
    /// Scratch event buffer reused across [`MemoryCheckUnit::run_sync`]
    /// calls — the functional machine runs one `run_sync` per
    /// load/store, so a per-call `Vec` allocation is hot-path churn.
    sync_events: Vec<McuEvent>,
    telemetry: aos_util::Telemetry,
}

impl MemoryCheckUnit {
    /// Creates an empty unit.
    pub fn new(config: McuConfig, layout: PointerLayout) -> Self {
        Self {
            config,
            layout,
            queue: Vec::with_capacity(config.mcq_entries),
            bndstr_live: 0,
            ready_floor: u64::MAX,
            release_pending: false,
            bwb: BoundsWayBuffer::new(config.bwb_entries),
            next_id: 0,
            stats: McuStats::default(),
            published: McuStats::default(),
            emit_retired: true,
            sync_events: Vec::new(),
            telemetry: aos_util::Telemetry::disabled(),
        }
    }

    /// Enables or disables [`McuEvent::Retired`] emission from
    /// [`tick`](Self::tick). Exception events are always emitted.
    pub fn set_emit_retired(&mut self, on: bool) {
        self.emit_retired = on;
    }

    /// Publishes whatever the stats counters accumulated since the
    /// last flush into the telemetry registry, in one batch (including
    /// the internal BWB's counters). Called at the end of a run; the
    /// totals are identical to per-event counting, but the per-op hot
    /// paths stay free of telemetry traffic.
    pub fn flush_telemetry(&mut self) {
        use aos_util::Counter;
        let d = [
            (Counter::McqEnqueued, self.stats.issued - self.published.issued),
            (Counter::McqRetired, self.stats.retired - self.published.retired),
            (Counter::McqForwards, self.stats.forwards - self.published.forwards),
            (Counter::McqReplays, self.stats.replays - self.published.replays),
            (
                Counter::McqExceptions,
                self.stats.exceptions - self.published.exceptions,
            ),
        ];
        for (counter, delta) in d {
            if delta > 0 {
                self.telemetry.add(counter, delta);
            }
        }
        self.telemetry
            .gauge_max(aos_util::Gauge::McqPeakOccupancy, self.stats.peak_occupancy);
        self.published = self.stats;
        self.bwb.flush_telemetry();
    }

    /// Attaches a telemetry handle (shared with the internal BWB):
    /// MCQ enqueues, peak occupancy, replays, forwards, exceptions and
    /// clean retirements are recorded into it.
    pub fn with_telemetry(mut self, telemetry: aos_util::Telemetry) -> Self {
        self.bwb = std::mem::replace(
            &mut self.bwb,
            BoundsWayBuffer::new(self.config.bwb_entries),
        )
        .with_telemetry(telemetry.clone());
        self.telemetry = telemetry;
        self
    }

    /// The configuration in use.
    pub fn config(&self) -> &McuConfig {
        &self.config
    }

    /// Entries currently in the queue.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Whether another operation can be issued this cycle. When the
    /// queue is full the issue stage stalls — the back-pressure the
    /// paper notes can even *help* some workloads (§IX-A).
    pub fn has_capacity(&self) -> bool {
        self.queue.len() < self.config.mcq_entries
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> McuStats {
        self.stats
    }

    /// BWB statistics (Fig. 17's hit rate).
    pub fn bwb_stats(&self) -> crate::bwb::BwbStats {
        self.bwb.stats()
    }

    /// Enqueues an operation, returning its entry id.
    ///
    /// # Errors
    ///
    /// Returns `Err(op)` when the queue is full (the caller must stall
    /// and retry next cycle).
    pub fn issue(&mut self, op: McuOp, now: u64) -> Result<u64, McuOp> {
        if !self.has_capacity() {
            return Err(op);
        }
        let pointer = match op {
            McuOp::Access { pointer, .. }
            | McuOp::BndStr { pointer, .. }
            | McuOp::BndClr { pointer } => pointer,
        };
        let addr = self.layout.address(pointer);
        let pac = self.layout.pac(pointer);
        let ahc = Ahc::from_bits(self.layout.ahc(pointer));
        // A bndstr whose bounds the Fig. 9 scheme cannot encode (only
        // reachable from a malformed or tampered trace — malloc never
        // produces one) is accepted into the queue but fails in place:
        // it raises `MalformedBounds` at the head instead of panicking
        // here.
        let (bnd_data, malformed) = match op {
            McuOp::BndStr { size, .. } => match CompressedBounds::try_encode(addr, size) {
                Ok(b) => (b, false),
                Err(_) => (CompressedBounds::EMPTY, true),
            },
            _ => (CompressedBounds::EMPTY, false),
        };
        let id = self.next_id;
        self.next_id += 1;
        self.stats.issued += 1;
        self.stats.peak_occupancy = self.stats.peak_occupancy.max(self.queue.len() as u64 + 1);
        match op {
            McuOp::Access { .. } if ahc.is_some() => self.stats.signed_accesses += 1,
            McuOp::Access { .. } => self.stats.unsigned_accesses += 1,
            McuOp::BndStr { .. } => {
                self.stats.bndstrs += 1;
                self.bndstr_live += 1;
            }
            McuOp::BndClr { .. } => self.stats.bndclrs += 1,
        }
        self.queue.push(McqEntry {
            id,
            op,
            addr,
            pac,
            ahc,
            bnd_data,
            way: 0,
            count: 0,
            start_way: 0,
            hit: None,
            committed: false,
            state: if malformed {
                McqState::Fail
            } else {
                McqState::Init
            },
            ready_at: now,
            reported: false,
            forwarded: false,
            malformed,
        });
        self.ready_floor = self.ready_floor.min(now);
        Ok(id)
    }

    /// Index of entry `id` in the queue. Ids are handed out in issue
    /// order and every removal preserves relative order, so the queue
    /// is always sorted by id and the lookup is a binary search — the
    /// per-retire cost the linear scans used to pay on a 48-deep MCQ.
    #[inline]
    fn index_of(&self, id: u64) -> Option<usize> {
        self.queue.binary_search_by_key(&id, |e| e.id).ok()
    }

    /// Marks an entry as committed by the ROB.
    pub fn mark_committed(&mut self, id: u64) {
        if let Some(i) = self.index_of(id) {
            self.queue[i].committed = true;
            self.release_pending = true;
        }
    }

    /// Current FSM state of an entry, if still queued.
    pub fn state_of(&self, id: u64) -> Option<McqState> {
        self.index_of(id).map(|i| self.queue[i].state)
    }

    /// Whether the instruction may retire from the ROB: its check is
    /// complete (or it never needed one). Entries no longer in the
    /// queue have retired already.
    pub fn check_complete(&self, id: u64) -> bool {
        match self.index_of(id) {
            Some(i) => self.queue[i].state == McqState::Done,
            None => true,
        }
    }

    /// Whether the ROB may retire this instruction: checks must be
    /// `Done` (delayed retirement, §III-C4), while `bndstr`/`bndclr`
    /// only need their occupancy check finished — their table store is
    /// sent *after* commit to preserve store ordering.
    pub fn can_retire(&self, id: u64) -> bool {
        match self.index_of(id) {
            None => true,
            Some(i) => Self::retirable(&self.queue[i]),
        }
    }

    #[inline]
    fn retirable(e: &McqEntry) -> bool {
        match e.op {
            McuOp::Access { .. } => e.state == McqState::Done,
            McuOp::BndStr { .. } | McuOp::BndClr { .. } => {
                matches!(e.state, McqState::BndStr | McqState::Done)
            }
        }
    }

    /// [`MemoryCheckUnit::can_retire`] and
    /// [`MemoryCheckUnit::mark_committed`] fused into one queue lookup
    /// — the ROB retire stage always performs them back to back, and on
    /// the hot path the second binary search is pure overhead. Returns
    /// whether the instruction retired (and was marked committed).
    pub fn commit_if_retirable(&mut self, id: u64) -> bool {
        match self.index_of(id) {
            None => true,
            Some(i) => {
                let ok = Self::retirable(&self.queue[i]);
                if ok {
                    self.queue[i].committed = true;
                    self.release_pending = true;
                }
                ok
            }
        }
    }

    /// The next cycle at which [`MemoryCheckUnit::tick`] can possibly
    /// make progress, or `u64::MAX` when every queued entry is waiting
    /// on an external stimulus (a ROB commit or an OS retry/drop). The
    /// timing simulator uses this to fast-forward over stall cycles
    /// without stepping the FSM through each one.
    pub fn next_wake(&self, now: u64) -> u64 {
        let mut wake = u64::MAX;
        for (i, e) in self.queue.iter().enumerate() {
            let w = match e.state {
                // A Done entry releases on the next tick — unless it is
                // a bndstr/bndclr still waiting for its ROB commit.
                McqState::Done => {
                    if matches!(e.op, McuOp::Access { .. }) || e.committed {
                        now + 1
                    } else {
                        u64::MAX
                    }
                }
                // A failed head raises its exception next tick; failed
                // entries elsewhere sit until the OS intervenes or the
                // head drains (itself a wake event).
                McqState::Fail => {
                    if i == 0 && !e.reported {
                        now + 1
                    } else {
                        u64::MAX
                    }
                }
                // The post-commit table store only runs once committed.
                McqState::BndStr => {
                    if e.committed {
                        e.ready_at.max(now + 1)
                    } else {
                        u64::MAX
                    }
                }
                McqState::Init | McqState::BndChk | McqState::OccChk => e.ready_at.max(now + 1),
            };
            wake = wake.min(w);
            if wake == now + 1 {
                break;
            }
        }
        wake
    }

    /// Resets a failed (or in-flight) entry to retry from scratch —
    /// the OS path after resizing the table on a `bndstr` failure.
    pub fn retry(&mut self, id: u64) {
        if let Some(i) = self.index_of(id) {
            let e = &mut self.queue[i];
            // A malformed bndstr can never succeed; it stays failed no
            // matter how often the OS retries.
            e.state = if e.malformed {
                McqState::Fail
            } else {
                McqState::Init
            };
            e.count = 0;
            e.way = 0;
            e.hit = None;
            e.reported = false;
            e.ready_at = 0;
            self.ready_floor = 0;
        }
    }

    /// Removes a failed head entry (OS chose to terminate/skip).
    pub fn drop_failed(&mut self, id: u64) {
        if let Some(i) = self.index_of(id) {
            let e = self.queue.remove(i);
            if matches!(e.op, McuOp::BndStr { .. }) {
                self.bndstr_live -= 1;
            }
        }
    }

    /// Removes every entry *younger* than `id` (strictly greater ids)
    /// — the pipeline-flush path when a precise exception at commit
    /// squashes all in-flight ops after the faulting one. The entry
    /// with `id` itself (and everything older) survives. Returns how
    /// many entries were squashed.
    pub fn squash_newer(&mut self, id: u64) -> usize {
        // The queue is always sorted by id, so the squash boundary is
        // a partition point and the removal a truncate.
        let keep = self.queue.partition_point(|e| e.id <= id);
        let squashed = self.queue.len() - keep;
        for e in &self.queue[keep..] {
            if matches!(e.op, McuOp::BndStr { .. }) {
                self.bndstr_live -= 1;
            }
        }
        self.queue.truncate(keep);
        if self.queue.is_empty() {
            self.ready_floor = u64::MAX;
            self.release_pending = false;
        }
        // `ready_floor` stays a valid lower bound after removals (the
        // true floor can only rise), so no recompute is needed.
        squashed
    }

    /// Clears the whole queue (process teardown).
    pub fn flush(&mut self) {
        self.queue.clear();
        self.bndstr_live = 0;
        self.ready_floor = u64::MAX;
        self.release_pending = false;
    }

    /// Advances every ready entry by one FSM step and retires
    /// completed head entries. Events are appended to `events` (an
    /// out-buffer so the per-cycle hot path does not allocate).
    pub fn tick<M: BoundsMemory + ?Sized>(
        &mut self,
        now: u64,
        hbt: &mut HashedBoundsTable,
        mem: &mut M,
        events: &mut Vec<McuEvent>,
    ) {
        // O(1) idle check: nothing can step before `ready_floor`, no
        // commit has armed a release since the last pass, and the head
        // has no unreported failure. Most cycles (entries waiting on
        // memory latencies or ROB commits) the tick ends right here
        // without touching the queue.
        let head_fail = self
            .queue
            .first()
            .is_some_and(|e| e.state == McqState::Fail && !e.reported);
        if now < self.ready_floor && !self.release_pending && !head_fail {
            return;
        }

        let ways = hbt.ways();
        let mut floor = u64::MAX;
        for i in 0..self.queue.len() {
            let e = &self.queue[i];
            if e.is_terminal() {
                continue;
            }
            if e.ready_at > now {
                floor = floor.min(e.ready_at);
                continue;
            }
            match e.state {
                McqState::Init => self.step_init(i, now, hbt, mem, ways),
                McqState::BndChk => self.step_bndchk(i, now, hbt, mem, ways),
                McqState::OccChk => self.step_occchk(i, now, hbt, mem, ways),
                McqState::BndStr => self.step_bndstr(i, now, hbt, mem),
                McqState::Fail | McqState::Done => {}
            }
            let e = &self.queue[i];
            if !e.is_terminal() {
                floor = floor.min(e.ready_at);
            }
        }
        self.ready_floor = floor;
        self.release_pending = false;

        // A failed entry at the head raises its exception (once).
        if let Some(head) = self.queue.first_mut() {
            if head.state == McqState::Fail && !head.reported {
                head.reported = true;
                self.stats.exceptions += 1;
                let exception = match head.op {
                    McuOp::Access { pointer, is_store } => {
                        AosException::BoundsCheckFailure { pointer, is_store }
                    }
                    McuOp::BndStr { pointer, size } if head.malformed => {
                        AosException::MalformedBounds { pointer, size }
                    }
                    McuOp::BndStr { .. } => AosException::BoundsStoreFailure { pac: head.pac },
                    McuOp::BndClr { pointer } => AosException::BoundsClearFailure { pointer },
                };
                events.push(McuEvent::Exception {
                    id: head.id,
                    exception,
                });
            }
        }

        // Deallocate completed entries. Done entries are excluded from
        // store-load replay by construction, so they may leave the
        // queue out of order; bndstr/bndclr additionally wait for ROB
        // commit because their table store is sent post-commit (and
        // commits arrive in program order, so bounds stores stay
        // ordered). One in-place compaction pass: a `Vec::remove` per
        // released entry would memmove the tail once per release.
        let len = self.queue.len();
        let mut write = 0;
        for read in 0..len {
            let e = &self.queue[read];
            let releasable = e.state == McqState::Done
                && (matches!(e.op, McuOp::Access { .. }) || e.committed);
            if !releasable {
                if write != read {
                    self.queue.swap(write, read);
                }
                write += 1;
                continue;
            }
            let (id, op, addr, pac, ahc, hit, count, forwarded, is_signed) = {
                let e = &self.queue[read];
                (
                    e.id,
                    e.op,
                    e.addr,
                    e.pac,
                    e.ahc,
                    e.hit,
                    e.count,
                    e.forwarded,
                    e.is_signed_access(),
                )
            };
            if matches!(op, McuOp::BndStr { .. }) {
                self.bndstr_live -= 1;
            }
            let ways_touched = if is_signed && !forwarded { count + 1 } else { 0 };
            if self.config.use_bwb && !forwarded {
                if let (Some(ahc), Some((way, _))) = (ahc, hit) {
                    if matches!(op, McuOp::Access { .. }) {
                        self.bwb.update(bwb_tag(addr, ahc, pac), way);
                    }
                }
            }
            self.stats.retired += 1;
            if self.emit_retired {
                events.push(McuEvent::Retired { id, ways_touched });
            }
        }
        self.queue.truncate(write);
    }

    fn step_init<M: BoundsMemory + ?Sized>(
        &mut self,
        i: usize,
        now: u64,
        hbt: &HashedBoundsTable,
        mem: &mut M,
        ways: u32,
    ) {
        match self.queue[i].op {
            McuOp::Access { .. } => {
                if self.queue[i].ahc.is_none() {
                    // Unsigned: no bounds checking (Fig. 6).
                    self.queue[i].state = McqState::Done;
                    return;
                }
                let (pac, addr) = (self.queue[i].pac, self.queue[i].addr);
                // Store→load bounds forwarding from an older in-flight
                // bndstr with the same PAC whose bounds cover us.
                if self.config.bounds_forwarding && self.bndstr_live > 0 {
                    let forwarded = self.queue[..i].iter().any(|e| {
                        matches!(e.op, McuOp::BndStr { .. })
                            && e.pac == pac
                            && e.state != McqState::Fail
                            && e.bnd_data.check(addr)
                    });
                    if forwarded {
                        self.stats.forwards += 1;
                        let e = &mut self.queue[i];
                        e.forwarded = true;
                        e.state = McqState::Done;
                        return;
                    }
                }
                let start_way = if self.config.use_bwb {
                    let ahc = self.queue[i].ahc.expect("signed access has an AHC");
                    self.bwb
                        .lookup(bwb_tag(addr, ahc, pac))
                        .map(|w| w % ways)
                        .unwrap_or(0)
                } else {
                    0
                };
                let e = &mut self.queue[i];
                e.start_way = start_way;
                e.way = start_way;
                e.count = 0;
                e.state = McqState::BndChk;
                let line = hbt.line_address(pac, start_way);
                self.stats.line_loads += 1;
                self.queue[i].ready_at = now + 1 + mem.load_line(line);
            }
            McuOp::BndStr { .. } | McuOp::BndClr { .. } => {
                let pac = self.queue[i].pac;
                let e = &mut self.queue[i];
                e.way = 0;
                e.count = 0;
                e.state = McqState::OccChk;
                let line = hbt.line_address(pac, 0);
                self.stats.line_loads += 1;
                self.queue[i].ready_at = now + 1 + mem.load_line(line);
            }
        }
    }

    fn step_bndchk<M: BoundsMemory + ?Sized>(
        &mut self,
        i: usize,
        now: u64,
        hbt: &HashedBoundsTable,
        mem: &mut M,
        ways: u32,
    ) {
        let (pac, addr, way) = (self.queue[i].pac, self.queue[i].addr, self.queue[i].way);
        let spw = hbt.slots_per_way() as usize;
        let line = hbt.peek_way(pac, way);
        if let Some(slot) = line[..spw].iter().position(|b| b.check(addr)) {
            let e = &mut self.queue[i];
            e.hit = Some((way, slot as u32));
            e.state = McqState::Done;
            self.stats.way_iterations += (e.count + 1) as u64;
            self.stats.completed_checks += 1;
            return;
        }
        // IncCnt: try the next way or fail.
        let count = self.queue[i].count + 1;
        if count == ways {
            self.queue[i].count = count - 1;
            self.queue[i].state = McqState::Fail;
            return;
        }
        let next_way = (self.queue[i].start_way + count) % ways;
        let e = &mut self.queue[i];
        e.count = count;
        e.way = next_way;
        let line_addr = hbt.line_address(pac, next_way);
        self.stats.line_loads += 1;
        self.queue[i].ready_at = now + 1 + mem.load_line(line_addr);
    }

    fn step_occchk<M: BoundsMemory + ?Sized>(
        &mut self,
        i: usize,
        now: u64,
        hbt: &HashedBoundsTable,
        mem: &mut M,
        ways: u32,
    ) {
        let (pac, addr, way) = (self.queue[i].pac, self.queue[i].addr, self.queue[i].way);
        let spw = hbt.slots_per_way() as usize;
        let line = hbt.peek_way(pac, way);
        let is_store = matches!(self.queue[i].op, McuOp::BndStr { .. });
        let slot = if is_store {
            line[..spw].iter().position(|b| b.is_empty())
        } else {
            line[..spw].iter().position(|b| b.matches_base(addr))
        };
        if let Some(slot) = slot {
            let e = &mut self.queue[i];
            e.hit = Some((way, slot as u32));
            e.state = McqState::BndStr;
            return;
        }
        let count = self.queue[i].count + 1;
        if count == ways {
            self.queue[i].count = count - 1;
            self.queue[i].state = McqState::Fail;
            return;
        }
        let e = &mut self.queue[i];
        e.count = count;
        e.way = count;
        let line_addr = hbt.line_address(pac, count);
        self.stats.line_loads += 1;
        self.queue[i].ready_at = now + 1 + mem.load_line(line_addr);
    }

    fn step_bndstr<M: BoundsMemory + ?Sized>(
        &mut self,
        i: usize,
        now: u64,
        hbt: &mut HashedBoundsTable,
        mem: &mut M,
    ) {
        if !self.queue[i].committed {
            // Bounds stores must preserve store ordering: wait for the
            // ROB to commit the instruction (paper §V-A1).
            return;
        }
        let (pac, way, slot) = {
            let e = &self.queue[i];
            let (way, slot) = e.hit.expect("BndStr state implies a found slot");
            (e.pac, way, slot)
        };
        let data = self.queue[i].bnd_data; // EMPTY for bndclr
        hbt.poke_slot(pac, way, slot, data);
        let line = hbt.line_address(pac, way);
        self.stats.line_stores += 1;
        let _occupancy = mem.store_line(line);
        self.queue[i].state = McqState::Done;
        self.queue[i].ready_at = now + 1;

        // Store-load replay (§V-E): newer entries with the same PAC
        // restart unless already Done — including younger bndstr
        // entries whose occupancy result may have been invalidated by
        // this store.
        for j in (i + 1)..self.queue.len() {
            let e = &mut self.queue[j];
            if e.pac == pac
                && !e.malformed
                && matches!(
                    e.state,
                    McqState::BndChk | McqState::OccChk | McqState::BndStr | McqState::Fail
                )
            {
                e.state = McqState::Init;
                e.count = 0;
                e.way = 0;
                e.hit = None;
                e.reported = false;
                e.ready_at = now + 1;
                self.stats.replays += 1;
            }
        }
    }

    /// Runs one operation to completion with zero-latency memory — the
    /// functional always-on machine. The queue must be empty (the
    /// functional machine executes one instruction at a time).
    ///
    /// # Errors
    ///
    /// Returns the [`AosException`] if the operation faults.
    ///
    /// # Panics
    ///
    /// Panics if the queue is not empty or the FSM fails to converge
    /// (which would be a bug).
    pub fn run_sync(
        &mut self,
        op: McuOp,
        hbt: &mut HashedBoundsTable,
    ) -> Result<CheckOutcome, AosException> {
        assert!(self.queue.is_empty(), "run_sync requires an idle MCU");
        let skipped = matches!(op, McuOp::Access { pointer, .. }
            if Ahc::from_bits(self.layout.ahc(pointer)).is_none());
        let id = self.issue(op, 0).expect("empty queue has capacity");
        self.mark_committed(id);
        let mut mem = ZeroLatencyMemory;
        let mut events = std::mem::take(&mut self.sync_events);
        events.clear();
        // The loop below keys off the Retired event, so emission must
        // be on regardless of how the owner configured the unit.
        let saved_emit = self.emit_retired;
        self.emit_retired = true;
        let mut outcome = None;
        for now in 0..BOUNDS_PER_WAY as u64 * 4096 {
            self.tick(now, hbt, &mut mem, &mut events);
            if let Some(ev) = events.drain(..).next() {
                outcome = Some(match ev {
                    McuEvent::Exception { exception, .. } => {
                        self.queue.clear();
                        self.bndstr_live = 0;
                        self.ready_floor = u64::MAX;
                        self.release_pending = false;
                        Err(exception)
                    }
                    McuEvent::Retired { ways_touched, .. } => Ok(CheckOutcome {
                        skipped,
                        forwarded: false,
                        ways_touched,
                    }),
                });
                break;
            }
        }
        self.sync_events = events;
        self.emit_retired = saved_emit;
        self.flush_telemetry();
        outcome.expect("MCQ FSM did not converge")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_hbt::HbtConfig;

    fn setup() -> (MemoryCheckUnit, HashedBoundsTable, PointerLayout) {
        let layout = PointerLayout::default();
        let hbt = HashedBoundsTable::new(HbtConfig {
            pac_size: 11,
            initial_ways: 1,
            max_ways: 16,
            base_addr: 0x1000_0000,
            compressed: true,
        });
        (
            MemoryCheckUnit::new(McuConfig::default(), layout),
            hbt,
            layout,
        )
    }

    fn signed(layout: PointerLayout, addr: u64, pac: u64) -> u64 {
        layout.compose(addr, pac, 1)
    }

    #[test]
    fn squash_newer_removes_exactly_the_younger_entries() {
        let (mut mcu, mut hbt, layout) = setup();
        let ptr = signed(layout, 0x4000, 7);
        let survivor = mcu
            .issue(McuOp::BndStr { pointer: ptr, size: 64 }, 0)
            .unwrap();
        let young_access = mcu
            .issue(
                McuOp::Access {
                    pointer: ptr,
                    is_store: false,
                },
                0,
            )
            .unwrap();
        let young_bndstr = mcu
            .issue(
                McuOp::BndStr {
                    pointer: signed(layout, 0x8000, 9),
                    size: 64,
                },
                0,
            )
            .unwrap();
        assert!(young_access > survivor && young_bndstr > young_access);
        assert_eq!(mcu.len(), 3);

        assert_eq!(mcu.squash_newer(survivor), 2);
        assert_eq!(mcu.len(), 1);
        assert!(mcu.state_of(survivor).is_some());
        assert!(mcu.state_of(young_access).is_none());
        assert!(mcu.state_of(young_bndstr).is_none());

        // The surviving bndstr still completes and retires cleanly —
        // bndstr_live accounting survived the squash.
        mcu.mark_committed(survivor);
        let mut events = Vec::new();
        let mut mem = ZeroLatencyMemory;
        for now in 1..64 {
            mcu.tick(now, &mut hbt, &mut mem, &mut events);
            if mcu.is_empty() {
                break;
            }
        }
        assert!(mcu.is_empty(), "survivor must drain: {events:?}");
        assert_eq!(mcu.squash_newer(survivor), 0, "empty queue squashes nothing");
    }

    #[test]
    fn unsigned_access_skips_checking() {
        let (mut mcu, mut hbt, _) = setup();
        let out = mcu
            .run_sync(
                McuOp::Access {
                    pointer: 0x9999,
                    is_store: false,
                },
                &mut hbt,
            )
            .unwrap();
        assert!(out.skipped);
        assert_eq!(out.ways_touched, 0);
        assert_eq!(mcu.stats().unsigned_accesses, 1);
    }

    #[test]
    fn store_then_check_succeeds() {
        let (mut mcu, mut hbt, layout) = setup();
        let ptr = signed(layout, 0x4000, 7);
        mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
            .unwrap();
        let out = mcu
            .run_sync(
                McuOp::Access {
                    pointer: ptr + 32,
                    is_store: true,
                },
                &mut hbt,
            )
            .unwrap();
        assert!(!out.skipped);
        assert_eq!(out.ways_touched, 1);
    }

    #[test]
    fn out_of_bounds_access_faults() {
        let (mut mcu, mut hbt, layout) = setup();
        let ptr = signed(layout, 0x4000, 7);
        mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
            .unwrap();
        let err = mcu
            .run_sync(
                McuOp::Access {
                    pointer: ptr + 64,
                    is_store: false,
                },
                &mut hbt,
            )
            .unwrap_err();
        assert_eq!(
            err,
            AosException::BoundsCheckFailure {
                pointer: ptr + 64,
                is_store: false
            }
        );
        assert!(mcu.is_empty(), "failed entry cleaned up in sync mode");
    }

    #[test]
    fn malformed_bndstr_raises_typed_exception() {
        let (mut mcu, mut hbt, layout) = setup();
        // A misaligned base: no real malloc produces this, so it can
        // only arrive via a crafted/tampered trace. It must surface as
        // a typed exception, not a panic, and not touch the table.
        let ptr = signed(layout, 0x4008, 7);
        let err = mcu
            .run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
            .unwrap_err();
        assert_eq!(
            err,
            AosException::MalformedBounds {
                pointer: ptr,
                size: 64
            }
        );
        assert!(err.to_string().contains("malformed bounds"));
        assert!(mcu.is_empty(), "failed entry cleaned up in sync mode");
        assert_eq!(hbt.row_occupancy(7), 0, "table untouched");

        // Zero and oversized sizes take the same path.
        let ptr = signed(layout, 0x4000, 7);
        for bad_size in [0, 1 << 33] {
            let err = mcu
                .run_sync(
                    McuOp::BndStr {
                        pointer: ptr,
                        size: bad_size,
                    },
                    &mut hbt,
                )
                .unwrap_err();
            assert!(matches!(err, AosException::MalformedBounds { .. }), "{err}");
        }
    }

    #[test]
    fn malformed_bndstr_stays_failed_across_retry() {
        let (mut mcu, _hbt, layout) = setup();
        let ptr = signed(layout, 0x4008, 7);
        let id = mcu
            .issue(McuOp::BndStr { pointer: ptr, size: 64 }, 0)
            .unwrap();
        mcu.mark_committed(id);
        assert_eq!(mcu.state_of(id), Some(McqState::Fail));
        // An OS that mistakes this for a row overflow and retries gets
        // the same failure back instead of a corrupted table.
        mcu.retry(id);
        assert_eq!(mcu.state_of(id), Some(McqState::Fail));
        mcu.drop_failed(id);
        assert!(mcu.is_empty());
    }

    #[test]
    fn use_after_clear_faults() {
        let (mut mcu, mut hbt, layout) = setup();
        let ptr = signed(layout, 0x4000, 7);
        mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
            .unwrap();
        mcu.run_sync(McuOp::BndClr { pointer: ptr }, &mut hbt)
            .unwrap();
        assert!(mcu
            .run_sync(
                McuOp::Access {
                    pointer: ptr,
                    is_store: false
                },
                &mut hbt
            )
            .is_err());
    }

    #[test]
    fn double_clear_faults() {
        let (mut mcu, mut hbt, layout) = setup();
        let ptr = signed(layout, 0x4000, 7);
        mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
            .unwrap();
        mcu.run_sync(McuOp::BndClr { pointer: ptr }, &mut hbt)
            .unwrap();
        let err = mcu
            .run_sync(McuOp::BndClr { pointer: ptr }, &mut hbt)
            .unwrap_err();
        assert_eq!(err, AosException::BoundsClearFailure { pointer: ptr });
    }

    #[test]
    fn row_overflow_raises_store_failure() {
        let (mut mcu, mut hbt, layout) = setup();
        for i in 0..8u64 {
            let ptr = signed(layout, 0x4000 + i * 0x100, 7);
            mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
                .unwrap();
        }
        let ptr = signed(layout, 0x9000, 7);
        let err = mcu
            .run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
            .unwrap_err();
        assert_eq!(err, AosException::BoundsStoreFailure { pac: 7 });
        // OS resizes; retrying the operation then succeeds.
        hbt.begin_resize();
        mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
            .unwrap();
    }

    #[test]
    fn bwb_hint_cuts_second_lookup_to_one_way() {
        let (mut mcu, mut hbt, layout) = setup();
        hbt.begin_resize();
        hbt.finish_migration(); // 2 ways
        // Fill way 0 so the target lands in way 1.
        for i in 0..8u64 {
            let ptr = signed(layout, 0x4000 + i * 0x100, 7);
            mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
                .unwrap();
        }
        let target = signed(layout, 0x9000, 7);
        mcu.run_sync(McuOp::BndStr { pointer: target, size: 64 }, &mut hbt)
            .unwrap();
        let first = mcu
            .run_sync(
                McuOp::Access {
                    pointer: target,
                    is_store: false,
                },
                &mut hbt,
            )
            .unwrap();
        assert_eq!(first.ways_touched, 2, "cold lookup iterates");
        let second = mcu
            .run_sync(
                McuOp::Access {
                    pointer: target + 8,
                    is_store: false,
                },
                &mut hbt,
            )
            .unwrap();
        assert_eq!(second.ways_touched, 1, "BWB hint goes straight to way 1");
        assert!(mcu.bwb_stats().hits >= 1);
    }

    #[test]
    fn bwb_disabled_always_scans_from_way_zero() {
        let layout = PointerLayout::default();
        let mut hbt = HashedBoundsTable::new(HbtConfig {
            pac_size: 11,
            initial_ways: 2,
            max_ways: 16,
            base_addr: 0x1000_0000,
            compressed: true,
        });
        let mut mcu = MemoryCheckUnit::new(
            McuConfig {
                use_bwb: false,
                ..McuConfig::default()
            },
            layout,
        );
        for i in 0..8u64 {
            let ptr = signed(layout, 0x4000 + i * 0x100, 7);
            mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
                .unwrap();
        }
        let target = signed(layout, 0x9000, 7);
        mcu.run_sync(McuOp::BndStr { pointer: target, size: 64 }, &mut hbt)
            .unwrap();
        for _ in 0..2 {
            let out = mcu
                .run_sync(
                    McuOp::Access {
                        pointer: target,
                        is_store: false,
                    },
                    &mut hbt,
                )
                .unwrap();
            assert_eq!(out.ways_touched, 2, "no hint without the BWB");
        }
        assert_eq!(mcu.bwb_stats().hits + mcu.bwb_stats().misses, 0);
    }

    #[test]
    fn timing_mode_gates_retirement_on_check() {
        // Drive tick() manually with a slow memory and verify the
        // access cannot retire before its check completes.
        struct SlowMemory;
        impl BoundsMemory for SlowMemory {
            fn load_line(&mut self, _addr: u64) -> u64 {
                10
            }
            fn store_line(&mut self, _addr: u64) -> u64 {
                10
            }
        }
        let (mut mcu, mut hbt, layout) = setup();
        let ptr = signed(layout, 0x4000, 3);
        // Prepare bounds functionally.
        mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
            .unwrap();
        let id = mcu
            .issue(
                McuOp::Access {
                    pointer: ptr,
                    is_store: false,
                },
                0,
            )
            .unwrap();
        let mut events = Vec::new();
        let mut mem = SlowMemory;
        mcu.tick(0, &mut hbt, &mut mem, &mut events);
        assert!(!mcu.check_complete(id), "line load still in flight");
        for now in 1..=12 {
            mcu.tick(now, &mut hbt, &mut mem, &mut events);
        }
        assert!(mcu.check_complete(id), "check done after latency");
        mcu.mark_committed(id);
        mcu.tick(13, &mut hbt, &mut mem, &mut events);
        assert!(mcu.is_empty(), "entry retired after commit");
        assert!(events
            .iter()
            .any(|e| matches!(e, McuEvent::Retired { .. })));
    }

    #[test]
    fn store_load_replay_restarts_younger_checks() {
        struct SlowMemory;
        impl BoundsMemory for SlowMemory {
            fn load_line(&mut self, _addr: u64) -> u64 {
                5
            }
            fn store_line(&mut self, _addr: u64) -> u64 {
                5
            }
        }
        let layout = PointerLayout::default();
        let mut hbt = HashedBoundsTable::new(HbtConfig {
            pac_size: 11,
            initial_ways: 1,
            max_ways: 16,
            base_addr: 0x1000_0000,
            compressed: true,
        });
        let mut mcu = MemoryCheckUnit::new(
            McuConfig {
                bounds_forwarding: false, // force the replay path
                ..McuConfig::default()
            },
            layout,
        );
        let ptr = signed(layout, 0x4000, 3);
        let str_id = mcu.issue(McuOp::BndStr { pointer: ptr, size: 64 }, 0).unwrap();
        let chk_id = mcu
            .issue(
                McuOp::Access {
                    pointer: ptr + 8,
                    is_store: false,
                },
                0,
            )
            .unwrap();
        let mut events = Vec::new();
        let mut mem = SlowMemory;
        // Let both proceed; hold the bndstr back from commit so the
        // younger check finds an empty table and "fails" first.
        for now in 0..40 {
            mcu.tick(now, &mut hbt, &mut mem, &mut events);
        }
        assert_eq!(mcu.state_of(chk_id), Some(McqState::Fail));
        // Now the bndstr commits, sends its store, and replays the
        // younger check, which then succeeds.
        mcu.mark_committed(str_id);
        mcu.mark_committed(chk_id);
        for now in 40..120 {
            mcu.tick(now, &mut hbt, &mut mem, &mut events);
        }
        assert!(mcu.is_empty(), "both retired");
        assert!(mcu.stats().replays >= 1);
        assert!(
            !events
                .iter()
                .any(|e| matches!(e, McuEvent::Exception { .. })),
            "replay rescued the check before it reached the head"
        );
    }

    #[test]
    fn bounds_forwarding_satisfies_younger_check_immediately() {
        struct SlowMemory;
        impl BoundsMemory for SlowMemory {
            fn load_line(&mut self, _addr: u64) -> u64 {
                50
            }
            fn store_line(&mut self, _addr: u64) -> u64 {
                50
            }
        }
        let (mut mcu, mut hbt, layout) = setup();
        let ptr = signed(layout, 0x4000, 3);
        let _str_id = mcu.issue(McuOp::BndStr { pointer: ptr, size: 64 }, 0).unwrap();
        let chk_id = mcu
            .issue(
                McuOp::Access {
                    pointer: ptr + 8,
                    is_store: false,
                },
                0,
            )
            .unwrap();
        let mut events = Vec::new();
        let mut mem = SlowMemory;
        mcu.tick(0, &mut hbt, &mut mem, &mut events);
        // The forwarded check completes (and may even deallocate)
        // without waiting for the table.
        assert!(mcu.check_complete(chk_id));
        assert_eq!(mcu.stats().forwards, 1);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let layout = PointerLayout::default();
        let mut mcu = MemoryCheckUnit::new(
            McuConfig {
                mcq_entries: 2,
                ..McuConfig::default()
            },
            layout,
        );
        assert!(mcu
            .issue(McuOp::Access { pointer: 1, is_store: false }, 0)
            .is_ok());
        assert!(mcu
            .issue(McuOp::Access { pointer: 2, is_store: false }, 0)
            .is_ok());
        assert!(!mcu.has_capacity());
        let rejected = mcu.issue(McuOp::Access { pointer: 3, is_store: false }, 0);
        assert!(rejected.is_err());
        assert_eq!(mcu.len(), 2);
    }

    #[test]
    fn stats_accumulate_across_ops() {
        let (mut mcu, mut hbt, layout) = setup();
        let ptr = signed(layout, 0x4000, 3);
        mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt)
            .unwrap();
        mcu.run_sync(McuOp::Access { pointer: ptr, is_store: false }, &mut hbt)
            .unwrap();
        mcu.run_sync(McuOp::Access { pointer: 0x77, is_store: false }, &mut hbt)
            .unwrap();
        mcu.run_sync(McuOp::BndClr { pointer: ptr }, &mut hbt)
            .unwrap();
        let s = mcu.stats();
        assert_eq!(s.issued, 4);
        assert_eq!(s.bndstrs, 1);
        assert_eq!(s.bndclrs, 1);
        assert_eq!(s.signed_accesses, 1);
        assert_eq!(s.unsigned_accesses, 1);
        assert_eq!(s.completed_checks, 1);
        assert!((s.accesses_per_check() - 1.0).abs() < 1e-12);
        assert_eq!(McuStats::default().accesses_per_check(), 0.0);
    }

    #[test]
    fn exception_display_strings() {
        let e = AosException::BoundsCheckFailure {
            pointer: 0x10,
            is_store: true,
        };
        assert!(e.to_string().contains("store"));
        assert!(AosException::BoundsStoreFailure { pac: 1 }
            .to_string()
            .contains("full"));
        assert!(AosException::BoundsClearFailure { pointer: 2 }
            .to_string()
            .contains("clear"));
    }
}
