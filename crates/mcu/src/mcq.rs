//! Memory check queue entries and their FSM states (paper Fig. 8).

use aos_hbt::CompressedBounds;
use aos_ptrauth::Ahc;

/// An operation enqueued into the MCU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum McuOp {
    /// A load or store issued to the LSU, mirrored into the MCU.
    Access {
        /// The (possibly signed) pointer being dereferenced.
        pointer: u64,
        /// `true` for stores.
        is_store: bool,
    },
    /// `bndstr <Xn>,<Xm>`: store bounds for a freshly signed pointer.
    BndStr {
        /// The signed pointer (its address is the lower bound).
        pointer: u64,
        /// Chunk size in bytes (the upper bound is `address + size`).
        size: u64,
    },
    /// `bndclr <Xn>`: clear the bounds of a pointer being freed.
    BndClr {
        /// The signed pointer being freed.
        pointer: u64,
    },
}

/// FSM states (Fig. 8). `IncCnt` is folded into the transitions: the
/// way counter advances at the point the next line load is issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum McqState {
    /// Just enqueued; operands assumed ready.
    Init,
    /// Waiting for a way line, then performing parallel bounds
    /// checking (load/store FSM).
    BndChk,
    /// Waiting for a way line, then performing occupancy checking
    /// (`bndstr`/`bndclr` FSM).
    OccChk,
    /// Occupancy slot found; waiting for ROB commit before sending the
    /// bounds store.
    BndStr,
    /// Bounds operation failed; raises an AOS exception at the queue
    /// head (unless rescued by a replay first).
    Fail,
    /// Completed; deallocated once committed and at the head.
    Done,
}

/// One MCQ entry: the fields of paper §V-A1 plus bookkeeping for the
/// shared functional/timing implementation.
#[derive(Debug, Clone)]
pub(crate) struct McqEntry {
    /// Instruction identity, used by the core model to gate retirement.
    pub id: u64,
    /// The enqueued operation.
    pub op: McuOp,
    /// Decoded pointer fields.
    pub addr: u64,
    pub pac: u64,
    pub ahc: Option<Ahc>,
    /// Encoded bounds for `bndstr` ([`CompressedBounds::EMPTY`] for
    /// `bndclr`, which stores a zero record).
    pub bnd_data: CompressedBounds,
    /// Way the current/next line access targets.
    pub way: u32,
    /// Ways tried so far (`Count`).
    pub count: u32,
    /// First way probed (BWB hint), for wrap-around iteration.
    pub start_way: u32,
    /// Way where a hit landed (for BWB update at retirement) together
    /// with the slot (for the bounds store).
    pub hit: Option<(u32, u32)>,
    /// Set when the ROB has committed the instruction.
    pub committed: bool,
    /// FSM state.
    pub state: McqState,
    /// Cycle at which the pending memory access completes.
    pub ready_at: u64,
    /// Whether the failure event was already reported.
    pub reported: bool,
    /// Whether this check was satisfied by bounds forwarding.
    pub forwarded: bool,
    /// Set for a `bndstr` whose bounds could not be encoded: the entry
    /// fails permanently (retries included) and raises
    /// `MalformedBounds` instead of a store failure.
    pub malformed: bool,
}

impl McqEntry {
    /// Whether the FSM still has work to do.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state, McqState::Done | McqState::Fail)
    }

    /// Whether the entry needs bounds checking at all.
    pub fn is_signed_access(&self) -> bool {
        matches!(self.op, McuOp::Access { .. }) && self.ahc.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(state: McqState) -> McqEntry {
        McqEntry {
            id: 0,
            op: McuOp::Access {
                pointer: 0,
                is_store: false,
            },
            addr: 0,
            pac: 0,
            ahc: None,
            bnd_data: CompressedBounds::EMPTY,
            way: 0,
            count: 0,
            start_way: 0,
            hit: None,
            committed: false,
            state,
            ready_at: 0,
            reported: false,
            forwarded: false,
            malformed: false,
        }
    }

    #[test]
    fn terminal_states() {
        assert!(entry(McqState::Done).is_terminal());
        assert!(entry(McqState::Fail).is_terminal());
        assert!(!entry(McqState::Init).is_terminal());
        assert!(!entry(McqState::BndChk).is_terminal());
        assert!(!entry(McqState::OccChk).is_terminal());
        assert!(!entry(McqState::BndStr).is_terminal());
    }

    #[test]
    fn signed_access_requires_ahc() {
        let mut e = entry(McqState::Init);
        assert!(!e.is_signed_access());
        e.ahc = Some(Ahc::Small);
        assert!(e.is_signed_access());
        e.op = McuOp::BndClr { pointer: 0 };
        assert!(!e.is_signed_access(), "bndclr is not an access");
    }
}
