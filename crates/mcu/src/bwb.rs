//! The bounds way buffer (paper §V-C): a small LRU tag buffer mapping
//! object-region tags to the HBT way where the object's bounds were
//! last found, so repeated checks skip the way iteration.

/// Statistics for the Fig. 17 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BwbStats {
    /// Lookups that found a way hint.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl BwbStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fully-associative, LRU-replaced tag buffer (64 entries in
/// Table IV; each entry is a 32-bit tag from
/// [`aos_ptrauth::bwb_tag`] plus a way number).
///
/// # Examples
///
/// ```
/// use aos_mcu::BoundsWayBuffer;
/// let mut bwb = BoundsWayBuffer::new(4);
/// bwb.update(0xABCD, 3);
/// assert_eq!(bwb.lookup(0xABCD), Some(3));
/// assert_eq!(bwb.lookup(0x1234), None);
/// ```
#[derive(Debug, Clone)]
pub struct BoundsWayBuffer {
    capacity: usize,
    /// (tag, way), most recently used last.
    entries: Vec<(u32, u32)>,
    stats: BwbStats,
    telemetry: aos_util::Telemetry,
}

impl BoundsWayBuffer {
    /// Creates a buffer with the given entry count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BWB capacity must be nonzero");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
            stats: BwbStats::default(),
            telemetry: aos_util::Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: hits, misses, updates and LRU
    /// evictions are recorded into it.
    pub fn with_telemetry(mut self, telemetry: aos_util::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a tag, refreshing its LRU position on hit.
    pub fn lookup(&mut self, tag: u32) -> Option<u32> {
        if let Some(pos) = self.entries.iter().position(|&(t, _)| t == tag) {
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
            self.stats.hits += 1;
            self.telemetry.count(aos_util::Counter::BwbHits);
            Some(entry.1)
        } else {
            self.stats.misses += 1;
            self.telemetry.count(aos_util::Counter::BwbMisses);
            None
        }
    }

    /// Records that `tag`'s bounds were found in `way`, evicting the
    /// least recently used entry if full.
    pub fn update(&mut self, tag: u32, way: u32) {
        self.telemetry.count(aos_util::Counter::BwbUpdates);
        if let Some(pos) = self.entries.iter().position(|&(t, _)| t == tag) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            self.entries.remove(0);
            self.telemetry.count(aos_util::Counter::BwbEvictions);
        }
        self.entries.push((tag, way));
    }

    /// Removes every entry (used across a table resize, where way
    /// numbers change meaning).
    pub fn invalidate_all(&mut self) {
        self.entries.clear();
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> BwbStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_then_lookup_hits() {
        let mut b = BoundsWayBuffer::new(8);
        b.update(1, 5);
        assert_eq!(b.lookup(1), Some(5));
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().misses, 0);
    }

    #[test]
    fn miss_is_counted() {
        let mut b = BoundsWayBuffer::new(8);
        assert_eq!(b.lookup(42), None);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut b = BoundsWayBuffer::new(2);
        b.update(1, 0);
        b.update(2, 0);
        b.update(3, 0); // evicts 1
        assert_eq!(b.lookup(1), None);
        assert_eq!(b.lookup(2), Some(0));
        assert_eq!(b.lookup(3), Some(0));
    }

    #[test]
    fn lookup_refreshes_lru_position() {
        let mut b = BoundsWayBuffer::new(2);
        b.update(1, 0);
        b.update(2, 0);
        b.lookup(1); // 1 becomes MRU
        b.update(3, 0); // evicts 2
        assert_eq!(b.lookup(2), None);
        assert_eq!(b.lookup(1), Some(0));
    }

    #[test]
    fn update_existing_changes_way() {
        let mut b = BoundsWayBuffer::new(4);
        b.update(1, 0);
        b.update(1, 7);
        assert_eq!(b.lookup(1), Some(7));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut b = BoundsWayBuffer::new(4);
        b.update(1, 0);
        b.update(2, 1);
        b.invalidate_all();
        assert!(b.is_empty());
        assert_eq!(b.lookup(1), None);
    }

    #[test]
    fn hit_rate_computation() {
        let mut b = BoundsWayBuffer::new(4);
        b.update(1, 0);
        b.lookup(1);
        b.lookup(2);
        assert!((b.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(BwbStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        BoundsWayBuffer::new(0);
    }
}
