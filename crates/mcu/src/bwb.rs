//! The bounds way buffer (paper §V-C): a small LRU tag buffer mapping
//! object-region tags to the HBT way where the object's bounds were
//! last found, so repeated checks skip the way iteration.

/// Statistics for the Fig. 17 analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BwbStats {
    /// Lookups that found a way hint.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Way recordings (one per completed check retirement).
    pub updates: u64,
    /// Updates that displaced the least recently used entry.
    pub evictions: u64,
}

impl BwbStats {
    /// Hit rate in `[0, 1]`; zero when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fully-associative, LRU-replaced tag buffer (64 entries in
/// Table IV; each entry is a 32-bit tag from
/// [`aos_ptrauth::bwb_tag`] plus a way number).
///
/// # Examples
///
/// ```
/// use aos_mcu::BoundsWayBuffer;
/// let mut bwb = BoundsWayBuffer::new(4);
/// bwb.update(0xABCD, 3);
/// assert_eq!(bwb.lookup(0xABCD), Some(3));
/// assert_eq!(bwb.lookup(0x1234), None);
/// ```
#[derive(Debug, Clone)]
pub struct BoundsWayBuffer {
    capacity: usize,
    /// Entry storage; index `i` is one (tag, way) pair.
    tags: Vec<u32>,
    ways: Vec<u32>,
    /// Intrusive doubly-linked recency list over entry indices:
    /// `head` is least recently used, `tail` most recently used. This
    /// is the same exact-LRU order a move-to-back list keeps, at O(1)
    /// per touch instead of a memmove.
    prev: Vec<u32>,
    next: Vec<u32>,
    head: u32,
    tail: u32,
    /// Open-addressed tag index: slot holds `entry index + 1`, zero
    /// means empty. Sized to at most half full, so probes stay short
    /// and lookups cost O(1) instead of a linear scan.
    slots: Vec<u32>,
    slot_mask: usize,
    stats: BwbStats,
    /// Stats already published to telemetry; the hot paths only touch
    /// the plain `stats` fields, and
    /// [`flush_telemetry`](Self::flush_telemetry) publishes the delta
    /// in one batch at the end of a run.
    published: BwbStats,
    telemetry: aos_util::Telemetry,
}

/// Null link in the recency list.
const NONE: u32 = u32::MAX;

impl BoundsWayBuffer {
    /// Creates a buffer with the given entry count.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BWB capacity must be nonzero");
        let slot_count = (capacity * 2).next_power_of_two().max(4);
        Self {
            capacity,
            tags: Vec::with_capacity(capacity),
            ways: Vec::with_capacity(capacity),
            prev: Vec::with_capacity(capacity),
            next: Vec::with_capacity(capacity),
            head: NONE,
            tail: NONE,
            slots: vec![0; slot_count],
            slot_mask: slot_count - 1,
            stats: BwbStats::default(),
            published: BwbStats::default(),
            telemetry: aos_util::Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: hits, misses, updates and LRU
    /// evictions are recorded into it.
    pub fn with_telemetry(mut self, telemetry: aos_util::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.tags.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    #[inline]
    fn slot_home(&self, tag: u32) -> usize {
        // Fibonacci hashing: the tag already concentrates entropy in
        // its PAC half, the multiply spreads it across the table.
        ((tag as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize & self.slot_mask
    }

    /// The slot where `tag` lives or would be inserted: probes from
    /// its home slot, returning the first match or empty slot.
    #[inline]
    fn probe(&self, tag: u32) -> usize {
        let mut s = self.slot_home(tag);
        loop {
            let e = self.slots[s];
            if e == 0 || self.tags[(e - 1) as usize] == tag {
                return s;
            }
            s = (s + 1) & self.slot_mask;
        }
    }

    /// Empties slot `s` and compacts the probe chain behind it
    /// (standard linear-probing deletion).
    fn vacate(&mut self, mut s: usize) {
        self.slots[s] = 0;
        let mut j = s;
        loop {
            j = (j + 1) & self.slot_mask;
            let e = self.slots[j];
            if e == 0 {
                return;
            }
            let home = self.slot_home(self.tags[(e - 1) as usize]);
            // Move `e` back iff its home does not lie in the cyclic
            // interval (s, j] — i.e. probing from `home` would pass
            // through the hole at `s`.
            let dist_home = j.wrapping_sub(home) & self.slot_mask;
            let dist_hole = j.wrapping_sub(s) & self.slot_mask;
            if dist_home >= dist_hole {
                self.slots[s] = e;
                self.slots[j] = 0;
                s = j;
            }
        }
    }

    /// Unlinks entry `i` from the recency list.
    #[inline]
    fn unlink(&mut self, i: u32) {
        let (p, n) = (self.prev[i as usize], self.next[i as usize]);
        if p == NONE {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NONE {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    /// Appends entry `i` at the most-recently-used end.
    #[inline]
    fn push_mru(&mut self, i: u32) {
        self.prev[i as usize] = self.tail;
        self.next[i as usize] = NONE;
        if self.tail == NONE {
            self.head = i;
        } else {
            self.next[self.tail as usize] = i;
        }
        self.tail = i;
    }

    #[inline]
    fn touch(&mut self, i: u32) {
        if self.tail != i {
            self.unlink(i);
            self.push_mru(i);
        }
    }

    /// Looks up a tag, refreshing its LRU position on hit.
    #[inline]
    pub fn lookup(&mut self, tag: u32) -> Option<u32> {
        let e = self.slots[self.probe(tag)];
        if e != 0 {
            let i = e - 1;
            self.touch(i);
            self.stats.hits += 1;
            Some(self.ways[i as usize])
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Records that `tag`'s bounds were found in `way`, evicting the
    /// least recently used entry if full.
    #[inline]
    pub fn update(&mut self, tag: u32, way: u32) {
        self.stats.updates += 1;
        let s = self.probe(tag);
        let e = self.slots[s];
        if e != 0 {
            let i = e - 1;
            self.ways[i as usize] = way;
            self.touch(i);
        } else if self.tags.len() == self.capacity {
            self.stats.evictions += 1;
            let lru = self.head;
            let old = self.tags[lru as usize];
            self.vacate(self.probe(old));
            self.tags[lru as usize] = tag;
            self.ways[lru as usize] = way;
            // Re-probe: compacting the old tag's chain may have moved
            // entries over `s`.
            let s = self.probe(tag);
            self.slots[s] = lru + 1;
            self.touch(lru);
        } else {
            let i = self.tags.len() as u32;
            self.tags.push(tag);
            self.ways.push(way);
            self.prev.push(NONE);
            self.next.push(NONE);
            self.slots[s] = i + 1;
            self.push_mru(i);
        }
    }

    /// Removes every entry (used across a table resize, where way
    /// numbers change meaning).
    pub fn invalidate_all(&mut self) {
        self.tags.clear();
        self.ways.clear();
        self.prev.clear();
        self.next.clear();
        self.head = NONE;
        self.tail = NONE;
        self.slots.fill(0);
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> BwbStats {
        self.stats
    }

    /// Publishes whatever the stats counters accumulated since the
    /// last flush into the telemetry registry, in one batch. Called at
    /// the end of a run; keeps the per-lookup hot path free of
    /// telemetry traffic while producing identical counter totals.
    pub fn flush_telemetry(&mut self) {
        use aos_util::Counter;
        let d = [
            (Counter::BwbHits, self.stats.hits - self.published.hits),
            (Counter::BwbMisses, self.stats.misses - self.published.misses),
            (Counter::BwbUpdates, self.stats.updates - self.published.updates),
            (
                Counter::BwbEvictions,
                self.stats.evictions - self.published.evictions,
            ),
        ];
        for (counter, delta) in d {
            if delta > 0 {
                self.telemetry.add(counter, delta);
            }
        }
        self.published = self.stats;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_then_lookup_hits() {
        let mut b = BoundsWayBuffer::new(8);
        b.update(1, 5);
        assert_eq!(b.lookup(1), Some(5));
        assert_eq!(b.stats().hits, 1);
        assert_eq!(b.stats().misses, 0);
    }

    #[test]
    fn miss_is_counted() {
        let mut b = BoundsWayBuffer::new(8);
        assert_eq!(b.lookup(42), None);
        assert_eq!(b.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut b = BoundsWayBuffer::new(2);
        b.update(1, 0);
        b.update(2, 0);
        b.update(3, 0); // evicts 1
        assert_eq!(b.lookup(1), None);
        assert_eq!(b.lookup(2), Some(0));
        assert_eq!(b.lookup(3), Some(0));
    }

    #[test]
    fn lookup_refreshes_lru_position() {
        let mut b = BoundsWayBuffer::new(2);
        b.update(1, 0);
        b.update(2, 0);
        b.lookup(1); // 1 becomes MRU
        b.update(3, 0); // evicts 2
        assert_eq!(b.lookup(2), None);
        assert_eq!(b.lookup(1), Some(0));
    }

    #[test]
    fn update_existing_changes_way() {
        let mut b = BoundsWayBuffer::new(4);
        b.update(1, 0);
        b.update(1, 7);
        assert_eq!(b.lookup(1), Some(7));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut b = BoundsWayBuffer::new(4);
        b.update(1, 0);
        b.update(2, 1);
        b.invalidate_all();
        assert!(b.is_empty());
        assert_eq!(b.lookup(1), None);
    }

    #[test]
    fn hit_rate_computation() {
        let mut b = BoundsWayBuffer::new(4);
        b.update(1, 0);
        b.lookup(1);
        b.lookup(2);
        assert!((b.stats().hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(BwbStats::default().hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        BoundsWayBuffer::new(0);
    }

    /// The hash-indexed buffer against the obvious move-to-back list:
    /// every lookup result and every hit/miss count must agree under a
    /// randomized stream, for several capacities.
    #[test]
    fn matches_naive_lru_model() {
        for capacity in [1usize, 2, 3, 8, 64] {
            let mut fast = BoundsWayBuffer::new(capacity);
            let mut model: Vec<(u32, u32)> = Vec::new();
            let mut x = 0x9E3779B9u32 ^ capacity as u32;
            for step in 0..20_000u32 {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                let tag = x % (capacity as u32 * 3 + 5);
                if x & 0x10000 == 0 {
                    let expected = model
                        .iter()
                        .position(|&(t, _)| t == tag)
                        .map(|p| {
                            let e = model.remove(p);
                            model.push(e);
                            e.1
                        });
                    assert_eq!(fast.lookup(tag), expected, "step {step} cap {capacity}");
                } else {
                    let way = step % 8;
                    if let Some(p) = model.iter().position(|&(t, _)| t == tag) {
                        model.remove(p);
                    } else if model.len() == capacity {
                        model.remove(0);
                    }
                    model.push((tag, way));
                    fast.update(tag, way);
                }
                assert_eq!(fast.len(), model.len());
            }
        }
    }
}
