//! The memory check unit (MCU): AOS's in-core bounds-checking engine.
//!
//! AOS removes explicit check instructions by adding a functional unit
//! next to the load-store unit (paper §V-A). Every memory instruction
//! is also enqueued here; if its pointer is signed (nonzero AHC), the
//! unit walks the hashed bounds table until it finds — or fails to
//! find — valid bounds, and the instruction may not retire until the
//! walk succeeds (precise exceptions, §III-C4).
//!
//! The unit comprises:
//!
//! - the **memory check queue** ([`mcq`]) — 48 entries, each running
//!   one of the two FSMs of Fig. 8 (`load/store` checking, or
//!   `bndstr`/`bndclr` occupancy + store);
//! - the **bounds way buffer** ([`bwb`]) — a 64-entry LRU tag buffer
//!   remembering which HBT way held a pointer's bounds (§V-C);
//! - **bounds forwarding** from in-flight `bndstr` entries to younger
//!   checks (§V-F2);
//! - **store-load replay** to preserve ordering between bounds stores
//!   and younger checks with the same PAC (§V-E).
//!
//! The same FSM code serves two callers: the timing simulator steps it
//! cycle by cycle through [`MemoryCheckUnit::tick`] with a real cache
//! model behind the [`BoundsMemory`] port, and the functional machine
//! drives [`MemoryCheckUnit::run_sync`] with zero-latency memory.
//!
//! # Examples
//!
//! ```
//! use aos_hbt::{CompressedBounds, HashedBoundsTable, HbtConfig};
//! use aos_mcu::{McuConfig, McuOp, MemoryCheckUnit};
//! use aos_ptrauth::PointerLayout;
//!
//! let layout = PointerLayout::default();
//! let mut hbt = HashedBoundsTable::new(HbtConfig::default());
//! let mut mcu = MemoryCheckUnit::new(McuConfig::default(), layout);
//!
//! // Sign-free setup: store bounds for a chunk, then check an access.
//! let ptr = layout.compose(0x4000_0010, 0xBEEF, 1);
//! mcu.run_sync(McuOp::BndStr { pointer: ptr, size: 64 }, &mut hbt).unwrap();
//! mcu.run_sync(McuOp::Access { pointer: ptr + 8, is_store: false }, &mut hbt).unwrap();
//! // Out of bounds → exception.
//! assert!(mcu
//!     .run_sync(McuOp::Access { pointer: ptr + 64, is_store: true }, &mut hbt)
//!     .is_err());
//! ```

pub mod bwb;
pub mod mcq;
mod unit;

pub use bwb::{BoundsWayBuffer, BwbStats};
pub use mcq::{McqState, McuOp};
pub use unit::{
    AosException, BoundsMemory, CheckOutcome, McuConfig, McuEvent, McuStats, MemoryCheckUnit,
    ZeroLatencyMemory,
};
