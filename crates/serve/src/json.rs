//! A minimal JSON layer for the `aos-serve/v1` protocol: a parser for
//! *flat* objects (string / number / bool / null values — the whole
//! request vocabulary) and the escaping helper the response renderers
//! share. Hand-rolled like every serializer in this workspace: the
//! repo takes no serde dependency, and a service that parses hostile
//! stdin must fail typed, never panic.

use aos_util::AosError;

/// A parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A (unescaped) string.
    Str(String),
    /// Any JSON number, kept as f64 (the protocol's numbers are small
    /// counts and scales).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A flat JSON object: fields in document order.
pub type JsonObject = Vec<(String, JsonValue)>;

/// Looks a field up by name.
pub fn get<'a>(object: &'a JsonObject, name: &str) -> Option<&'a JsonValue> {
    object.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

fn err(detail: impl std::fmt::Display) -> AosError {
    AosError::invalid_input("aos-serve request", detail)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.at), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), AosError> {
        if self.peek() == Some(byte) {
            self.at += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected '{}' at byte {}",
                byte as char, self.at
            )))
        }
    }

    fn string(&mut self) -> Result<String, AosError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(err("unterminated string"));
            };
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(err("unterminated escape"));
                    };
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let end = self.at + 4;
                            let hex = self
                                .bytes
                                .get(self.at..end)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err("bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // nothing in the protocol needs astral chars.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| err("\\u escape is not a scalar value"))?;
                            out.push(ch);
                            self.at = end;
                        }
                        other => {
                            return Err(err(format!("unknown escape '\\{}'", other as char)))
                        }
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.at - 1;
                    let width = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(err("invalid UTF-8 in string")),
                    };
                    let end = start + width;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|w| std::str::from_utf8(w).ok())
                        .ok_or_else(|| err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.at = end;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, AosError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{') | Some(b'[') => Err(err(
                "nested objects/arrays are not part of the aos-serve/v1 request vocabulary",
            )),
            Some(c) if c == b'-' || c.is_ascii_digit() => {
                let start = self.at;
                while matches!(
                    self.peek(),
                    Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
                ) {
                    self.at += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| err("invalid number"))?;
                let n: f64 = text.parse().map_err(|_| err(format!("bad number '{text}'")))?;
                Ok(JsonValue::Num(n))
            }
            _ => Err(err(format!("unexpected byte at {}", self.at))),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, AosError> {
        let end = self.at + word.len();
        if self.bytes.get(self.at..end) == Some(word.as_bytes()) {
            self.at = end;
            Ok(value)
        } else {
            Err(err(format!("expected '{word}' at byte {}", self.at)))
        }
    }
}

/// Parses one flat JSON object.
///
/// # Errors
///
/// [`AosError::InvalidInput`] for anything that is not a flat object
/// of scalar values — including nested objects and arrays, which the
/// protocol deliberately excludes.
pub fn parse_object(line: &str) -> Result<JsonObject, AosError> {
    let mut c = Cursor {
        bytes: line.as_bytes(),
        at: 0,
    };
    c.skip_ws();
    c.expect(b'{')?;
    let mut object = JsonObject::new();
    c.skip_ws();
    if c.peek() == Some(b'}') {
        c.at += 1;
    } else {
        loop {
            c.skip_ws();
            let key = c.string()?;
            c.skip_ws();
            c.expect(b':')?;
            let value = c.value()?;
            if object.iter().any(|(k, _)| *k == key) {
                return Err(err(format!("duplicate key '{key}'")));
            }
            object.push((key, value));
            c.skip_ws();
            match c.peek() {
                Some(b',') => c.at += 1,
                Some(b'}') => {
                    c.at += 1;
                    break;
                }
                _ => return Err(err("expected ',' or '}' in object")),
            }
        }
    }
    c.skip_ws();
    if c.at != c.bytes.len() {
        return Err(err("trailing bytes after object"));
    }
    Ok(object)
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let o = parse_object(
            r#"{"proto":"aos-serve/v1","id":"j1","kind":"trace","scale":0.01,"flag":true,"x":null}"#,
        )
        .expect("parse");
        assert_eq!(get(&o, "proto").unwrap().as_str(), Some("aos-serve/v1"));
        assert_eq!(get(&o, "scale").unwrap().as_f64(), Some(0.01));
        assert_eq!(get(&o, "flag"), Some(&JsonValue::Bool(true)));
        assert_eq!(get(&o, "x"), Some(&JsonValue::Null));
        assert_eq!(get(&o, "missing"), None);
    }

    #[test]
    fn escapes_round_trip() {
        let hostile = "a\"b\\c\nd\te\u{0001}";
        let line = format!("{{\"k\":\"{}\"}}", escape(hostile));
        let o = parse_object(&line).expect("parse");
        assert_eq!(get(&o, "k").unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn hostile_lines_fail_typed_never_panic() {
        for line in [
            "",
            "{",
            "not json",
            r#"{"a"}"#,
            r#"{"a":}"#,
            r#"{"a":1,}"#,
            r#"{"a":1}} "#,
            r#"{"a":{"nested":1}}"#,
            r#"{"a":[1,2]}"#,
            r#"{"a":"unterminated"#,
            r#"{"a":"bad\q"}"#,
            r#"{"a":"\ud800"}"#,
            r#"{"a":1e}"#,
            r#"{"a":1,"a":2}"#,
        ] {
            let e = parse_object(line).expect_err(line);
            assert!(matches!(e, AosError::InvalidInput { .. }), "{line}: {e}");
        }
    }

    #[test]
    fn empty_object_and_whitespace() {
        assert!(parse_object("  { }  ").expect("parse").is_empty());
        let o = parse_object("{\"a\" : -2.5e3 }").expect("parse");
        assert_eq!(get(&o, "a").unwrap().as_f64(), Some(-2500.0));
    }
}
