//! The `aos-serve/v1` wire protocol: newline-delimited JSON, one
//! object per line in each direction.
//!
//! Requests are flat objects: `proto` and `kind` always, `id` for job
//! kinds, plus per-kind fields (see [`parse_request`]). Responses are
//! rendered with a **pinned key order** — `tests/serve_protocol_golden.rs`
//! snapshots the exact key sequence of every response shape, so a
//! reordering is an API break a golden diff catches:
//!
//! ```text
//! ready     {"proto","status"}
//! ok        {"proto","id","status","attempts","result"}
//! rejected  {"proto","id","status","error_kind","error","retry_after_ms"}
//! failed    {"proto","id","status","attempts","error_kind","error"}
//! shutdown  {"proto","status","jobs_completed"}
//! ```
//!
//! `rejected` means the service did not run the job (full queue,
//! unparsable line, bad fields) — `retry_after_ms` is non-null exactly
//! when retrying the same line later can succeed. `failed` means the
//! job ran and could not produce a result (`error_kind` of `panic`,
//! `timeout`, or an [`AosError`] class).

use aos_isa::SafetyConfig;
use aos_util::AosError;

use crate::jobs::{JobSpec, ReplayMode};
use crate::json::{self, escape, JsonObject, JsonValue};

/// The protocol identifier every line carries.
pub const PROTO: &str = "aos-serve/v1";

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a job and answer under `id`.
    Job {
        /// Caller-chosen correlation id, echoed on the response.
        id: String,
        /// What to run.
        spec: JobSpec,
    },
    /// Stop accepting, drain in-flight jobs, answer with `shutdown`.
    Shutdown,
}

fn bad(detail: impl std::fmt::Display) -> AosError {
    AosError::invalid_input("aos-serve request", detail)
}

fn string_field(object: &JsonObject, name: &str) -> Result<String, AosError> {
    match json::get(object, name) {
        Some(JsonValue::Str(s)) if !s.is_empty() => Ok(s.clone()),
        Some(_) => Err(bad(format!("field '{name}' must be a non-empty string"))),
        None => Err(bad(format!("missing field '{name}'"))),
    }
}

fn scale_field(object: &JsonObject) -> Result<f64, AosError> {
    match json::get(object, "scale") {
        None => Ok(1.0),
        Some(JsonValue::Num(s)) if *s > 0.0 && *s <= 1.0 => Ok(*s),
        Some(JsonValue::Num(s)) => Err(bad(format!("scale must be in (0, 1], got {s}"))),
        Some(_) => Err(bad("scale must be a number")),
    }
}

fn system_field(object: &JsonObject, name: &str) -> Result<SafetyConfig, AosError> {
    parse_system(&string_field(object, name)?)
}

/// Parses a system name (the CLI's spelling: case-insensitive,
/// `pa+aos` for the combined system).
pub fn parse_system(name: &str) -> Result<SafetyConfig, AosError> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" => Ok(SafetyConfig::Baseline),
        "watchdog" => Ok(SafetyConfig::Watchdog),
        "pa" => Ok(SafetyConfig::Pa),
        "aos" => Ok(SafetyConfig::Aos),
        "pa+aos" | "paaos" => Ok(SafetyConfig::PaAos),
        other => Err(bad(format!(
            "unknown system '{other}' (baseline, watchdog, pa, aos, pa+aos)"
        ))),
    }
}

/// Parses a comma-separated list of system names.
pub fn parse_systems(list: &str) -> Result<Vec<SafetyConfig>, AosError> {
    let systems: Result<Vec<_>, _> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_system)
        .collect();
    let systems = systems?;
    if systems.is_empty() {
        return Err(bad("empty system list"));
    }
    Ok(systems)
}

fn comma_list(raw: &str) -> Vec<String> {
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect()
}

/// Parses one request line.
///
/// `test_jobs` gates the `__sleep` / `__poison` kinds the robustness
/// tests use; a production service rejects them like any unknown
/// kind.
///
/// # Errors
///
/// [`AosError::InvalidInput`] describing exactly what was wrong — the
/// service turns it into a `rejected` response, it never tears down
/// the connection.
pub fn parse_request(line: &str, test_jobs: bool) -> Result<Request, AosError> {
    let object = json::parse_object(line)?;
    let proto = string_field(&object, "proto")?;
    if proto != PROTO {
        return Err(bad(format!("unsupported proto '{proto}' (want {PROTO})")));
    }
    let kind = string_field(&object, "kind")?;
    if kind == "shutdown" {
        return Ok(Request::Shutdown);
    }
    let id = string_field(&object, "id")?;
    let spec = match kind.as_str() {
        "trace" => JobSpec::Trace {
            workload: string_field(&object, "workload")?,
            system: system_field(&object, "system")?,
            scale: scale_field(&object)?,
        },
        "lint" => JobSpec::Lint {
            workload: string_field(&object, "workload")?,
            system: system_field(&object, "system")?,
            scale: scale_field(&object)?,
        },
        "campaign" => {
            let workloads = comma_list(&string_field(&object, "workloads")?);
            if workloads.is_empty() {
                return Err(bad("empty workload list"));
            }
            JobSpec::Campaign {
                workloads,
                systems: parse_systems(&string_field(&object, "systems")?)?,
                scale: scale_field(&object)?,
            }
        }
        "corpus_record" => {
            let workloads = comma_list(&string_field(&object, "workloads")?);
            if workloads.is_empty() {
                return Err(bad("empty workload list"));
            }
            JobSpec::CorpusRecord {
                path: string_field(&object, "corpus")?,
                workloads,
                systems: parse_systems(&string_field(&object, "systems")?)?,
                scale: scale_field(&object)?,
            }
        }
        "corpus_replay" => JobSpec::CorpusReplay {
            path: string_field(&object, "corpus")?,
            entry: string_field(&object, "entry")?,
            mode: match json::get(&object, "mode").and_then(JsonValue::as_str) {
                None | Some("sim") => ReplayMode::Sim,
                Some("lint") => ReplayMode::Lint,
                Some(other) => return Err(bad(format!("unknown mode '{other}' (sim, lint)"))),
            },
        },
        "corpus_verify" => JobSpec::CorpusVerify {
            path: string_field(&object, "corpus")?,
        },
        "__sleep" if test_jobs => JobSpec::Sleep {
            millis: json::get(&object, "millis")
                .and_then(JsonValue::as_f64)
                .map(|m| m as u64)
                .ok_or_else(|| bad("__sleep needs a numeric 'millis'"))?,
        },
        "__poison" if test_jobs => JobSpec::Poison,
        other => return Err(bad(format!("unknown job kind '{other}'"))),
    };
    Ok(Request::Job { id, spec })
}

/// The stable failure-class token a response's `error_kind` carries.
pub fn error_kind(error: &AosError) -> &'static str {
    match error {
        AosError::InvalidInput { .. } => "input",
        AosError::ResourceExhausted { .. } => "resource",
        AosError::SafetyViolation { .. } => "safety",
        AosError::Corruption { .. } => "corruption",
        AosError::TaskFailed { .. } => "task",
        AosError::Io { .. } => "io",
    }
}

fn id_json(id: Option<&str>) -> String {
    match id {
        Some(id) => format!("\"{}\"", escape(id)),
        None => "null".to_string(),
    }
}

/// The greeting line the service writes when it starts serving.
pub fn render_ready() -> String {
    format!("{{\"proto\":\"{PROTO}\",\"status\":\"ready\"}}")
}

/// A completed job's response; `result` is an already-rendered JSON
/// object.
pub fn render_ok(id: &str, attempts: u32, result: &str) -> String {
    format!(
        "{{\"proto\":\"{PROTO}\",\"id\":\"{}\",\"status\":\"ok\",\"attempts\":{attempts},\"result\":{result}}}",
        escape(id),
    )
}

/// A request the service refused to run. `retry_after_ms` is the
/// explicit backpressure signal: non-null exactly when the same line
/// can succeed later (a full queue), null when it never will (a
/// malformed line).
pub fn render_rejected(id: Option<&str>, kind: &str, error: &str, retry_after_ms: Option<u64>) -> String {
    let retry = match retry_after_ms {
        Some(ms) => ms.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"proto\":\"{PROTO}\",\"id\":{},\"status\":\"rejected\",\"error_kind\":\"{}\",\"error\":\"{}\",\"retry_after_ms\":{retry}}}",
        id_json(id),
        escape(kind),
        escape(error),
    )
}

/// A job that ran (possibly several attempts) and produced no result.
pub fn render_failed(id: &str, attempts: u32, kind: &str, error: &str) -> String {
    format!(
        "{{\"proto\":\"{PROTO}\",\"id\":\"{}\",\"status\":\"failed\",\"attempts\":{attempts},\"error_kind\":\"{}\",\"error\":\"{}\"}}",
        escape(id),
        escape(kind),
        escape(error),
    )
}

/// The final line before the service exits: every accepted job has
/// been answered.
pub fn render_shutdown(jobs_completed: u64) -> String {
    format!("{{\"proto\":\"{PROTO}\",\"status\":\"shutdown\",\"jobs_completed\":{jobs_completed}}}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_job_kind() {
        let r = parse_request(
            r#"{"proto":"aos-serve/v1","id":"a","kind":"trace","workload":"mcf","system":"aos","scale":0.01}"#,
            false,
        )
        .expect("trace");
        assert!(matches!(
            r,
            Request::Job {
                spec: JobSpec::Trace { .. },
                ..
            }
        ));
        let r = parse_request(
            r#"{"proto":"aos-serve/v1","id":"b","kind":"campaign","workloads":"mcf, gcc","systems":"baseline,aos"}"#,
            false,
        )
        .expect("campaign");
        match r {
            Request::Job {
                spec: JobSpec::Campaign { workloads, systems, scale },
                ..
            } => {
                assert_eq!(workloads, vec!["mcf", "gcc"]);
                assert_eq!(systems, vec![SafetyConfig::Baseline, SafetyConfig::Aos]);
                assert!((scale - 1.0).abs() < f64::EPSILON);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            parse_request(r#"{"proto":"aos-serve/v1","kind":"shutdown"}"#, false),
            Ok(Request::Shutdown)
        ));
        let r = parse_request(
            r#"{"proto":"aos-serve/v1","id":"c","kind":"corpus_replay","corpus":"/tmp/x.aosc","entry":"mcf-aos","mode":"lint"}"#,
            false,
        )
        .expect("replay");
        assert!(matches!(
            r,
            Request::Job {
                spec: JobSpec::CorpusReplay {
                    mode: ReplayMode::Lint,
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn test_jobs_are_gated() {
        let line = r#"{"proto":"aos-serve/v1","id":"t","kind":"__sleep","millis":5}"#;
        assert!(parse_request(line, false).is_err(), "gated off by default");
        assert!(matches!(
            parse_request(line, true),
            Ok(Request::Job {
                spec: JobSpec::Sleep { millis: 5 },
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_requests_with_specific_messages() {
        for (line, needle) in [
            (r#"{"kind":"trace","id":"x"}"#, "missing field 'proto'"),
            (r#"{"proto":"aos-serve/v2","kind":"trace","id":"x"}"#, "unsupported proto"),
            (r#"{"proto":"aos-serve/v1","kind":"explode","id":"x"}"#, "unknown job kind"),
            (r#"{"proto":"aos-serve/v1","kind":"trace"}"#, "missing field 'id'"),
            (
                r#"{"proto":"aos-serve/v1","kind":"trace","id":"x","workload":"mcf","system":"doom"}"#,
                "unknown system",
            ),
            (
                r#"{"proto":"aos-serve/v1","kind":"trace","id":"x","workload":"mcf","system":"aos","scale":7}"#,
                "scale must be in",
            ),
        ] {
            let e = parse_request(line, false).expect_err(line);
            assert!(e.to_string().contains(needle), "{line} -> {e}");
        }
    }

    #[test]
    fn responses_escape_hostile_ids() {
        let line = render_ok("a\"b\nc", 1, "{}");
        assert!(line.contains("a\\\"b\\nc"));
        assert!(!line.contains('\n'), "NDJSON lines must stay one line");
        let line = render_rejected(None, "input", "queue \"full\"", Some(25));
        assert!(line.contains("\"id\":null"));
        assert!(line.contains("\"retry_after_ms\":25"));
    }
}
