//! The service loop: a bounded job queue with explicit backpressure,
//! guarded worker threads, and a single collector thread that owns
//! the response writer and every telemetry write.
//!
//! Threading discipline:
//!
//! - the **caller's thread** reads request lines, parses them, and
//!   either enqueues (bounded — a full queue answers `rejected` with
//!   `retry_after_ms`, it never buffers unboundedly) or forwards the
//!   parse error;
//! - **worker threads** pop jobs and run them through
//!   [`aos_util::guard::run_guarded`] — `catch_unwind` isolation, a
//!   wall-clock deadline, bounded retries with exponential backoff —
//!   so a poisoned or wedged job costs one response, never the
//!   service;
//! - the **collector thread** is the *only* writer: every response
//!   line and every `serve_*` counter goes through it, honouring the
//!   single-writer contract of [`aos_util::telemetry`] without
//!   putting a lock on the hot path.
//!
//! Shutdown (a `shutdown` request or EOF) is a drain, not an abort:
//! accepting stops, queued and in-flight jobs complete and answer,
//! then the `shutdown` summary line flushes and the service returns.

use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use aos_util::guard::{run_guarded, Backoff, GuardOptions};
use aos_util::{AosError, Counter, Gauge, Telemetry};

use crate::jobs::{self, JobSpec};
use crate::proto::{self, Request};

/// Tuning for one [`serve`] session.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Queue slots; an arriving job beyond this is rejected with
    /// `retry_after_ms`, never buffered.
    pub queue_capacity: usize,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Per-attempt wall-clock deadline; `None` disables the watchdog.
    pub job_timeout: Option<Duration>,
    /// Extra attempts after a panicked or timed-out first attempt.
    pub retries: u32,
    /// Base of the exponential backoff between attempts
    /// (`base * 2^(attempt-1)`).
    pub backoff_base: Duration,
    /// The hint carried by queue-full rejections.
    pub retry_after_ms: u64,
    /// Accept the `__sleep` / `__poison` test kinds.
    pub test_jobs: bool,
    /// The service's telemetry handle (written only by the collector).
    pub telemetry: Telemetry,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            queue_capacity: 16,
            workers: 2,
            job_timeout: Some(Duration::from_secs(30)),
            retries: 1,
            backoff_base: Duration::from_millis(50),
            retry_after_ms: 25,
            test_jobs: false,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// What one [`serve`] session did, as counted by the collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Jobs accepted into the queue.
    pub accepted: u64,
    /// Requests rejected (full queue or unparsable/invalid line).
    pub rejected: u64,
    /// Accepted jobs answered `ok`.
    pub succeeded: u64,
    /// Accepted jobs answered `failed`.
    pub failed: u64,
    /// Extra attempts spent on retries.
    pub retried: u64,
    /// Jobs whose final attempt timed out.
    pub timed_out: u64,
    /// Jobs whose final attempt panicked.
    pub panicked: u64,
    /// Whether an explicit `shutdown` request (vs EOF) ended the
    /// session.
    pub shutdown_requested: bool,
}

impl ServeSummary {
    /// Jobs that ran to an answer (`ok` + `failed`).
    pub fn completed(&self) -> u64 {
        self.succeeded + self.failed
    }
}

struct QueueState {
    jobs: VecDeque<(String, JobSpec)>,
    draining: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    available: Condvar,
}

enum Event {
    Accepted {
        /// Queue depth right after the push (sampled under the lock),
        /// so the gauge records the true high-water mark.
        depth: u64,
    },
    Rejected {
        id: Option<String>,
        kind: &'static str,
        error: String,
        retry_after_ms: Option<u64>,
    },
    Succeeded {
        id: String,
        attempts: u32,
        result: String,
    },
    Failed {
        id: String,
        attempts: u32,
        kind: &'static str,
        error: String,
    },
    Drained {
        shutdown_requested: bool,
    },
}

fn collector_loop(
    events: mpsc::Receiver<Event>,
    mut writer: impl Write,
    telemetry: Telemetry,
) -> Result<ServeSummary, AosError> {
    let mut summary = ServeSummary::default();
    let write_line = |writer: &mut dyn Write, line: &str| -> Result<(), AosError> {
        writeln!(writer, "{line}").and_then(|()| writer.flush()).map_err(|e| AosError::Io {
            context: "aos-serve response stream".to_string(),
            detail: e.to_string(),
        })
    };
    write_line(&mut writer, &proto::render_ready())?;
    while let Ok(event) = events.recv() {
        match event {
            Event::Accepted { depth } => {
                summary.accepted += 1;
                telemetry.count(Counter::ServeJobsAccepted);
                telemetry.gauge_max(Gauge::ServeQueueDepth, depth);
            }
            Event::Rejected {
                id,
                kind,
                error,
                retry_after_ms,
            } => {
                summary.rejected += 1;
                telemetry.count(Counter::ServeJobsRejected);
                write_line(
                    &mut writer,
                    &proto::render_rejected(id.as_deref(), kind, &error, retry_after_ms),
                )?;
            }
            Event::Succeeded { id, attempts, result } => {
                summary.succeeded += 1;
                if attempts > 1 {
                    summary.retried += u64::from(attempts - 1);
                    for _ in 1..attempts {
                        telemetry.count(Counter::ServeJobsRetried);
                    }
                }
                write_line(&mut writer, &proto::render_ok(&id, attempts, &result))?;
            }
            Event::Failed {
                id,
                attempts,
                kind,
                error,
            } => {
                summary.failed += 1;
                if attempts > 1 {
                    summary.retried += u64::from(attempts - 1);
                    for _ in 1..attempts {
                        telemetry.count(Counter::ServeJobsRetried);
                    }
                }
                match kind {
                    "timeout" => {
                        summary.timed_out += 1;
                        telemetry.count(Counter::ServeJobsTimedOut);
                    }
                    "panic" => {
                        summary.panicked += 1;
                        telemetry.count(Counter::ServeJobsPanicked);
                    }
                    // A corpus job quarantined by a CRC failure: the
                    // jobs layer ran with a disabled handle (workers
                    // are concurrent), so account the class here.
                    "corruption" => telemetry.count(Counter::CorpusCrcFailures),
                    _ => {}
                }
                write_line(&mut writer, &proto::render_failed(&id, attempts, kind, &error))?;
            }
            Event::Drained { shutdown_requested } => {
                summary.shutdown_requested = shutdown_requested;
                write_line(&mut writer, &proto::render_shutdown(summary.completed()))?;
                return Ok(summary);
            }
        }
    }
    // Senders vanished without a drain marker — the read loop errored
    // out; report what was counted.
    Ok(summary)
}

fn worker_loop(shared: &Shared, events: &mpsc::Sender<Event>, guard: &GuardOptions) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("queue lock poisoned");
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break Some(job);
                }
                if state.draining {
                    break None;
                }
                state = shared
                    .available
                    .wait(state)
                    .expect("queue lock poisoned");
            }
        };
        let Some((id, spec)) = job else { return };
        // Workers run concurrently, so the job body gets a disabled
        // telemetry handle (see the module docs); the collector does
        // all counting.
        let work: aos_util::guard::Work<Result<String, AosError>> = {
            let spec = spec.clone();
            Arc::new(move || jobs::execute(&spec, &Telemetry::disabled()))
        };
        let event = match run_guarded(work, guard) {
            (Ok(Ok(result)), attempts) => Event::Succeeded { id, attempts, result },
            (Ok(Err(error)), attempts) => Event::Failed {
                id,
                attempts,
                kind: proto::error_kind(&error),
                error: format!("{} failed: {error}", spec.label()),
            },
            (Err(guard_error), attempts) => Event::Failed {
                id,
                attempts,
                kind: guard_error.kind(),
                error: format!("{} {guard_error}", spec.label()),
            },
        };
        if events.send(event).is_err() {
            return; // collector gone; nothing left to answer to
        }
    }
}

/// Runs one service session: reads request lines from `reader` until
/// EOF or a `shutdown` request, answers on `writer`, drains, and
/// returns the session's counts.
///
/// # Errors
///
/// [`AosError::Io`] when the response stream itself dies — the one
/// failure a job service cannot degrade around.
pub fn serve(
    reader: impl BufRead,
    writer: impl Write + Send + 'static,
    options: &ServeOptions,
) -> Result<ServeSummary, AosError> {
    let shared = Arc::new(Shared {
        state: Mutex::new(QueueState {
            jobs: VecDeque::new(),
            draining: false,
        }),
        available: Condvar::new(),
    });
    let (events, event_rx) = mpsc::channel::<Event>();
    let guard = GuardOptions {
        timeout: options.job_timeout,
        retries: options.retries,
        backoff: Backoff::Exponential(options.backoff_base),
    };

    let collector = {
        let telemetry = options.telemetry.clone();
        std::thread::spawn(move || collector_loop(event_rx, writer, telemetry))
    };
    let workers: Vec<_> = (0..options.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            let events = events.clone();
            // GuardOptions is Copy: the move closure copies it.
            std::thread::spawn(move || worker_loop(&shared, &events, &guard))
        })
        .collect();

    let mut shutdown_requested = false;
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                // A dead request stream is an implicit EOF: drain.
                let _ = e;
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match proto::parse_request(&line, options.test_jobs) {
            Err(error) => {
                // Salvage the id if the line was at least JSON.
                let id = crate::json::parse_object(&line)
                    .ok()
                    .and_then(|o| {
                        crate::json::get(&o, "id")
                            .and_then(crate::json::JsonValue::as_str)
                            .map(str::to_string)
                    });
                let _ = events.send(Event::Rejected {
                    id,
                    kind: "input",
                    error: error.to_string(),
                    retry_after_ms: None,
                });
            }
            Ok(Request::Shutdown) => {
                shutdown_requested = true;
                break;
            }
            Ok(Request::Job { id, spec }) => {
                let mut state = shared.state.lock().expect("queue lock poisoned");
                if state.jobs.len() >= options.queue_capacity {
                    drop(state);
                    let _ = events.send(Event::Rejected {
                        id: Some(id),
                        kind: "resource",
                        error: format!(
                            "queue full ({} jobs queued)",
                            options.queue_capacity
                        ),
                        retry_after_ms: Some(options.retry_after_ms),
                    });
                } else {
                    state.jobs.push_back((id, spec));
                    let depth = state.jobs.len() as u64;
                    drop(state);
                    shared.available.notify_one();
                    let _ = events.send(Event::Accepted { depth });
                }
            }
        }
    }

    // Drain: stop accepting, let workers finish everything queued.
    {
        let mut state = shared.state.lock().expect("queue lock poisoned");
        state.draining = true;
    }
    shared.available.notify_all();
    for worker in workers {
        let _ = worker.join();
    }
    // All worker Done events are enqueued (send happens-before join
    // returns), so the drain marker lands last.
    let _ = events.send(Event::Drained { shutdown_requested });
    drop(events);
    collector
        .join()
        .map_err(|_| AosError::task_failed("aos-serve collector", "collector thread panicked"))?
}

/// Serves connections on a Unix socket at `path`, one at a time, each
/// through [`serve`]; returns after a connection ends with an
/// explicit `shutdown` request. The socket file is created fresh (an
/// existing file is removed) and unlinked on return.
///
/// # Errors
///
/// [`AosError::Io`] when the socket cannot be bound or a connection
/// cannot be accepted.
#[cfg(unix)]
pub fn serve_unix(
    path: &std::path::Path,
    options: &ServeOptions,
) -> Result<ServeSummary, AosError> {
    use std::os::unix::net::UnixListener;

    let sock_err = |detail: String| AosError::Io {
        context: path.display().to_string(),
        detail,
    };
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| sock_err(e.to_string()))?;
    let result = loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(e) => break Err(sock_err(e.to_string())),
        };
        let reader = std::io::BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(e) => break Err(sock_err(e.to_string())),
        });
        match serve(reader, stream, options) {
            Ok(summary) if summary.shutdown_requested => break Ok(summary),
            Ok(_) => continue, // client hung up; keep listening
            Err(e) => break Err(e),
        }
    };
    let _ = std::fs::remove_file(path);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A writer tests can read back after the service returns.
    #[derive(Clone, Default)]
    pub(crate) struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl SharedBuf {
        pub(crate) fn contents(&self) -> String {
            String::from_utf8(self.0.lock().expect("buf lock").clone()).expect("utf8")
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn run_script(script: &str, options: &ServeOptions) -> (ServeSummary, String) {
        let out = SharedBuf::default();
        let summary = serve(
            Cursor::new(script.to_string()),
            out.clone(),
            options,
        )
        .expect("serve");
        (summary, out.contents())
    }

    #[test]
    fn serves_jobs_and_drains_on_eof() {
        let script = concat!(
            r#"{"proto":"aos-serve/v1","id":"j1","kind":"lint","workload":"mcf","system":"aos","scale":0.004}"#,
            "\n",
            r#"{"proto":"aos-serve/v1","id":"j2","kind":"trace","workload":"mcf","system":"baseline","scale":0.004}"#,
            "\n",
        );
        let (summary, output) = run_script(script, &ServeOptions::default());
        assert_eq!(summary.accepted, 2);
        assert_eq!(summary.succeeded, 2);
        assert!(!summary.shutdown_requested, "EOF drain, not shutdown");
        assert!(output.contains("\"status\":\"ready\""));
        assert!(output.contains("\"id\":\"j1\",\"status\":\"ok\""));
        assert!(output.contains("\"id\":\"j2\",\"status\":\"ok\""));
        assert!(output.ends_with('\n'));
        let last = output.lines().last().expect("lines");
        assert!(last.contains("\"status\":\"shutdown\",\"jobs_completed\":2"));
    }

    #[test]
    fn malformed_lines_are_rejected_not_fatal() {
        let script = concat!(
            "this is not json\n",
            r#"{"proto":"aos-serve/v1","id":"bad","kind":"trace","workload":"mcf","system":"doom"}"#,
            "\n",
            r#"{"proto":"aos-serve/v1","id":"good","kind":"lint","workload":"mcf","system":"aos","scale":0.004}"#,
            "\n",
            r#"{"proto":"aos-serve/v1","kind":"shutdown"}"#,
            "\n",
        );
        let (summary, output) = run_script(script, &ServeOptions::default());
        assert_eq!(summary.rejected, 2);
        assert_eq!(summary.succeeded, 1);
        assert!(summary.shutdown_requested);
        // The malformed line has no salvageable id; the bad-field one does.
        assert!(output.contains("\"id\":null,\"status\":\"rejected\""));
        assert!(output.contains("\"id\":\"bad\",\"status\":\"rejected\""));
        assert!(
            output.contains("\"retry_after_ms\":null"),
            "malformed input is not retryable"
        );
        assert!(output.contains("\"id\":\"good\",\"status\":\"ok\""));
    }

    #[test]
    fn telemetry_counts_through_the_collector() {
        let telemetry = Telemetry::enabled();
        let options = ServeOptions {
            telemetry: telemetry.clone(),
            test_jobs: true,
            queue_capacity: 1,
            workers: 1,
            ..ServeOptions::default()
        };
        // Worker holds the first job; the queue (capacity 1) takes the
        // second; the third must reject.
        let script = concat!(
            r#"{"proto":"aos-serve/v1","id":"s1","kind":"__sleep","millis":150}"#,
            "\n",
            r#"{"proto":"aos-serve/v1","id":"s2","kind":"__sleep","millis":1}"#,
            "\n",
            r#"{"proto":"aos-serve/v1","id":"s3","kind":"__sleep","millis":1}"#,
            "\n",
            r#"{"proto":"aos-serve/v1","id":"s4","kind":"__sleep","millis":1}"#,
            "\n",
        );
        let (summary, _) = run_script(script, &options);
        let snap = telemetry.snapshot();
        assert_eq!(snap.counter(Counter::ServeJobsAccepted), summary.accepted);
        assert_eq!(snap.counter(Counter::ServeJobsRejected), summary.rejected);
        assert!(summary.rejected >= 1, "bounded queue must push back");
        assert!(snap.gauge(Gauge::ServeQueueDepth) >= 1);
        assert_eq!(summary.accepted + summary.rejected, 4);
        assert_eq!(summary.completed(), summary.accepted);
    }
}
