//! `aos serve` — a fault-tolerant, long-running job service for the
//! AOS pipeline, with persistent CRC-checked trace corpora.
//!
//! The reproduction's workloads (trace cells, campaign grids, lint
//! scans) were one-shot CLI invocations; this crate wraps them in a
//! service that accepts jobs as newline-delimited JSON
//! (`aos-serve/v1`) over stdin/stdout or a Unix socket and *stays up*
//! whatever a job does:
//!
//! - a **bounded queue** answers overload with an explicit
//!   `rejected` + `retry_after_ms` line — backpressure is part of the
//!   protocol, not an unbounded buffer;
//! - every job runs under [`aos_util::guard`]: `catch_unwind`
//!   isolation (a poisoned job answers `failed`, the service keeps
//!   serving), a per-job wall-clock deadline, and bounded retries
//!   with exponential backoff;
//! - a corpus job that hits a CRC-failing block quarantines with a
//!   typed [`AosError::Corruption`](aos_util::AosError) and a
//!   `corpus_crc_failures` count — graceful degradation, never a
//!   crash, never a mis-replay;
//! - shutdown (explicit request or EOF) drains: in-flight and queued
//!   jobs complete and answer before the final `shutdown` line.
//!
//! Replays of a recorded corpus are **bit-identical** to the
//! in-process batched pipeline: results carry `stats_digest` /
//! `report_digest` fingerprints that match across processes and
//! sessions (pinned by this crate's tests and
//! `tests/serve_robustness.rs`).
//!
//! Module map: [`json`] (flat-object parser, no serde), [`proto`]
//! (request parsing, pinned-key-order responses), [`jobs`] (job
//! bodies over `aos-core` / `aos-isa::corpus`), [`service`] (queue,
//! guarded workers, single-writer collector, transports).
//!
//! # Examples
//!
//! ```
//! use std::io::Cursor;
//! use aos_serve::{serve, ServeOptions};
//!
//! let script = concat!(
//!     r#"{"proto":"aos-serve/v1","id":"j1","kind":"lint","#,
//!     r#""workload":"mcf","system":"aos","scale":0.004}"#,
//!     "\n",
//!     r#"{"proto":"aos-serve/v1","kind":"shutdown"}"#,
//!     "\n",
//! );
//! // The writer moves to the collector thread, so hand it something
//! // owned — a temp file here; a socket or stdout in real callers.
//! let path = std::env::temp_dir().join("aos-serve-doc.ndjson");
//! let file = std::fs::File::create(&path)?;
//! let summary = serve(Cursor::new(script), file, &ServeOptions::default())?;
//! assert_eq!(summary.succeeded, 1);
//! assert!(summary.shutdown_requested);
//! let answers = std::fs::read_to_string(&path)?;
//! assert!(answers.contains("\"id\":\"j1\",\"status\":\"ok\""));
//! # std::fs::remove_file(&path).ok();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod jobs;
pub mod json;
pub mod proto;
pub mod service;

pub use jobs::{digest64, entry_metadata, entry_name, execute, stats_digest, JobSpec, ReplayMode};
pub use proto::{parse_request, parse_system, parse_systems, Request, PROTO};
pub use service::{serve, ServeOptions, ServeSummary};

#[cfg(unix)]
pub use service::serve_unix;
