//! Job bodies: what each `aos-serve/v1` job kind actually executes,
//! and the rendered result objects it answers with.
//!
//! Every body is a pure function of its spec — the service's retry
//! machinery may run a body more than once, and replays of a recorded
//! corpus must be bit-identical to the in-process pipeline — so
//! results carry [`digest64`] fingerprints of the underlying
//! [`RunStats`] / lint reports that tests (and users) can compare
//! across processes and sessions.

use aos_core::experiment::campaign::{matrix, run_campaign, CampaignOptions};
use aos_core::experiment::{overlap, SystemUnderTest};
use aos_isa::corpus::{CorpusReader, CorpusWriter};
use aos_isa::SafetyConfig;
use aos_lint::{lint_stream, LintReport};
use aos_ptrauth::PointerLayout;
use aos_sim::{Machine, RunStats};
use aos_util::{AosError, Telemetry};
use aos_workloads::{profile, TraceGenerator, WorkloadProfile};

use crate::json::escape;

/// How a recorded corpus entry is replayed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Feed the recorded ops through a Table IV machine and report
    /// its [`RunStats`].
    Sim,
    /// Feed the recorded ops through the static protocol linter and
    /// report its findings.
    Lint,
}

/// One unit of service work, fully specified.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Run one workload on one system and report the machine's
    /// statistics (the `aos run` cell, batched).
    Trace {
        /// Workload name.
        workload: String,
        /// System under test.
        system: SafetyConfig,
        /// Window scale in `(0, 1]`.
        scale: f64,
    },
    /// Lint one workload's generated stream.
    Lint {
        /// Workload name.
        workload: String,
        /// System under test (decides which safety ops appear).
        system: SafetyConfig,
        /// Window scale in `(0, 1]`.
        scale: f64,
    },
    /// Run a workload × system campaign grid.
    Campaign {
        /// Workload names.
        workloads: Vec<String>,
        /// Systems under test.
        systems: Vec<SafetyConfig>,
        /// Window scale in `(0, 1]`.
        scale: f64,
    },
    /// Record a workload × system grid into a new corpus file.
    CorpusRecord {
        /// Corpus file to create.
        path: String,
        /// Workload names.
        workloads: Vec<String>,
        /// Systems under test.
        systems: Vec<SafetyConfig>,
        /// Window scale in `(0, 1]`.
        scale: f64,
    },
    /// Replay one recorded entry.
    CorpusReplay {
        /// Corpus file to read.
        path: String,
        /// Entry name.
        entry: String,
        /// Replay destination.
        mode: ReplayMode,
    },
    /// CRC-verify every entry of a corpus.
    CorpusVerify {
        /// Corpus file to read.
        path: String,
    },
    /// Test-gated: hold a worker for a fixed time (robustness tests
    /// fill the queue and fire timeouts with this).
    Sleep {
        /// How long to hold the worker.
        millis: u64,
    },
    /// Test-gated: panic inside the job body (robustness tests prove
    /// isolation with this).
    Poison,
}

impl JobSpec {
    /// A short label for error messages.
    pub fn label(&self) -> String {
        match self {
            JobSpec::Trace { workload, system, .. } => format!("trace {workload}/{system}"),
            JobSpec::Lint { workload, system, .. } => format!("lint {workload}/{system}"),
            JobSpec::Campaign { workloads, systems, .. } => {
                format!("campaign {}x{}", workloads.len(), systems.len())
            }
            JobSpec::CorpusRecord { path, .. } => format!("corpus_record {path}"),
            JobSpec::CorpusReplay { path, entry, .. } => {
                format!("corpus_replay {path}#{entry}")
            }
            JobSpec::CorpusVerify { path } => format!("corpus_verify {path}"),
            JobSpec::Sleep { millis } => format!("__sleep {millis}ms"),
            JobSpec::Poison => "__poison".to_string(),
        }
    }
}

/// FNV-1a over `bytes`: the stable 64-bit fingerprint results carry.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A [`RunStats`] fingerprint: FNV-1a over the full `Debug`
/// rendering, which covers every counter the struct holds. Two runs
/// agree on this digest exactly when they are bit-identical.
pub fn stats_digest(stats: &RunStats) -> u64 {
    digest64(format!("{stats:?}").as_bytes())
}

fn report_digest(report: &LintReport) -> u64 {
    digest64(report.to_json().as_bytes())
}

fn find_workload(name: &str) -> Result<&'static WorkloadProfile, AosError> {
    profile::by_name(name)
        .ok_or_else(|| AosError::invalid_input("workload", format!("unknown workload '{name}'")))
}

fn sim_result_json(prefix: &str, stats: &RunStats, trace_ops: u64) -> String {
    format!(
        "{prefix}\"cycles\":{},\"retired_ops\":{},\"trace_ops\":{trace_ops},\"ipc\":{:.4},\"violations\":{},\"stats_digest\":\"{:016x}\"}}",
        stats.cycles,
        stats.retired_ops,
        stats.ipc(),
        stats.violations,
        stats_digest(stats),
    )
}

fn lint_result_json(prefix: &str, report: &LintReport) -> String {
    format!(
        "{prefix}\"ops_scanned\":{},\"errors\":{},\"warnings\":{},\"clean\":{},\"report_digest\":\"{:016x}\"}}",
        report.ops_scanned,
        report.errors(),
        report.warnings(),
        report.clean(),
        report_digest(report),
    )
}

/// The canonical entry name `corpus_record` gives a `(workload,
/// system)` cell, e.g. `mcf-pa+aos`.
pub fn entry_name(workload: &str, system: SafetyConfig) -> String {
    format!("{workload}-{}", system.to_string().to_ascii_lowercase())
}

/// The metadata string recorded with each entry; `corpus_replay`
/// parses the system back out of it so a replay needs no re-spec.
pub fn entry_metadata(workload: &str, system: SafetyConfig, scale: f64) -> String {
    format!("workload={workload} system={system} scale={scale}")
}

/// Parses the `system=` field of an entry's recorded metadata.
fn system_from_metadata(metadata: &str) -> Result<SafetyConfig, AosError> {
    let token = metadata
        .split_whitespace()
        .find_map(|kv| kv.strip_prefix("system="))
        .ok_or_else(|| {
            AosError::corruption("corpus entry metadata", "no system= field recorded")
        })?;
    match token.to_ascii_lowercase().as_str() {
        "baseline" => Ok(SafetyConfig::Baseline),
        "watchdog" => Ok(SafetyConfig::Watchdog),
        "pa" => Ok(SafetyConfig::Pa),
        "aos" => Ok(SafetyConfig::Aos),
        "pa+aos" => Ok(SafetyConfig::PaAos),
        other => Err(AosError::corruption(
            "corpus entry metadata",
            format!("unknown system '{other}'"),
        )),
    }
}

/// Adapter: drains a corpus [`Replay`](aos_isa::corpus::Replay) as a
/// plain op iterator for a machine or linter, parking the first error
/// so the caller can fail the job after the consumer stops. The
/// iterator fuses at the error — no op after a corrupt block is ever
/// delivered.
struct ReplayOps {
    inner: aos_isa::corpus::Replay,
    error: Option<AosError>,
}

impl Iterator for ReplayOps {
    type Item = aos_isa::Op;

    fn next(&mut self) -> Option<Self::Item> {
        if self.error.is_some() {
            return None;
        }
        match self.inner.next() {
            Some(Ok(op)) => Some(op),
            Some(Err(e)) => {
                self.error = Some(e);
                None
            }
            None => None,
        }
    }
}

/// Executes one job and renders its result object (the `"result"`
/// value of an `ok` response).
///
/// `telemetry` is whatever handle the *caller's threading discipline*
/// allows: the service passes a disabled handle because its workers
/// run concurrently and [`aos_util::telemetry`] is single-writer; the
/// single-threaded CLI passes its live handle.
///
/// # Errors
///
/// [`AosError`] in its usual taxonomy; notably
/// [`AosError::Corruption`] when a corpus job hits a CRC-failing
/// block — the caller quarantines the job, the service keeps serving.
pub fn execute(spec: &JobSpec, telemetry: &Telemetry) -> Result<String, AosError> {
    match spec {
        JobSpec::Trace { workload, system, scale } => {
            let p = find_workload(workload)?;
            let sut = SystemUnderTest::scaled(*system, *scale);
            let out = overlap::run_overlapped(p, &sut);
            let prefix = format!(
                "{{\"workload\":\"{}\",\"system\":\"{system}\",\"scale\":{scale},",
                escape(workload)
            );
            Ok(sim_result_json(&prefix, &out.stats, out.trace_ops))
        }
        JobSpec::Lint { workload, system, scale } => {
            let p = find_workload(workload)?;
            let gen = TraceGenerator::new(p, *system, *scale);
            let report = lint_stream(gen, PointerLayout::default());
            let prefix = format!(
                "{{\"workload\":\"{}\",\"system\":\"{system}\",\"scale\":{scale},",
                escape(workload)
            );
            Ok(lint_result_json(&prefix, &report))
        }
        JobSpec::Campaign { workloads, systems, scale } => {
            let mut profiles = Vec::with_capacity(workloads.len());
            for name in workloads {
                profiles.push(*find_workload(name)?);
            }
            let suts: Vec<SystemUnderTest> = systems
                .iter()
                .map(|s| SystemUnderTest::scaled(*s, *scale))
                .collect();
            let cells = matrix(profiles, suts);
            // One campaign thread: the service's own workers are the
            // parallelism budget here.
            let report = run_campaign(&cells, &CampaignOptions::with_threads(1));
            let cycles = report.total_sim_cycles();
            Ok(format!(
                "{{\"cells\":{},\"completed\":{},\"degraded\":{},\"failed\":{},\"total_sim_cycles\":{cycles}}}",
                report.results.len(),
                report.completed(),
                report.degraded(),
                report.failed(),
            ))
        }
        JobSpec::CorpusRecord { path, workloads, systems, scale } => {
            let mut cells = Vec::new();
            for name in workloads {
                let p = find_workload(name)?;
                for system in systems {
                    cells.push((name.clone(), p, *system));
                }
            }
            if cells.is_empty() {
                return Err(AosError::invalid_input(
                    "corpus_record",
                    "empty workload x system grid",
                ));
            }
            let mut writer = CorpusWriter::create(path, telemetry.clone())?;
            let mut ops_total = 0u64;
            for (name, p, system) in &cells {
                let gen = TraceGenerator::new(p, *system, *scale);
                let meta = writer.record(
                    &entry_name(name, *system),
                    &entry_metadata(name, *system, *scale),
                    gen,
                )?;
                ops_total += meta.op_count;
            }
            let entries = writer.finish()?;
            Ok(format!(
                "{{\"corpus\":\"{}\",\"entries\":{},\"ops_total\":{ops_total}}}",
                escape(path),
                entries.len(),
            ))
        }
        JobSpec::CorpusReplay { path, entry, mode } => {
            let reader = CorpusReader::open(path, telemetry.clone())?;
            let meta = reader
                .find(entry)
                .ok_or_else(|| {
                    AosError::invalid_input(
                        "corpus_replay",
                        format!("no entry '{entry}' in {path}"),
                    )
                })?
                .clone();
            let system = system_from_metadata(&meta.metadata)?;
            let replay = reader.replay(&meta)?;
            let mut ops = ReplayOps {
                inner: replay,
                error: None,
            };
            let prefix = format!(
                "{{\"corpus\":\"{}\",\"entry\":\"{}\",\"system\":\"{system}\",",
                escape(path),
                escape(entry),
            );
            match mode {
                ReplayMode::Sim => {
                    let config = SystemUnderTest::standard(system).machine_config();
                    let mut machine = Machine::new(config);
                    let stats = machine.run(&mut ops);
                    if let Some(e) = ops.error {
                        return Err(e);
                    }
                    Ok(sim_result_json(&prefix, &stats, meta.op_count))
                }
                ReplayMode::Lint => {
                    let report = lint_stream(&mut ops, PointerLayout::default());
                    if let Some(e) = ops.error {
                        return Err(e);
                    }
                    Ok(lint_result_json(&prefix, &report))
                }
            }
        }
        JobSpec::CorpusVerify { path } => {
            let reader = CorpusReader::open(path, telemetry.clone())?;
            let checks = reader.verify();
            let quarantined = checks.iter().filter(|c| c.status.is_err()).count();
            let first_error = checks
                .iter()
                .find_map(|c| c.status.as_ref().err().map(|e| e.to_string()))
                .unwrap_or_default();
            Ok(format!(
                "{{\"corpus\":\"{}\",\"entries\":{},\"quarantined\":{quarantined},\"clean\":{},\"first_error\":\"{}\"}}",
                escape(path),
                checks.len(),
                quarantined == 0,
                escape(&first_error),
            ))
        }
        JobSpec::Sleep { millis } => {
            std::thread::sleep(std::time::Duration::from_millis(*millis));
            Ok(format!("{{\"slept_ms\":{millis}}}"))
        }
        JobSpec::Poison => panic!("__poison job body deliberately panicked"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_util::Counter;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("aos-serve-jobs-tests");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    #[test]
    fn trace_job_reports_a_digest() {
        let spec = JobSpec::Trace {
            workload: "mcf".into(),
            system: SafetyConfig::Aos,
            scale: 0.004,
        };
        let a = execute(&spec, &Telemetry::disabled()).expect("run");
        let b = execute(&spec, &Telemetry::disabled()).expect("run");
        assert_eq!(a, b, "job bodies are pure functions of their spec");
        assert!(a.contains("\"stats_digest\":\""));
        assert!(a.contains("\"workload\":\"mcf\""));
    }

    #[test]
    fn record_then_replay_is_bit_identical_to_the_in_process_pipeline() {
        let path = temp("identity.aosc");
        std::fs::remove_file(&path).ok();
        let record = JobSpec::CorpusRecord {
            path: path.display().to_string(),
            workloads: vec!["mcf".into()],
            systems: vec![SafetyConfig::Aos],
            scale: 0.004,
        };
        execute(&record, &Telemetry::disabled()).expect("record");

        let replay = JobSpec::CorpusReplay {
            path: path.display().to_string(),
            entry: "mcf-aos".into(),
            mode: ReplayMode::Sim,
        };
        let replayed = execute(&replay, &Telemetry::disabled()).expect("replay");

        // The in-process batched pipeline on the same cell.
        let p = profile::by_name("mcf").expect("profile");
        let sut = SystemUnderTest::scaled(SafetyConfig::Aos, 0.004);
        let out = overlap::run_overlapped(p, &sut);
        let expect = format!("\"stats_digest\":\"{:016x}\"", stats_digest(&out.stats));
        assert!(
            replayed.contains(&expect),
            "replay {replayed} != in-process digest {expect}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn replay_lint_matches_in_process_lint() {
        let path = temp("lintid.aosc");
        std::fs::remove_file(&path).ok();
        execute(
            &JobSpec::CorpusRecord {
                path: path.display().to_string(),
                workloads: vec!["mcf".into()],
                systems: vec![SafetyConfig::Aos],
                scale: 0.004,
            },
            &Telemetry::disabled(),
        )
        .expect("record");
        let via_corpus = execute(
            &JobSpec::CorpusReplay {
                path: path.display().to_string(),
                entry: "mcf-aos".into(),
                mode: ReplayMode::Lint,
            },
            &Telemetry::disabled(),
        )
        .expect("replay");
        let p = profile::by_name("mcf").expect("profile");
        let report = lint_stream(
            TraceGenerator::new(p, SafetyConfig::Aos, 0.004),
            PointerLayout::default(),
        );
        let expect = format!("\"report_digest\":\"{:016x}\"", report_digest(&report));
        assert!(via_corpus.contains(&expect), "{via_corpus} != {expect}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_replay_is_a_typed_quarantine() {
        let path = temp("quarantine.aosc");
        std::fs::remove_file(&path).ok();
        execute(
            &JobSpec::CorpusRecord {
                path: path.display().to_string(),
                workloads: vec!["mcf".into()],
                systems: vec![SafetyConfig::Baseline],
                scale: 0.004,
            },
            &Telemetry::disabled(),
        )
        .expect("record");
        // Flip a bit in the first op block of the only entry.
        let reader = CorpusReader::open(&path, Telemetry::disabled()).expect("open");
        let offset = reader.entries()[0].offset;
        drop(reader);
        let mut bytes = std::fs::read(&path).expect("read");
        // entry header frame: 8 (len+crc) + 1 (kind) + payload; next
        // frame starts after it — flip inside its payload.
        let header_payload =
            u32::from_le_bytes(bytes[offset as usize..offset as usize + 4].try_into().unwrap());
        let block_payload_at = offset as usize + 8 + header_payload as usize + 8 + 1;
        bytes[block_payload_at + 5] ^= 0x40;
        std::fs::write(&path, &bytes).expect("write");

        let t = Telemetry::enabled();
        let err = execute(
            &JobSpec::CorpusReplay {
                path: path.display().to_string(),
                entry: "mcf-baseline".into(),
                mode: ReplayMode::Sim,
            },
            &t,
        )
        .expect_err("corrupt replay must fail");
        assert!(matches!(err, AosError::Corruption { .. }), "{err}");
        assert!(t.snapshot().counter(Counter::CorpusCrcFailures) >= 1);

        // Verify reports the quarantine without failing the job.
        let verify = execute(
            &JobSpec::CorpusVerify {
                path: path.display().to_string(),
            },
            &Telemetry::disabled(),
        )
        .expect("verify is a report, not a gate");
        assert!(verify.contains("\"quarantined\":1"));
        assert!(verify.contains("\"clean\":false"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_workload_is_invalid_input() {
        let err = execute(
            &JobSpec::Trace {
                workload: "doom".into(),
                system: SafetyConfig::Aos,
                scale: 0.01,
            },
            &Telemetry::disabled(),
        )
        .expect_err("unknown workload");
        assert!(matches!(err, AosError::InvalidInput { .. }));
    }
}
