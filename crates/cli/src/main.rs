//! `aos` — the command-line front end of the reproduction.
//!
//! ```text
//! aos attacks                          stage the §VII attack gallery
//! aos run <workload> [options]         one workload on one system
//! aos compare <workload> [--scale f]   all five systems, normalized
//! aos stats [options]                  merged pipeline telemetry counters
//! aos campaign [options]               parallel workload x system matrix
//! aos faults [options]                 seeded fault-injection sweep
//! aos table <1|2|3|4> [--scale f]      reproduce a paper table
//! aos fig <11|14|15|16|17|18> [--scale f]   reproduce a paper figure
//! aos pac [--allocations n] [--bits b] the Fig. 11 microbenchmark
//! aos trace / aos replay               capture & replay µop traces
//! aos params                           the Table IV machine
//! aos workloads                        list the calibrated workloads
//! ```

use std::process::ExitCode;

mod args;
mod commands;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprint!("{}", commands::usage());
        return ExitCode::FAILURE;
    };
    let rest = &argv[1..];
    let outcome = match command.as_str() {
        "attacks" => commands::attacks(),
        "run" => commands::run(rest),
        "compare" => commands::compare(rest),
        "stats" => commands::stats(rest),
        "campaign" => commands::campaign(rest),
        "faults" => commands::faults(rest),
        "table" => commands::table(rest),
        "fig" => commands::fig(rest),
        "pac" => commands::pac(rest),
        "trace" => commands::trace(rest),
        "replay" => commands::replay(rest),
        "params" => commands::params(),
        "workloads" => commands::workloads(),
        "help" | "--help" | "-h" => {
            print!("{}", commands::usage());
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprint!("{}", commands::usage());
            ExitCode::FAILURE
        }
    }
}
