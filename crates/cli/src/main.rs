//! `aos` — the command-line front end of the reproduction.
//!
//! ```text
//! aos attacks                          stage the §VII attack gallery
//! aos run <workload> [options]         one workload on one system
//! aos compare <workload> [--scale f]   all five systems, normalized
//! aos stats [options]                  merged pipeline telemetry counters
//! aos campaign [options]               parallel workload x system matrix
//! aos ablate [options]                 MCQ depth x BWB size geometry sweep
//! aos faults [options]                 seeded fault-injection sweep
//! aos fuzz [options]                   adversarial differential fuzzing
//! aos lint [options]                   static protocol verification
//! aos matrix [options]                 cross-policy detection matrix
//! aos table <1|2|3|4> [--scale f]      reproduce a paper table
//! aos fig <11|14|15|16|17|18> [--scale f]   reproduce a paper figure
//! aos pac [--allocations n] [--bits b] the Fig. 11 microbenchmark
//! aos trace / aos replay               capture & replay µop traces
//! aos serve [options]                  long-running NDJSON job service
//! aos corpus record|replay|verify      persistent CRC-checked corpora
//! aos params                           the Table IV machine
//! aos workloads                        list the calibrated workloads
//! ```
//!
//! Exit codes (documented in `aos help`): 0 success, 1 a strict gate
//! found real findings, 2 unusable invocation or execution error.

use std::process::ExitCode;

mod args;
mod commands;

use commands::CliError;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        eprint!("{}", commands::usage());
        return ExitCode::from(2);
    };
    let rest = &argv[1..];
    let outcome: Result<(), CliError> = match command.as_str() {
        "attacks" => commands::attacks().map_err(CliError::from),
        "run" => commands::run(rest).map_err(CliError::from),
        "compare" => commands::compare(rest).map_err(CliError::from),
        "stats" => commands::stats(rest).map_err(CliError::from),
        "campaign" => commands::campaign(rest).map_err(CliError::from),
        "ablate" => commands::ablate(rest),
        "faults" => commands::faults(rest),
        "fuzz" => commands::fuzz(rest),
        "lint" => commands::lint(rest),
        "matrix" => commands::matrix_cmd(rest),
        "table" => commands::table(rest).map_err(CliError::from),
        "fig" => commands::fig(rest).map_err(CliError::from),
        "pac" => commands::pac(rest).map_err(CliError::from),
        "trace" => commands::trace(rest).map_err(CliError::from),
        "replay" => commands::replay(rest).map_err(CliError::from),
        "serve" => commands::serve(rest),
        "corpus" => commands::corpus(rest),
        "params" => commands::params().map_err(CliError::from),
        "workloads" => commands::workloads().map_err(CliError::from),
        "help" | "--help" | "-h" => {
            print!("{}", commands::usage());
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        // Findings: the command ran to completion and its gate
        // reported real findings — no usage dump, the gate already
        // explained itself.
        Err(CliError::Findings(message)) => {
            eprintln!("{message}");
            ExitCode::from(1)
        }
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}");
            eprint!("{}", commands::usage());
            ExitCode::from(2)
        }
    }
}
