//! The CLI subcommands.

use aos_bench::reports;
use aos_core::experiment::campaign::{matrix, run_campaign, CampaignOptions};
use aos_core::experiment::{run as run_experiment, SystemUnderTest};
use aos_core::isa::SafetyConfig;
use aos_core::security;
use aos_core::sim::{Machine, RunStats, SimConfig, SimModel};
use aos_core::workloads::collisions;
use aos_core::workloads::microbench::pac_distribution;
use aos_core::workloads::profile::{self, REAL_WORLD, SPEC2006};
use aos_fault::campaign::FaultCampaignConfig;
use aos_fault::{plan_fault, run_fault_campaign, FaultKind, FaultSpec};
use aos_lint::{lint_stream_metered, MatrixReport, MatrixScan, Policy};
use aos_ptrauth::PointerLayout;
use aos_util::{Counter, Gauge, Telemetry};
use aos_workloads::TraceGenerator;

use std::time::Duration;

use crate::args::{scale_or, Parsed};

/// Failure classes, mapped to process exit codes by `main` (the
/// contract `usage()` documents): a command that ran its gate and
/// found real findings exits 1; bad flags, bad input or an execution
/// error exit 2; success is 0.
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// A strict gate (`aos lint`, `aos faults --strict true`) found
    /// findings — the run itself worked (exit 1).
    Findings(String),
    /// Unusable invocation or a failure to execute (exit 2).
    Usage(String),
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError::Usage(message)
    }
}

/// `args::scale` with its typed error flattened into the CLI's
/// string-error convention.
fn scale(parsed: &Parsed) -> Result<f64, String> {
    crate::args::scale(parsed).map_err(|e| e.to_string())
}

/// The CLI's boolean-flag convention: present (and not literally
/// `false`) means on. Used by `--json` and `--telemetry`.
fn bool_flag(parsed: &Parsed, name: &str) -> bool {
    parsed.flag(name).is_some_and(|v| v != "false")
}

/// The usage text.
pub fn usage() -> String {
    "\
aos — the AOS (MICRO 2020) reproduction

USAGE:
  aos attacks                               stage the §VII attack gallery
  aos run <workload> [--system <s>] [--scale <f>] [--json]
         [--telemetry true]                 run one workload on one system
  aos compare <workload> [--scale <f>] [--threads <n>] [--telemetry true]
                                            all five systems, normalized
  aos stats [--workload <w>] [--system <s>] [--scale <f>]
            [--threads <n>] [--json true]
                                            run a small telemetry-enabled
                                            campaign and print the merged
                                            pipeline counters (BWB hit
                                            rate, MCQ occupancy/replays,
                                            HBT migration) as a table or
                                            JSON
  aos campaign [--suite spec2006|realworld|all] [--scale <f>]
               [--threads <n>] [--out <path>]
                                            run the full workload x system
                                            matrix in parallel, write a
                                            JSON report
  aos ablate [--workload <w>] [--system aos|pa+aos] [--scale <f>]
             [--mcq <n1,n2,..>] [--bwb <n1,n2,..>]
             [--model stage|approximate] [--json true] [--out <path>]
                                            sweep the MCU geometry (MCQ
                                            depth x BWB entries) on the
                                            stage-structured core,
                                            normalized to the Table IV
                                            point; any violation on the
                                            benign sweep exits 1
  aos faults [--workload <w>] [--scale <f>] [--seeds <n>]
             [--kinds <k1,k2,..>] [--policy <p|all>] [--threads <n>]
             [--out <path>] [--strict true] [--telemetry true]
                                            fault-injection sweep: inject
                                            seeded overflow/underflow/UAF/
                                            double-free/PAC/AHC faults,
                                            verify AOS detects what the
                                            Baseline misses; --strict fails
                                            unless detection is 100% with
                                            zero false positives and every
                                            requested static policy lands
                                            on its own pinned rule table
  aos fuzz [--workload <w>] [--scale <f>] [--seed <n>] [--budget <n>]
           [--max-chain <n>] [--coverage-guided true]
           [--corpus-out <path>] [--out <path>]
           [--json true] [--telemetry true] [--replay-corpus <path>]
                                            adversarial scenario engine:
                                            generate seeded multi-step
                                            attack chains (base injectors +
                                            composite primitives), replay
                                            each through all four static
                                            policies and the dynamic oracle
                                            on all five systems, and flag
                                            any verdict outside the pinned
                                            static/dynamic split; findings
                                            exit 1 and bank to --corpus-out;
                                            --coverage-guided steers the
                                            chain scheduler toward streams
                                            lighting new coverage points;
                                            --replay-corpus re-checks a
                                            banked corpus's verdicts instead
  aos lint [--workload <w>] [--system <s>] [--scale <f>]
           [--fault <kind>] [--seed <n>] [--policy <p|all>]
           [--json true] [--strict false] [--telemetry true]
                                            statically verify the generated
                                            op stream against the Fig. 7
                                            instrumentation protocol (no
                                            machine run); --fault lints a
                                            seeded faulted stream instead;
                                            --policy scans the same stream
                                            under cryptsan/pacsan/pactight
                                            abstract models too; strict by
                                            default — any finding exits 1
  aos matrix [--workload <w>] [--scale <f>] [--seeds <n>]
             [--policy <p|all>] [--kinds <k1,k2,..>] [--json true]
             [--out <path>] [--telemetry true]
                                            cross-paper detection matrix:
                                            a clean reference row plus every
                                            fault kind x seed, scanned once
                                            through every requested static
                                            policy (default all four) in a
                                            single streaming pass per trace;
                                            emits aos-lint-matrix/v1; any
                                            policy flagging the clean trace
                                            exits 1
  aos table <1|2|3|4> [--scale <f>]         reproduce a paper table
  aos fig <11|14|15|16|17|18> [--scale <f>] reproduce a paper figure
  aos pac [--allocations <n>] [--bits <b>] [--live <n>]
                                            Fig. 11 microbenchmark + §VI
                                            collision study
  aos trace <workload> --out <path> [--system <s>] [--scale <f>]
                                            capture a trace to a file
  aos replay <path> [--system <s>]          replay a captured trace
  aos serve [--socket <path>] [--queue <n>] [--workers <n>]
            [--timeout-ms <n>] [--retries <n>] [--backoff-ms <n>]
            [--retry-after-ms <n>] [--test-jobs true] [--telemetry true]
                                            long-running job service:
                                            newline-delimited JSON
                                            (aos-serve/v1) on stdin/stdout,
                                            or a Unix socket with --socket;
                                            bounded queue (rejects answer
                                            retry_after_ms), per-job
                                            timeout + retries with
                                            exponential backoff, panics
                                            isolated per job, drains on
                                            shutdown/EOF
  aos corpus record --out <path> --workloads <w1,w2,..>
                    [--systems <s1,s2,..>] [--scale <f>]
                                            record a workload x system grid
                                            into a CRC-checked trace corpus
  aos corpus replay <path> --entry <name> [--mode sim|lint]
                                            replay one recorded entry
                                            bit-identically (CRC-failing
                                            blocks quarantine, exit 1)
  aos corpus verify <path>                  CRC-verify every entry; any
                                            quarantined entry exits 1
  aos params                                the Table IV machine parameters
  aos workloads                             list the calibrated workloads

SYSTEMS: baseline, watchdog, pa, aos, pa+aos
POLICIES: aos, cryptsan, pacsan, pactight — a comma list or 'all'
         (static abstract models; aos is the paper's own verifier)
THREADS: --threads beats the AOS_CAMPAIGN_THREADS env var, which beats
         the machine's available parallelism; results are identical at
         any thread count.
EXIT CODES: 0 = success / gate clean; 1 = a strict gate found real
         findings (aos lint findings, aos faults --strict true
         failures); 2 = unusable invocation or execution error.
"
    .to_string()
}

/// Parses a `--policy <name|all>` flag (comma lists allowed) into a
/// static-policy set; absent means AOS alone — the paper's own
/// verifier, bit-identical to the pre-framework linter.
fn parse_policies(parsed: &Parsed) -> Result<Vec<Policy>, String> {
    let Some(list) = parsed.flag("policy") else {
        return Ok(vec![Policy::Aos]);
    };
    if list.eq_ignore_ascii_case("all") {
        return Ok(Policy::ALL.to_vec());
    }
    let mut policies = Vec::new();
    for token in list.split(',') {
        let token = token.trim();
        let policy = Policy::parse(token).ok_or_else(|| {
            format!("unknown policy '{token}' (aos, cryptsan, pacsan, pactight, all)")
        })?;
        if !policies.contains(&policy) {
            policies.push(policy);
        }
    }
    Ok(policies)
}

fn parse_system(name: &str) -> Result<SafetyConfig, String> {
    match name.to_ascii_lowercase().as_str() {
        "baseline" => Ok(SafetyConfig::Baseline),
        "watchdog" => Ok(SafetyConfig::Watchdog),
        "pa" => Ok(SafetyConfig::Pa),
        "aos" => Ok(SafetyConfig::Aos),
        "pa+aos" | "paaos" => Ok(SafetyConfig::PaAos),
        other => Err(format!(
            "unknown system '{other}' (baseline, watchdog, pa, aos, pa+aos)"
        )),
    }
}

fn find_workload(name: &str) -> Result<&'static aos_core::workloads::WorkloadProfile, String> {
    profile::by_name(name).ok_or_else(|| {
        let names: Vec<&str> = SPEC2006
            .iter()
            .chain(REAL_WORLD.iter())
            .map(|p| p.name)
            .collect();
        format!("unknown workload '{name}'; known: {}", names.join(", "))
    })
}

/// Hand-rolled JSON for a run's statistics (stable field set for
/// scripting against the CLI).
fn stats_json(workload: &str, system: SafetyConfig, stats: &RunStats) -> String {
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"system\":\"{}\",\"cycles\":{},",
            "\"retired_ops\":{},\"ipc\":{:.4},\"l1d_miss_rate\":{:.4},",
            "\"l2_miss_rate\":{:.4},\"traffic_bytes\":{},",
            "\"signed_accesses\":{},\"bwb_hit_rate\":{:.4},",
            "\"accesses_per_check\":{:.4},\"hbt_ways\":{},",
            "\"hbt_resizes\":{},\"violations\":{},",
            "\"charged_mispredicts\":{},\"waived_mispredicts\":{}}}"
        ),
        workload,
        system,
        stats.cycles,
        stats.retired_ops,
        stats.ipc(),
        stats.l1d.miss_rate(),
        stats.l2.miss_rate(),
        stats.traffic.total_bytes(),
        stats.mcu.signed_accesses,
        stats.bwb.hit_rate(),
        stats.mcu.accesses_per_check(),
        stats.hbt_ways,
        stats.hbt_resizes,
        stats.violations,
        stats.charged_mispredicts,
        stats.waived_mispredicts,
    )
}

/// `aos attacks`.
pub fn attacks() -> Result<(), String> {
    println!("== AOS attack gallery (paper §VII / Figs. 1, 12) ==\n");
    for outcome in security::all_scenarios() {
        println!("scenario : {}", outcome.name);
        println!("baseline : {}", outcome.baseline_effect);
        match &outcome.detected {
            Some(err) => println!("AOS      : DETECTED — {err}"),
            None => println!("AOS      : not detected (documented limitation, §VII-F)"),
        }
        println!();
    }
    Ok(())
}

/// `aos run <workload> [--system s] [--scale f] [--json]`.
fn run_cmd_impl(parsed: &Parsed) -> Result<(), String> {
    let name = parsed
        .positional(0)
        .ok_or_else(|| "run requires a workload name".to_string())?;
    let workload = find_workload(name)?;
    let system = parse_system(parsed.flag("system").unwrap_or("aos"))?;
    let scale = scale(parsed)?;
    let telemetry = bool_flag(parsed, "telemetry");
    let stats = run_experiment(
        workload,
        &SystemUnderTest::scaled(system, scale).with_telemetry(telemetry),
    );
    if bool_flag(parsed, "json") {
        let mut json = stats_json(name, system, &stats);
        if telemetry {
            json.pop();
            json.push_str(&format!(",\"telemetry\": {}}}", stats.telemetry.to_json("")));
        }
        println!("{json}");
        return Ok(());
    }
    println!("== {name} on {system} @ scale {scale} ==");
    println!("cycles           {:>14}", stats.cycles);
    println!("retired ops      {:>14}", stats.retired_ops);
    println!("ipc              {:>14.3}", stats.ipc());
    println!("L1-D miss        {:>13.2}%", stats.l1d.miss_rate() * 100.0);
    println!("L2 miss          {:>13.2}%", stats.l2.miss_rate() * 100.0);
    println!("traffic          {:>12} B", stats.traffic.total_bytes());
    if system.uses_aos() {
        println!("signed accesses  {:>14}", stats.mcu.signed_accesses);
        println!("accesses/check   {:>14.3}", stats.mcu.accesses_per_check());
        println!("BWB hit rate     {:>13.1}%", stats.bwb.hit_rate() * 100.0);
        println!("HBT ways         {:>14}", stats.hbt_ways);
        println!("HBT resizes      {:>14}", stats.hbt_resizes);
    }
    println!("violations       {:>14}", stats.violations);
    if telemetry {
        println!();
        print!("{}", stats.telemetry.to_table());
    }
    Ok(())
}

/// `aos run`.
pub fn run(args: &[String]) -> Result<(), String> {
    run_cmd_impl(&Parsed::parse(args)?)
}

/// Parses an optional `--threads <n>` flag into campaign options.
fn campaign_options(parsed: &Parsed) -> Result<CampaignOptions, String> {
    Ok(match parsed.flag("threads") {
        None => CampaignOptions::default(),
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| format!("--threads got unparsable value '{v}'"))?;
            if n == 0 {
                return Err("--threads must be at least 1".to_string());
            }
            CampaignOptions::with_threads(n)
        }
    })
}

/// `aos compare <workload> [--scale f] [--threads n]`.
pub fn compare(args: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(args)?;
    let name = parsed
        .positional(0)
        .ok_or_else(|| "compare requires a workload name".to_string())?;
    let workload = find_workload(name)?;
    let scale = scale(&parsed)?;
    let options = campaign_options(&parsed)?;
    let telemetry = bool_flag(&parsed, "telemetry");
    // The five systems are one campaign: they run in parallel and
    // `SafetyConfig::ALL` puts Baseline first, so `results[0]` is the
    // normalization row.
    let cells = matrix(
        [*workload],
        SafetyConfig::ALL.map(|s| SystemUnderTest::scaled(s, scale).with_telemetry(telemetry)),
    );
    let report = run_campaign(&cells, &options);
    let baseline = report.results[0]
        .stats()
        .ok_or_else(|| format!("baseline cell failed: {}", report.results[0].error().unwrap_or("?")))?;
    println!("== {name} @ scale {scale}: all five systems ==");
    println!(
        "{:<10} {:>12} {:>10} {:>8}",
        "system", "cycles", "normalized", "ipc"
    );
    for result in &report.results {
        match result.stats() {
            Some(stats) => println!(
                "{:<10} {:>12} {:>10.3} {:>8.2}",
                result.cell.sut.safety.to_string(),
                stats.cycles,
                stats.cycles as f64 / baseline.cycles as f64,
                stats.ipc()
            ),
            None => println!(
                "{:<10} {:>12} {:>10} {:>8}  ({})",
                result.cell.sut.safety.to_string(),
                "-",
                "-",
                "-",
                result.error().unwrap_or("failed")
            ),
        }
    }
    if telemetry {
        println!("\naggregate over all five systems:");
        print!("{}", report.telemetry().to_table());
    }
    Ok(())
}

/// `aos stats [--workload w] [--system s] [--scale f] [--threads n]
/// [--json true]`: the telemetry surface. Runs a small campaign with
/// pipeline telemetry enabled and prints the merged snapshot.
pub fn stats(args: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(args)?;
    // Telemetry campaigns exist to read counters, not to time the
    // machine: default to a small window.
    let scale = scale_or(&parsed, 0.01).map_err(|e| e.to_string())?;
    let system = parse_system(parsed.flag("system").unwrap_or("aos"))?;
    let options = campaign_options(&parsed)?;
    let profiles: Vec<_> = match parsed.flag("workload") {
        Some(name) => vec![*find_workload(name)?],
        // The default campaign: the four workloads the streaming bench
        // uses, a mix of allocation-heavy and check-heavy behaviour.
        None => ["hmmer", "gcc", "mcf", "omnetpp"]
            .iter()
            .map(|n| *profile::by_name(n).expect("built-in workload"))
            .collect(),
    };
    let cells = matrix(
        profiles.iter().copied(),
        [SystemUnderTest::scaled(system, scale).with_telemetry(true)],
    );
    let report = run_campaign(&cells, &options);
    if report.failed() > 0 {
        return Err(format!("{} cells failed", report.failed()));
    }
    let telemetry = report.telemetry();
    let names: Vec<&str> = profiles.iter().map(|p| p.name).collect();
    if bool_flag(&parsed, "json") {
        // v2 added the stage-core pipeline counters (per-stage stall
        // attribution, store-load replays, exception flushes).
        println!(
            "{{\n  \"schema\": \"aos-stats/v2\",\n  \"system\": \"{system}\",\n  \
             \"scale\": {scale},\n  \"workloads\": [{}],\n  \
             \"bwb_hit_rate\": {:.4},\n  \"mcq_peak_occupancy\": {},\n  \
             \"mcq_replays\": {},\n  \"hbt_migration_rows\": {},\n  \
             \"sim_stall_rob\": {},\n  \"sim_stall_lsq\": {},\n  \
             \"sim_stall_mcq\": {},\n  \"sim_replays\": {},\n  \
             \"sim_flushes\": {},\n  \
             \"telemetry\": {}\n}}",
            names
                .iter()
                .map(|n| format!("\"{n}\""))
                .collect::<Vec<_>>()
                .join(", "),
            telemetry.bwb_hit_rate(),
            telemetry.gauge(Gauge::McqPeakOccupancy),
            telemetry.counter(Counter::McqReplays),
            telemetry.counter(Counter::HbtMigrationRows),
            telemetry.counter(Counter::SimStallRob),
            telemetry.counter(Counter::SimStallLsq),
            telemetry.counter(Counter::SimStallMcq),
            telemetry.counter(Counter::SimReplays),
            telemetry.counter(Counter::SimFlushes),
            telemetry.to_json("  "),
        );
        return Ok(());
    }
    println!(
        "== pipeline telemetry: {} on {system} @ scale {scale} ==",
        names.join(", ")
    );
    print!("{}", telemetry.to_table());
    Ok(())
}

/// `aos campaign [--suite s] [--scale f] [--threads n] [--out path]`.
pub fn campaign(args: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(args)?;
    let scale = scale(&parsed)?;
    let options = campaign_options(&parsed)?;
    let suite = parsed.flag("suite").unwrap_or("spec2006");
    let profiles: Vec<_> = match suite.to_ascii_lowercase().as_str() {
        "spec2006" | "spec" => SPEC2006.to_vec(),
        "realworld" | "real-world" => REAL_WORLD.to_vec(),
        "all" => SPEC2006.iter().chain(REAL_WORLD.iter()).copied().collect(),
        other => {
            return Err(format!(
                "unknown suite '{other}' (spec2006, realworld, all)"
            ))
        }
    };
    let cells = matrix(
        profiles,
        SafetyConfig::ALL.map(|s| SystemUnderTest::scaled(s, scale)),
    );
    println!(
        "campaign: {} cells ({suite} x 5 systems) at scale {scale}",
        cells.len()
    );
    let report = run_campaign(&cells, &options);
    println!(
        "{} cells on {} threads in {:.2}s ({:.2} cells/sec; {} completed, {} degraded, {} failed)",
        report.results.len(),
        report.threads,
        report.wall.as_secs_f64(),
        report.cells_per_sec(),
        report.completed(),
        report.degraded(),
        report.failed()
    );
    if let Some(out) = parsed.flag("out") {
        report
            .write_json(out)
            .map_err(|e| format!("cannot write '{out}': {e}"))?;
        println!("report written to {out}");
    }
    Ok(())
}

/// A comma-separated list of structural sizes for an `aos ablate`
/// sweep axis (`--mcq`, `--bwb`).
fn parse_geometry_list(list: &str, flag: &str) -> Result<Vec<usize>, String> {
    let mut points = Vec::new();
    for token in list.split(',') {
        let token = token.trim();
        let value: usize = token
            .parse()
            .map_err(|_| format!("--{flag} has an unparsable entry '{token}'"))?;
        if value == 0 {
            return Err(format!("--{flag} entries must be at least 1"));
        }
        points.push(value);
    }
    Ok(points)
}

/// One measured point of the `aos ablate` sweep.
struct AblatePoint {
    mcq: usize,
    bwb: usize,
    stats: RunStats,
}

/// `aos ablate [--workload w] [--system aos|pa+aos] [--scale f]
/// [--mcq n1,n2,..] [--bwb n1,n2,..] [--model stage|approximate]
/// [--json true] [--out path]`.
///
/// The MCU-geometry sensitivity study the stage-structured core makes
/// possible: sweep MCQ depth x BWB entries over one benign workload
/// and report cycles (normalized to the Table IV point), IPC, the
/// MCQ-full dispatch-stall count and the BWB hit rate per point. A
/// violation on the benign sweep is a real finding (exit 1): shrinking
/// a queue may slow the machine down but must never change what it
/// detects.
pub fn ablate(args: &[String]) -> Result<(), CliError> {
    let parsed = Parsed::parse(args)?;
    let workload = find_workload(parsed.flag("workload").unwrap_or("hmmer"))?;
    // Each sweep point is a full machine run: default to a small
    // window, like the fault sweep does.
    let scale = scale_or(&parsed, 0.004).map_err(|e| e.to_string())?;
    let system = parse_system(parsed.flag("system").unwrap_or("aos"))?;
    if !matches!(system, SafetyConfig::Aos | SafetyConfig::PaAos) {
        return Err(format!(
            "ablate sweeps the MCU geometry, which only exists on AOS \
             systems; --system must be aos or pa+aos, not {system}"
        )
        .into());
    }
    let model = match parsed.flag("model") {
        None => SimModel::default(),
        Some(name) => SimModel::parse(name)
            .ok_or_else(|| format!("unknown model '{name}' (stage, approximate)"))?,
    };
    let mcq_points = parse_geometry_list(parsed.flag("mcq").unwrap_or("12,24,48,96"), "mcq")?;
    let bwb_points = parse_geometry_list(parsed.flag("bwb").unwrap_or("16,64,128"), "bwb")?;

    let run_point = |mcq: usize, bwb: usize| -> AblatePoint {
        let sut = SystemUnderTest::scaled(system, scale).with_model(model);
        let mut config = sut.machine_config();
        config.mcu.mcq_entries = mcq;
        config.mcu.bwb_entries = bwb;
        let mut machine = Machine::new(config);
        let stats = machine.run(TraceGenerator::new(workload, system, scale));
        AblatePoint { mcq, bwb, stats }
    };

    // The Table IV geometry is the normalization reference; reuse the
    // measurement when the grid contains it.
    let (ref_mcq, ref_bwb) = (SimConfig::MCQ_ENTRIES, SimConfig::BWB_ENTRIES);
    let points: Vec<AblatePoint> = mcq_points
        .iter()
        .flat_map(|&mcq| bwb_points.iter().map(move |&bwb| (mcq, bwb)))
        .map(|(mcq, bwb)| run_point(mcq, bwb))
        .collect();
    let reference = points
        .iter()
        .find(|p| p.mcq == ref_mcq && p.bwb == ref_bwb)
        .map(|p| p.stats.clone())
        .unwrap_or_else(|| run_point(ref_mcq, ref_bwb).stats);

    println!(
        "== aos ablate: {} on {system} @ scale {scale} ({} model) ==",
        workload.name,
        model.name()
    );
    println!(
        "reference: mcq={ref_mcq} bwb={ref_bwb} cycles={} (Table IV geometry)",
        reference.cycles
    );
    println!("{:>6} {:>6} {:>12} {:>7} {:>7} {:>11} {:>9} {:>8}",
        "mcq", "bwb", "cycles", "norm", "ipc", "stall_mcq", "bwb_hit%", "flushes");
    for p in &points {
        println!(
            "{:>6} {:>6} {:>12} {:>7.3} {:>7.3} {:>11} {:>9.2} {:>8}",
            p.mcq,
            p.bwb,
            p.stats.cycles,
            p.stats.cycles as f64 / reference.cycles as f64,
            p.stats.ipc(),
            p.stats.stalls_mcq,
            p.stats.bwb.hit_rate() * 100.0,
            p.stats.flushes,
        );
    }

    let json = |indent: &str| -> String {
        let cells: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    "{indent}  {{\"mcq\": {}, \"bwb\": {}, \"cycles\": {}, \
                     \"normalized\": {:.6}, \"ipc\": {:.4}, \
                     \"stall_mcq\": {}, \"lsq_replays\": {}, \
                     \"flushes\": {}, \"bwb_hit_rate\": {:.4}, \
                     \"violations\": {}}}",
                    p.mcq,
                    p.bwb,
                    p.stats.cycles,
                    p.stats.cycles as f64 / reference.cycles as f64,
                    p.stats.ipc(),
                    p.stats.stalls_mcq,
                    p.stats.lsq_replays,
                    p.stats.flushes,
                    p.stats.bwb.hit_rate(),
                    p.stats.violations,
                )
            })
            .collect();
        format!(
            "{{\n{indent}\"schema\": \"aos-ablate-report/v1\",\n\
             {indent}\"workload\": \"{}\",\n{indent}\"system\": \"{system}\",\n\
             {indent}\"scale\": {scale},\n{indent}\"model\": \"{}\",\n\
             {indent}\"reference\": {{\"mcq\": {ref_mcq}, \"bwb\": {ref_bwb}, \
             \"cycles\": {}}},\n{indent}\"points\": [\n{}\n{indent}]\n}}",
            workload.name,
            model.name(),
            reference.cycles,
            cells.join(",\n"),
        )
    };
    if bool_flag(&parsed, "json") {
        println!("{}", json("  "));
    }
    if let Some(out) = parsed.flag("out") {
        std::fs::write(out, json("  ") + "\n")
            .map_err(|e| format!("cannot write '{out}': {e}"))?;
        println!("report written to {out}");
    }

    let faulting: Vec<&AblatePoint> = points.iter().filter(|p| p.stats.violations > 0).collect();
    if !faulting.is_empty() {
        return Err(CliError::Findings(format!(
            "{} sweep point(s) reported violations on a benign trace \
             (first: mcq={} bwb={}); geometry must affect timing, not \
             detection",
            faulting.len(),
            faulting[0].mcq,
            faulting[0].bwb,
        )));
    }
    Ok(())
}

/// `aos faults [--workload w] [--scale f] [--seeds n] [--kinds k,..]
/// [--threads n] [--out path] [--strict true]`.
pub fn faults(args: &[String]) -> Result<(), CliError> {
    let parsed = Parsed::parse(args)?;
    let workload = find_workload(parsed.flag("workload").unwrap_or("hmmer"))?;
    // Fault sweeps replay the trace once per (kind, seed, system):
    // default to a small window instead of the global full-scale one.
    let scale = scale_or(&parsed, 0.004).map_err(|e| e.to_string())?;
    let seed_count: u64 = parsed.flag_or("seeds", 3u64)?;
    if seed_count == 0 {
        return Err("--seeds must be at least 1".to_string().into());
    }
    let kinds = match parsed.flag("kinds") {
        None => FaultKind::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|k| FaultKind::parse(k.trim()).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let options = campaign_options(&parsed)?;
    let strict = bool_flag(&parsed, "strict");
    let telemetry = bool_flag(&parsed, "telemetry");
    let policies = parse_policies(&parsed)?;

    let config = FaultCampaignConfig {
        kinds,
        options,
        telemetry,
        policies,
        ..FaultCampaignConfig::standard(*workload, scale, (1..=seed_count).collect())
    };
    println!(
        "faults: {} on {} kinds x {} seeds x {{AOS, Baseline}} at scale {scale}",
        workload.name,
        config.kinds.len(),
        seed_count
    );
    let outcome = run_fault_campaign(&config).map_err(|e| e.to_string())?;

    println!(
        "{:<12} {:>6} {:>10} {:>12} {:>12}",
        "kind", "seed", "system", "violations", "verdict"
    );
    for trial in &outcome.matrix.trials {
        println!(
            "{:<12} {:>6} {:>10} {:>12} {:>12}",
            trial.spec.kind.name(),
            trial.spec.seed,
            trial.system.to_string(),
            trial.faulty_violations,
            if trial.system.uses_aos() {
                trial.verdict().to_string()
            } else {
                format!("{} (expected)", trial.verdict())
            },
        );
    }
    println!(
        "\ndetection rate {:.1}% over {} protected trials, {} false positives, {} failed cells",
        outcome.matrix.detection_rate() * 100.0,
        outcome.matrix.protected().count(),
        outcome.matrix.false_positives(),
        outcome.report.failed(),
    );
    println!(
        "\nstatic cross-check (aos-lint): clean trace raised {} diagnostic(s)",
        outcome.lint.clean_diagnostics
    );
    for check in &outcome.lint.kinds {
        println!(
            "{:<12} {:<14} {}/{} seeds flagged{}{}",
            check.kind.name(),
            check.classification().to_string(),
            check.flagged,
            check.seeds,
            if check.rules.is_empty() { "" } else { "; rules: " },
            check.rules.join(", "),
        );
    }
    // The AOS rows above *are* the first policy cross-check; any
    // extra `--policy` entries get their own blocks.
    for check in outcome.policies.iter().filter(|c| c.policy != Policy::Aos) {
        println!(
            "\npolicy cross-check ({}): clean trace raised {} diagnostic(s)",
            check.policy.name(),
            check.clean_diagnostics
        );
        for k in &check.kinds {
            println!(
                "{:<12} {:<14} {}/{} seeds flagged{}{}",
                k.kind.name(),
                k.classification().to_string(),
                k.flagged,
                k.seeds,
                if k.rules.is_empty() { "" } else { "; rules: " },
                k.rules.join(", "),
            );
        }
    }
    if telemetry {
        println!("\naggregate over all faulted cells:");
        print!("{}", outcome.report.telemetry().to_table());
    }
    if let Some(out) = parsed.flag("out") {
        outcome
            .report
            .write_json(out)
            .map_err(|e| format!("cannot write '{out}': {e}"))?;
        println!("report written to {out}");
    }
    if strict
        && (!outcome.matrix.is_sound()
            || outcome.report.failed() > 0
            || !outcome.lint.is_consistent()
            || !outcome.lint.matches_pinned_split()
            || outcome.policies.iter().any(|p| !p.matches_pinned_split()))
    {
        let policy_json: Vec<String> = outcome
            .policies
            .iter()
            .map(|p| p.to_json_value())
            .collect();
        return Err(CliError::Findings(format!(
            "strict fault gate failed: {} {} [{}]",
            outcome.matrix.to_json_value(),
            outcome.lint.to_json_value(),
            policy_json.join(", ")
        )));
    }
    Ok(())
}

/// `aos fuzz [--workload w] [--scale f] [--seed n] [--budget n]
/// [--max-chain n] [--corpus-out path] [--out path] [--json true]
/// [--telemetry true] [--replay-corpus path]`: the adversarial
/// scenario engine — seeded multi-step attack chains differentially
/// replayed through the static linter and the dynamic machine oracle
/// on all five systems.
///
/// Exit contract: 0 when every scenario lands exactly on its pinned
/// static/dynamic expectation (or a replayed corpus is verdict
/// stable), 1 on findings/instability, 2 on unusable invocations.
pub fn fuzz(args: &[String]) -> Result<(), CliError> {
    let parsed = Parsed::parse(args)?;
    let telemetry = if bool_flag(&parsed, "telemetry") {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    if let Some(path) = parsed.flag("replay-corpus") {
        let report = aos_fuzz::replay_corpus(path, &telemetry)
            .map_err(|e| CliError::Usage(e.to_string()))?;
        println!("== aos fuzz: replaying banked corpus {path} ==");
        for check in &report.checks {
            println!(
                "{:<40} {:>8} ops  {}",
                check.name,
                check.ops,
                if check.mismatches.is_empty() {
                    "stable".to_string()
                } else {
                    check.mismatches.join("; ")
                }
            );
        }
        if bool_flag(&parsed, "telemetry") {
            println!();
            print!("{}", telemetry.snapshot().to_table());
        }
        if !report.is_stable() {
            return Err(CliError::Findings(format!(
                "corpus replay unstable: {} mismatched verdict(s) across {} entries",
                report.mismatches(),
                report.checks.len()
            )));
        }
        return Ok(());
    }

    let workload = find_workload(parsed.flag("workload").unwrap_or("hmmer"))?;
    // Each scenario replays the trace once per system plus a lint
    // pass: default to the same small window the fault sweeps use.
    let scale = scale_or(&parsed, 0.004).map_err(|e| e.to_string())?;
    let budget: usize = parsed.flag_or("budget", 8usize)?;
    if budget == 0 {
        return Err("--budget must be at least 1".to_string().into());
    }
    let max_chain: usize = parsed.flag_or("max-chain", 3usize)?;
    if max_chain == 0 {
        return Err("--max-chain must be at least 1".to_string().into());
    }
    let config = aos_fuzz::FuzzConfig {
        workload: workload.name.to_string(),
        scale,
        seed: parsed.flag_or("seed", 1u64)?,
        budget,
        max_chain,
        corpus_out: parsed.flag("corpus-out").map(std::path::PathBuf::from),
        coverage_guided: bool_flag(&parsed, "coverage-guided"),
    };
    println!(
        "fuzz: {} at scale {scale}, seed {}, {budget} scenario(s), chains up to {max_chain} step(s)",
        workload.name, config.seed
    );
    let report = aos_fuzz::run_fuzz(&config, &telemetry).map_err(|e| e.to_string())?;

    if bool_flag(&parsed, "json") {
        print!("{}", report.to_json());
    } else {
        println!(
            "{:<34} {:<30} {:>6} {:>8} {:>9}",
            "scenario", "steps", "lint", "aos", "findings"
        );
        for o in &report.outcomes {
            let aos_delta = o
                .systems
                .iter()
                .find(|v| v.system == SafetyConfig::Aos)
                .map(|v| v.delta())
                .unwrap_or(0);
            println!(
                "{:<34} {:<30} {:>6} {:>8} {:>9}",
                o.scenario,
                o.steps.join("+"),
                o.lint_diagnostics,
                format!("+{aos_delta}"),
                o.findings.len()
            );
        }
        for o in &report.outcomes {
            for f in &o.findings {
                println!("finding: {f}");
            }
        }
        for (id, error) in &report.planning_failures {
            println!("skipped {id}: {error}");
        }
        println!(
            "\n{} scenario(s), {} finding(s), digest {:016x}",
            report.outcomes.len(),
            report.findings(),
            report.digest()
        );
        println!(
            "coverage: {} point(s), fingerprint {:016x}{}",
            report.coverage.len(),
            report.coverage.fingerprint(),
            if report.coverage_guided {
                " (guided scheduling)"
            } else {
                ""
            }
        );
        if let Some(corpus) = &report.corpus {
            println!("banked {} finding stream(s) to {corpus}", report.banked);
        }
        if bool_flag(&parsed, "telemetry") {
            println!();
            print!("{}", telemetry.snapshot().to_table());
        }
    }
    if let Some(out) = parsed.flag("out") {
        std::fs::write(out, report.to_json())
            .map_err(|e| format!("cannot write '{out}': {e}"))?;
        println!("report written to {out}");
    }
    if report.findings() > 0 {
        return Err(CliError::Findings(format!(
            "fuzz gate failed: {} finding(s) across {} scenario(s)",
            report.findings(),
            report.outcomes.len()
        )));
    }
    Ok(())
}

/// `aos lint [--workload w] [--system s] [--scale f] [--fault kind]
/// [--seed n] [--json true] [--strict false] [--telemetry true]`:
/// statically verify a generated op stream against the Fig. 7 /
/// Algorithm 1 instrumentation protocol without running a machine.
///
/// Strict is the *default* (the linter is a gate): any finding exits
/// 1; pass `--strict false` to always exit 0 on a completed scan.
pub fn lint(args: &[String]) -> Result<(), CliError> {
    let parsed = Parsed::parse(args)?;
    let workload = find_workload(parsed.flag("workload").unwrap_or("hmmer"))?;
    // Lint scans only generate the trace (no machine): small default
    // window, validated exactly like the other subcommands.
    let scale = scale_or(&parsed, 0.004).map_err(|e| e.to_string())?;
    let system = parse_system(parsed.flag("system").unwrap_or("aos"))?;
    let strict = parsed.flag("strict").is_none_or(|v| v != "false");
    let telemetry = if bool_flag(&parsed, "telemetry") {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let layout = PointerLayout::default();
    let stream = || TraceGenerator::new(workload, system, scale);
    let policies = parse_policies(&parsed)?;

    // `--policy` beyond the AOS default switches to the matrix scan:
    // the same stream (clean or faulted) through every requested
    // policy in one pass, rendered as a one-row detection matrix. The
    // default path below stays byte-identical to the pre-framework
    // linter.
    if policies != [Policy::Aos] {
        let (seeds, subject, description, reports) = match parsed.flag("fault") {
            None => (
                Vec::new(),
                "clean".to_string(),
                None,
                MatrixScan::run(&policies, stream(), layout, &telemetry),
            ),
            Some(kind) => {
                if !system.uses_aos() {
                    return Err(format!(
                        "--fault needs an instrumented stream, but system '{system}' \
                         carries no AOS protocol ops; use --system aos or pa+aos"
                    )
                    .into());
                }
                let kind = FaultKind::parse(kind).map_err(|e| e.to_string())?;
                let seed: u64 = parsed.flag_or("seed", 1u64)?;
                let plan = plan_fault(stream(), layout, FaultSpec { kind, seed })
                    .map_err(|e| e.to_string())?;
                let reports =
                    MatrixScan::run(&policies, plan.apply(stream()), layout, &telemetry);
                (
                    vec![seed],
                    kind.name().to_string(),
                    Some(plan.description.clone()),
                    reports,
                )
            }
        };
        let mut matrix = MatrixReport::new(workload.name, scale, seeds, policies);
        matrix.absorb(&subject, &reports);
        if bool_flag(&parsed, "json") {
            print!("{}", matrix.to_json());
        } else {
            println!(
                "== aos-lint matrix: {} on {system} @ scale {scale} ==",
                workload.name
            );
            if let Some(description) = description {
                println!("injected: {description}");
            }
            print!("{}", matrix.to_table());
            if bool_flag(&parsed, "telemetry") {
                println!();
                print!("{}", telemetry.snapshot().to_table());
            }
        }
        let entry = &matrix.entries[0];
        let total: u64 = (0..matrix.policies.len()).map(|p| entry.diagnostics(p)).sum();
        if strict && total > 0 {
            return Err(CliError::Findings(format!(
                "lint gate failed: {total} finding(s) across {} policies",
                matrix.policies.len()
            )));
        }
        return Ok(());
    }

    let (report, faulted) = match parsed.flag("fault") {
        None => (lint_stream_metered(stream(), layout, &telemetry), None),
        Some(kind) => {
            if !system.uses_aos() {
                return Err(format!(
                    "--fault needs an instrumented stream, but system '{system}' \
                     carries no AOS protocol ops; use --system aos or pa+aos"
                )
                .into());
            }
            let kind = FaultKind::parse(kind).map_err(|e| e.to_string())?;
            let seed: u64 = parsed.flag_or("seed", 1u64)?;
            let plan = plan_fault(stream(), layout, FaultSpec { kind, seed })
                .map_err(|e| e.to_string())?;
            let report = lint_stream_metered(plan.apply(stream()), layout, &telemetry);
            (report, Some(plan.description.clone()))
        }
    };

    if bool_flag(&parsed, "json") {
        print!("{}", report.to_json());
    } else {
        println!(
            "== aos-lint: {} on {system} @ scale {scale} ==",
            workload.name
        );
        if let Some(description) = faulted {
            println!("injected: {description}");
        }
        print!("{}", report.to_table());
        if bool_flag(&parsed, "telemetry") {
            println!();
            print!("{}", telemetry.snapshot().to_table());
        }
    }
    if strict && !report.clean() {
        return Err(CliError::Findings(format!(
            "lint gate failed: {} finding(s) ({} error(s), {} warning(s))",
            report.total_diagnostics(),
            report.errors(),
            report.warnings()
        )));
    }
    Ok(())
}

/// `aos matrix [--workload w] [--scale f] [--seeds n]
/// [--policy <p|all>] [--kinds k1,k2,..] [--json true] [--out path]
/// [--telemetry true]`: the cross-paper detection matrix — a clean
/// reference row plus every requested fault kind, injected under
/// every seed and scanned through all requested static policies in
/// one streaming pass per stream (`aos-lint-matrix/v1`).
///
/// The clean row is a false-positive gate: any policy that flags the
/// uninjected instrumented trace is a real finding (exit 1).
pub fn matrix_cmd(args: &[String]) -> Result<(), CliError> {
    let parsed = Parsed::parse(args)?;
    let workload = find_workload(parsed.flag("workload").unwrap_or("hmmer"))?;
    // Each (kind, seed) cell replays the generated trace once:
    // default to the fault sweep's small window.
    let scale = scale_or(&parsed, 0.004).map_err(|e| e.to_string())?;
    let seed_count: u64 = parsed.flag_or("seeds", 3u64)?;
    if seed_count == 0 {
        return Err("--seeds must be at least 1".to_string().into());
    }
    // The matrix exists to cross policies: default to all of them
    // (unlike `lint`/`faults`, whose default is the paper's AOS).
    let policies = match parsed.flag("policy") {
        None => Policy::ALL.to_vec(),
        Some(_) => parse_policies(&parsed)?,
    };
    let kinds = match parsed.flag("kinds") {
        None => FaultKind::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(|k| FaultKind::parse(k.trim()).map_err(|e| e.to_string()))
            .collect::<Result<Vec<_>, _>>()?,
    };
    let telemetry = if bool_flag(&parsed, "telemetry") {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let layout = PointerLayout::default();
    let stream = || TraceGenerator::new(workload, SafetyConfig::Aos, scale);
    let seeds: Vec<u64> = (1..=seed_count).collect();

    let mut matrix = MatrixReport::new(workload.name, scale, seeds.clone(), policies.clone());
    matrix.absorb(
        "clean",
        &MatrixScan::run(&policies, stream(), layout, &telemetry),
    );
    for &kind in &kinds {
        for &seed in &seeds {
            let plan = plan_fault(stream(), layout, FaultSpec { kind, seed })
                .map_err(|e| e.to_string())?;
            let reports = MatrixScan::run(&policies, plan.apply(stream()), layout, &telemetry);
            matrix.absorb(kind.name(), &reports);
        }
    }

    if bool_flag(&parsed, "json") {
        print!("{}", matrix.to_json());
    } else {
        print!("{}", matrix.to_table());
        if bool_flag(&parsed, "telemetry") {
            println!();
            print!("{}", telemetry.snapshot().to_table());
        }
    }
    if let Some(out) = parsed.flag("out") {
        std::fs::write(out, matrix.to_json())
            .map_err(|e| format!("cannot write '{out}': {e}"))?;
        println!("report written to {out}");
    }

    let clean = matrix.entry("clean").expect("clean row always absorbed");
    let noisy: Vec<&str> = matrix
        .policies
        .iter()
        .enumerate()
        .filter(|(p, _)| clean.detected(*p))
        .map(|(_, policy)| policy.name())
        .collect();
    if !noisy.is_empty() {
        return Err(CliError::Findings(format!(
            "matrix gate failed: {} polic{} flagged the clean trace ({})",
            noisy.len(),
            if noisy.len() == 1 { "y" } else { "ies" },
            noisy.join(", ")
        )));
    }
    Ok(())
}

/// `aos table <n>`.
pub fn table(args: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(args)?;
    let which = parsed
        .positional(0)
        .ok_or_else(|| "table requires a number (1-4)".to_string())?;
    let scale = scale(&parsed)?;
    let text = match which {
        "1" => reports::table1(),
        "2" => reports::table2(scale),
        "3" => reports::table3(scale),
        "4" => reports::table4(),
        other => return Err(format!("no table '{other}' (1-4)")),
    };
    print!("{text}");
    Ok(())
}

/// `aos fig <n>`.
pub fn fig(args: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(args)?;
    let which = parsed
        .positional(0)
        .ok_or_else(|| "fig requires a number (11, 14-18)".to_string())?;
    let scale = scale(&parsed)?;
    let text = match which {
        "11" => reports::fig11(scale),
        "14" => reports::fig14(scale),
        "15" => reports::fig15(scale),
        "16" => reports::fig16(scale),
        "17" => reports::fig17(scale),
        "18" => reports::fig18(scale),
        other => return Err(format!("no figure '{other}' (11, 14, 15, 16, 17, 18)")),
    };
    print!("{text}");
    Ok(())
}

/// `aos pac [--allocations n] [--bits b] [--live n]`.
pub fn pac(args: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(args)?;
    let allocations: u64 = parsed.flag_or("allocations", 1_000_000)?;
    let bits: u32 = parsed.flag_or("bits", 16)?;
    if !(11..=24).contains(&bits) {
        return Err(format!("--bits must be 11..=24, got {bits}"));
    }
    let histogram = pac_distribution(allocations, bits);
    println!(
        "{} allocations over {}-bit PACs: {}",
        allocations,
        bits,
        histogram.occupancy_summary()
    );
    if let Some(live) = parsed.flag("live") {
        let live: u64 = live
            .parse()
            .map_err(|_| format!("--live got unparsable value '{live}'"))?;
        let s = collisions::study(live, bits);
        let expected = collisions::expected_overflowing_rows(live, bits, 8);
        println!(
            "
collision study for {live} simultaneously-live chunks (paper §VI):"
        );
        println!("  mean row occupancy  {:.3}", s.mean_row_occupancy);
        println!("  max row occupancy   {}", s.max_row_occupancy);
        println!(
            "  rows over 8 records {} (Poisson model expects {expected:.2})",
            s.rows_over_initial_capacity
        );
        println!("  implied HBT resizes {}", s.implied_resizes);
    }
    Ok(())
}

/// `aos trace <workload> [--system s] [--scale f] --out <path>`.
pub fn trace(args: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(args)?;
    let name = parsed
        .positional(0)
        .ok_or_else(|| "trace requires a workload name".to_string())?;
    let workload = find_workload(name)?;
    let system = parse_system(parsed.flag("system").unwrap_or("aos"))?;
    let scale = scale(&parsed)?;
    let out = parsed
        .flag("out")
        .ok_or_else(|| "trace requires --out <path>".to_string())?;
    let generator = aos_core::workloads::TraceGenerator::new(workload, system, scale);
    let file = std::fs::File::create(out)
        .map_err(|e| format!("cannot create '{out}': {e}"))?;
    let metadata = format!("workload={name} system={system} scale={scale}");
    let count = aos_core::isa::codec::write_trace(
        std::io::BufWriter::new(file),
        &metadata,
        generator,
    )
    .map_err(|e| format!("write failed: {e}"))?;
    println!("wrote {count} ops to {out} ({metadata})");
    Ok(())
}

/// `aos replay <path> [--system s]`.
pub fn replay(args: &[String]) -> Result<(), String> {
    let parsed = Parsed::parse(args)?;
    let path = parsed
        .positional(0)
        .ok_or_else(|| "replay requires a trace path".to_string())?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open '{path}': {e}"))?;
    let (metadata, ops) = aos_core::isa::codec::read_trace(std::io::BufReader::new(file))
        .map_err(|e| format!("bad trace: {e}"))?;
    // The machine config defaults to the system named in the metadata;
    // --system overrides (e.g. replay an AOS trace on a
    // no-optimizations machine).
    let system = match parsed.flag("system") {
        Some(s) => parse_system(s)?,
        None => metadata
            .split_whitespace()
            .find_map(|kv| kv.strip_prefix("system="))
            .map(parse_system)
            .transpose()?
            .unwrap_or(SafetyConfig::Aos),
    };
    let mut machine =
        aos_core::sim::Machine::new(SystemUnderTest::standard(system).machine_config());
    let stats = machine.run(ops);
    println!("replayed '{metadata}' on a {system} machine:");
    println!("cycles {:>12}   ops {:>10}   ipc {:.3}", stats.cycles, stats.retired_ops, stats.ipc());
    println!(
        "violations {} resizes {} traffic {} B",
        stats.violations,
        stats.hbt_resizes,
        stats.traffic.total_bytes()
    );
    Ok(())
}

/// `aos params`.
pub fn params() -> Result<(), String> {
    print!("{}", reports::table4());
    Ok(())
}

/// `aos workloads`.
pub fn workloads() -> Result<(), String> {
    println!("SPEC CPU 2006 models (Table II):");
    for p in SPEC2006 {
        println!(
            "  {:<12} {:>9} allocs, {:>8} max live, {:>3.0}% heap accesses",
            p.name,
            p.full_allocations,
            p.full_max_active,
            p.heap_fraction * 100.0
        );
    }
    println!("real-world models (Table III):");
    for p in REAL_WORLD {
        println!(
            "  {:<12} {:>9} allocs, {:>8} max live",
            p.name, p.full_allocations, p.full_max_active
        );
    }
    Ok(())
}

/// `aos serve [--socket <path>] [--queue <n>] [--workers <n>]
/// [--timeout-ms <n>] [--retries <n>] [--backoff-ms <n>]
/// [--retry-after-ms <n>] [--test-jobs true] [--telemetry true]`.
pub fn serve(args: &[String]) -> Result<(), CliError> {
    let parsed = Parsed::parse(args).map_err(CliError::Usage)?;
    let telemetry_on = bool_flag(&parsed, "telemetry");
    let telemetry = if telemetry_on {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    let options = aos_serve::ServeOptions {
        queue_capacity: match parsed.flag_or("queue", 16usize)? {
            0 => return Err(CliError::Usage("--queue must be at least 1".into())),
            n => n,
        },
        workers: match parsed.flag_or("workers", 2usize)? {
            0 => return Err(CliError::Usage("--workers must be at least 1".into())),
            n => n,
        },
        job_timeout: match parsed.flag_or("timeout-ms", 30_000u64)? {
            0 => None, // 0 disables the per-job deadline
            ms => Some(Duration::from_millis(ms)),
        },
        retries: parsed.flag_or("retries", 1u32)?,
        backoff_base: Duration::from_millis(parsed.flag_or("backoff-ms", 50u64)?),
        retry_after_ms: parsed.flag_or("retry-after-ms", 25u64)?,
        test_jobs: bool_flag(&parsed, "test-jobs"),
        telemetry: telemetry.clone(),
    };
    let summary = match parsed.flag("socket") {
        #[cfg(unix)]
        Some(path) => aos_serve::serve_unix(std::path::Path::new(path), &options),
        #[cfg(not(unix))]
        Some(_) => {
            return Err(CliError::Usage(
                "--socket requires a Unix platform; use stdio mode".into(),
            ))
        }
        None => aos_serve::serve(std::io::stdin().lock(), std::io::stdout(), &options),
    }
    .map_err(|e| CliError::Usage(e.to_string()))?;
    // The session report goes to stderr: stdout is the protocol
    // stream.
    eprintln!(
        "aos-serve session: {} accepted, {} ok, {} failed ({} timed out, {} panicked), {} rejected, {} retries",
        summary.accepted,
        summary.succeeded,
        summary.failed,
        summary.timed_out,
        summary.panicked,
        summary.rejected,
        summary.retried,
    );
    if telemetry_on {
        let snap = telemetry.snapshot();
        for counter in Counter::ALL {
            let value = snap.counter(counter);
            if value > 0 {
                eprintln!("  {:<24} {value}", counter.name());
            }
        }
        eprintln!("  {:<24} {}", Gauge::ServeQueueDepth.name(), snap.gauge(Gauge::ServeQueueDepth));
    }
    Ok(())
}

fn corpus_out_flag<'a>(parsed: &'a Parsed, name: &str) -> Result<&'a str, CliError> {
    parsed
        .flag(name)
        .ok_or_else(|| CliError::Usage(format!("corpus requires --{name} <value>")))
}

/// `aos corpus record|replay|verify …` — manage persistent
/// CRC-checked trace corpora. Subcommand shapes:
///
/// ```text
/// aos corpus record --out <path> --workloads <w1,w2,..>
///        [--systems <s1,s2,..>] [--scale <f>]
/// aos corpus replay <path> --entry <name> [--mode sim|lint]
/// aos corpus verify <path>
/// ```
pub fn corpus(args: &[String]) -> Result<(), CliError> {
    let parsed = Parsed::parse(args).map_err(CliError::Usage)?;
    let action = parsed
        .positional(0)
        .ok_or_else(|| CliError::Usage("corpus requires record, replay or verify".into()))?;
    // The CLI is single-threaded, so the corpus layer can record
    // telemetry live (unlike the service's concurrent workers).
    let telemetry = if bool_flag(&parsed, "telemetry") {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };
    match action {
        "record" => {
            let out = corpus_out_flag(&parsed, "out")?;
            let workloads: Vec<String> = corpus_out_flag(&parsed, "workloads")?
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(str::to_string)
                .collect();
            for name in &workloads {
                find_workload(name).map_err(CliError::Usage)?;
            }
            let systems = aos_serve::parse_systems(parsed.flag("systems").unwrap_or("aos"))
                .map_err(|e| CliError::Usage(e.to_string()))?;
            let spec = aos_serve::JobSpec::CorpusRecord {
                path: out.to_string(),
                workloads,
                systems,
                scale: scale(&parsed).map_err(CliError::Usage)?,
            };
            let result =
                aos_serve::execute(&spec, &telemetry).map_err(|e| CliError::Usage(e.to_string()))?;
            println!("{result}");
            Ok(())
        }
        "replay" => {
            let path = parsed
                .positional(1)
                .ok_or_else(|| CliError::Usage("replay requires a corpus path".into()))?;
            let entry = corpus_out_flag(&parsed, "entry")?;
            let mode = match parsed.flag("mode").unwrap_or("sim") {
                "sim" => aos_serve::ReplayMode::Sim,
                "lint" => aos_serve::ReplayMode::Lint,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown mode '{other}' (sim, lint)"
                    )))
                }
            };
            let spec = aos_serve::JobSpec::CorpusReplay {
                path: path.to_string(),
                entry: entry.to_string(),
                mode,
            };
            match aos_serve::execute(&spec, &telemetry) {
                Ok(result) => {
                    println!("{result}");
                    Ok(())
                }
                // A CRC quarantine is a finding: the gate ran and the
                // stored corpus failed it.
                Err(e @ aos_util::AosError::Corruption { .. }) => {
                    Err(CliError::Findings(e.to_string()))
                }
                Err(e) => Err(CliError::Usage(e.to_string())),
            }
        }
        "verify" => {
            let path = parsed
                .positional(1)
                .ok_or_else(|| CliError::Usage("verify requires a corpus path".into()))?;
            let reader = aos_core::isa::corpus::CorpusReader::open(path, telemetry)
                .map_err(|e| CliError::Usage(e.to_string()))?;
            let checks = reader.verify();
            let mut quarantined = 0usize;
            for check in &checks {
                match &check.status {
                    Ok(()) => println!(
                        "  ok          {:<24} {:>9} ops, {} blocks",
                        check.entry.name, check.entry.op_count, check.entry.block_count
                    ),
                    Err(e) => {
                        quarantined += 1;
                        println!("  QUARANTINED {:<24} {e}", check.entry.name);
                    }
                }
            }
            if quarantined > 0 {
                Err(CliError::Findings(format!(
                    "{quarantined} of {} corpus entries quarantined",
                    checks.len()
                )))
            } else {
                println!("{} entries verified clean", checks.len());
                Ok(())
            }
        }
        other => Err(CliError::Usage(format!(
            "unknown corpus action '{other}' (record, replay, verify)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_names_parse() {
        assert_eq!(parse_system("baseline").unwrap(), SafetyConfig::Baseline);
        assert_eq!(parse_system("PA+AOS").unwrap(), SafetyConfig::PaAos);
        assert!(parse_system("mpx").is_err());
    }

    #[test]
    fn workload_lookup_reports_candidates() {
        assert!(find_workload("gcc").is_ok());
        let err = find_workload("doom").unwrap_err();
        assert!(err.contains("omnetpp"));
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let p = profile::by_name("mcf").unwrap();
        let stats = run_experiment(p, &SystemUnderTest::scaled(SafetyConfig::Aos, 0.005));
        let json = stats_json("mcf", SafetyConfig::Aos, &stats);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"workload\":\"mcf\""));
        assert!(json.contains("\"cycles\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn campaign_flags_parse() {
        let p = Parsed::parse(&["--threads".into(), "2".into()]).unwrap();
        assert_eq!(campaign_options(&p).unwrap().threads, Some(2));
        let zero = Parsed::parse(&["--threads".into(), "0".into()]).unwrap();
        assert!(campaign_options(&zero).is_err());
        assert!(campaign(&["--suite".into(), "mystery".into()]).is_err());
    }

    #[test]
    fn commands_reject_degenerate_scale() {
        let bad = |v: &str| vec!["mcf".to_string(), "--scale".to_string(), v.to_string()];
        for v in ["0", "-1", "NaN", "2.0"] {
            assert!(run(&bad(v)).is_err(), "run --scale {v}");
            assert!(compare(&bad(v)).is_err(), "compare --scale {v}");
            assert!(
                faults(&["--scale".to_string(), v.to_string()]).is_err(),
                "faults --scale {v}"
            );
            // Non-positive / degenerate scales are usage errors (exit
            // 2), not findings — the scan never ran.
            assert!(
                matches!(
                    lint(&["--scale".to_string(), v.to_string()]),
                    Err(CliError::Usage(_))
                ),
                "lint --scale {v}"
            );
        }
    }

    #[test]
    fn lint_gate_separates_findings_from_usage_errors() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // A clean generated trace passes the strict-by-default gate.
        assert!(lint(&args(&["--scale", "0.002"])).is_ok());
        // An injected protocol break is a finding (exit 1) ...
        assert!(matches!(
            lint(&args(&["--fault", "double-free"])),
            Err(CliError::Findings(_))
        ));
        // ... unless the gate is waived.
        assert!(lint(&args(&["--fault", "double-free", "--strict", "false"])).is_ok());
        // Spatial faults are dynamic-only: clean lint even when faulted.
        assert!(lint(&args(&["--fault", "overflow"])).is_ok());
        // Faulting an uninstrumented stream cannot work: usage error.
        assert!(matches!(
            lint(&args(&["--system", "baseline", "--fault", "uaf"])),
            Err(CliError::Usage(_))
        ));
        // Unknown fault kinds are usage errors too.
        assert!(matches!(
            lint(&args(&["--fault", "rowhammer"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn usage_documents_the_exit_code_contract() {
        let text = usage();
        assert!(text.contains("EXIT CODES"));
        assert!(text.contains("aos lint"));
        // The service and corpus surfaces are documented, flags and all.
        assert!(text.contains("aos serve"));
        assert!(text.contains("--retry-after-ms"));
        assert!(text.contains("--test-jobs"));
        assert!(text.contains("aos corpus record"));
        assert!(text.contains("aos corpus replay"));
        assert!(text.contains("aos corpus verify"));
        assert!(text.contains("--entry"));
        assert!(text.contains("--mode sim|lint"));
        // The geometry sweep is documented, axes and model flag
        // included.
        assert!(text.contains("aos ablate"));
        assert!(text.contains("--mcq"));
        assert!(text.contains("--bwb"));
        assert!(text.contains("--model stage|approximate"));
        // The multi-policy surface is documented: the matrix command,
        // the --policy flag, the policy roster, and guided fuzzing.
        assert!(text.contains("aos matrix"));
        assert!(text.contains("--policy <p|all>"));
        assert!(text.contains("POLICIES"));
        assert!(text.contains("--coverage-guided"));
    }

    #[test]
    fn policy_flags_honor_the_usage_contract() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // Unknown policies are usage errors everywhere the flag exists.
        assert!(matches!(
            lint(&args(&["--policy", "memtagger"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            matrix_cmd(&args(&["--policy", "memtagger"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            faults(&args(&["--policy", "memtagger"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            matrix_cmd(&args(&["--seeds", "0"])),
            Err(CliError::Usage(_))
        ));
        // A clean instrumented trace scans clean under every policy.
        assert!(lint(&args(&["--scale", "0.002", "--policy", "all"])).is_ok());
        // The UAF split of the detection matrix: CryptSan's revoked
        // key catches what PACSan's size-0 re-sign launders away.
        assert!(matches!(
            lint(&args(&["--fault", "uaf", "--policy", "cryptsan"])),
            Err(CliError::Findings(_))
        ));
        assert!(lint(&args(&["--fault", "uaf", "--policy", "pacsan"])).is_ok());
        // A small matrix sweep passes its clean-row gate end to end.
        assert!(matrix_cmd(&args(&[
            "--scale", "0.002", "--seeds", "1", "--kinds", "uaf,pac-tamper",
        ]))
        .is_ok());
    }

    #[test]
    fn ablate_exit_code_contract() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // Usage errors: bad axes, bad model, non-AOS system.
        for bad in [
            &["--mcq", "0"][..],
            &["--mcq", "twelve"],
            &["--bwb", "64,"],
            &["--model", "rtl"],
            &["--system", "baseline"],
            &["--workload", "doom"],
        ] {
            assert!(
                matches!(ablate(&args(bad)), Err(CliError::Usage(_))),
                "aos ablate {bad:?} must be a usage error"
            );
        }
        // A tiny benign sweep (including the Table IV reference point)
        // runs clean: geometry affects timing, never detection.
        assert!(ablate(&args(&[
            "--scale", "0.002", "--mcq", "24,48", "--bwb", "64",
        ]))
        .is_ok());
        // The legacy model is reachable for A/B sweeps.
        assert!(ablate(&args(&[
            "--scale", "0.002", "--mcq", "48", "--bwb", "64", "--model", "approximate",
        ]))
        .is_ok());
    }

    #[test]
    fn serve_flags_honor_the_usage_contract() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        for bad in [
            &["--queue", "0"][..],
            &["--workers", "0"],
            &["--queue", "lots"],
            &["--timeout-ms", "soon"],
        ] {
            assert!(
                matches!(serve(&args(bad)), Err(CliError::Usage(_))),
                "aos serve {bad:?} must be a usage error"
            );
        }
    }

    #[test]
    fn corpus_exit_code_contract() {
        let args = |list: &[&str]| list.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        let dir = std::env::temp_dir().join("aos-cli-corpus-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("contract.aosc");
        let path_str = path.display().to_string();
        std::fs::remove_file(&path).ok();

        // Usage errors: missing required flags / unknown values.
        assert!(matches!(corpus(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            corpus(&args(&["destroy"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            corpus(&args(&["record", "--out", &path_str])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            corpus(&args(&[
                "record",
                "--out",
                &path_str,
                "--workloads",
                "doom"
            ])),
            Err(CliError::Usage(_))
        ));

        // A clean record → replay → verify chain exits 0 throughout.
        corpus(&args(&[
            "record",
            "--out",
            &path_str,
            "--workloads",
            "mcf",
            "--systems",
            "baseline",
            "--scale",
            "0.004",
        ]))
        .expect("record");
        corpus(&args(&["replay", &path_str, "--entry", "mcf-baseline"])).expect("replay");
        corpus(&args(&["verify", &path_str])).expect("verify");
        assert!(matches!(
            corpus(&args(&["replay", &path_str, "--entry", "nonesuch"])),
            Err(CliError::Usage(_))
        ));

        // Corrupt the stored block: replay and verify become findings
        // (exit 1), not usage errors and not crashes.
        let offset = aos_core::isa::corpus::CorpusReader::open(&path, Telemetry::disabled())
            .expect("open")
            .entries()[0]
            .offset;
        aos_fault::corpus::flip_block_bit(&path, offset, 0, 99).expect("inject");
        assert!(matches!(
            corpus(&args(&["replay", &path_str, "--entry", "mcf-baseline"])),
            Err(CliError::Findings(_))
        ));
        assert!(matches!(
            corpus(&args(&["verify", &path_str])),
            Err(CliError::Findings(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fast_commands_succeed() {
        assert!(params().is_ok());
        assert!(workloads().is_ok());
        assert!(pac(&["--allocations".into(), "2000".into()]).is_ok());
        assert!(pac(&["--bits".into(), "40".into()]).is_err());
        assert!(table(&["4".into()]).is_ok());
        assert!(table(&["9".into()]).is_err());
        assert!(fig(&["99".into()]).is_err());
    }
}
