//! Tiny flag parser for the CLI (`--name value` pairs plus
//! positionals); hand-rolled to keep the dependency set minimal.

use aos_util::AosError;

/// Parsed arguments: positionals in order, flags as `(name, value)`.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Parsed {
    positionals: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Parsed {
    /// Parses `argv`. Every `--flag` must be followed by a value.
    ///
    /// # Errors
    ///
    /// Returns a message when a flag has no value.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut parsed = Parsed::default();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{name} requires a value"))?;
                parsed.flags.push((name.to_string(), value.clone()));
            } else {
                parsed.positionals.push(arg.clone());
            }
        }
        Ok(parsed)
    }

    /// The n-th positional argument.
    pub fn positional(&self, index: usize) -> Option<&str> {
        self.positionals.get(index).map(String::as_str)
    }

    /// A flag's raw value.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// A flag parsed to a type, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns a message when the value does not parse.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} got unparsable value '{v}'")),
        }
    }
}

/// Parses and validates a `--scale` flag (default 1.0).
///
/// # Errors
///
/// [`AosError::InvalidInput`] for an unparsable, NaN, non-positive or
/// > 1.0 value — a silent pass-through would generate an empty or
/// runaway trace downstream.
pub fn scale(parsed: &Parsed) -> Result<f64, AosError> {
    scale_or(parsed, 1.0)
}

/// [`scale`] with a caller-chosen default (e.g. `aos faults` uses a
/// small window because each sweep replays the trace many times).
pub fn scale_or(parsed: &Parsed, default: f64) -> Result<f64, AosError> {
    let s: f64 = parsed
        .flag_or("scale", default)
        .map_err(|e| AosError::invalid_input("--scale", e))?;
    if s.is_nan() {
        return Err(AosError::invalid_input("--scale", "NaN is not a scale"));
    }
    if s > 0.0 && s <= 1.0 {
        Ok(s)
    } else {
        Err(AosError::invalid_input(
            "--scale",
            format!("must be in (0, 1], got {s}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positionals_and_flags() {
        let p = Parsed::parse(&argv(&["gcc", "--scale", "0.5", "--system", "aos"])).unwrap();
        assert_eq!(p.positional(0), Some("gcc"));
        assert_eq!(p.flag("scale"), Some("0.5"));
        assert_eq!(p.flag("system"), Some("aos"));
        assert_eq!(p.positional(1), None);
        assert_eq!(p.flag("missing"), None);
    }

    #[test]
    fn flag_requires_value() {
        assert!(Parsed::parse(&argv(&["--scale"])).is_err());
    }

    #[test]
    fn flag_or_defaults_and_parses() {
        let p = Parsed::parse(&argv(&["--n", "42"])).unwrap();
        assert_eq!(p.flag_or("n", 0u64).unwrap(), 42);
        assert_eq!(p.flag_or("m", 7u64).unwrap(), 7);
        assert!(p.flag_or::<u64>("n", 0).is_ok());
        let bad = Parsed::parse(&argv(&["--n", "x"])).unwrap();
        assert!(bad.flag_or::<u64>("n", 0).is_err());
    }

    #[test]
    fn scale_bounds() {
        let ok = Parsed::parse(&argv(&["--scale", "0.25"])).unwrap();
        assert_eq!(scale(&ok).unwrap(), 0.25);
        let bad = Parsed::parse(&argv(&["--scale", "2.0"])).unwrap();
        assert!(scale(&bad).is_err());
        let none = Parsed::parse(&argv(&[])).unwrap();
        assert_eq!(scale(&none).unwrap(), 1.0);
        assert_eq!(scale_or(&none, 0.004).unwrap(), 0.004);
    }

    #[test]
    fn degenerate_scales_are_typed_errors() {
        for bad in ["0", "-0.5", "NaN", "inf", "bogus"] {
            let p = Parsed::parse(&argv(&["--scale", bad])).unwrap();
            let err = scale(&p).unwrap_err();
            assert!(
                matches!(err, AosError::InvalidInput { .. }),
                "--scale {bad} must be InvalidInput, got {err}"
            );
        }
    }
}
