//! Property tests for the out-of-order stage structures: the LSQ's
//! store→load forwarding path checked against an independent per-byte
//! last-writer memory model, and ROB squash + RAT rollback checked to
//! restore the exact pre-dispatch rename state for arbitrary flush
//! points.
//!
//! Scripts are drawn from the shared `aos_isa::strategy::action_script`
//! generator, interpreted here against the pipeline structures.

use proptest::prelude::*;

use aos_isa::strategy::action_script;
use aos_isa::Op;
use aos_sim::pipeline::lsq::{LoadPath, LoadStoreQueue, LsqEntry};
use aos_sim::pipeline::rename::{RegisterAliasTable, CHAIN_REG, LOGICAL_REGS};
use aos_sim::pipeline::rob::{ReorderBuffer, RobEntry};

/// Mirror of one in-flight store, kept by the reference model in the
/// same program order as the store queue.
#[derive(Debug, Clone, Copy)]
struct StoreRef {
    seq: u64,
    addr: u64,
    bytes: u32,
    dispatched_at: u64,
    data_ready_at: u64,
}

impl StoreRef {
    fn covers_byte(&self, byte: u64) -> bool {
        byte >= self.addr && byte < self.addr + u64::from(self.bytes)
    }
}

/// The independent forwarding oracle: per-byte last-writer semantics
/// over the mirrored store window. A load may forward exactly when
/// every byte it reads was last written by one and the same in-flight
/// store, that store resolved on an earlier cycle, and the forwarded
/// data is that store's — anything else must not be served from the
/// store queue as a whole (covered bytes force a replay, none force
/// the normal cache path).
fn expected_path(stores: &[StoreRef], addr: u64, bytes: u32, now: u64) -> LoadPath {
    let youngest_writer = |byte: u64| stores.iter().rev().find(|s| s.covers_byte(byte));
    let writers: Vec<Option<u64>> = (addr..addr + u64::from(bytes))
        .map(|byte| youngest_writer(byte).map(|s| s.seq))
        .collect();
    if writers.iter().all(Option::is_none) {
        return LoadPath::Normal;
    }
    if let [Some(first), rest @ ..] = writers.as_slice() {
        if rest.iter().all(|w| *w == Some(*first)) {
            let store = stores
                .iter()
                .find(|s| s.seq == *first)
                .expect("writer is in the window");
            if store.dispatched_at < now {
                return LoadPath::Forward {
                    data_ready_at: store.data_ready_at,
                };
            }
        }
    }
    LoadPath::Replay
}

const STORE_CAP: usize = 8;

proptest! {
    /// Store→load forwarding never yields stale or mixed data: across
    /// arbitrary interleavings of stores, loads, cycle advances,
    /// commits and squashes, every load classification agrees with the
    /// per-byte last-writer oracle, and the forward/replay counters
    /// ledger exactly the oracle's verdicts.
    #[test]
    fn store_to_load_forwarding_matches_the_last_writer_oracle(
        script in action_script(0u8..5, 0u64..64, 0u64..64, 1..160),
    ) {
        let mut lsq = LoadStoreQueue::new(STORE_CAP, STORE_CAP);
        let mut mirror: Vec<StoreRef> = Vec::new();
        let mut now: u64 = 0;
        let mut seq: u64 = 0;
        let (mut forwards, mut replays) = (0u64, 0u64);
        for (kind, a, b) in script {
            match kind {
                // Store dispatch: 16-byte-window addresses force
                // frequent overlap; widths 1/2/4/8 force partial cases.
                0 if !lsq.stores_full() => {
                    let entry = StoreRef {
                        seq,
                        addr: a % 48,
                        bytes: 1 << (b % 4),
                        dispatched_at: now,
                        data_ready_at: now + 1 + b % 3,
                    };
                    seq += 1;
                    lsq.push_store(LsqEntry {
                        seq: entry.seq,
                        addr: entry.addr,
                        bytes: entry.bytes,
                        dispatched_at: entry.dispatched_at,
                        data_ready_at: entry.data_ready_at,
                    });
                    mirror.push(entry);
                }
                // Load probe: classify against the window.
                1 => {
                    let (addr, bytes) = (a % 48, 1 << (b % 4));
                    let got = lsq.classify_load(addr, bytes, now);
                    let want = expected_path(&mirror, addr, bytes, now);
                    prop_assert_eq!(
                        got, want,
                        "load [{}..+{}) at cycle {} against {:?}",
                        addr, bytes, now, mirror
                    );
                    match want {
                        LoadPath::Forward { .. } => forwards += 1,
                        LoadPath::Replay => replays += 1,
                        LoadPath::Normal => {}
                    }
                }
                // Cycle advance: lets same-cycle stores resolve.
                2 => now += 1 + a % 3,
                // In-order commit of the oldest store.
                3 if !mirror.is_empty() => {
                    let oldest = mirror.remove(0);
                    lsq.release(oldest.seq, true);
                }
                // Flush: squash everything younger than a surviving
                // store (or than the newest seq — a no-op squash).
                _ => {
                    let cut = a as usize % (mirror.len() + 1);
                    let keep_seq = mirror.get(cut).map_or(seq, |s| s.seq);
                    lsq.squash_newer(keep_seq);
                    mirror.retain(|s| s.seq <= keep_seq);
                }
            }
            prop_assert_eq!(lsq.stores_len(), mirror.len(), "window drifted");
        }
        prop_assert_eq!(lsq.forwards, forwards);
        prop_assert_eq!(lsq.replays, replays);
    }

    /// A precise-exception flush is exact: for an arbitrary rename
    /// script and an arbitrary flush point, walking the ROB tail
    /// youngest-first and rolling back each squashed rename restores
    /// every logical register's mapping (observed through `ready_at`)
    /// and the free-list population to the pre-dispatch state — and
    /// committing the surviving prefix afterwards leaks no physical
    /// register.
    #[test]
    fn rob_squash_with_rat_rollback_restores_pre_dispatch_state(
        script in action_script(0u8..3, 0u64..512, 0u64..64, 1..48),
        cut in 0u64..48,
    ) {
        let mut rat = RegisterAliasTable::new(64);
        let mut rob = ReorderBuffer::new(64);
        let initial_free = rat.free_regs();
        let flush_at = cut as usize % (script.len() + 1);
        let mut snapshot: Option<(Vec<u64>, usize)> = None;
        let observe = |rat: &RegisterAliasTable| {
            (0..LOGICAL_REGS as u8).map(|r| rat.ready_at(r)).collect::<Vec<u64>>()
        };
        for (i, (kind, ready, _)) in script.iter().enumerate() {
            if i == flush_at {
                snapshot = Some((observe(&rat), rat.free_regs()));
            }
            let dest = match kind {
                0 => Some(rat.rename(CHAIN_REG, *ready)),
                1 => {
                    let scratch = rat.next_scratch();
                    Some(rat.rename(scratch, *ready))
                }
                _ => None,
            };
            rob.alloc(RobEntry {
                seq: 0, // assigned by alloc
                op: Op::IntAlu,
                complete_at: *ready,
                completed: false,
                faulted: false,
                mcq_id: None,
                is_load: false,
                is_store: false,
                dest,
            });
        }
        let (want_ready, want_free) = match snapshot {
            Some(s) => s,
            None => (observe(&rat), rat.free_regs()), // flush point at end
        };

        // Flush: squash everything at or after the flush point,
        // youngest first, undoing each rename.
        while rob.len() > flush_at {
            let squashed = rob.pop_tail().expect("tail exists while len > flush_at");
            if let Some(rename) = squashed.dest.as_ref() {
                rat.rollback(rename);
            }
        }
        prop_assert_eq!(observe(&rat), want_ready, "mapping not restored");
        prop_assert_eq!(rat.free_regs(), want_free, "free list not restored");

        // Retire the survivors; every overwritten register comes back.
        while !rob.is_empty() {
            let retired = rob.pop_head();
            if let Some(rename) = retired.dest.as_ref() {
                rat.commit(rename);
            }
        }
        prop_assert_eq!(rat.free_regs(), initial_free, "physical register leak");
    }
}
