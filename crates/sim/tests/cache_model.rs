//! Property tests for the cache model against a transparent reference
//! implementation (a map of sets to LRU-ordered tag lists).

use proptest::prelude::*;
use std::collections::HashMap;

use aos_sim::cache::Lookup;
use aos_sim::{Cache, CacheConfig};

/// A straightforward reference cache: per set, a vector of (tag,
/// dirty) in LRU order (most recent last).
struct ReferenceCache {
    sets: u64,
    ways: usize,
    line: u64,
    content: HashMap<u64, Vec<(u64, bool)>>,
}

impl ReferenceCache {
    fn new(config: CacheConfig) -> Self {
        Self {
            sets: config.sets(),
            ways: config.ways as usize,
            line: config.line_bytes as u64,
            content: HashMap::new(),
        }
    }

    /// Returns (hit, writeback address).
    fn access(&mut self, addr: u64, write: bool) -> (bool, Option<u64>) {
        let line_no = addr / self.line;
        let set = line_no % self.sets;
        let tag = line_no / self.sets;
        let entries = self.content.entry(set).or_default();
        if let Some(pos) = entries.iter().position(|&(t, _)| t == tag) {
            let (t, d) = entries.remove(pos);
            entries.push((t, d || write));
            return (true, None);
        }
        let mut writeback = None;
        if entries.len() == self.ways {
            let (victim_tag, dirty) = entries.remove(0);
            if dirty {
                writeback = Some((victim_tag * self.sets + set) * self.line);
            }
        }
        entries.push((tag, write));
        (false, writeback)
    }
}

proptest! {
    /// Hit/miss/writeback behaviour matches the reference for any
    /// access sequence over a small address space.
    #[test]
    fn cache_matches_reference_model(
        accesses in proptest::collection::vec((0u64..64, any::<bool>()), 1..600),
    ) {
        let config = CacheConfig {
            size_bytes: 512, // 4 sets × 2 ways
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        };
        let mut cache = Cache::new(config);
        let mut reference = ReferenceCache::new(config);
        for (line_index, write) in accesses {
            let addr = line_index * 64 + 8;
            let got = cache.access(addr, write);
            let (want_hit, want_wb) = reference.access(addr, write);
            match got {
                Lookup::Hit => prop_assert!(want_hit, "cache hit, reference missed"),
                Lookup::Miss { writeback } => {
                    prop_assert!(!want_hit, "cache missed, reference hit");
                    prop_assert_eq!(writeback, want_wb, "writeback divergence");
                }
            }
        }
    }

    /// Counter invariant: hits + misses equals accesses; writebacks
    /// never exceed misses.
    #[test]
    fn counters_are_consistent(
        accesses in proptest::collection::vec((0u64..256, any::<bool>()), 1..400),
    ) {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 2048,
            ways: 4,
            line_bytes: 64,
            hit_latency: 1,
        });
        let n = accesses.len() as u64;
        for (line_index, write) in accesses {
            cache.access(line_index * 64, write);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, n);
        prop_assert!(stats.writebacks <= stats.misses);
    }
}
