//! Black-box behavioural tests of the pipeline model: each test
//! isolates one mechanism (ROB, LSQ, chains, NUCA, crypto bubbles,
//! mispredict waiving) and verifies its first-order effect on cycles.

use aos_isa::{Op, SafetyConfig};
use aos_sim::{BranchModel, Machine, MachineConfig};

fn baseline_config() -> MachineConfig {
    MachineConfig::table_iv(SafetyConfig::Baseline)
}

fn loads(n: u64, stride: u64, chained: bool) -> Vec<Op> {
    (0..n)
        .map(|i| Op::Load {
            pointer: 0x1000_0000 + i * stride,
            bytes: 8,
            chained,
        })
        .collect()
}

#[test]
fn chained_dram_loads_serialize() {
    // Independent streaming loads overlap; chained ones serialize at
    // DRAM latency.
    let independent = Machine::new(baseline_config()).run(loads(2000, 4096, false));
    let chained = Machine::new(baseline_config()).run(loads(2000, 4096, true));
    assert!(
        chained.cycles > independent.cycles * 3,
        "chains must serialize: {} vs {}",
        chained.cycles,
        independent.cycles
    );
}

#[test]
fn larger_rob_hides_more_latency() {
    let trace: Vec<Op> = (0..4000u64)
        .flat_map(|i| {
            [
                Op::Load {
                    pointer: 0x1000_0000 + i * 4096,
                    bytes: 8,
                    chained: false,
                },
                Op::IntAlu,
                Op::IntAlu,
                Op::IntAlu,
            ]
        })
        .collect();
    let mut small = baseline_config();
    small.rob_entries = 16;
    let mut large = baseline_config();
    large.rob_entries = 192;
    let s = Machine::new(small).run(trace.clone());
    let l = Machine::new(large).run(trace);
    assert!(
        s.cycles > l.cycles * 2,
        "a 16-entry ROB cannot overlap DRAM misses: {} vs {}",
        s.cycles,
        l.cycles
    );
}

#[test]
fn lsq_capacity_limits_memory_parallelism() {
    let trace = loads(4000, 4096, false);
    let mut tiny = baseline_config();
    tiny.lsq_loads = 2;
    let mut full = baseline_config();
    full.lsq_loads = 32;
    let t = Machine::new(tiny).run(trace.clone());
    let f = Machine::new(full).run(trace);
    assert!(t.cycles > f.cycles * 4, "{} vs {}", t.cycles, f.cycles);
    assert!(t.stalls_lsq > f.stalls_lsq);
}

#[test]
fn crypto_ops_cost_issue_bubbles() {
    let with_crypto: Vec<Op> = (0..4000)
        .flat_map(|_| [Op::IntAlu, Op::IntAlu, Op::IntAlu, Op::PacCrypto])
        .collect();
    let without: Vec<Op> = (0..4000)
        .flat_map(|_| [Op::IntAlu, Op::IntAlu, Op::IntAlu, Op::IntAlu])
        .collect();
    let c = Machine::new(baseline_config()).run(with_crypto);
    let p = Machine::new(baseline_config()).run(without);
    assert!(
        c.cycles as f64 > p.cycles as f64 * 1.5,
        "each pacia ends its issue group: {} vs {}",
        c.cycles,
        p.cycles
    );
}

#[test]
fn mispredict_waiving_requires_structural_stalls() {
    // With abundant resources, every mispredict is charged.
    let trace: Vec<Op> = (0..2000)
        .flat_map(|i| {
            [
                Op::Branch {
                    pc: 0x100,
                    taken: true,
                    mispredicted: i % 20 == 0,
                },
                Op::IntAlu,
            ]
        })
        .collect();
    let stats = Machine::new(baseline_config()).run(trace);
    assert_eq!(stats.waived_mispredicts, 0, "no stalls, no waivers");
    assert_eq!(stats.charged_mispredicts, 100);
}

#[test]
fn autm_is_cheap_pac_crypto_is_not() {
    let autm_trace: Vec<Op> = (0..8000).map(|_| Op::Autm { pointer: 0x10 }).collect();
    let crypto_trace: Vec<Op> = (0..8000).map(|_| Op::PacCrypto).collect();
    let a = Machine::new(baseline_config()).run(autm_trace);
    let c = Machine::new(baseline_config()).run(crypto_trace);
    assert!(
        a.cycles * 4 < c.cycles,
        "autm (1 cycle, no bubble) vs pacia (4 cycles + bubble): {} vs {}",
        a.cycles,
        c.cycles
    );
}

#[test]
fn tage_machine_is_deterministic() {
    let trace: Vec<Op> = (0..5000)
        .map(|i| Op::Branch {
            pc: 0x400 + (i % 32) * 4,
            taken: (i / 7) % 3 != 0,
            mispredicted: false,
        })
        .collect();
    let mut cfg = baseline_config();
    cfg.branch_model = BranchModel::Tage;
    let a = Machine::new(cfg.clone()).run(trace.clone());
    let b = Machine::new(cfg).run(trace);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.charged_mispredicts, b.charged_mispredicts);
}

#[test]
fn remote_nuca_slice_shows_up_in_cycles() {
    // All-even lines (local slice) vs all-odd lines (remote slice),
    // both L2-resident after warmup.
    let local: Vec<Op> = (0..20_000u64)
        .map(|i| Op::Load {
            pointer: 0x100_0000 + (i % 4096) * 128, // even lines
            bytes: 8,
            chained: false,
        })
        .collect();
    let remote: Vec<Op> = (0..20_000u64)
        .map(|i| Op::Load {
            pointer: 0x100_0040 + (i % 4096) * 128, // odd lines
            bytes: 8,
            chained: false,
        })
        .collect();
    let l = Machine::new(baseline_config()).run(local);
    let r = Machine::new(baseline_config()).run(remote);
    assert!(
        r.cycles > l.cycles,
        "remote L2 slice is slower: {} vs {}",
        r.cycles,
        l.cycles
    );
}

#[test]
fn wide_accesses_touch_two_lines() {
    // 24-byte Watchdog metadata records crossing a line boundary incur
    // two fills.
    let trace: Vec<Op> = (0..1000u64)
        .map(|i| Op::WdMeta {
            pointer: 0x200_0000 + i * 170 * 8, // shadow addr crosses lines
            is_store: false,
        })
        .collect();
    let mut cfg = MachineConfig::table_iv(SafetyConfig::Watchdog);
    cfg.with_l1b = false;
    let stats = Machine::new(cfg).run(trace);
    assert!(stats.l1d.misses > 1000, "some records span two lines");
}
