//! An L-TAGE branch predictor (Seznec, JILP 2007) — the predictor of
//! the Table IV core.
//!
//! The machine's default mode replays trace-provided outcomes (like a
//! gem5 trace run); select [`crate::machine::BranchModel::Tage`] to
//! have mispredictions *emerge* from this predictor instead. The
//! implementation follows the L-TAGE structure:
//!
//! - a bimodal base predictor;
//! - `N` tagged tables indexed by hashes of the PC and geometrically
//!   increasing global-history lengths, each entry holding a 3-bit
//!   signed counter, a partial tag and a 2-bit useful counter;
//! - provider/alternate selection with `use_alt_on_newly_allocated`;
//! - allocation on mispredict with useful-bit-guided victim choice and
//!   periodic useful-bit aging;
//! - the "L" component: a loop predictor that locks onto constant
//!   trip-count loops and overrides TAGE when confident.

/// Configuration of the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TageConfig {
    /// log2 entries of the bimodal table.
    pub bimodal_bits: u32,
    /// log2 entries of each tagged table.
    pub tagged_bits: u32,
    /// Number of tagged tables.
    pub tagged_tables: usize,
    /// Shortest history length (geometric series from here).
    pub min_history: u32,
    /// Longest history length.
    pub max_history: u32,
    /// Partial tag width.
    pub tag_bits: u32,
    /// log2 entries of the loop predictor.
    pub loop_bits: u32,
}

impl Default for TageConfig {
    /// A mid-size L-TAGE: 4K-entry bimodal, 7 × 1K tagged tables with
    /// histories 4..=130, 10-bit tags, 64-entry loop predictor.
    fn default() -> Self {
        Self {
            bimodal_bits: 12,
            tagged_bits: 10,
            tagged_tables: 7,
            min_history: 4,
            max_history: 130,
            tag_bits: 10,
            loop_bits: 6,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TaggedEntry {
    tag: u16,
    /// Signed 3-bit counter in [-4, 3]; ≥ 0 predicts taken.
    counter: i8,
    useful: u8,
}

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u16,
    /// Trip count the loop appears to have.
    trip: u16,
    /// Iterations seen in the current traversal.
    current: u16,
    /// Confidence (saturating); predicts only when ≥ 3.
    confidence: u8,
    valid: bool,
}

/// Prediction outcome with provenance (useful for tests and stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction.
    pub taken: bool,
    /// Which component produced it.
    pub provider: Provider,
}

/// The component that supplied a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provider {
    /// The bimodal base table.
    Bimodal,
    /// Tagged table `i` (0 = shortest history).
    Tagged(usize),
    /// The loop predictor override.
    Loop,
}

/// Accuracy counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TageStats {
    /// Branches predicted.
    pub predictions: u64,
    /// Mispredictions.
    pub mispredictions: u64,
}

impl TageStats {
    /// Misprediction rate in `[0, 1]`.
    pub fn mispredict_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }
}

/// The predictor. Drive it with [`Tage::predict`] followed by
/// [`Tage::update`] with the resolved direction.
///
/// # Examples
///
/// ```
/// use aos_sim::tage::{Tage, TageConfig};
///
/// let mut tage = Tage::new(TageConfig::default());
/// // A strongly biased branch converges quickly.
/// for _ in 0..64 {
///     let p = tage.predict(0x400100);
///     tage.update(0x400100, true, p);
/// }
/// assert!(tage.predict(0x400100).taken);
/// ```
#[derive(Debug, Clone)]
pub struct Tage {
    config: TageConfig,
    bimodal: Vec<i8>,
    tagged: Vec<Vec<TaggedEntry>>,
    histories: Vec<u32>,
    loops: Vec<LoopEntry>,
    /// Global history, newest outcome in bit 0.
    ghist: u128,
    /// Aging tick for useful counters.
    ticks: u64,
    /// Biases allocation toward alt when fresh entries mislead.
    use_alt_on_na: i8,
    stats: TageStats,
    /// Deterministic LFSR for allocation tie-breaks.
    lfsr: u32,
}

impl Tage {
    /// Builds an empty predictor.
    ///
    /// # Panics
    ///
    /// Panics on a zero-table or zero-history configuration.
    pub fn new(config: TageConfig) -> Self {
        assert!(config.tagged_tables >= 1, "need at least one tagged table");
        assert!(config.min_history >= 1 && config.max_history > config.min_history);
        // Geometric history series a la TAGE.
        let n = config.tagged_tables;
        let ratio =
            (config.max_history as f64 / config.min_history as f64).powf(1.0 / (n - 1) as f64);
        let histories: Vec<u32> = (0..n)
            .map(|i| {
                (config.min_history as f64 * ratio.powi(i as i32)).round() as u32
            })
            .collect();
        Self {
            bimodal: vec![0; 1 << config.bimodal_bits],
            tagged: vec![vec![TaggedEntry::default(); 1 << config.tagged_bits]; n],
            histories,
            loops: vec![LoopEntry::default(); 1 << config.loop_bits],
            ghist: 0,
            ticks: 0,
            use_alt_on_na: 0,
            stats: TageStats::default(),
            lfsr: 0xACE1,
            config,
        }
    }

    /// The geometric history lengths in use.
    pub fn history_lengths(&self) -> &[u32] {
        &self.histories
    }

    /// Accuracy counters.
    pub fn stats(&self) -> TageStats {
        self.stats
    }

    fn folded_history(&self, bits: u32, length: u32) -> u32 {
        // Fold `length` bits of global history into `bits` bits.
        let mut folded = 0u32;
        let mut remaining = length;
        let mut hist = self.ghist;
        while remaining > 0 {
            let take = remaining.min(bits);
            folded ^= (hist as u32) & ((1u32 << take) - 1).max(1);
            hist >>= take;
            remaining -= take;
        }
        folded & ((1u32 << bits) - 1)
    }

    fn tagged_index(&self, pc: u64, table: usize) -> usize {
        let bits = self.config.tagged_bits;
        let h = self.folded_history(bits, self.histories[table]);
        ((pc as u32 ^ (pc >> bits) as u32 ^ h ^ (table as u32) << 1) & ((1 << bits) - 1)) as usize
    }

    fn tag_of(&self, pc: u64, table: usize) -> u16 {
        let bits = self.config.tag_bits;
        let h = self.folded_history(bits, self.histories[table]);
        let h2 = self.folded_history(bits.saturating_sub(1).max(1), self.histories[table]);
        ((pc as u32 ^ h ^ (h2 << 1)) & ((1 << bits) - 1)) as u16
    }

    fn bimodal_index(&self, pc: u64) -> usize {
        (pc as usize >> 2) & ((1 << self.config.bimodal_bits) - 1)
    }

    fn loop_index(&self, pc: u64) -> usize {
        (pc as usize >> 2) & ((1 << self.config.loop_bits) - 1)
    }

    fn loop_tag(&self, pc: u64) -> u16 {
        ((pc >> (2 + self.config.loop_bits)) & 0x3FF) as u16
    }

    /// Predicts the direction of the branch at `pc`.
    pub fn predict(&self, pc: u64) -> Prediction {
        // Loop predictor override.
        let le = &self.loops[self.loop_index(pc)];
        if le.valid && le.tag == self.loop_tag(pc) && le.confidence >= 3 {
            return Prediction {
                // Taken while inside the loop, not-taken at the exit.
                taken: le.current + 1 < le.trip,
                provider: Provider::Loop,
            };
        }
        // Longest matching tagged table.
        let mut provider = None;
        let mut alt = None;
        for table in (0..self.config.tagged_tables).rev() {
            let e = &self.tagged[table][self.tagged_index(pc, table)];
            if e.tag == self.tag_of(pc, table) && e.useful != u8::MAX {
                if provider.is_none() {
                    provider = Some((table, e));
                } else {
                    alt = Some((table, e));
                    break;
                }
            }
        }
        match provider {
            Some((table, e)) => {
                let newly_allocated = e.counter == 0 || e.counter == -1;
                if newly_allocated && self.use_alt_on_na > 0 {
                    if let Some((_, a)) = alt {
                        return Prediction {
                            taken: a.counter >= 0,
                            provider: Provider::Tagged(table),
                        };
                    }
                    return Prediction {
                        taken: self.bimodal[self.bimodal_index(pc)] >= 0,
                        provider: Provider::Bimodal,
                    };
                }
                Prediction {
                    taken: e.counter >= 0,
                    provider: Provider::Tagged(table),
                }
            }
            None => Prediction {
                taken: self.bimodal[self.bimodal_index(pc)] >= 0,
                provider: Provider::Bimodal,
            },
        }
    }

    /// Updates the predictor with the resolved direction. Pass the
    /// [`Prediction`] obtained for this branch so provider state is
    /// updated correctly. Returns `true` if the branch mispredicted.
    pub fn update(&mut self, pc: u64, taken: bool, prediction: Prediction) -> bool {
        let mispredicted = prediction.taken != taken;
        self.stats.predictions += 1;
        if mispredicted {
            self.stats.mispredictions += 1;
        }

        // Loop predictor training.
        self.train_loop(pc, taken);

        // Locate provider again (cheap; tables are small).
        let mut provider_table = None;
        for table in (0..self.config.tagged_tables).rev() {
            let idx = self.tagged_index(pc, table);
            if self.tagged[table][idx].tag == self.tag_of(pc, table) {
                provider_table = Some((table, idx));
                break;
            }
        }

        match provider_table {
            Some((table, idx)) => {
                let newly = {
                    let e = &self.tagged[table][idx];
                    e.counter == 0 || e.counter == -1
                };
                if newly {
                    // Track whether fresh entries help or hurt.
                    let bimodal_correct =
                        (self.bimodal[self.bimodal_index(pc)] >= 0) == taken;
                    let provider_correct =
                        (self.tagged[table][idx].counter >= 0) == taken;
                    if bimodal_correct != provider_correct {
                        self.use_alt_on_na = (self.use_alt_on_na
                            + if bimodal_correct { 1 } else { -1 })
                        .clamp(-8, 8);
                    }
                }
                let e = &mut self.tagged[table][idx];
                e.counter = (e.counter + if taken { 1 } else { -1 }).clamp(-4, 3);
                if !mispredicted && prediction.provider == Provider::Tagged(table) {
                    e.useful = e.useful.saturating_add(1).min(3);
                }
            }
            None => {
                let idx = self.bimodal_index(pc);
                let b = &mut self.bimodal[idx];
                *b = (*b + if taken { 1 } else { -1 }).clamp(-2, 1);
            }
        }

        // Allocation on mispredict: claim an entry in a longer table.
        if mispredicted {
            let start = provider_table.map(|(t, _)| t + 1).unwrap_or(0);
            self.allocate(pc, taken, start);
        }

        // Periodic useful aging.
        self.ticks += 1;
        if self.ticks.is_multiple_of(256 * 1024) {
            for table in &mut self.tagged {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }

        // Update global history.
        self.ghist = (self.ghist << 1) | taken as u128;
        mispredicted
    }

    fn allocate(&mut self, pc: u64, taken: bool, start: usize) {
        if start >= self.config.tagged_tables {
            return;
        }
        // Pseudo-random start among the next tables (TAGE allocates in
        // one of up to three candidate tables).
        self.lfsr = (self.lfsr >> 1) ^ (0xB400u32.wrapping_mul(self.lfsr & 1));
        let skip = (self.lfsr as usize) % 2;
        let mut allocated = false;
        for table in (start + skip)..self.config.tagged_tables {
            let idx = self.tagged_index(pc, table);
            let e = &mut self.tagged[table][idx];
            if e.useful == 0 {
                e.tag = 0;
                *e = TaggedEntry {
                    tag: 0,
                    counter: if taken { 0 } else { -1 },
                    useful: 0,
                };
                e.tag = 0; // placeholder; real tag set below
                allocated = true;
                let tag = self.tag_of(pc, table);
                self.tagged[table][idx].tag = tag;
                break;
            }
        }
        if !allocated {
            // Decay useful bits so future allocations succeed.
            for table in start..self.config.tagged_tables {
                let idx = self.tagged_index(pc, table);
                let e = &mut self.tagged[table][idx];
                e.useful = e.useful.saturating_sub(1);
            }
        }
    }

    fn train_loop(&mut self, pc: u64, taken: bool) {
        let idx = self.loop_index(pc);
        let tag = self.loop_tag(pc);
        let e = &mut self.loops[idx];
        if !e.valid || e.tag != tag {
            // Adopt the slot on a not-taken (potential loop exit).
            if !taken {
                *e = LoopEntry {
                    tag,
                    trip: 0,
                    current: 0,
                    confidence: 0,
                    valid: true,
                };
            }
            return;
        }
        if taken {
            e.current = e.current.saturating_add(1);
        } else {
            // Loop exit: does the trip count repeat?
            let observed = e.current + 1;
            if e.trip == observed {
                e.confidence = (e.confidence + 1).min(7);
            } else {
                e.trip = observed;
                e.confidence = 0;
            }
            e.current = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern(tage: &mut Tage, pc: u64, pattern: impl Iterator<Item = bool>) -> TageStats {
        let before = tage.stats();
        for taken in pattern {
            let p = tage.predict(pc);
            tage.update(pc, taken, p);
        }
        TageStats {
            predictions: tage.stats().predictions - before.predictions,
            mispredictions: tage.stats().mispredictions - before.mispredictions,
        }
    }

    #[test]
    fn history_lengths_are_geometric() {
        let t = Tage::new(TageConfig::default());
        let h = t.history_lengths();
        assert_eq!(h.len(), 7);
        assert_eq!(h[0], 4);
        assert_eq!(*h.last().unwrap(), 130);
        for w in h.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn biased_branch_is_learned() {
        let mut t = Tage::new(TageConfig::default());
        let s = run_pattern(&mut t, 0x1000, std::iter::repeat_n(true, 1000));
        assert!(
            s.mispredictions <= 3,
            "always-taken should be near-perfect: {s:?}"
        );
    }

    #[test]
    fn alternating_pattern_is_learned_by_tagged_tables() {
        let mut t = Tage::new(TageConfig::default());
        // Warm up, then measure: T N T N ... is history-predictable.
        let warm: Vec<bool> = (0..512).map(|i| i % 2 == 0).collect();
        run_pattern(&mut t, 0x2000, warm.into_iter());
        let s = run_pattern(&mut t, 0x2000, (0..512).map(|i| i % 2 == 0));
        assert!(
            s.mispredict_rate() < 0.05,
            "alternation should be captured: {:.3}",
            s.mispredict_rate()
        );
    }

    #[test]
    fn short_loop_is_captured() {
        let mut t = Tage::new(TageConfig::default());
        // 7 taken, 1 not-taken, repeated: trip count 8.
        let body = |i: usize| i % 8 != 7;
        run_pattern(&mut t, 0x3000, (0..2048).map(body));
        let s = run_pattern(&mut t, 0x3000, (0..2048).map(body));
        assert!(
            s.mispredict_rate() < 0.05,
            "constant-trip loop should be near-perfect: {:.3}",
            s.mispredict_rate()
        );
    }

    #[test]
    fn random_branches_mispredict_about_half() {
        let mut t = Tage::new(TageConfig::default());
        // LCG "random" outcomes.
        let mut x = 12345u64;
        let outcomes: Vec<bool> = (0..4000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                (x >> 63) & 1 == 1
            })
            .collect();
        let s = run_pattern(&mut t, 0x4000, outcomes.into_iter());
        let r = s.mispredict_rate();
        assert!((0.35..0.65).contains(&r), "random should be ~50%: {r:.3}");
    }

    #[test]
    fn distinct_branches_do_not_destructively_alias() {
        let mut t = Tage::new(TageConfig::default());
        for round in 0..200 {
            for pc in [0x1000u64, 0x1100, 0x1200, 0x1300] {
                // Each PC has its own constant bias.
                let taken = (pc / 0x100) % 2 == 0 || round % 4 == 0;
                let p = t.predict(pc);
                t.update(pc, taken, p);
            }
        }
        let rate = t.stats().mispredict_rate();
        assert!(rate < 0.30, "per-branch biases should separate: {rate:.3}");
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tage::new(TageConfig::default());
        let p = t.predict(0x10);
        t.update(0x10, true, p);
        assert_eq!(t.stats().predictions, 1);
        assert_eq!(TageStats::default().mispredict_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "tagged table")]
    fn zero_tables_rejected() {
        Tage::new(TageConfig {
            tagged_tables: 0,
            ..TageConfig::default()
        });
    }
}
