//! The machine front door: configuration, statistics, and the two
//! simulation models behind [`Machine::run`] — the default
//! stage-structured out-of-order core in [`crate::pipeline`] and the
//! legacy cycle-approximate analytic loop kept in this module behind
//! [`SimModel::Approximate`].

use std::collections::VecDeque;

use aos_hbt::{HashedBoundsTable, HbtConfig};
use aos_isa::{InstMix, Op, SafetyConfig};
use aos_mcu::{
    AosException, BoundsMemory, BwbStats, McuConfig, McuEvent, McuOp, McuStats, MemoryCheckUnit,
};
use aos_ptrauth::PointerLayout;

use crate::cache::CacheStats;
use crate::hierarchy::{MemoryHierarchy, TrafficStats};
use crate::pipeline::StageCore;
use crate::tage::{Tage, TageConfig};

/// How branch outcomes are predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BranchModel {
    /// Replay the trace-provided misprediction flags (a gem5-style
    /// trace run against the profile-calibrated L-TAGE accuracy).
    #[default]
    TraceProvided,
    /// Run the in-simulator L-TAGE; mispredictions emerge from the
    /// predictor's actual behaviour on the branch stream.
    Tage,
}

/// Which simulation model executes the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimModel {
    /// The stage-structured out-of-order core ([`crate::pipeline`]):
    /// fetch / rename (RAT) / dispatch / execute / LSQ / ROB / commit
    /// as first-class components, with precise AOS exceptions raised
    /// at commit (delayed retirement) and a structural store→load
    /// forwarding + replay path in the LSQ.
    #[default]
    Stage,
    /// The legacy analytic cycle-approximate loop — kept as an A/B
    /// escape hatch so campaign reports can quantify what the
    /// structural model changes.
    Approximate,
}

impl SimModel {
    /// Stable wire token (CLI flags, campaign report).
    pub fn name(self) -> &'static str {
        match self {
            SimModel::Stage => "stage",
            SimModel::Approximate => "approximate",
        }
    }

    /// Parses a wire token produced by [`SimModel::name`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "stage" => Some(SimModel::Stage),
            "approximate" | "approx" => Some(SimModel::Approximate),
            _ => None,
        }
    }
}

/// The named Table IV core-geometry constants. `table_iv`, the
/// `describe()` dump, and the geometry tests all read these, so an
/// ablation that changes one knob cannot silently drift from the
/// documented machine.
pub struct SimConfig;

impl SimConfig {
    /// Issue (and retire) width.
    pub const ISSUE_WIDTH: u32 = 8;
    /// Reorder buffer entries.
    pub const ROB_ENTRIES: usize = 192;
    /// Load queue entries.
    pub const LSQ_LOADS: usize = 32;
    /// Store queue entries.
    pub const LSQ_STORES: usize = 32;
    /// Cycles lost on a charged branch misprediction.
    pub const MISPREDICT_PENALTY: u64 = 14;
    /// Memory check queue entries (§V-B).
    pub const MCQ_ENTRIES: usize = 48;
    /// Bounds way buffer entries (§V-C).
    pub const BWB_ENTRIES: usize = 64;
    /// Background HBT migration bandwidth during gradual resize.
    pub const MIGRATION_ROWS_PER_CYCLE: u64 = 4;
}

/// Full machine configuration (Table IV defaults via
/// [`MachineConfig::table_iv`]).
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Issue (and retire) width.
    pub issue_width: u32,
    /// Reorder buffer entries.
    pub rob_entries: usize,
    /// Load queue entries.
    pub lsq_loads: usize,
    /// Store queue entries.
    pub lsq_stores: usize,
    /// Cycles lost on a charged branch misprediction.
    pub mispredict_penalty: u64,
    /// Whether the L1-B bounds cache is present (§V-F1).
    pub with_l1b: bool,
    /// Pointer layout (PAC/AHC decoding).
    pub layout: PointerLayout,
    /// MCU geometry and feature knobs.
    pub mcu: McuConfig,
    /// Bounds table geometry.
    pub hbt: HbtConfig,
    /// Whether the MCU is active (AOS / PA+AOS configurations).
    pub aos_enabled: bool,
    /// Background migration bandwidth during gradual resize.
    pub migration_rows_per_cycle: u64,
    /// Branch prediction mode.
    pub branch_model: BranchModel,
    /// Whether to record pipeline telemetry (MCU/BWB/HBT event
    /// counters). Disabled handles cost one branch per event and the
    /// simulated behaviour is identical either way.
    pub telemetry: bool,
    /// Whether the run loop may fast-forward over cycles in which
    /// nothing can happen (every in-flight operation is waiting on a
    /// known future time). The skip replays the per-cycle stall
    /// bookkeeping exactly, so statistics are bit-identical either way
    /// — the `event_skip_is_invisible` differential test pins this.
    pub event_skip: bool,
    /// Which simulation model executes the trace (stage-structured
    /// core by default; the analytic loop behind
    /// [`SimModel::Approximate`]).
    pub model: SimModel,
}

impl MachineConfig {
    /// The Table IV machine for one of the five evaluated systems:
    /// 8-wide, 192-entry ROB, 32+32 LSQ, 48-entry MCQ, 16-bit PACs,
    /// initial 1-way HBT, L1-B present, 64-entry BWB — every geometry
    /// literal sourced from [`SimConfig`].
    pub fn table_iv(config: SafetyConfig) -> Self {
        Self {
            issue_width: SimConfig::ISSUE_WIDTH,
            rob_entries: SimConfig::ROB_ENTRIES,
            lsq_loads: SimConfig::LSQ_LOADS,
            lsq_stores: SimConfig::LSQ_STORES,
            mispredict_penalty: SimConfig::MISPREDICT_PENALTY,
            with_l1b: true,
            layout: PointerLayout::default(),
            mcu: McuConfig {
                mcq_entries: SimConfig::MCQ_ENTRIES,
                bwb_entries: SimConfig::BWB_ENTRIES,
                ..McuConfig::default()
            },
            hbt: HbtConfig::default(),
            aos_enabled: config.uses_aos(),
            migration_rows_per_cycle: SimConfig::MIGRATION_ROWS_PER_CYCLE,
            branch_model: BranchModel::default(),
            telemetry: false,
            event_skip: true,
            model: SimModel::default(),
        }
    }

    /// Human-readable parameter dump — the Table IV reproduction.
    pub fn describe(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "Core            2GHz, {}-wide, out-of-order, {} ROB entries,\n",
            self.issue_width, self.rob_entries
        ));
        s.push_str(&format!(
            "                {}-entry load and {}-entry store queues, {} MCQ entries\n",
            self.lsq_loads, self.lsq_stores, self.mcu.mcq_entries
        ));
        s.push_str("L1-I cache      32KB, 4-way, 1-cycle, 64B line (modeled ideal)\n");
        s.push_str("L1-D cache      64KB, 8-way, 1-cycle, 64B line\n");
        if self.with_l1b {
            s.push_str("L1-B cache      32KB, 4-way, 1-cycle, 8B bounds\n");
        }
        s.push_str("L2 cache        8MB, 16-way, 8-cycle, 64B line\n");
        s.push_str("DRAM            50ns access latency from L2 (100 cycles @ 2GHz)\n");
        s.push_str(&format!(
            "Arm PA          {}-bit PAC, signing/authentication 4-cycle, stripping 1-cycle\n",
            self.layout.pac_size()
        ));
        s.push_str(&format!(
            "HBT             initial {}-way, {} MB\n",
            self.hbt.initial_ways,
            (1u64 << self.hbt.pac_size) * self.hbt.initial_ways as u64 * 64 / (1 << 20)
        ));
        s.push_str(&format!(
            "BWB             {} entries, 1-cycle, LRU\n",
            self.mcu.bwb_entries
        ));
        s
    }
}

/// Everything a run produces.
///
/// `PartialEq` is field-by-field: two runs produced identical
/// statistics — the property the campaign runner's determinism test
/// asserts between its parallel and sequential paths.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Micro-ops retired.
    pub retired_ops: u64,
    /// Instruction-mix classification (Fig. 16).
    pub mix: InstMix,
    /// L1-D counters.
    pub l1d: CacheStats,
    /// L1-B counters, when present.
    pub l1b: Option<CacheStats>,
    /// L2 counters.
    pub l2: CacheStats,
    /// Inter-level traffic (Fig. 18).
    pub traffic: TrafficStats,
    /// MCU counters (Fig. 17).
    pub mcu: McuStats,
    /// BWB counters (Fig. 17).
    pub bwb: BwbStats,
    /// Gradual resizes triggered (§IX-A1).
    pub hbt_resizes: u64,
    /// Final HBT associativity.
    pub hbt_ways: u32,
    /// Memory-safety violations detected (should be zero for benign
    /// workloads).
    pub violations: u64,
    /// Mispredictions that paid the full flush penalty.
    pub charged_mispredicts: u64,
    /// Mispredictions overlapped with structural stalls (the paper's
    /// MCQ back-pressure effect, §IX-A).
    pub waived_mispredicts: u64,
    /// Cycles in which nothing issued due to a structural hazard.
    pub stall_cycles: u64,
    /// Issue stalls charged to a full ROB.
    pub stalls_rob: u64,
    /// Issue stalls charged to a full load/store queue.
    pub stalls_lsq: u64,
    /// Issue stalls charged to a full MCQ (the paper's back-pressure).
    pub stalls_mcq: u64,
    /// Loads the stage-core LSQ replayed after an older in-window
    /// store resolved to an overlapping address (always zero under
    /// [`SimModel::Approximate`], which has no ordering speculation).
    pub lsq_replays: u64,
    /// Precise-exception pipeline flushes: commits of a faulted op
    /// that squashed everything younger (always zero under
    /// [`SimModel::Approximate`], which charges faults at event time).
    pub flushes: u64,
    /// Pipeline telemetry snapshot (all-zero/disabled when the config
    /// did not enable telemetry). Deterministic for a given
    /// `(trace, config)`, so the derived `PartialEq` still certifies
    /// bit-identical runs.
    pub telemetry: aos_util::TelemetrySnapshot,
}

impl RunStats {
    /// Retired micro-ops per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_ops as f64 / self.cycles as f64
        }
    }

    /// A copy with the telemetry section zeroed — the comparison basis
    /// for the observer-effect differential test (an enabled-telemetry
    /// run must equal a disabled one in every *simulated* statistic).
    pub fn without_telemetry(&self) -> RunStats {
        RunStats {
            telemetry: aos_util::TelemetrySnapshot::default(),
            ..self.clone()
        }
    }
}

struct RobEntry {
    complete_at: u64,
    mcq_id: Option<u64>,
    is_load: bool,
    is_store: bool,
}

/// Which structural hazard ended an issue group that issued nothing.
/// The event-skip fast-forward replays the per-cycle hazard counter
/// the blocked cycle would have charged, once per skipped cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum StallKind {
    /// Nothing blocked; the group ended because the trace ran dry.
    None,
    /// The front end is flushed until `fetch_resume_at`.
    Fetch,
    /// The reorder buffer is full.
    Rob,
    /// The load or store queue is full.
    Lsq,
    /// The memory check queue is full.
    Mcq,
}

pub(crate) struct BoundsPort<'a> {
    pub(crate) hierarchy: &'a mut MemoryHierarchy,
}

impl BoundsMemory for BoundsPort<'_> {
    fn load_line(&mut self, addr: u64) -> u64 {
        self.hierarchy.access_bounds(addr, 64, false)
    }

    fn store_line(&mut self, addr: u64) -> u64 {
        self.hierarchy.access_bounds(addr, 64, true)
    }
}

/// The machine: construct, [`Machine::run`] a trace, read the stats.
///
/// See the [crate docs](crate) for an example and the modeling notes.
pub struct Machine {
    pub(crate) config: MachineConfig,
    pub(crate) hierarchy: MemoryHierarchy,
    pub(crate) mcu: MemoryCheckUnit,
    pub(crate) hbt: HashedBoundsTable,
    pub(crate) now: u64,
    rob: VecDeque<RobEntry>,
    loads_inflight: usize,
    stores_inflight: usize,
    fetch_resume_at: u64,
    pub(crate) prev_cycle_stalled: bool,
    pub(crate) mix: InstMix,
    pub(crate) retired_ops: u64,
    pub(crate) violations: u64,
    pub(crate) hbt_resizes: u64,
    pub(crate) charged_mispredicts: u64,
    pub(crate) waived_mispredicts: u64,
    pub(crate) stall_cycles: u64,
    pub(crate) stalls_rob: u64,
    pub(crate) stalls_lsq: u64,
    pub(crate) stalls_mcq: u64,
    pub(crate) lsq_replays: u64,
    pub(crate) flushes: u64,
    /// Counter values already published to telemetry by earlier runs
    /// of this machine — `collect_stats` publishes only the delta so
    /// accumulating runs never double-count.
    published_sim_counters: [u64; 5],
    pub(crate) mcu_events: Vec<McuEvent>,
    /// Reusable buffer for HBT metadata-line drains — avoids a `Vec`
    /// allocation per simulated cycle on the checking path.
    pub(crate) bounds_lines: Vec<u64>,
    /// Completion time of the most recent *chained* load — the running
    /// pointer-traversal dependence (approximate model only; the stage
    /// core tracks the dependence through its RAT).
    last_chain_complete: u64,
    /// The L-TAGE instance, when `branch_model` is `Tage`.
    pub(crate) tage: Option<Tage>,
    /// The stage-structured pipeline state ([`SimModel::Stage`]).
    pub(crate) stage: StageCore,
    /// The registry handle shared with the MCU, BWB and HBT.
    pub(crate) telemetry: aos_util::Telemetry,
    /// `AOS_SIM_DEBUG` presence, sampled once at construction — the
    /// run loop is the hottest code in the repository and must not
    /// query the environment every cycle.
    pub(crate) debug: bool,
}

impl Machine {
    /// Builds a fresh machine.
    pub fn new(config: MachineConfig) -> Self {
        let telemetry = aos_util::Telemetry::new(config.telemetry);
        // The timing loop only consumes exception events, so clean
        // completions need not be materialized as events.
        let mut mcu =
            MemoryCheckUnit::new(config.mcu, config.layout).with_telemetry(telemetry.clone());
        mcu.set_emit_retired(false);
        Self {
            hierarchy: MemoryHierarchy::table_iv(config.with_l1b),
            mcu,
            hbt: HashedBoundsTable::new(config.hbt).with_telemetry(telemetry.clone()),
            now: 0,
            rob: VecDeque::with_capacity(config.rob_entries),
            loads_inflight: 0,
            stores_inflight: 0,
            fetch_resume_at: 0,
            prev_cycle_stalled: false,
            mix: InstMix::default(),
            retired_ops: 0,
            violations: 0,
            hbt_resizes: 0,
            charged_mispredicts: 0,
            waived_mispredicts: 0,
            stall_cycles: 0,
            stalls_rob: 0,
            stalls_lsq: 0,
            stalls_mcq: 0,
            lsq_replays: 0,
            flushes: 0,
            published_sim_counters: [0; 5],
            mcu_events: Vec::new(),
            bounds_lines: Vec::new(),
            last_chain_complete: 0,
            tage: match config.branch_model {
                BranchModel::Tage => Some(Tage::new(TageConfig::default())),
                BranchModel::TraceProvided => None,
            },
            stage: StageCore::new(&config),
            debug: std::env::var_os("AOS_SIM_DEBUG").is_some(),
            telemetry,
            config,
        }
    }

    /// The machine's telemetry handle (disabled unless the config
    /// enabled it).
    pub fn telemetry(&self) -> &aos_util::Telemetry {
        &self.telemetry
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs a trace to completion and returns the statistics.
    ///
    /// Dispatches on [`MachineConfig::model`]: the stage-structured
    /// out-of-order core by default, the legacy analytic loop under
    /// [`SimModel::Approximate`].
    ///
    /// # Panics
    ///
    /// Panics if the simulation fails to make forward progress (a
    /// model bug, bounded at 2^40 cycles).
    pub fn run<I: IntoIterator<Item = Op>>(&mut self, trace: I) -> RunStats {
        let trace = trace.into_iter();
        match self.config.model {
            SimModel::Stage => self.run_stage(trace),
            SimModel::Approximate => self.run_approximate(trace),
        }
    }

    /// The legacy analytic cycle-approximate loop ([`SimModel::Approximate`]).
    fn run_approximate<I: Iterator<Item = Op>>(&mut self, mut trace: I) -> RunStats {
        let mut pending: Option<Op> = None;
        loop {
            self.tick_mcu();
            if self.hbt.in_migration() {
                self.hbt.step_migration(self.config.migration_rows_per_cycle);
            }
            let retired = self.retire();
            let (issued, stall_kind) = self.issue(&mut pending, &mut trace);
            let stalled = issued == 0 && (pending.is_some() || !self.rob.is_empty());
            if stalled && pending.is_some() {
                self.stall_cycles += 1;
            }
            self.prev_cycle_stalled = stalled;
            // Event-skip fast-forward: when this cycle did nothing and
            // every in-flight operation is waiting on a known future
            // cycle, jump there instead of idling through the gap one
            // iteration at a time. The machine state is frozen across
            // the gap (no retire, no issue, no MCU step can fire
            // before the wake cycle), so only the per-cycle stall
            // bookkeeping has to be replayed — the same counters the
            // skipped iterations would have charged.
            if self.config.event_skip
                && issued == 0
                && retired == 0
                && !self.hbt.in_migration()
                && !(pending.is_none() && self.rob.is_empty() && self.mcu.is_empty())
            {
                let wake = self.wake_cycle();
                if wake != u64::MAX && wake > self.now + 1 {
                    let skipped = wake - self.now - 1;
                    if pending.is_some() {
                        self.stall_cycles += skipped;
                    }
                    match stall_kind {
                        StallKind::Rob => self.stalls_rob += skipped,
                        StallKind::Lsq => self.stalls_lsq += skipped,
                        StallKind::Mcq => self.stalls_mcq += skipped,
                        StallKind::Fetch | StallKind::None => {}
                    }
                    // `prev_cycle_stalled` holds the same value every
                    // skipped cycle recomputes, so it carries over.
                    self.now += skipped;
                }
            }
            self.now += 1;
            if pending.is_none() && self.rob.is_empty() && self.mcu.is_empty() {
                // Trace might still hold ops (issue broke on width).
                match trace.next() {
                    Some(op) => pending = Some(op),
                    None => break,
                }
            }
            if self.debug && self.now.is_multiple_of(1_000_000) {
                eprintln!(
                    "[sim] now={} retired={} rob={} mcu={} loads={} stores={} pending={}",
                    self.now,
                    self.retired_ops,
                    self.rob.len(),
                    self.mcu.len(),
                    self.loads_inflight,
                    self.stores_inflight,
                    pending.is_some(),
                );
            }
            assert!(self.now < 1 << 40, "simulation failed to make progress");
        }
        self.collect_stats()
    }

    /// Publishes run-loop telemetry deltas and snapshots the run's
    /// statistics — shared by both simulation models.
    pub(crate) fn collect_stats(&mut self) -> RunStats {
        // Publish the per-component counters accumulated during the
        // run before the snapshot below reads them.
        self.mcu.flush_telemetry();
        let current = [
            self.stalls_rob,
            self.stalls_lsq,
            self.stalls_mcq,
            self.lsq_replays,
            self.flushes,
        ];
        let counters = [
            aos_util::Counter::SimStallRob,
            aos_util::Counter::SimStallLsq,
            aos_util::Counter::SimStallMcq,
            aos_util::Counter::SimReplays,
            aos_util::Counter::SimFlushes,
        ];
        for ((counter, &value), published) in counters
            .iter()
            .zip(current.iter())
            .zip(self.published_sim_counters.iter_mut())
        {
            self.telemetry.add(*counter, value - *published);
            *published = value;
        }
        RunStats {
            cycles: self.now,
            retired_ops: self.retired_ops,
            mix: self.mix,
            l1d: self.hierarchy.l1d_stats(),
            l1b: self.hierarchy.l1b_stats(),
            l2: self.hierarchy.l2_stats(),
            traffic: self.hierarchy.traffic(),
            mcu: self.mcu.stats(),
            bwb: self.mcu.bwb_stats(),
            hbt_resizes: self.hbt_resizes,
            hbt_ways: self.hbt.ways(),
            violations: self.violations,
            charged_mispredicts: self.charged_mispredicts,
            waived_mispredicts: self.waived_mispredicts,
            stall_cycles: self.stall_cycles,
            stalls_rob: self.stalls_rob,
            stalls_lsq: self.stalls_lsq,
            stalls_mcq: self.stalls_mcq,
            lsq_replays: self.lsq_replays,
            flushes: self.flushes,
            telemetry: self.telemetry.snapshot(),
        }
    }

    /// The earliest future cycle at which a frozen pipeline can make
    /// progress, or `u64::MAX` when no in-flight work exists. Only
    /// meaningful right after a cycle that retired and issued nothing:
    /// the machine state cannot change until one of the candidates
    /// fires.
    fn wake_cycle(&self) -> u64 {
        let mut wake = u64::MAX;
        if let Some(head) = self.rob.front() {
            if head.complete_at > self.now {
                wake = head.complete_at;
            }
            // A head that is complete but still blocked is waiting on
            // its MCQ entry; the MCU candidate below covers it.
        }
        if self.config.aos_enabled && !self.mcu.is_empty() {
            wake = wake.min(self.mcu.next_wake(self.now));
        }
        if self.fetch_resume_at > self.now {
            wake = wake.min(self.fetch_resume_at);
        }
        wake
    }

    fn tick_mcu(&mut self) {
        if !self.config.aos_enabled || self.mcu.is_empty() {
            return;
        }
        let mut port = BoundsPort {
            hierarchy: &mut self.hierarchy,
        };
        self.mcu
            .tick(self.now, &mut self.hbt, &mut port, &mut self.mcu_events);
        let events = std::mem::take(&mut self.mcu_events);
        for ev in &events {
            if let McuEvent::Exception { id, exception } = ev {
                match exception {
                    AosException::BoundsStoreFailure { .. } => {
                        // OS handler: allocate a doubled table and let
                        // the background manager migrate (§V-F3). A
                        // table already at max associativity cannot
                        // grow; the OS then kills the store — counted
                        // as a violation so the pathology is visible —
                        // instead of aborting the whole simulation.
                        if self.hbt.try_begin_resize().is_ok() {
                            self.hbt_resizes += 1;
                            self.mcu.retry(*id);
                        } else {
                            self.violations += 1;
                            self.telemetry.count(aos_util::Counter::SimViolations);
                            self.mcu.drop_failed(*id);
                        }
                    }
                    AosException::BoundsCheckFailure { .. }
                    | AosException::BoundsClearFailure { .. }
                    | AosException::MalformedBounds { .. } => {
                        // Benign workloads never get here; count it and
                        // let the process continue (the "report and
                        // resume" OS policy). Malformed bndstr bounds
                        // from a tampered trace land here too: the
                        // store is dropped and the fault counted.
                        self.violations += 1;
                        self.telemetry.count(aos_util::Counter::SimViolations);
                        self.mcu.drop_failed(*id);
                    }
                }
            }
        }
        self.mcu_events = events;
        self.mcu_events.clear();
        // The FSM models metadata traffic through the BoundsPort
        // directly, so HBT-side access recording stays empty in timing
        // mode — but any functional-path operation interleaved between
        // runs may have recorded lines. Drain them into the reusable
        // buffer (no allocation) so the record cannot grow unboundedly.
        if self.hbt.pending_accesses() > 0 {
            self.bounds_lines.clear();
            self.hbt.drain_accesses_into(&mut self.bounds_lines);
        }
    }

    fn retire(&mut self) -> u32 {
        let mut retired = 0;
        while retired < self.config.issue_width {
            let Some(head) = self.rob.front() else { break };
            if head.complete_at > self.now {
                break;
            }
            if let Some(id) = head.mcq_id {
                // can_retire + mark_committed in one queue lookup.
                if !self.mcu.commit_if_retirable(id) {
                    break;
                }
            }
            let head = self.rob.pop_front().expect("peeked above");
            if head.is_load {
                self.loads_inflight -= 1;
            }
            if head.is_store {
                self.stores_inflight -= 1;
            }
            self.retired_ops += 1;
            retired += 1;
        }
        retired
    }

    fn issue(
        &mut self,
        pending: &mut Option<Op>,
        trace: &mut impl Iterator<Item = Op>,
    ) -> (u32, StallKind) {
        let mut issued = 0;
        let mut stall = StallKind::None;
        while issued < self.config.issue_width {
            if self.now < self.fetch_resume_at {
                stall = StallKind::Fetch;
                break;
            }
            let Some(op) = pending.take().or_else(|| trace.next()) else {
                break;
            };
            // Structural hazards.
            if self.rob.len() == self.config.rob_entries {
                self.stalls_rob += 1;
                stall = StallKind::Rob;
                *pending = Some(op);
                break;
            }
            let memref = op.memory_ref(self.config.layout);
            let takes_lsq = op.occupies_lsq();
            if let Some(m) = memref {
                // LSQ entries are held from issue until retirement,
                // as in real hardware.
                let full = takes_lsq
                    && if m.is_store {
                        self.stores_inflight >= self.config.lsq_stores
                    } else {
                        self.loads_inflight >= self.config.lsq_loads
                    };
                if full {
                    self.stalls_lsq += 1;
                    stall = StallKind::Lsq;
                    *pending = Some(op);
                    break;
                }
            }
            let to_mcu = self.config.aos_enabled && op.needs_mcu();
            if to_mcu && !self.mcu.has_capacity() {
                self.stalls_mcq += 1;
                stall = StallKind::Mcq;
                *pending = Some(op);
                break;
            }

            // Execute.
            // Pointer-chasing loads cannot start until the previous
            // link of the traversal delivered their address.
            let chained = matches!(op, Op::Load { chained: true, .. });
            let mut start_at = self.now;
            if chained {
                start_at = start_at.max(self.last_chain_complete);
            }
            let complete_at = if let Some(m) = memref {
                let latency = if m.metadata {
                    self.hierarchy.access_bounds(m.addr, m.bytes, m.is_store)
                } else {
                    self.hierarchy.access_data(m.addr, m.bytes, m.is_store)
                };
                if takes_lsq {
                    if m.is_store {
                        self.stores_inflight += 1;
                    } else {
                        self.loads_inflight += 1;
                    }
                }
                if m.is_store {
                    // Stores retire once address and data are ready and
                    // drain from the post-commit store buffer; their
                    // cache latency is charged as traffic, not as a
                    // retirement block.
                    self.now + 1
                } else {
                    let done = start_at + latency;
                    if chained {
                        self.last_chain_complete = done;
                    }
                    done
                }
            } else {
                self.now + op.exec_latency()
            };
            if let Op::Branch {
                pc,
                taken,
                mispredicted,
            } = op
            {
                let missed = match &mut self.tage {
                    Some(tage) => {
                        let prediction = tage.predict(pc);
                        tage.update(pc, taken, prediction)
                    }
                    None => mispredicted,
                };
                if missed {
                    if self.prev_cycle_stalled {
                        // The front end was already blocked, so the
                        // wrong path never issued (§IX-A back-pressure
                        // effect).
                        self.waived_mispredicts += 1;
                    } else {
                        self.charged_mispredicts += 1;
                        self.fetch_resume_at = self
                            .fetch_resume_at
                            .max(complete_at + self.config.mispredict_penalty);
                    }
                }
            }
            let mcq_id = if to_mcu {
                let mcu_op = match op {
                    Op::Load { pointer, .. } => McuOp::Access {
                        pointer,
                        is_store: false,
                    },
                    Op::Store { pointer, .. } => McuOp::Access {
                        pointer,
                        is_store: true,
                    },
                    Op::BndStr { pointer, size } => McuOp::BndStr { pointer, size },
                    Op::BndClr { pointer } => McuOp::BndClr { pointer },
                    _ => unreachable!("needs_mcu covers only memory and bounds ops"),
                };
                Some(
                    self.mcu
                        .issue(mcu_op, start_at)
                        .unwrap_or_else(|_| unreachable!("capacity checked above")),
                )
            } else {
                None
            };
            self.mix.record(&op, self.config.layout);
            self.rob.push_back(RobEntry {
                complete_at,
                mcq_id,
                is_load: takes_lsq && memref.is_some_and(|m| !m.is_store),
                is_store: takes_lsq && memref.is_some_and(|m| m.is_store),
            });
            issued += 1;
            // Call-path QARMA (pacia/autia, pointer authentication)
            // sits on the critical path of the call or the pointer
            // use: end the issue group, costing roughly one fetch
            // bubble. Data-pointer signing at malloc sites (pacma) is
            // off the critical path and pipelines freely.
            if matches!(op, Op::PacCrypto) {
                break;
            }
        }
        (issued, stall)
    }

    /// [`Machine::run`] fed through a [`Batched`] driver: the source
    /// refills a reusable struct-of-arrays [`OpBatch`] and the run loop
    /// pulls decoded ops from it, shrinking per-op iterator dispatch to
    /// an array read. Statistics are bit-identical to [`Machine::run`]
    /// over the same op sequence; the machine's telemetry handle counts
    /// the refills (`batch_ops_refilled` / `batch_fallback_ops`).
    ///
    /// [`Batched`]: aos_isa::stream::Batched
    /// [`OpBatch`]: aos_isa::stream::OpBatch
    pub fn run_batched<S: aos_isa::stream::BatchSource>(&mut self, source: S) -> RunStats {
        let driver =
            aos_isa::stream::Batched::new(source, aos_isa::stream::Batched::<S>::DEFAULT_BATCH_OPS)
                .with_telemetry(self.telemetry.clone());
        self.run(driver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_trace(n: usize) -> Vec<Op> {
        vec![Op::IntAlu; n]
    }

    #[test]
    fn ideal_ilp_approaches_issue_width() {
        let mut m = Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline));
        let stats = m.run(int_trace(8000));
        assert_eq!(stats.retired_ops, 8000);
        assert!(stats.ipc() > 6.0, "ipc was {}", stats.ipc());
    }

    #[test]
    fn mispredicts_cost_cycles() {
        let clean: Vec<Op> = (0..4000)
            .map(|i| Op::Branch {
                pc: 0x1000 + (i % 16) * 4,
                taken: true,
                mispredicted: false,
            })
            .collect();
        let dirty: Vec<Op> = (0..4000)
            .map(|i| Op::Branch {
                pc: 0x1000 + (i % 16) * 4,
                taken: true,
                mispredicted: i % 50 == 0,
            })
            .collect();
        let a = Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline)).run(clean);
        let b = Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline)).run(dirty);
        assert!(b.cycles > a.cycles + 500, "{} vs {}", b.cycles, a.cycles);
        assert!(b.charged_mispredicts > 0);
    }

    #[test]
    fn cache_misses_slow_the_run() {
        // Sequential streaming (new line every 8 accesses) vs hot set.
        let streaming: Vec<Op> = (0..20_000u64)
            .map(|i| Op::Load {
                pointer: 0x100_0000 + i * 8,
                bytes: 8,
                chained: false,
            })
            .collect();
        let hot: Vec<Op> = (0..20_000u64)
            .map(|i| Op::Load {
                pointer: 0x100_0000 + (i % 64) * 8,
                bytes: 8,
                chained: false,
            })
            .collect();
        let cold = Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline)).run(streaming);
        let warm = Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline)).run(hot);
        assert!(cold.cycles > warm.cycles);
        assert!(cold.traffic.total_bytes() > warm.traffic.total_bytes());
    }

    #[test]
    fn aos_checks_signed_accesses_and_retires_cleanly() {
        let layout = PointerLayout::default();
        let base = 0x4000_0000u64;
        let mut trace = Vec::new();
        // Sign + store bounds, then access the chunk many times.
        let signed = layout.compose(base, 0x1234, 1);
        trace.push(Op::Pacma {
            pointer: signed,
            size: 64,
        });
        trace.push(Op::BndStr {
            pointer: signed,
            size: 64,
        });
        for i in 0..5000u64 {
            trace.push(Op::Load {
                pointer: signed + (i % 8) * 8,
                bytes: 8,
                chained: false,
            });
        }
        let mut m = Machine::new(MachineConfig::table_iv(SafetyConfig::Aos));
        let stats = m.run(trace);
        assert_eq!(stats.violations, 0);
        assert_eq!(stats.mcu.signed_accesses, 5000);
        assert_eq!(stats.mcu.completed_checks + stats.mcu.forwards, 5000);
        assert!(stats.bwb.hits > 4000, "BWB should capture the reuse");
    }

    #[test]
    fn aos_overhead_visible_but_bounded_for_checked_loads() {
        let layout = PointerLayout::default();
        let base = 0x4000_0000u64;
        let signed = layout.compose(base, 0x77, 1);
        let mut trace = vec![Op::BndStr {
            pointer: signed,
            size: 4096,
        }];
        for i in 0..20_000u64 {
            trace.push(Op::Load {
                pointer: signed + (i % 512) * 8,
                bytes: 8,
                chained: false,
            });
            trace.push(Op::IntAlu);
            trace.push(Op::IntAlu);
        }
        let baseline_trace: Vec<Op> = trace
            .iter()
            .map(|op| match *op {
                Op::Load { pointer, bytes, chained } => Op::Load {
                    pointer: layout.address(pointer),
                    bytes,
                    chained,
                },
                Op::BndStr { .. } => Op::IntAlu,
                other => other,
            })
            .collect();
        let aos = Machine::new(MachineConfig::table_iv(SafetyConfig::Aos)).run(trace);
        let base_stats =
            Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline)).run(baseline_trace);
        let overhead = aos.cycles as f64 / base_stats.cycles as f64;
        assert!(overhead >= 1.0, "AOS cannot be faster here: {overhead}");
        assert!(overhead < 1.6, "overhead should be modest: {overhead}");
    }

    #[test]
    fn violation_is_detected_and_counted() {
        let layout = PointerLayout::default();
        let signed = layout.compose(0x4000_0000, 0x99, 1);
        let trace = vec![
            Op::BndStr {
                pointer: signed,
                size: 64,
            },
            // Out of bounds by one line.
            Op::Load {
                pointer: signed + 128,
                bytes: 8,
                chained: false,
            },
        ];
        let stats = Machine::new(MachineConfig::table_iv(SafetyConfig::Aos)).run(trace);
        assert_eq!(stats.violations, 1);
    }

    #[test]
    fn row_overflow_triggers_resize_in_flight() {
        let layout = PointerLayout::default();
        let mut trace = Vec::new();
        // Nine chunks with the same PAC overflow the 8-slot row.
        for i in 0..9u64 {
            let signed = layout.compose(0x4000_0000 + i * 0x1000, 0x42, 1);
            trace.push(Op::BndStr {
                pointer: signed,
                size: 64,
            });
        }
        let stats = Machine::new(MachineConfig::table_iv(SafetyConfig::Aos)).run(trace);
        assert_eq!(stats.hbt_resizes, 1);
        assert_eq!(stats.hbt_ways, 2);
        assert_eq!(stats.violations, 0);
    }

    #[test]
    fn hbt_exhaustion_degrades_instead_of_panicking() {
        let layout = PointerLayout::default();
        let mut config = MachineConfig::table_iv(SafetyConfig::Aos);
        config.hbt.initial_ways = 1;
        config.hbt.max_ways = 2;
        // 17 same-PAC chunks exceed 2 ways × 8 slots: the final bndstr
        // cannot be placed even after the last allowed resize.
        let mut trace = Vec::new();
        for i in 0..17u64 {
            let signed = layout.compose(0x4000_0000 + i * 0x100, 0x77, 1);
            trace.push(Op::BndStr {
                pointer: signed,
                size: 64,
            });
        }
        let stats = Machine::new(config).run(trace);
        assert_eq!(stats.hbt_resizes, 1);
        assert_eq!(stats.hbt_ways, 2);
        assert_eq!(stats.violations, 1, "the unplaceable store is counted");
    }

    #[test]
    fn malformed_bndstr_in_trace_counts_as_violation() {
        let layout = PointerLayout::default();
        // A tampered trace: misaligned base and an oversized size.
        let trace = vec![
            Op::BndStr {
                pointer: layout.compose(0x4000_0008, 5, 1),
                size: 64,
            },
            Op::BndStr {
                pointer: layout.compose(0x4000_1000, 6, 1),
                size: 1 << 33,
            },
        ];
        let stats = Machine::new(MachineConfig::table_iv(SafetyConfig::Aos)).run(trace);
        assert_eq!(stats.violations, 2);
    }

    #[test]
    fn l1b_separates_bounds_traffic() {
        let layout = PointerLayout::default();
        let mut trace = Vec::new();
        for i in 0..64u64 {
            let signed = layout.compose(0x4000_0000 + i * 0x1000, i, 1);
            trace.push(Op::BndStr {
                pointer: signed,
                size: 64,
            });
            trace.push(Op::Load {
                pointer: signed,
                bytes: 8,
                chained: false,
            });
        }
        let mut cfg = MachineConfig::table_iv(SafetyConfig::Aos);
        cfg.with_l1b = true;
        let with = Machine::new(cfg.clone()).run(trace.clone());
        assert!(with.l1b.is_some());
        cfg.with_l1b = false;
        let without = Machine::new(cfg).run(trace);
        assert!(without.l1b.is_none());
        assert!(
            without.l1d.misses > with.l1d.misses,
            "bounds pollute the L1-D without the L1-B"
        );
    }

    #[test]
    fn table_iv_description_lists_parameters() {
        let cfg = MachineConfig::table_iv(SafetyConfig::Aos);
        let d = cfg.describe();
        // Geometry strings come from the named SimConfig constants, so
        // the asserts can't drift from the documented machine.
        assert!(d.contains(&format!("{}-wide", SimConfig::ISSUE_WIDTH)));
        assert!(d.contains(&format!("{} ROB", SimConfig::ROB_ENTRIES)));
        assert!(d.contains(&format!("{} MCQ", SimConfig::MCQ_ENTRIES)));
        assert!(d.contains("16-bit PAC"));
        assert!(d.contains("4 MB"));
    }

    #[test]
    fn table_iv_geometry_comes_from_sim_config() {
        let cfg = MachineConfig::table_iv(SafetyConfig::Aos);
        assert_eq!(cfg.issue_width, SimConfig::ISSUE_WIDTH);
        assert_eq!(cfg.rob_entries, SimConfig::ROB_ENTRIES);
        assert_eq!(cfg.lsq_loads, SimConfig::LSQ_LOADS);
        assert_eq!(cfg.lsq_stores, SimConfig::LSQ_STORES);
        assert_eq!(cfg.mispredict_penalty, SimConfig::MISPREDICT_PENALTY);
        assert_eq!(cfg.mcu.mcq_entries, SimConfig::MCQ_ENTRIES);
        assert_eq!(cfg.mcu.bwb_entries, SimConfig::BWB_ENTRIES);
        assert_eq!(cfg.model, SimModel::Stage, "stage core is the default");
    }

    #[test]
    fn tage_mode_predicts_biased_branches_well() {
        // A biased branch stream: the emergent L-TAGE should charge
        // far fewer mispredictions than the trace's pessimistic flags.
        let trace: Vec<Op> = (0..20_000)
            .map(|i| Op::Branch {
                pc: 0x2000 + (i % 8) * 4,
                taken: true,
                mispredicted: i % 10 == 0, // replay mode would charge 10%
            })
            .collect();
        let mut replay_cfg = MachineConfig::table_iv(SafetyConfig::Baseline);
        replay_cfg.branch_model = BranchModel::TraceProvided;
        let replay = Machine::new(replay_cfg).run(trace.clone());
        let mut tage_cfg = MachineConfig::table_iv(SafetyConfig::Baseline);
        tage_cfg.branch_model = BranchModel::Tage;
        let tage = Machine::new(tage_cfg).run(trace);
        let replay_missed = replay.charged_mispredicts + replay.waived_mispredicts;
        let tage_missed = tage.charged_mispredicts + tage.waived_mispredicts;
        assert!(
            tage_missed * 10 < replay_missed,
            "L-TAGE learns the bias: {tage_missed} vs {replay_missed}"
        );
        assert!(tage.cycles < replay.cycles);
    }

    #[test]
    fn event_skip_is_invisible() {
        // The fast-forward must replay every per-cycle counter exactly:
        // cycles, stall breakdowns, mispredict waiving, MCU stats — the
        // whole RunStats. Exercise the stall sources the skip reasons
        // about: DRAM-latency chains (ROB head waits), LSQ pressure,
        // MCQ back-pressure with bounds checks, and mispredict flushes.
        let layout = PointerLayout::default();
        let mut trace = Vec::new();
        for i in 0..64u64 {
            let signed = layout.compose(0x4000_0000 + i * 0x1000, i % 7, 1);
            trace.push(Op::BndStr {
                pointer: signed,
                size: 4096,
            });
            for j in 0..24u64 {
                trace.push(Op::Load {
                    pointer: signed + j * 64,
                    bytes: 8,
                    chained: j % 3 == 0,
                });
            }
            trace.push(Op::Branch {
                pc: 0x1000 + (i % 16) * 4,
                taken: true,
                mispredicted: i % 9 == 0,
            });
            trace.push(Op::PacCrypto);
            if i % 5 == 0 {
                trace.push(Op::BndClr { pointer: signed });
            }
        }
        for config in [SafetyConfig::Baseline, SafetyConfig::Aos] {
            let mut with_skip = MachineConfig::table_iv(config);
            with_skip.telemetry = true;
            assert!(with_skip.event_skip, "table_iv enables the skip");
            let mut without = with_skip.clone();
            without.event_skip = false;
            let a = Machine::new(with_skip).run(trace.clone());
            let b = Machine::new(without).run(trace.clone());
            assert_eq!(a, b, "event skip changed statistics under {config:?}");
        }
    }

    #[test]
    fn run_batched_matches_run() {
        let layout = PointerLayout::default();
        let signed = layout.compose(0x5000_0000, 0x31, 1);
        let mut trace = vec![Op::BndStr {
            pointer: signed,
            size: 4096,
        }];
        for i in 0..3000u64 {
            trace.push(Op::Load {
                pointer: signed + (i % 512) * 8,
                bytes: 8,
                chained: false,
            });
            trace.push(Op::IntAlu);
        }
        let mut cfg = MachineConfig::table_iv(SafetyConfig::Aos);
        cfg.telemetry = true;
        let plain = Machine::new(cfg.clone()).run(trace.clone());
        let batched = Machine::new(cfg)
            .run_batched(aos_isa::stream::PerOp(trace.into_iter()));
        // Batch-plumbing counters describe delivery, not simulation;
        // everything else must match bit for bit.
        let zeroed = [
            aos_util::Counter::BatchOpsRefilled,
            aos_util::Counter::BatchFallbackOps,
        ];
        assert_eq!(
            plain.telemetry.with_counters_zeroed(&zeroed),
            batched.telemetry.with_counters_zeroed(&zeroed)
        );
        assert_eq!(plain.without_telemetry(), batched.without_telemetry());
        assert!(
            batched
                .telemetry
                .counter(aos_util::Counter::BatchOpsRefilled)
                > 0,
            "the batched path must prove it ran"
        );
    }

    #[test]
    fn run_may_be_called_again_and_accumulates() {
        let mut m = Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline));
        let first = m.run(vec![Op::IntAlu; 100]).retired_ops;
        let second = m.run(vec![Op::IntAlu; 50]).retired_ops;
        assert_eq!(first, 100);
        assert_eq!(second, 150, "statistics accumulate across runs");
    }

    #[test]
    fn stats_ipc_handles_zero() {
        let mut m = Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline));
        let stats = m.run(Vec::new());
        assert_eq!(stats.retired_ops, 0);
        assert!(stats.ipc() <= 8.0);
    }
}
