//! The evaluation machine: a cycle-approximate model of the Table IV
//! core with its cache hierarchy, DRAM, and the AOS hardware attached.
//!
//! The paper evaluates AOS in gem5 on an 8-wide out-of-order AArch64
//! core (2 GHz, 192-entry ROB, 32-entry load and store queues, 48-entry
//! MCQ, 64 KiB L1-D, optional 32 KiB L1-B, 8 MiB L2, 50 ns DRAM). This
//! crate rebuilds that substrate from scratch at the level of detail
//! the paper's *relative* results depend on:
//!
//! - [`cache`] — set-associative, write-back, write-allocate caches
//!   with LRU replacement and per-level byte-traffic counters;
//! - [`hierarchy`] — L1-D (+ optional L1-B for bounds), shared L2,
//!   fixed-latency DRAM; bounds traffic routes through the L1-B when
//!   present, otherwise it contends with data in the L1-D — the
//!   mechanism behind the Fig. 15 ablation;
//! - [`machine`] — in-order issue (8 wide), out-of-order completion,
//!   in-order retirement bounded by ROB/LSQ/MCQ occupancy, branch
//!   mispredict flushes, and the MCU coupled to the pipeline: signed
//!   accesses cannot retire until their bounds check completes
//!   (delayed retirement), `bndstr` row overflows trigger OS-style
//!   gradual resizes, and MCQ back-pressure throttles issue.
//!
//! The model is *cycle-approximate*, not RTL: it reproduces the
//! throughput effects (extra µops, metadata cache pressure, delayed
//! retirement, crypto latency) that produce the paper's normalized
//! results, as documented in `DESIGN.md`.
//!
//! # Examples
//!
//! ```
//! use aos_isa::{Op, SafetyConfig};
//! use aos_sim::{Machine, MachineConfig};
//!
//! let mut machine = Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline));
//! let trace = (0..1000).map(|i| {
//!     if i % 4 == 0 {
//!         Op::Load { pointer: 0x4000 + (i % 64) * 8, bytes: 8, chained: false }
//!     } else {
//!         Op::IntAlu
//!     }
//! });
//! let stats = machine.run(trace);
//! assert!(stats.cycles > 0);
//! assert_eq!(stats.retired_ops, 1000);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod machine;
pub mod tage;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{MemoryHierarchy, TrafficStats};
pub use machine::{BranchModel, Machine, MachineConfig, RunStats};
