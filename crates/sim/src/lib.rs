//! The evaluation machine: a stage-structured out-of-order model of
//! the Table IV core with its cache hierarchy, DRAM, and the AOS
//! hardware attached.
//!
//! The paper evaluates AOS in gem5 on an 8-wide out-of-order AArch64
//! core (2 GHz, 192-entry ROB, 32-entry load and store queues, 48-entry
//! MCQ, 64 KiB L1-D, optional 32 KiB L1-B, 8 MiB L2, 50 ns DRAM). This
//! crate rebuilds that substrate from scratch at the level of detail
//! the paper's *relative* results depend on:
//!
//! - [`cache`] — set-associative, write-back, write-allocate caches
//!   with LRU replacement and per-level byte-traffic counters;
//! - [`hierarchy`] — L1-D (+ optional L1-B for bounds), shared L2,
//!   fixed-latency DRAM; bounds traffic routes through the L1-B when
//!   present, otherwise it contends with data in the L1-D — the
//!   mechanism behind the Fig. 15 ablation;
//! - [`pipeline`] — the default [`machine::SimModel::Stage`] core:
//!   fetch, decode/rename (RAT + physical register file), dispatch,
//!   execute, a load/store queue with store→load forwarding and
//!   store-load replay, a circular reorder buffer with delayed
//!   retirement for precise AOS exceptions (fault latched in the ROB,
//!   raised at commit, everything younger squashed and refetched),
//!   and in-order commit — with the MCU/MCQ and BWB attached as
//!   structural units (MCQ full ⇒ dispatch stall);
//! - [`machine`] — configuration, statistics, and the legacy analytic
//!   cycle-approximate loop kept behind
//!   [`machine::SimModel::Approximate`] as the A/B reference.
//!
//! Neither model is RTL: they reproduce the throughput effects (extra
//! µops, metadata cache pressure, delayed retirement, crypto latency)
//! that produce the paper's normalized results, as documented in
//! `DESIGN.md`.
//!
//! # Examples
//!
//! ```
//! use aos_isa::{Op, SafetyConfig};
//! use aos_sim::{Machine, MachineConfig};
//!
//! let mut machine = Machine::new(MachineConfig::table_iv(SafetyConfig::Baseline));
//! let trace = (0..1000).map(|i| {
//!     if i % 4 == 0 {
//!         Op::Load { pointer: 0x4000 + (i % 64) * 8, bytes: 8, chained: false }
//!     } else {
//!         Op::IntAlu
//!     }
//! });
//! let stats = machine.run(trace);
//! assert!(stats.cycles > 0);
//! assert_eq!(stats.retired_ops, 1000);
//! ```

pub mod cache;
pub mod hierarchy;
pub mod machine;
pub mod pipeline;
pub mod tage;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::{MemoryHierarchy, TrafficStats};
pub use machine::{BranchModel, Machine, MachineConfig, RunStats, SimConfig, SimModel};
