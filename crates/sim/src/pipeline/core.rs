//! The assembled stage core and its cycle loop.
//!
//! Each simulated cycle advances the stages back to front, mirroring
//! the analytic loop's order so that clean-run statistics line up
//! between the two models: MCU tick → HBT migration → writeback →
//! commit → dispatch → stall bookkeeping → event-skip fast-forward.
//!
//! Where the models genuinely differ:
//!
//! - **Precise exceptions.** A failing AOS check is latched on the
//!   faulting op's ROB entry and raised only when that entry reaches
//!   the commit point (delayed retirement). The flush squashes every
//!   younger op — rolling back their renames, LSQ slots and MCQ
//!   entries — and refetches them through the front end after a
//!   redirect penalty. The analytic model charges the fault at event
//!   time and never flushes, so `flushes` is always zero there.
//! - **Memory-order speculation.** Loads probe the store queue: a full
//!   cover by an older resolved store forwards, a same-cycle or
//!   partial overlap replays (`lsq_replays`). The analytic model has
//!   no store queue to disambiguate against.
//! - **Chain dependences** thread through the RAT instead of a scalar
//!   completion time, which is what makes rename rollback on a flush
//!   meaningful.

use aos_isa::Op;
use aos_mcu::{AosException, McuEvent, McuOp};

use crate::machine::{BoundsPort, Machine, MachineConfig, RunStats, StallKind};

use super::fetch::FetchUnit;
use super::issue::IssueQueue;
use super::lsq::{LoadPath, LoadStoreQueue, LsqEntry};
use super::rename::{RegisterAliasTable, CHAIN_REG};
use super::rob::{ReorderBuffer, RobEntry};

/// The stage-structured pipeline state, one instance per [`Machine`].
pub struct StageCore {
    /// Front end: trace tap, parking slot, refetch buffer, redirect.
    pub fetch: FetchUnit,
    /// Decode/rename.
    pub rat: RegisterAliasTable,
    /// Issue window / writeback scheduler.
    pub issue: IssueQueue,
    /// Split load/store queues.
    pub lsq: LoadStoreQueue,
    /// The reorder buffer.
    pub rob: ReorderBuffer,
}

impl StageCore {
    /// Builds the core from the machine geometry. The physical
    /// register file is sized for the ROB window so rename can never
    /// run out of registers.
    pub fn new(config: &MachineConfig) -> Self {
        Self {
            fetch: FetchUnit::new(),
            rat: RegisterAliasTable::new(config.rob_entries),
            issue: IssueQueue::new(),
            lsq: LoadStoreQueue::new(config.lsq_loads, config.lsq_stores),
            rob: ReorderBuffer::new(config.rob_entries),
        }
    }
}

impl Machine {
    /// The stage-structured run loop ([`crate::SimModel::Stage`]).
    pub(crate) fn run_stage<I: Iterator<Item = Op>>(&mut self, mut trace: I) -> RunStats {
        loop {
            self.stage_tick_mcu();
            if self.hbt.in_migration() {
                self.hbt.step_migration(self.config.migration_rows_per_cycle);
            }
            self.stage.issue.drain_completed(self.now, &mut self.stage.rob);
            let committed = self.stage_commit();
            let (dispatched, stall_kind) = self.stage_dispatch(&mut trace);
            let stalled = dispatched == 0
                && (self.stage.fetch.has_buffered() || !self.stage.rob.is_empty());
            if stalled && self.stage.fetch.has_buffered() {
                self.stall_cycles += 1;
            }
            self.prev_cycle_stalled = stalled;
            // Event-skip fast-forward, exactly as in the analytic loop:
            // when the cycle did nothing and every in-flight operation
            // waits on a known future cycle, jump there and replay the
            // per-cycle stall bookkeeping the skipped iterations would
            // have charged. Writebacks inside the gap are safe to skip
            // past — completion only matters once the entry reaches the
            // commit point, and the ROB head is a wake candidate.
            if self.config.event_skip
                && dispatched == 0
                && committed == 0
                && !self.hbt.in_migration()
                && (self.stage.fetch.has_buffered()
                    || !self.stage.rob.is_empty()
                    || !self.mcu.is_empty())
            {
                let wake = self.stage_wake_cycle();
                if wake != u64::MAX && wake > self.now + 1 {
                    let skipped = wake - self.now - 1;
                    if self.stage.fetch.has_buffered() {
                        self.stall_cycles += skipped;
                    }
                    match stall_kind {
                        StallKind::Rob => self.stalls_rob += skipped,
                        StallKind::Lsq => self.stalls_lsq += skipped,
                        StallKind::Mcq => self.stalls_mcq += skipped,
                        StallKind::Fetch | StallKind::None => {}
                    }
                    self.now += skipped;
                }
            }
            self.now += 1;
            if !self.stage.fetch.has_buffered()
                && self.stage.rob.is_empty()
                && self.mcu.is_empty()
            {
                // Trace might still hold ops (dispatch broke on width).
                match trace.next() {
                    Some(op) => self.stage.fetch.park(op),
                    None => break,
                }
            }
            if self.debug && self.now.is_multiple_of(1_000_000) {
                eprintln!(
                    "[sim] now={} retired={} rob={} mcu={} loads={} stores={} inflight={}",
                    self.now,
                    self.retired_ops,
                    self.stage.rob.len(),
                    self.mcu.len(),
                    self.stage.lsq.loads_len(),
                    self.stage.lsq.stores_len(),
                    self.stage.issue.len(),
                );
            }
            assert!(self.now < 1 << 40, "simulation failed to make progress");
        }
        self.collect_stats()
    }

    /// The earliest future cycle at which the frozen pipeline can make
    /// progress (see the analytic model's `wake_cycle`; the only
    /// stage-specific candidate is the uncompleted ROB head).
    fn stage_wake_cycle(&self) -> u64 {
        let mut wake = u64::MAX;
        if let Some(head) = self.stage.rob.head() {
            if !head.completed {
                // Writeback marked everything due this cycle, so an
                // uncompleted head strictly postdates `now`.
                wake = head.complete_at;
            }
            // A completed head still blocked is waiting on its MCQ
            // entry; the MCU candidate below covers it.
        }
        if self.config.aos_enabled && !self.mcu.is_empty() {
            wake = wake.min(self.mcu.next_wake(self.now));
        }
        if self.stage.fetch.resume_at > self.now {
            wake = wake.min(self.stage.fetch.resume_at);
        }
        wake
    }

    /// Steps the MCU and latches any raised exception on the faulting
    /// op's ROB entry, to be raised precisely at the commit point. The
    /// growable-table path (a bounds store that fails only because the
    /// row is full) is an OS resize + retry, not a fault — identical
    /// to the analytic model.
    fn stage_tick_mcu(&mut self) {
        if !self.config.aos_enabled || self.mcu.is_empty() {
            return;
        }
        let mut port = BoundsPort {
            hierarchy: &mut self.hierarchy,
        };
        self.mcu
            .tick(self.now, &mut self.hbt, &mut port, &mut self.mcu_events);
        let events = std::mem::take(&mut self.mcu_events);
        for ev in &events {
            if let McuEvent::Exception { id, exception } = ev {
                if matches!(exception, AosException::BoundsStoreFailure { .. })
                    && self.hbt.try_begin_resize().is_ok()
                {
                    // OS handler: allocate a doubled table, migrate in
                    // the background, and retry the store (§V-F3).
                    self.hbt_resizes += 1;
                    self.mcu.retry(*id);
                    continue;
                }
                // Everything else is a real fault: latch it on the
                // owning ROB entry for delayed retirement. The latch
                // also marks the entry completed — the op produces an
                // exception, not a value.
                let mut latched = false;
                for e in self.stage.rob.iter_mut() {
                    if e.mcq_id == Some(*id) {
                        e.faulted = true;
                        e.completed = true;
                        latched = true;
                        break;
                    }
                }
                if !latched {
                    // The owning entry is gone (cannot happen while
                    // flushes squash MCQ entries alongside ROB entries;
                    // kept as a defensive fallback so a model bug
                    // degrades to event-time accounting, not a hang).
                    self.violations += 1;
                    self.telemetry.count(aos_util::Counter::SimViolations);
                    self.mcu.drop_failed(*id);
                }
            }
        }
        self.mcu_events = events;
        self.mcu_events.clear();
        // Drain any functional-path access recording (see the analytic
        // model's tick for why this stays empty in timing mode).
        if self.hbt.pending_accesses() > 0 {
            self.bounds_lines.clear();
            self.hbt.drain_accesses_into(&mut self.bounds_lines);
        }
    }

    /// Retires up to `issue_width` completed ops from the ROB head; a
    /// faulted head raises its exception and flushes instead.
    fn stage_commit(&mut self) -> u32 {
        let mut committed = 0;
        while committed < self.config.issue_width {
            let Some(head) = self.stage.rob.head() else { break };
            if !head.completed {
                break;
            }
            if head.faulted {
                self.stage_raise_and_flush();
                committed += 1;
                break;
            }
            if let Some(id) = head.mcq_id {
                // can_retire + mark_committed in one queue lookup.
                if !self.mcu.commit_if_retirable(id) {
                    break;
                }
            }
            let head = self.stage.rob.pop_head();
            self.stage_release(&head);
            committed += 1;
        }
        committed
    }

    /// Architectural retirement bookkeeping shared by clean commits and
    /// the faulting op itself (which retires by raising — the OS
    /// "report and resume" policy then drops it).
    fn stage_release(&mut self, entry: &RobEntry) {
        if entry.is_load || entry.is_store {
            self.stage.lsq.release(entry.seq, entry.is_store);
        }
        if let Some(dest) = entry.dest {
            self.stage.rat.commit(&dest);
        }
        // The mix is recorded at commit: squashed wrong-path ops never
        // count, refetched ops count exactly once.
        self.mix.record(&entry.op, self.config.layout);
        self.retired_ops += 1;
    }

    /// The precise-exception path: raise the latched fault at the
    /// commit point, squash everything younger (ROB, renames, LSQ,
    /// MCQ), refetch the squashed ops through the front end, and
    /// redirect fetch.
    fn stage_raise_and_flush(&mut self) {
        let head = self.stage.rob.pop_head();
        self.violations += 1;
        self.telemetry.count(aos_util::Counter::SimViolations);
        if let Some(id) = head.mcq_id {
            self.mcu.drop_failed(id);
            self.mcu.squash_newer(id);
        }
        self.stage_release(&head);
        self.stage.fetch.begin_flush();
        while let Some(e) = self.stage.rob.pop_tail() {
            // Youngest-first: each rollback undoes the current mapping,
            // and each prepend lands in front, restoring program order.
            if let Some(dest) = e.dest {
                self.stage.rat.rollback(&dest);
            }
            self.stage.fetch.prepend_squashed(e.op);
        }
        self.stage.lsq.squash_newer(head.seq);
        self.flushes += 1;
        self.stage.fetch.resume_at = self
            .stage
            .fetch
            .resume_at
            .max(self.now + self.config.mispredict_penalty);
    }

    /// Renames and dispatches up to `issue_width` ops into the ROB,
    /// LSQ, issue window and MCQ, charging structural stalls to the
    /// unit that blocked (a full MCQ back-pressures dispatch exactly
    /// like a full ROB — the paper's §IX-A effect).
    fn stage_dispatch(
        &mut self,
        trace: &mut impl Iterator<Item = Op>,
    ) -> (u32, StallKind) {
        let mut dispatched = 0;
        let mut stall = StallKind::None;
        while dispatched < self.config.issue_width {
            if self.now < self.stage.fetch.resume_at {
                stall = StallKind::Fetch;
                break;
            }
            let Some(op) = self.stage.fetch.take(trace) else {
                break;
            };
            // Structural hazards.
            if self.stage.rob.is_full() {
                self.stalls_rob += 1;
                stall = StallKind::Rob;
                self.stage.fetch.park(op);
                break;
            }
            let memref = op.memory_ref(self.config.layout);
            let takes_lsq = op.occupies_lsq();
            if let Some(m) = memref {
                // LSQ entries are held from dispatch until retirement,
                // as in real hardware.
                let full = takes_lsq
                    && if m.is_store {
                        self.stage.lsq.stores_full()
                    } else {
                        self.stage.lsq.loads_full()
                    };
                if full {
                    self.stalls_lsq += 1;
                    stall = StallKind::Lsq;
                    self.stage.fetch.park(op);
                    break;
                }
            }
            let to_mcu = self.config.aos_enabled && op.needs_mcu();
            if to_mcu && !self.mcu.has_capacity() {
                self.stalls_mcq += 1;
                stall = StallKind::Mcq;
                self.stage.fetch.park(op);
                break;
            }

            // Rename + execute. Pointer-chasing loads read the chain
            // register: they cannot start until the previous link of
            // the traversal delivered their address.
            let chained = matches!(op, Op::Load { chained: true, .. });
            let mut start_at = self.now;
            if chained {
                start_at = start_at.max(self.stage.rat.ready_at(CHAIN_REG));
            }
            let complete_at = if let Some(m) = memref {
                // The cache access always happens — even a forwarded
                // load probes the hierarchy — so cache and traffic
                // statistics stay comparable with the analytic model.
                let latency = if m.metadata {
                    self.hierarchy.access_bounds(m.addr, m.bytes, m.is_store)
                } else {
                    self.hierarchy.access_data(m.addr, m.bytes, m.is_store)
                };
                if m.is_store {
                    // Stores retire once address and data are ready and
                    // drain from the post-commit store buffer; their
                    // cache latency is charged as traffic, not as a
                    // retirement block.
                    self.now + 1
                } else {
                    let path = if takes_lsq {
                        self.stage.lsq.classify_load(m.addr, m.bytes, self.now)
                    } else {
                        LoadPath::Normal
                    };
                    match path {
                        LoadPath::Normal => start_at + latency,
                        // Forwarded data arrives a cycle after both the
                        // load's start and the store's data — never
                        // slower than an L1 hit.
                        LoadPath::Forward { data_ready_at } => {
                            start_at.max(data_ready_at) + 1
                        }
                        // One bubble to re-issue past the conflicting
                        // store, then the ordinary access latency.
                        LoadPath::Replay => {
                            self.lsq_replays += 1;
                            start_at + latency + 1
                        }
                    }
                }
            } else {
                self.now + op.exec_latency()
            };
            let dest = if memref.is_some_and(|m| !m.is_store) {
                let logical = if chained {
                    CHAIN_REG
                } else {
                    self.stage.rat.next_scratch()
                };
                Some(self.stage.rat.rename(logical, complete_at))
            } else {
                None
            };
            if let Op::Branch {
                pc,
                taken,
                mispredicted,
            } = op
            {
                let missed = match &mut self.tage {
                    Some(tage) => {
                        let prediction = tage.predict(pc);
                        tage.update(pc, taken, prediction)
                    }
                    None => mispredicted,
                };
                if missed {
                    if self.prev_cycle_stalled {
                        // The front end was already blocked, so the
                        // wrong path never issued (§IX-A back-pressure
                        // effect).
                        self.waived_mispredicts += 1;
                    } else {
                        self.charged_mispredicts += 1;
                        self.stage.fetch.resume_at = self
                            .stage
                            .fetch
                            .resume_at
                            .max(complete_at + self.config.mispredict_penalty);
                    }
                }
            }
            let mcq_id = if to_mcu {
                let mcu_op = match op {
                    Op::Load { pointer, .. } => McuOp::Access {
                        pointer,
                        is_store: false,
                    },
                    Op::Store { pointer, .. } => McuOp::Access {
                        pointer,
                        is_store: true,
                    },
                    Op::BndStr { pointer, size } => McuOp::BndStr { pointer, size },
                    Op::BndClr { pointer } => McuOp::BndClr { pointer },
                    _ => unreachable!("needs_mcu covers only memory and bounds ops"),
                };
                Some(
                    self.mcu
                        .issue(mcu_op, start_at)
                        .unwrap_or_else(|_| unreachable!("capacity checked above")),
                )
            } else {
                None
            };
            let (seq, slot) = self.stage.rob.alloc(RobEntry {
                seq: 0, // assigned by the ROB
                op,
                complete_at,
                completed: false,
                faulted: false,
                mcq_id,
                is_load: takes_lsq && memref.is_some_and(|m| !m.is_store),
                is_store: takes_lsq && memref.is_some_and(|m| m.is_store),
                dest,
            });
            if takes_lsq {
                if let Some(m) = memref {
                    let entry = LsqEntry {
                        seq,
                        addr: m.addr,
                        bytes: m.bytes,
                        dispatched_at: self.now,
                        data_ready_at: complete_at,
                    };
                    if m.is_store {
                        self.stage.lsq.push_store(entry);
                    } else {
                        self.stage.lsq.push_load(entry);
                    }
                }
            }
            self.stage.issue.dispatch(complete_at, seq, slot);
            dispatched += 1;
            // Call-path QARMA (pacia/autia) sits on the critical path:
            // end the dispatch group, costing roughly one fetch bubble.
            if matches!(op, Op::PacCrypto) {
                break;
            }
        }
        (dispatched, stall)
    }
}
