//! The reorder buffer: a fixed-capacity circular buffer of in-flight
//! ops in program order.
//!
//! Every dispatched op allocates the tail entry and receives a
//! monotonically increasing sequence number; commit retires from the
//! head, and a precise-exception flush pops from the tail. Sequence
//! numbers are never reused, so a stale writeback (scheduled before a
//! flush squashed its entry) can be recognized by comparing the seq it
//! recorded against the seq currently occupying the slot.

use aos_isa::Op;

use super::rename::Rename;

/// One in-flight op.
#[derive(Debug, Clone)]
pub struct RobEntry {
    /// Program-order sequence number (globally unique per machine).
    pub seq: u64,
    /// The op itself — kept so a flush can refetch it.
    pub op: Op,
    /// Cycle the op's result is (or will be) available.
    pub complete_at: u64,
    /// Set by writeback once `complete_at` has passed.
    pub completed: bool,
    /// A precise AOS exception latched on this entry, to be raised
    /// when the entry reaches the commit point (delayed retirement).
    pub faulted: bool,
    /// The MCU queue entry coupled to this op, when AOS is checking.
    pub mcq_id: Option<u64>,
    /// Whether the op holds a load-queue entry until retirement.
    pub is_load: bool,
    /// Whether the op holds a store-queue entry until retirement.
    pub is_store: bool,
    /// Register-rename bookkeeping for rollback/commit, when the op
    /// wrote a destination register.
    pub dest: Option<Rename>,
}

/// The circular reorder buffer.
#[derive(Debug)]
pub struct ReorderBuffer {
    slots: Vec<Option<RobEntry>>,
    head: usize,
    len: usize,
    /// Sequence number the next allocated entry receives.
    next_seq: u64,
}

impl ReorderBuffer {
    /// An empty buffer with `capacity` slots.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ROB needs at least one entry");
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            len: 0,
            next_seq: 0,
        }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are in flight.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether dispatch must stall.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Total capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Allocates the tail entry, assigning its sequence number.
    /// Returns `(seq, slot)` — the slot index is what writeback uses
    /// to find the entry again without assuming seq contiguity.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — the dispatch stage checks
    /// [`ReorderBuffer::is_full`] first.
    pub fn alloc(&mut self, mut entry: RobEntry) -> (u64, usize) {
        assert!(!self.is_full(), "ROB overflow: dispatch must check first");
        let seq = self.next_seq;
        self.next_seq += 1;
        entry.seq = seq;
        let idx = (self.head + self.len) % self.slots.len();
        self.slots[idx] = Some(entry);
        self.len += 1;
        (seq, idx)
    }

    /// The sequence number the next allocation will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The oldest in-flight entry.
    pub fn head(&self) -> Option<&RobEntry> {
        if self.len == 0 {
            None
        } else {
            self.slots[self.head].as_ref()
        }
    }

    /// Retires the oldest entry.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn pop_head(&mut self) -> RobEntry {
        assert!(self.len > 0, "commit from an empty ROB");
        let entry = self.slots[self.head]
            .take()
            .expect("occupied slot within len");
        self.head = (self.head + 1) % self.slots.len();
        self.len -= 1;
        entry
    }

    /// Squashes the youngest entry (precise-exception flush walks the
    /// tail toward the head).
    pub fn pop_tail(&mut self) -> Option<RobEntry> {
        if self.len == 0 {
            return None;
        }
        let idx = (self.head + self.len - 1) % self.slots.len();
        self.len -= 1;
        Some(self.slots[idx].take().expect("occupied slot within len"))
    }

    /// Marks the entry in `slot` completed iff it still holds `seq` —
    /// the writeback path. A flush that squashed the entry (and maybe
    /// reused the slot for a refetched op) makes the writeback stale;
    /// it is dropped and `false` returned.
    pub fn complete_if_current(&mut self, slot: usize, seq: u64) -> bool {
        match self.slots.get_mut(slot).and_then(Option::as_mut) {
            Some(e) if e.seq == seq => {
                e.completed = true;
                true
            }
            _ => false,
        }
    }

    /// Mutable program-order iteration, oldest first (the exception
    /// latch path scans for the entry coupled to a faulting MCQ id —
    /// rare enough that a walk beats carrying an id→slot map).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut RobEntry> {
        let (head, len, cap) = (self.head, self.len, self.slots.len());
        let (tail_part, head_part) = self.slots.split_at_mut(head);
        head_part
            .iter_mut()
            .chain(tail_part.iter_mut())
            .filter_map(Option::as_mut)
            .take(len.min(cap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(complete_at: u64) -> RobEntry {
        RobEntry {
            seq: 0,
            op: Op::IntAlu,
            complete_at,
            completed: false,
            faulted: false,
            mcq_id: None,
            is_load: false,
            is_store: false,
            dest: None,
        }
    }

    #[test]
    fn wraps_around_the_circular_storage() {
        // A 4-entry ROB cycled through 100 allocations: the head/tail
        // indices wrap many times while seq stays monotonic and
        // program order is preserved.
        let mut rob = ReorderBuffer::new(4);
        let mut expected_head = 0u64;
        for i in 0..100u64 {
            let (seq, _) = rob.alloc(entry(i));
            assert_eq!(seq, i);
            if rob.is_full() {
                let head = rob.pop_head();
                assert_eq!(head.seq, expected_head, "FIFO order across wrap");
                assert_eq!(head.complete_at, expected_head);
                expected_head += 1;
            }
        }
        while !rob.is_empty() {
            assert_eq!(rob.pop_head().seq, expected_head);
            expected_head += 1;
        }
        assert_eq!(expected_head, 100);
        assert_eq!(rob.next_seq(), 100);
    }

    #[test]
    fn stale_writebacks_after_a_squash_are_dropped() {
        let mut rob = ReorderBuffer::new(3);
        let (a, a_slot) = rob.alloc(entry(1));
        let (b, b_slot) = rob.alloc(entry(2));
        let (c, c_slot) = rob.alloc(entry(3));
        assert!(rob.is_full());
        // Squash the two youngest (flush path).
        assert_eq!(rob.pop_tail().map(|e| e.seq), Some(c));
        assert_eq!(rob.pop_tail().map(|e| e.seq), Some(b));
        assert!(!rob.complete_if_current(b_slot, b), "squashed seq is stale");
        assert!(!rob.complete_if_current(c_slot, c));
        assert!(rob.complete_if_current(a_slot, a), "survivor completes");
        // A refetched op reuses the slot under a fresh seq; the old
        // seq still must not resolve.
        let (b2, b2_slot) = rob.alloc(entry(4));
        assert!(b2 > c, "sequence numbers are never reused");
        assert_eq!(b2_slot, b_slot, "slot storage is reused");
        assert!(!rob.complete_if_current(b_slot, b));
        assert!(rob.complete_if_current(b2_slot, b2));
        // Drain across the wrap point.
        assert_eq!(rob.pop_head().seq, a);
        assert_eq!(rob.pop_head().seq, b2);
        assert!(rob.pop_tail().is_none());
    }

    #[test]
    fn iter_mut_walks_oldest_first_across_wrap() {
        let mut rob = ReorderBuffer::new(3);
        rob.alloc(entry(0));
        rob.alloc(entry(1));
        rob.pop_head();
        rob.alloc(entry(2));
        rob.alloc(entry(3)); // wraps into slot 0
        let seqs: Vec<u64> = rob.iter_mut().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
    }
}
