//! The stage-structured out-of-order core ([`SimModel::Stage`]): the
//! pipeline decomposed into first-class components instead of the
//! analytic shortcuts of the legacy loop.
//!
//! - [`fetch::FetchUnit`] — the trace tap, structural-hazard parking
//!   slot, post-flush refetch buffer, and redirect timer.
//! - [`rename::RegisterAliasTable`] — decode/rename; threads the
//!   pointer-chase dependence through a real RAT with rollback.
//! - [`issue::IssueQueue`] — the issue window / writeback scheduler.
//! - [`lsq::LoadStoreQueue`] — split load/store queues with a
//!   store→load forwarding and store-load replay path.
//! - [`rob::ReorderBuffer`] — circular ROB; precise AOS exceptions are
//!   latched on the faulting entry and raised when it reaches the
//!   commit point (delayed retirement, paper §V-B), squashing younger
//!   ops and refetching them.
//! - [`core::StageCore`] — the assembled core plus the cycle loop
//!   (`Machine::run_stage`) wiring the stages to the MCU/BWB and the
//!   memory hierarchy. The MCU's check queue is a structural unit of
//!   this pipeline: a full MCQ back-pressures dispatch exactly like a
//!   full ROB or LSQ.
//!
//! [`SimModel::Stage`]: crate::SimModel::Stage

pub mod core;
pub mod fetch;
pub mod issue;
pub mod lsq;
pub mod rename;
pub mod rob;

pub use self::core::StageCore;
