//! The issue window: dispatched ops wait here (the reservation-station
//! role) until their completion cycle, then write back to the ROB.
//!
//! The trace vocabulary resolves every operand time at dispatch (the
//! RAT supplies source-ready cycles, the cache model the latency), so
//! the station does not re-arbitrate execution units; what it models
//! structurally is the *writeback* side — which in-flight op completes
//! next, and when the frozen pipeline can next make progress (the
//! event-skip wake candidate).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::rob::ReorderBuffer;

/// One scheduled writeback.
type Pending = Reverse<(u64, u64, usize)>; // (complete_at, seq, rob slot)

/// The issue window / writeback scheduler.
#[derive(Debug, Default)]
pub struct IssueQueue {
    heap: BinaryHeap<Pending>,
}

impl IssueQueue {
    /// An empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// In-flight (dispatched, not yet written back) ops.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Accepts a dispatched op that completes at `complete_at`.
    pub fn dispatch(&mut self, complete_at: u64, seq: u64, rob_slot: usize) {
        self.heap.push(Reverse((complete_at, seq, rob_slot)));
    }

    /// The earliest scheduled writeback cycle, if any.
    pub fn next_event(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// Writes back every op whose completion cycle has arrived,
    /// marking its ROB entry completed. Writebacks whose entry was
    /// squashed by a flush are stale and dropped (the ROB checks the
    /// seq). Returns how many live writebacks fired.
    pub fn drain_completed(&mut self, now: u64, rob: &mut ReorderBuffer) -> usize {
        let mut fired = 0;
        while let Some(&Reverse((t, seq, slot))) = self.heap.peek() {
            if t > now {
                break;
            }
            self.heap.pop();
            if rob.complete_if_current(slot, seq) {
                fired += 1;
            }
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::super::rob::{ReorderBuffer, RobEntry};
    use super::*;
    use aos_isa::Op;

    fn entry(complete_at: u64) -> RobEntry {
        RobEntry {
            seq: 0,
            op: Op::IntAlu,
            complete_at,
            completed: false,
            faulted: false,
            mcq_id: None,
            is_load: false,
            is_store: false,
            dest: None,
        }
    }

    #[test]
    fn writes_back_in_completion_order_and_drops_stale_entries() {
        let mut rob = ReorderBuffer::new(4);
        let mut iq = IssueQueue::new();
        let (a, a_slot) = rob.alloc(entry(10));
        let (b, b_slot) = rob.alloc(entry(5));
        iq.dispatch(10, a, a_slot);
        iq.dispatch(5, b, b_slot);
        assert_eq!(iq.next_event(), Some(5), "younger op completes first");
        assert_eq!(iq.drain_completed(4, &mut rob), 0, "nothing due yet");
        assert_eq!(iq.drain_completed(5, &mut rob), 1);
        // Squash the older (never: flushes squash younger — simulate a
        // stale writeback by squashing b's slot via pop_tail).
        rob.pop_tail();
        assert_eq!(iq.drain_completed(20, &mut rob), 1, "a fires, b was live-checked already");
        assert!(iq.is_empty());
    }
}
