//! The load/store queue: split load and store queues whose entries are
//! held from dispatch until retirement, with a store→load forwarding
//! and store-load replay path over the store queue.
//!
//! Store entries record their address, width, and the cycle their data
//! is produced. A later load that is fully covered by an older
//! in-flight store *forwards* — it completes one cycle after both its
//! own start and the store's data are available, never slower than an
//! L1 hit. A load dispatched in the same cycle as an overlapping older
//! store speculated past an unresolved store address and *replays*
//! (one bubble); a partial overlap cannot forward and replays too.
//! The cache access is still performed either way so the memory
//! hierarchy observes identical traffic to the analytic model.

use std::collections::VecDeque;

/// One queue entry.
#[derive(Debug, Clone, Copy)]
pub struct LsqEntry {
    /// ROB sequence number of the owning op.
    pub seq: u64,
    /// Byte address of the access.
    pub addr: u64,
    /// Access width in bytes.
    pub bytes: u32,
    /// Cycle the op dispatched.
    pub dispatched_at: u64,
    /// For stores: cycle the store's data value is produced.
    pub data_ready_at: u64,
}

/// How a load interacts with the older stores in the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPath {
    /// No older in-flight store overlaps: ordinary cache access.
    Normal,
    /// Fully covered by an older resolved store: forward the data.
    Forward {
        /// Cycle the forwarding store's data is available.
        data_ready_at: u64,
    },
    /// Overlaps an older store it cannot forward from (same-cycle
    /// dispatch — the store address was still unresolved when the
    /// load issued — or a partial overlap): replay after the store.
    Replay,
}

/// The split load/store queues.
#[derive(Debug)]
pub struct LoadStoreQueue {
    loads: VecDeque<LsqEntry>,
    stores: VecDeque<LsqEntry>,
    load_cap: usize,
    store_cap: usize,
    /// Loads served by store→load forwarding.
    pub forwards: u64,
    /// Loads replayed on a store-order conflict.
    pub replays: u64,
}

impl LoadStoreQueue {
    /// Empty queues with the given capacities.
    pub fn new(load_cap: usize, store_cap: usize) -> Self {
        Self {
            loads: VecDeque::with_capacity(load_cap),
            stores: VecDeque::with_capacity(store_cap),
            load_cap,
            store_cap,
            forwards: 0,
            replays: 0,
        }
    }

    /// Whether a load can allocate.
    pub fn loads_full(&self) -> bool {
        self.loads.len() >= self.load_cap
    }

    /// Whether a store can allocate.
    pub fn stores_full(&self) -> bool {
        self.stores.len() >= self.store_cap
    }

    /// In-flight loads.
    pub fn loads_len(&self) -> usize {
        self.loads.len()
    }

    /// In-flight stores.
    pub fn stores_len(&self) -> usize {
        self.stores.len()
    }

    /// Allocates a load entry (dispatch order = program order).
    pub fn push_load(&mut self, entry: LsqEntry) {
        debug_assert!(!self.loads_full());
        self.loads.push_back(entry);
    }

    /// Allocates a store entry.
    pub fn push_store(&mut self, entry: LsqEntry) {
        debug_assert!(!self.stores_full());
        self.stores.push_back(entry);
    }

    /// Classifies a load about to dispatch against the older stores in
    /// the window. Scans youngest-first so the forwarding source is
    /// the most recent overlapping store, as in hardware.
    pub fn classify_load(&mut self, addr: u64, bytes: u32, now: u64) -> LoadPath {
        let load_end = addr + bytes as u64;
        for store in self.stores.iter().rev() {
            let store_end = store.addr + store.bytes as u64;
            if addr >= store_end || store.addr >= load_end {
                continue; // disjoint
            }
            let covers = store.addr <= addr && store_end >= load_end;
            if covers && store.dispatched_at < now {
                self.forwards += 1;
                return LoadPath::Forward {
                    data_ready_at: store.data_ready_at,
                };
            }
            // Same-cycle dispatch (address unresolved when the load
            // issued) or partial overlap: the load replays.
            self.replays += 1;
            return LoadPath::Replay;
        }
        LoadPath::Normal
    }

    /// Releases the head entry at commit. Commit is in order, so the
    /// retiring op's entry is always at the front of its queue.
    pub fn release(&mut self, seq: u64, is_store: bool) {
        let queue = if is_store {
            &mut self.stores
        } else {
            &mut self.loads
        };
        let front = queue.pop_front();
        debug_assert_eq!(front.map(|e| e.seq), Some(seq), "LSQ commit order");
        let _ = front;
    }

    /// Squashes every entry younger than `seq` (flush path).
    pub fn squash_newer(&mut self, seq: u64) {
        while self.loads.back().is_some_and(|e| e.seq > seq) {
            self.loads.pop_back();
        }
        while self.stores.back().is_some_and(|e| e.seq > seq) {
            self.stores.pop_back();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(seq: u64, addr: u64, bytes: u32, dispatched_at: u64) -> LsqEntry {
        LsqEntry {
            seq,
            addr,
            bytes,
            dispatched_at,
            data_ready_at: dispatched_at + 1,
        }
    }

    #[test]
    fn covered_load_forwards_from_an_older_resolved_store() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.push_store(store(1, 0x1000, 16, 5));
        // Dispatched a later cycle, fully inside the store's range.
        let path = lsq.classify_load(0x1008, 8, 6);
        assert_eq!(path, LoadPath::Forward { data_ready_at: 6 });
        assert_eq!(lsq.forwards, 1);
        assert_eq!(lsq.replays, 0);
    }

    #[test]
    fn same_cycle_overlap_replays_instead_of_forwarding() {
        // The load issued in the same cycle as the older store, before
        // the store's address resolved — classic store-load replay.
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.push_store(store(1, 0x1000, 16, 5));
        assert_eq!(lsq.classify_load(0x1000, 8, 5), LoadPath::Replay);
        assert_eq!(lsq.replays, 1);
        assert_eq!(lsq.forwards, 0);
    }

    #[test]
    fn partial_overlap_replays() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.push_store(store(1, 0x1000, 8, 5));
        // Load straddles past the store's end: cannot forward.
        assert_eq!(lsq.classify_load(0x1004, 8, 9), LoadPath::Replay);
        assert_eq!(lsq.replays, 1);
    }

    #[test]
    fn disjoint_stores_leave_loads_on_the_normal_path() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.push_store(store(1, 0x1000, 8, 5));
        assert_eq!(lsq.classify_load(0x2000, 8, 6), LoadPath::Normal);
        assert_eq!(lsq.forwards + lsq.replays, 0);
    }

    #[test]
    fn youngest_overlapping_store_wins() {
        let mut lsq = LoadStoreQueue::new(4, 4);
        lsq.push_store(store(1, 0x1000, 64, 2));
        lsq.push_store(store(2, 0x1000, 64, 4));
        let path = lsq.classify_load(0x1010, 8, 7);
        assert_eq!(
            path,
            LoadPath::Forward { data_ready_at: 5 },
            "forward from seq 2, the youngest older store"
        );
    }

    #[test]
    fn squash_and_release_maintain_the_windows() {
        let mut lsq = LoadStoreQueue::new(2, 2);
        lsq.push_load(LsqEntry {
            seq: 1,
            addr: 0x10,
            bytes: 8,
            dispatched_at: 0,
            data_ready_at: 0,
        });
        lsq.push_store(store(2, 0x20, 8, 0));
        lsq.push_store(store(3, 0x40, 8, 1));
        assert!(lsq.stores_full());
        lsq.squash_newer(2);
        assert_eq!(lsq.stores_len(), 1, "seq 3 squashed");
        assert_eq!(lsq.loads_len(), 1, "older load survives");
        lsq.release(1, false);
        lsq.release(2, true);
        assert_eq!(lsq.loads_len() + lsq.stores_len(), 0);
    }
}
