//! Decode/rename: the register alias table (RAT) and physical
//! register file.
//!
//! The trace vocabulary carries no architectural register numbers, so
//! the logical register space is the minimal one the timing model
//! needs: one *chain* register threading pointer-traversal dependences
//! (a chained load reads the previous link's result and writes its
//! own) and a rotating set of scratch destinations for ordinary loads.
//! What the structure buys over the old scalar `last_chain_complete`
//! is rollback: a precise-exception flush restores the mapping each
//! squashed op overwrote, so a refetched chained load re-reads the
//! value the wrong-path rename clobbered.

/// Logical register count: the chain register plus the scratch ring.
pub const LOGICAL_REGS: usize = 9;

/// The pointer-chase dependence register.
pub const CHAIN_REG: u8 = 0;

/// One rename, with everything needed to undo or retire it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rename {
    /// The logical destination.
    pub logical: u8,
    /// The physical register the op writes.
    pub new_phys: u16,
    /// The physical register the logical name previously mapped to.
    pub old_phys: u16,
}

/// The RAT plus the physical register file's ready times.
#[derive(Debug)]
pub struct RegisterAliasTable {
    map: [u16; LOGICAL_REGS],
    ready_at: Vec<u64>,
    free: Vec<u16>,
    next_scratch: u8,
}

impl RegisterAliasTable {
    /// A table backed by `LOGICAL_REGS + window` physical registers —
    /// with `window` at least the ROB capacity, allocation can never
    /// fail (each in-flight op holds at most one physical register).
    pub fn new(window: usize) -> Self {
        let total = LOGICAL_REGS + window;
        assert!(total <= u16::MAX as usize, "physical register file too large");
        let mut map = [0u16; LOGICAL_REGS];
        for (logical, phys) in map.iter_mut().enumerate() {
            *phys = logical as u16;
        }
        Self {
            map,
            ready_at: vec![0; total],
            free: (LOGICAL_REGS as u16..total as u16).rev().collect(),
            next_scratch: 1,
        }
    }

    /// Cycle at which the current value of `logical` is available.
    pub fn ready_at(&self, logical: u8) -> u64 {
        self.ready_at[self.map[logical as usize] as usize]
    }

    /// Renames `logical` to a fresh physical register whose value
    /// becomes available at `ready_at`, returning the rollback record.
    ///
    /// # Panics
    ///
    /// Panics if the freelist is empty — impossible when the file is
    /// sized for the ROB window (see [`RegisterAliasTable::new`]).
    pub fn rename(&mut self, logical: u8, ready_at: u64) -> Rename {
        let new_phys = self
            .free
            .pop()
            .expect("physical register file sized for the ROB window");
        let old_phys = self.map[logical as usize];
        self.map[logical as usize] = new_phys;
        self.ready_at[new_phys as usize] = ready_at;
        Rename {
            logical,
            new_phys,
            old_phys,
        }
    }

    /// Undoes a rename during a flush: the logical name maps back to
    /// the previous physical register and the speculative one returns
    /// to the freelist. Flushes walk the ROB youngest-first, so the
    /// mapping being undone is always the current one.
    pub fn rollback(&mut self, rename: &Rename) {
        debug_assert_eq!(self.map[rename.logical as usize], rename.new_phys);
        self.map[rename.logical as usize] = rename.old_phys;
        self.free.push(rename.new_phys);
    }

    /// Retires a rename at commit: the overwritten physical register
    /// can never be read again and returns to the freelist.
    pub fn commit(&mut self, rename: &Rename) {
        self.free.push(rename.old_phys);
    }

    /// The next scratch destination for an unchained load — a rotating
    /// ring over the non-chain logical registers.
    pub fn next_scratch(&mut self) -> u8 {
        let reg = self.next_scratch;
        self.next_scratch += 1;
        if self.next_scratch as usize >= LOGICAL_REGS {
            self.next_scratch = 1;
        }
        reg
    }

    /// Free physical registers (diagnostics/tests).
    pub fn free_regs(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rename_threads_the_chain_dependence() {
        let mut rat = RegisterAliasTable::new(8);
        assert_eq!(rat.ready_at(CHAIN_REG), 0);
        let r1 = rat.rename(CHAIN_REG, 105);
        assert_eq!(rat.ready_at(CHAIN_REG), 105, "reader sees the new link");
        let r2 = rat.rename(CHAIN_REG, 230);
        assert_eq!(rat.ready_at(CHAIN_REG), 230);
        assert_ne!(r1.new_phys, r2.new_phys);
        assert_eq!(r2.old_phys, r1.new_phys, "renames chain through the map");
    }

    #[test]
    fn rollback_restores_the_clobbered_mapping() {
        // The satellite test: rename twice, flush the younger rename,
        // and the reader must see the older value again — exactly what
        // a refetched chained load needs after a precise exception.
        let mut rat = RegisterAliasTable::new(8);
        let free_before = rat.free_regs();
        let older = rat.rename(CHAIN_REG, 50);
        let younger = rat.rename(CHAIN_REG, 90);
        assert_eq!(rat.ready_at(CHAIN_REG), 90);
        rat.rollback(&younger);
        assert_eq!(rat.ready_at(CHAIN_REG), 50, "flush re-exposes the old link");
        rat.rollback(&older);
        assert_eq!(rat.ready_at(CHAIN_REG), 0);
        assert_eq!(rat.free_regs(), free_before, "no physical register leaks");
    }

    #[test]
    fn commit_frees_the_overwritten_register() {
        let mut rat = RegisterAliasTable::new(4);
        let free_before = rat.free_regs();
        let r = rat.rename(CHAIN_REG, 10);
        assert_eq!(rat.free_regs(), free_before - 1);
        rat.commit(&r);
        assert_eq!(rat.free_regs(), free_before, "old phys recycled at commit");
        assert_eq!(rat.ready_at(CHAIN_REG), 10, "mapping survives commit");
    }

    #[test]
    fn scratch_ring_rotates_over_non_chain_registers() {
        let mut rat = RegisterAliasTable::new(4);
        let first: Vec<u8> = (0..LOGICAL_REGS - 1).map(|_| rat.next_scratch()).collect();
        assert!(first.iter().all(|&r| r != CHAIN_REG));
        assert_eq!(rat.next_scratch(), first[0], "ring wraps");
    }
}
