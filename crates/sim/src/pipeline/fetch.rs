//! The fetch front end: the trace tap, the one-op pending slot a
//! structural hazard parks on, the post-flush replay buffer, and the
//! fetch-redirect timer.
//!
//! The trace plays the role of a perfect instruction supply, so fetch
//! does not model an I-cache; what it models structurally is the ways
//! ops can be *waiting to re-enter* the pipeline: an op bounced by a
//! full ROB/LSQ/MCQ (`pending`), ops squashed by a precise-exception
//! flush awaiting refetch in program order (`replay`), and the cycles
//! the front end is dark after a mispredict or flush (`resume_at`).

use std::collections::VecDeque;

use aos_isa::Op;

/// The fetch unit.
#[derive(Debug, Default)]
pub struct FetchUnit {
    /// An op that failed a structural check this cycle and re-tries
    /// next cycle — always older than anything in `replay`.
    pending: Option<Op>,
    /// Squashed ops awaiting refetch, in program order.
    replay: VecDeque<Op>,
    /// First cycle the front end may deliver again after a redirect.
    pub resume_at: u64,
}

impl FetchUnit {
    /// A fresh front end.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any op is buffered ahead of the trace (the "work still
    /// exists" half of the stall bookkeeping).
    pub fn has_buffered(&self) -> bool {
        self.pending.is_some() || !self.replay.is_empty()
    }

    /// Delivers the next op in program order: the parked op first,
    /// then refetches, then the trace.
    pub fn take(&mut self, trace: &mut impl Iterator<Item = Op>) -> Option<Op> {
        self.pending
            .take()
            .or_else(|| self.replay.pop_front())
            .or_else(|| trace.next())
    }

    /// Parks an op that failed a structural check; it is redelivered
    /// first by the next [`FetchUnit::take`].
    pub fn park(&mut self, op: Op) {
        debug_assert!(self.pending.is_none(), "only one op parks per cycle");
        self.pending = Some(op);
    }

    /// Begins a flush: the parked op (younger than everything being
    /// squashed) moves behind the refetch window so that
    /// [`FetchUnit::prepend_squashed`] can stack the squashed ops in
    /// front of it.
    pub fn begin_flush(&mut self) {
        if let Some(op) = self.pending.take() {
            self.replay.push_front(op);
        }
    }

    /// Prepends one squashed op. The flush walks the ROB youngest
    /// first, so successive calls stack progressively *older* ops in
    /// front — the buffer ends in program order.
    pub fn prepend_squashed(&mut self, op: Op) {
        self.replay.push_front(op);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_order_is_pending_then_replay_then_trace() {
        let mut fetch = FetchUnit::new();
        let mut trace = vec![Op::IntMul].into_iter();
        fetch.park(Op::IntAlu);
        fetch.begin_flush();
        fetch.prepend_squashed(Op::PacCrypto); // younger squashed op
        fetch.prepend_squashed(Op::FpAlu); // older squashed op
        assert!(fetch.has_buffered());
        assert_eq!(fetch.take(&mut trace), Some(Op::FpAlu));
        assert_eq!(fetch.take(&mut trace), Some(Op::PacCrypto));
        assert_eq!(fetch.take(&mut trace), Some(Op::IntAlu));
        assert!(!fetch.has_buffered(), "buffer drained before the trace");
        assert_eq!(fetch.take(&mut trace), Some(Op::IntMul));
        assert_eq!(fetch.take(&mut trace), None);
    }
}
