//! A set-associative, write-back, write-allocate cache with LRU
//! replacement.

/// Geometry and latency of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (64 throughout Table IV).
    pub line_bytes: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes as u64)
    }
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]`; zero when idle.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The line was present.
    Hit,
    /// The line was filled; `writeback` carries the address of a dirty
    /// victim that must go to the next level.
    Miss {
        /// Evicted dirty line, if any.
        writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// The cache proper.
///
/// # Examples
///
/// ```
/// use aos_sim::{Cache, CacheConfig};
/// use aos_sim::cache::Lookup;
///
/// let mut c = Cache::new(CacheConfig {
///     size_bytes: 1024,
///     ways: 2,
///     line_bytes: 64,
///     hit_latency: 1,
/// });
/// assert!(matches!(c.access(0x1000, false), Lookup::Miss { .. }));
/// assert_eq!(c.access(0x1000, false), Lookup::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All lines in one flat allocation: set `s`, way `w` lives at
    /// `s * ways + w`. The geometry is asserted power-of-two, so the
    /// per-access address split is a shift and a mask instead of
    /// three integer divisions.
    lines: Vec<Line>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    set_shift: u32,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless the geometry is power-of-two sets with at least
    /// one way.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.ways >= 1, "cache needs at least one way");
        assert!(config.line_bytes.is_power_of_two(), "line size must be 2^k");
        let sets = config.sets();
        assert!(sets > 0 && sets.is_power_of_two(), "sets must be 2^k, got {sets}");
        Self {
            config,
            lines: vec![Line::default(); (sets * config.ways as u64) as usize],
            ways: config.ways as usize,
            line_shift: config.line_bytes.trailing_zeros(),
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        (set, tag)
    }

    #[inline]
    fn victim_address(&self, tag: u64, set_idx: usize) -> u64 {
        ((tag << self.set_shift) | set_idx as u64) << self.line_shift
    }

    /// The hit/fill body shared by [`access`](Self::access) and
    /// [`install`](Self::install). Returns `(hit, writeback)`.
    #[inline]
    fn touch(&mut self, addr: u64, is_write: bool) -> (bool, Option<u64>) {
        self.tick += 1;
        let tick = self.tick;
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.lines[set_idx * self.ways..(set_idx + 1) * self.ways];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= is_write;
            return (true, None);
        }
        // Victim: invalid line first, else LRU.
        let victim_idx = set
            .iter()
            .position(|l| !l.valid)
            .unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.lru)
                    .map(|(i, _)| i)
                    .expect("nonzero associativity")
            });
        let victim = std::mem::replace(
            &mut set[victim_idx],
            Line {
                tag,
                valid: true,
                dirty: is_write,
                lru: tick,
            },
        );
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            // Reconstruct the victim's address.
            Some(self.victim_address(victim.tag, set_idx))
        } else {
            None
        };
        (false, writeback)
    }

    /// Accesses the line containing `addr`, allocating on miss.
    pub fn access(&mut self, addr: u64, is_write: bool) -> Lookup {
        let (hit, writeback) = self.touch(addr, is_write);
        if hit {
            self.stats.hits += 1;
            Lookup::Hit
        } else {
            self.stats.misses += 1;
            Lookup::Miss { writeback }
        }
    }

    /// Marks the line containing `addr` present without statistics —
    /// used to install writeback data arriving from an upper level.
    pub fn install(&mut self, addr: u64, dirty: bool) -> Option<u64> {
        let (_, writeback) = self.touch(addr, dirty);
        writeback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64B = 512B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
        })
    }

    #[test]
    fn geometry() {
        let c = tiny();
        assert_eq!(c.config().sets(), 4);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(matches!(c.access(0x100, false), Lookup::Miss { writeback: None }));
        assert_eq!(c.access(0x100, false), Lookup::Hit);
        assert_eq!(c.access(0x13F, false), Lookup::Hit, "same 64B line");
        assert!(matches!(c.access(0x140, false), Lookup::Miss { .. }));
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Three lines mapping to set 0 (stride = sets * 64 = 256).
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // refresh
        c.access(0x200, false); // evicts 0x100
        assert_eq!(c.access(0x000, false), Lookup::Hit);
        assert!(matches!(c.access(0x100, false), Lookup::Miss { .. }));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x100, false);
        let result = c.access(0x200, false); // evicts dirty 0x000
        assert_eq!(result, Lookup::Miss { writeback: Some(0x000) });
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x100, false);
        assert_eq!(c.access(0x200, false), Lookup::Miss { writeback: None });
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // dirty now
        c.access(0x100, false);
        let r = c.access(0x200, false);
        assert_eq!(r, Lookup::Miss { writeback: Some(0x000) });
    }

    #[test]
    fn install_places_line_without_stats() {
        let mut c = tiny();
        let before = c.stats();
        c.install(0x300, true);
        assert_eq!(c.stats().hits, before.hits);
        assert_eq!(c.stats().misses, before.misses);
        assert_eq!(c.access(0x300, false), Lookup::Hit);
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny();
        c.access(0x0, false);
        c.access(0x0, false);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn non_power_of_two_sets_rejected() {
        Cache::new(CacheConfig {
            size_bytes: 192,
            ways: 1,
            line_bytes: 64,
            hit_latency: 1,
        });
    }
}
