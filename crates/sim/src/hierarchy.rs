//! The memory hierarchy: L1-D, optional L1-B (bounds cache), shared
//! L2, DRAM, and inter-level traffic accounting (Fig. 18's metric).

use crate::cache::{Cache, CacheConfig, Lookup};

/// Bytes moved between levels — the paper's network-traffic metric
/// counts "bytes transferred between caches and between the LLC and
/// DRAM".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Bytes moved between the private L1s and the L2 (fills plus
    /// writebacks).
    pub l1_l2_bytes: u64,
    /// Bytes moved between the L2 and DRAM.
    pub l2_dram_bytes: u64,
}

impl TrafficStats {
    /// Total bytes over both links.
    pub fn total_bytes(&self) -> u64 {
        self.l1_l2_bytes + self.l2_dram_bytes
    }
}

/// The hierarchy of Table IV.
///
/// Data accesses go L1-D → L2 → DRAM. Bounds accesses go through the
/// L1-B when configured (the §V-F1 optimization), otherwise they share
/// the L1-D — polluting it, which is exactly the effect the Fig. 15
/// ablation measures.
///
/// # Examples
///
/// ```
/// use aos_sim::MemoryHierarchy;
/// let mut h = MemoryHierarchy::table_iv(true);
/// let cold = h.access_data(0x4000, 4, false);
/// let warm = h.access_data(0x4000, 4, false);
/// assert!(cold > warm, "second access hits the L1");
/// ```
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1d: Cache,
    l1b: Option<Cache>,
    l2: Cache,
    /// Extra cycles when the line's L2 slice is remote (Table IV:
    /// 8-cycle local, 16-cycle remote — a two-slice NUCA L2).
    l2_remote_penalty: u64,
    dram_latency: u64,
    traffic: TrafficStats,
}

impl MemoryHierarchy {
    /// Builds the Table IV hierarchy: 64 KiB/8-way L1-D (1 cycle),
    /// optional 32 KiB/4-way L1-B (1 cycle), 8 MiB/16-way L2
    /// (8 cycles), 100-cycle DRAM (50 ns at 2 GHz).
    pub fn table_iv(with_l1b: bool) -> Self {
        Self::new(
            CacheConfig {
                size_bytes: 64 << 10,
                ways: 8,
                line_bytes: 64,
                hit_latency: 1,
            },
            with_l1b.then_some(CacheConfig {
                size_bytes: 32 << 10,
                ways: 4,
                line_bytes: 64,
                hit_latency: 1,
            }),
            CacheConfig {
                size_bytes: 8 << 20,
                ways: 16,
                line_bytes: 64,
                hit_latency: 8,
            },
            8,
            100,
        )
    }

    /// Builds a hierarchy from explicit cache configurations.
    /// `l2_remote_penalty` is added on top of the L2 hit latency for
    /// lines homed in the remote NUCA slice (Table IV's 8-cycle local
    /// / 16-cycle remote L2).
    pub fn new(
        l1d: CacheConfig,
        l1b: Option<CacheConfig>,
        l2: CacheConfig,
        l2_remote_penalty: u64,
        dram_latency: u64,
    ) -> Self {
        Self {
            l1d: Cache::new(l1d),
            l1b: l1b.map(Cache::new),
            l2: Cache::new(l2),
            l2_remote_penalty,
            dram_latency,
            traffic: TrafficStats::default(),
        }
    }

    /// Whether `line_addr` is homed in the remote L2 slice: lines
    /// interleave across the two slices by line address.
    fn is_remote_slice(&self, line_addr: u64) -> bool {
        self.l2_remote_penalty > 0
            && (line_addr / self.l1d.config().line_bytes as u64) % 2 == 1
    }

    /// Inter-level traffic so far.
    pub fn traffic(&self) -> TrafficStats {
        self.traffic
    }

    /// L1-D statistics.
    pub fn l1d_stats(&self) -> crate::cache::CacheStats {
        self.l1d.stats()
    }

    /// L1-B statistics, if the bounds cache is present.
    pub fn l1b_stats(&self) -> Option<crate::cache::CacheStats> {
        self.l1b.as_ref().map(Cache::stats)
    }

    /// L2 statistics.
    pub fn l2_stats(&self) -> crate::cache::CacheStats {
        self.l2.stats()
    }

    /// Whether a bounds cache is configured.
    pub fn has_l1b(&self) -> bool {
        self.l1b.is_some()
    }

    /// A data access of `bytes` bytes at `addr`; returns total latency
    /// in cycles. Accesses spanning multiple 64-byte lines touch each
    /// line.
    pub fn access_data(&mut self, addr: u64, bytes: u32, is_write: bool) -> u64 {
        self.access_through_l1(addr, bytes, is_write, /*bounds=*/ false)
    }

    /// A bounds (HBT) access, routed through the L1-B when present.
    pub fn access_bounds(&mut self, addr: u64, bytes: u32, is_write: bool) -> u64 {
        self.access_through_l1(addr, bytes, is_write, /*bounds=*/ true)
    }

    fn access_through_l1(&mut self, addr: u64, bytes: u32, is_write: bool, bounds: bool) -> u64 {
        let line_bytes = self.l1d.config().line_bytes as u64;
        let first = addr / line_bytes;
        let last = (addr + bytes.max(1) as u64 - 1) / line_bytes;
        let mut latency = 0u64;
        for line in first..=last {
            let line_addr = line * line_bytes;
            latency = latency.max(self.one_line(line_addr, is_write, bounds));
        }
        latency
    }

    fn one_line(&mut self, line_addr: u64, is_write: bool, bounds: bool) -> u64 {
        let line_bytes = self.l1d.config().line_bytes as u64;
        let (l1, l1_hit_latency) = match &mut self.l1b {
            Some(c) if bounds => {
                let lat = c.config().hit_latency;
                (c, lat)
            }
            _ => {
                let lat = self.l1d.config().hit_latency;
                (&mut self.l1d, lat)
            }
        };
        match l1.access(line_addr, is_write) {
            Lookup::Hit => l1_hit_latency,
            Lookup::Miss { writeback } => {
                // Fill from L2 (and possibly DRAM).
                self.traffic.l1_l2_bytes += line_bytes;
                if let Some(wb) = writeback {
                    self.traffic.l1_l2_bytes += line_bytes;
                    if let Some(l2_wb) = self.l2.install(wb, true) {
                        self.traffic.l2_dram_bytes += 2 * line_bytes;
                        let _ = l2_wb;
                    }
                }
                let slice_penalty = if self.is_remote_slice(line_addr) {
                    self.l2_remote_penalty
                } else {
                    0
                };
                let l2_latency = match self.l2.access(line_addr, false) {
                    Lookup::Hit => self.l2.config().hit_latency + slice_penalty,
                    Lookup::Miss { writeback: l2_wb } => {
                        self.traffic.l2_dram_bytes += line_bytes;
                        if l2_wb.is_some() {
                            self.traffic.l2_dram_bytes += line_bytes;
                        }
                        self.l2.config().hit_latency + slice_penalty + self.dram_latency
                    }
                };
                l1_hit_latency + l2_latency
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_are_hierarchical() {
        let mut h = MemoryHierarchy::table_iv(false);
        // 0x10_0000 is an even line: local slice.
        let dram = h.access_data(0x10_0000, 8, false);
        assert_eq!(dram, 1 + 8 + 100, "cold access reaches DRAM");
        let l1 = h.access_data(0x10_0000, 8, false);
        assert_eq!(l1, 1, "warm access hits L1");
        // Evict from L1 by touching more lines of the same set than
        // its associativity, forcing an L2 hit path.
        let sets = 64 * 1024 / (8 * 64); // 128 sets
        let stride = sets as u64 * 64;
        for i in 1..=8 {
            h.access_data(0x10_0000 + i * stride, 8, false);
        }
        let l2 = h.access_data(0x10_0000, 8, false);
        assert_eq!(l2, 1 + 8, "L1 victim still in the local L2 slice");
    }

    #[test]
    fn remote_l2_slice_costs_more() {
        let mut h = MemoryHierarchy::table_iv(false);
        // Odd line (0x40 offset): remote slice.
        let remote_cold = h.access_data(0x10_0040, 8, false);
        assert_eq!(remote_cold, 1 + 8 + 8 + 100, "remote slice adds 8");
        // Force both lines out of L1, keeping them in L2.
        let sets = 64 * 1024 / (8 * 64);
        let stride = sets as u64 * 64;
        h.access_data(0x10_0000, 8, false);
        for i in 1..=8 {
            h.access_data(0x10_0000 + i * stride, 8, false);
            h.access_data(0x10_0040 + i * stride, 8, false);
        }
        let local = h.access_data(0x10_0000, 8, false);
        let remote = h.access_data(0x10_0040, 8, false);
        assert_eq!(local, 1 + 8, "local slice: 8-cycle L2");
        assert_eq!(remote, 1 + 16, "remote slice: 16-cycle L2");
    }

    #[test]
    fn traffic_counts_fills_and_dram() {
        let mut h = MemoryHierarchy::table_iv(false);
        h.access_data(0x0, 8, false);
        let t = h.traffic();
        assert_eq!(t.l1_l2_bytes, 64, "one fill");
        assert_eq!(t.l2_dram_bytes, 64, "one DRAM fetch");
        h.access_data(0x0, 8, false);
        assert_eq!(h.traffic().total_bytes(), 128, "hits add no traffic");
    }

    #[test]
    fn bounds_route_through_l1b_when_present() {
        let mut h = MemoryHierarchy::table_iv(true);
        h.access_bounds(0x5000, 64, false);
        assert_eq!(h.l1b_stats().unwrap().misses, 1);
        assert_eq!(h.l1d_stats().misses, 0, "L1-D untouched by bounds");
        let warm = h.access_bounds(0x5000, 64, false);
        assert_eq!(warm, 1);
        assert_eq!(h.l1b_stats().unwrap().hits, 1);
    }

    #[test]
    fn bounds_pollute_l1d_without_l1b() {
        let mut h = MemoryHierarchy::table_iv(false);
        assert!(!h.has_l1b());
        h.access_bounds(0x5000, 64, false);
        assert_eq!(h.l1d_stats().misses, 1, "bounds share the L1-D");
        assert!(h.l1b_stats().is_none());
    }

    #[test]
    fn wide_access_touches_multiple_lines() {
        let mut h = MemoryHierarchy::table_iv(false);
        // 24 bytes starting 4 below a line boundary → two lines.
        h.access_data(0x1000 - 4, 24, true);
        assert_eq!(h.l1d_stats().misses, 2);
    }

    #[test]
    fn zero_byte_access_touches_one_line() {
        let mut h = MemoryHierarchy::table_iv(false);
        h.access_data(0x1000, 0, false);
        assert_eq!(h.l1d_stats().misses, 1, "clamped to one byte");
    }

    #[test]
    fn three_line_span_touches_three_lines() {
        let mut h = MemoryHierarchy::table_iv(false);
        h.access_data(0x1000 - 8, 130, false);
        assert_eq!(h.l1d_stats().misses, 3);
    }

    #[test]
    fn dirty_writebacks_add_traffic() {
        let mut h = MemoryHierarchy::new(
            CacheConfig {
                size_bytes: 128, // 1 set × 2 ways
                ways: 2,
                line_bytes: 64,
                hit_latency: 1,
            },
            None,
            CacheConfig {
                size_bytes: 1024,
                ways: 2,
                line_bytes: 64,
                hit_latency: 8,
            },
            0,
            100,
        );
        h.access_data(0x000, 8, true); // dirty
        h.access_data(0x040, 8, false);
        let before = h.traffic().l1_l2_bytes;
        h.access_data(0x080, 8, false); // evicts dirty 0x000
        let after = h.traffic().l1_l2_bytes;
        assert_eq!(after - before, 128, "fill + writeback");
    }
}
