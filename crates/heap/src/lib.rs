//! A bin-based heap allocator model in the style of glibc `malloc`.
//!
//! AOS instruments dynamic memory allocation, so the reproduction needs
//! an allocator that behaves like the one the paper ran on: 16-byte
//! aligned user pointers (the property the bounds-compression scheme of
//! §V-D relies on), boundary-tag chunk headers, LIFO fastbins for small
//! chunks, best-fit reuse with coalescing for larger ones, and a
//! wilderness/top chunk that grows on demand.
//!
//! The allocator is *simulated*: it manages an address space and chunk
//! metadata without owning real backing memory. That is exactly what
//! the workload generator, the bounds table and the security scenarios
//! need — real data bytes live in `aos-core`'s sparse memory when an
//! experiment wants them.
//!
//! The crate also provides [`profile::UsageProfile`], the
//! max-active/allocations/deallocations accounting that reproduces the
//! paper's Tables II and III (gathered there with Valgrind
//! `--trace-malloc`).
//!
//! # Examples
//!
//! ```
//! use aos_heap::{HeapAllocator, HeapConfig};
//!
//! # fn main() -> Result<(), aos_heap::HeapError> {
//! let mut heap = HeapAllocator::new(HeapConfig::default());
//! let a = heap.malloc(100)?;
//! assert_eq!(a.base % 16, 0, "malloc returns 16-byte aligned pointers");
//! assert!(a.usable_size >= 100);
//! heap.free(a.base)?;
//! assert_eq!(heap.profile().live, 0);
//! # Ok(())
//! # }
//! ```

mod alloc;
mod chunk;
pub mod profile;

pub use alloc::{Allocation, FreedChunk, HeapAllocator, HeapConfig, HeapError};
pub use chunk::{Chunk, ChunkState};
