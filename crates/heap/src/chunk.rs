//! Chunk metadata: the boundary-tag view of the heap.

/// Whether a chunk currently backs a live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChunkState {
    /// Returned by `malloc` and not yet freed.
    InUse,
    /// On a free list (fastbin or bin).
    Free,
}

/// One heap chunk. `base` is the *user* pointer (what `malloc`
/// returned); the 16-byte boundary-tag header sits immediately below
/// it, as in glibc.
///
/// # Examples
///
/// ```
/// use aos_heap::{Chunk, ChunkState};
/// let c = Chunk::new(0x2000_0010, 48);
/// assert_eq!(c.header_base(), 0x2000_0000);
/// assert_eq!(c.end(), 0x2000_0040);
/// assert!(c.contains(0x2000_0030));
/// assert_eq!(c.state(), ChunkState::InUse);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Chunk {
    base: u64,
    usable_size: u64,
    state: ChunkState,
}

/// Size of the boundary-tag header below every user pointer
/// (`prev_size` + `size` words).
pub(crate) const HEADER_SIZE: u64 = 16;

impl Chunk {
    /// Creates an in-use chunk with the given user base and usable
    /// size.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 16-byte aligned or `usable_size` is not
    /// a multiple of 16 — both invariants of the allocator.
    pub fn new(base: u64, usable_size: u64) -> Self {
        assert_eq!(base % 16, 0, "chunk base must be 16-byte aligned");
        assert_eq!(usable_size % 16, 0, "usable size must be 16-byte granular");
        Self {
            base,
            usable_size,
            state: ChunkState::InUse,
        }
    }

    /// The user pointer.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Usable bytes from `base`.
    pub fn usable_size(&self) -> u64 {
        self.usable_size
    }

    /// Address of the boundary-tag header.
    pub fn header_base(&self) -> u64 {
        self.base - HEADER_SIZE
    }

    /// One past the last usable byte (= header of the next chunk).
    pub fn end(&self) -> u64 {
        self.base + self.usable_size
    }

    /// Total footprint including the header.
    pub fn footprint(&self) -> u64 {
        self.usable_size + HEADER_SIZE
    }

    /// Whether `addr` lies inside the usable region.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.end()).contains(&addr)
    }

    /// Current state.
    pub fn state(&self) -> ChunkState {
        self.state
    }

    pub(crate) fn set_state(&mut self, state: ChunkState) {
        self.state = state;
    }

    pub(crate) fn set_usable_size(&mut self, usable_size: u64) {
        debug_assert_eq!(usable_size % 16, 0);
        self.usable_size = usable_size;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_consistent() {
        let c = Chunk::new(0x1000, 64);
        assert_eq!(c.base(), 0x1000);
        assert_eq!(c.usable_size(), 64);
        assert_eq!(c.header_base(), 0xFF0);
        assert_eq!(c.end(), 0x1040);
        assert_eq!(c.footprint(), 80);
    }

    #[test]
    fn contains_is_half_open() {
        let c = Chunk::new(0x1000, 64);
        assert!(c.contains(0x1000));
        assert!(c.contains(0x103F));
        assert!(!c.contains(0x1040));
        assert!(!c.contains(0xFFF));
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_base_rejected() {
        Chunk::new(0x1008 + 4, 64);
    }

    #[test]
    #[should_panic(expected = "granular")]
    fn ragged_size_rejected() {
        Chunk::new(0x1000, 60);
    }
}
