//! The allocator itself: fastbins, best-fit bins, splitting,
//! coalescing and top-chunk extension.

use std::collections::BTreeMap;

use crate::chunk::{Chunk, ChunkState, HEADER_SIZE};
use crate::profile::UsageProfile;

/// Allocator configuration.
///
/// # Examples
///
/// ```
/// use aos_heap::HeapConfig;
/// let cfg = HeapConfig {
///     base_addr: 0x4000_0000,
///     ..HeapConfig::default()
/// };
/// assert_eq!(cfg.base_addr, 0x4000_0000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapConfig {
    /// Lowest address of the heap segment (must be 16-byte aligned).
    pub base_addr: u64,
    /// Maximum bytes the segment may grow to.
    pub limit_bytes: u64,
    /// Largest *usable* size that is handled by LIFO fastbins and never
    /// coalesced, mirroring glibc's fastbin threshold.
    pub fastbin_max: u64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        Self {
            base_addr: 0x4000_0000,
            limit_bytes: 1 << 40,
            fastbin_max: 128,
        }
    }
}

/// A successful allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Allocation {
    /// The 16-byte-aligned user pointer.
    pub base: u64,
    /// Usable bytes (≥ the requested size).
    pub usable_size: u64,
}

/// Result of a successful [`HeapAllocator::free`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FreedChunk {
    /// The user pointer that was freed.
    pub base: u64,
    /// Usable size of the chunk at free time.
    pub usable_size: u64,
}

/// Errors surfaced by the allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeapError {
    /// The heap segment would exceed its configured limit.
    OutOfMemory {
        /// Bytes that were requested.
        requested: u64,
    },
    /// `free` was called with an address that is not a live chunk base.
    InvalidFree {
        /// The offending pointer.
        pointer: u64,
    },
    /// `free` was called twice on the same chunk.
    DoubleFree {
        /// The offending pointer.
        pointer: u64,
    },
    /// AOS could not attach bounds metadata to the allocation — the
    /// bounds table is at max associativity, or the size does not fit
    /// the 32-bit field of the Fig. 9 encoding. The chunk is rolled
    /// back, so the heap is unchanged. (Raised by the instrumented
    /// `malloc` in `aos-core`, not by the raw allocator.)
    BoundsMetadata {
        /// Bytes that were requested.
        requested: u64,
        /// Which metadata step failed.
        reason: &'static str,
    },
}

impl std::fmt::Display for HeapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(f, "heap limit exceeded allocating {requested} bytes")
            }
            HeapError::InvalidFree { pointer } => {
                write!(f, "free of {pointer:#x}, which is not an allocation base")
            }
            HeapError::DoubleFree { pointer } => write!(f, "double free of {pointer:#x}"),
            HeapError::BoundsMetadata { requested, reason } => write!(
                f,
                "cannot attach bounds metadata for {requested}-byte allocation: {reason}"
            ),
        }
    }
}

impl std::error::Error for HeapError {}

impl From<HeapError> for aos_util::AosError {
    fn from(e: HeapError) -> Self {
        match e {
            HeapError::OutOfMemory { requested } => aos_util::AosError::exhausted(
                "heap segment",
                format!("{requested} bytes requested"),
            ),
            HeapError::BoundsMetadata { requested, reason } => aos_util::AosError::exhausted(
                "bounds metadata",
                format!("{requested} bytes requested: {reason}"),
            ),
            HeapError::InvalidFree { .. } | HeapError::DoubleFree { .. } => {
                aos_util::AosError::SafetyViolation {
                    detail: e.to_string(),
                }
            }
        }
    }
}

/// The simulated heap allocator.
///
/// See the [crate docs](crate) for the design rationale; the behaviour
/// in one paragraph: small chunks (usable size ≤
/// [`HeapConfig::fastbin_max`]) go to per-size LIFO fastbins and are
/// never coalesced; larger chunks are coalesced with free neighbours on
/// free and served best-fit (with splitting) on malloc; everything else
/// comes from the top of the segment.
#[derive(Debug, Clone)]
pub struct HeapAllocator {
    config: HeapConfig,
    /// Every chunk below `top`, keyed by user base.
    chunks: BTreeMap<u64, Chunk>,
    /// LIFO free lists for small chunks, keyed by usable size.
    fastbins: BTreeMap<u64, Vec<u64>>,
    /// Best-fit free lists for larger chunks, keyed by usable size.
    bins: BTreeMap<u64, Vec<u64>>,
    /// Address where the next chunk header would be placed.
    top: u64,
    profile: UsageProfile,
    telemetry: aos_util::Telemetry,
}

impl HeapAllocator {
    /// Creates an empty heap.
    ///
    /// # Panics
    ///
    /// Panics if `config.base_addr` is not 16-byte aligned. Configs
    /// built from untrusted input go through
    /// [`HeapAllocator::try_new`].
    pub fn new(config: HeapConfig) -> Self {
        Self::try_new(config).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`HeapAllocator::new`] for configurations assembled
    /// from untrusted input (CLI flags, replayed experiment specs).
    ///
    /// # Errors
    ///
    /// Returns [`aos_util::AosError::InvalidInput`] when `base_addr`
    /// is not 16-byte aligned.
    pub fn try_new(config: HeapConfig) -> Result<Self, aos_util::AosError> {
        if config.base_addr % 16 != 0 {
            return Err(aos_util::AosError::invalid_input(
                "heap config",
                format!(
                    "heap base must be 16-byte aligned, got {:#x}",
                    config.base_addr
                ),
            ));
        }
        Ok(Self {
            config,
            chunks: BTreeMap::new(),
            fastbins: BTreeMap::new(),
            bins: BTreeMap::new(),
            top: config.base_addr,
            profile: UsageProfile::default(),
            telemetry: aos_util::Telemetry::disabled(),
        })
    }

    /// Attaches a telemetry handle: allocations, frees and the usable
    /// size-class histogram are recorded into it.
    pub fn with_telemetry(mut self, telemetry: aos_util::Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Records one served allocation of `usable` bytes.
    fn note_alloc_event(&self, usable: u64) {
        self.telemetry.count(aos_util::Counter::HeapAllocs);
        self.telemetry
            .observe(aos_util::telemetry::Hist::HeapAllocSize, usable);
    }

    /// The configuration this heap was built with.
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// Allocation statistics so far.
    pub fn profile(&self) -> &UsageProfile {
        &self.profile
    }

    /// Current end of the heap segment.
    pub fn segment_end(&self) -> u64 {
        self.top
    }

    /// Rounds a request up to the usable-size granule (16 bytes,
    /// minimum 16).
    fn granule(request: u64) -> u64 {
        request.max(1).div_ceil(16) * 16
    }

    /// Allocates `request` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::OutOfMemory`] if the segment limit would be
    /// exceeded.
    pub fn malloc(&mut self, request: u64) -> Result<Allocation, HeapError> {
        let usable = Self::granule(request);

        // 1. Exact-size fastbin hit (LIFO).
        if usable <= self.config.fastbin_max {
            if let Some(base) = self.fastbins.get_mut(&usable).and_then(Vec::pop) {
                let chunk = self
                    .chunks
                    .get_mut(&base)
                    .expect("fastbin entries always have chunk records");
                chunk.set_state(ChunkState::InUse);
                let usable_size = chunk.usable_size();
                self.profile.note_alloc(usable_size);
                self.note_alloc_event(usable_size);
                return Ok(Allocation { base, usable_size });
            }
        }

        // 2. Best-fit search in the sorted bins.
        if let Some((&bin_size, _)) = self.bins.range(usable..).next() {
            let base = self
                .bins
                .get_mut(&bin_size)
                .and_then(Vec::pop)
                .expect("range hit implies nonempty bin");
            if self.bins.get(&bin_size).is_some_and(Vec::is_empty) {
                self.bins.remove(&bin_size);
            }
            // Split if the remainder can hold a minimal chunk.
            let remainder = bin_size - usable;
            if remainder >= 32 + HEADER_SIZE {
                let chunk = self.chunks.get_mut(&base).expect("binned chunk exists");
                chunk.set_usable_size(usable);
                chunk.set_state(ChunkState::InUse);
                let rem_base = base + usable + HEADER_SIZE;
                let rem_usable = remainder - HEADER_SIZE;
                let mut rem = Chunk::new(rem_base, rem_usable);
                rem.set_state(ChunkState::Free);
                self.chunks.insert(rem_base, rem);
                self.bins.entry(rem_usable).or_default().push(rem_base);
            } else {
                let chunk = self.chunks.get_mut(&base).expect("binned chunk exists");
                chunk.set_state(ChunkState::InUse);
            }
            let usable_size = self.chunks[&base].usable_size();
            self.profile.note_alloc(usable_size);
            self.note_alloc_event(usable_size);
            return Ok(Allocation { base, usable_size });
        }

        // 3. Extend the top of the segment.
        let footprint = usable + HEADER_SIZE;
        let end = self
            .top
            .checked_add(footprint)
            .ok_or(HeapError::OutOfMemory { requested: request })?;
        if end > self.config.base_addr + self.config.limit_bytes {
            return Err(HeapError::OutOfMemory { requested: request });
        }
        let base = self.top + HEADER_SIZE;
        self.top = end;
        self.chunks.insert(base, Chunk::new(base, usable));
        self.profile.note_alloc(usable);
        self.note_alloc_event(usable);
        Ok(Allocation {
            base,
            usable_size: usable,
        })
    }

    /// Frees the chunk whose user pointer is `base`.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::InvalidFree`] for pointers that are not a
    /// chunk base and [`HeapError::DoubleFree`] for chunks already on a
    /// free list.
    pub fn free(&mut self, base: u64) -> Result<FreedChunk, HeapError> {
        let chunk = *self
            .chunks
            .get(&base)
            .ok_or(HeapError::InvalidFree { pointer: base })?;
        if chunk.state() == ChunkState::Free {
            return Err(HeapError::DoubleFree { pointer: base });
        }
        let freed = FreedChunk {
            base,
            usable_size: chunk.usable_size(),
        };
        self.profile.note_free(chunk.usable_size());
        self.telemetry.count(aos_util::Counter::HeapFrees);

        if chunk.usable_size() <= self.config.fastbin_max {
            // Fastbin path: no coalescing, LIFO reuse.
            self.chunks
                .get_mut(&base)
                .expect("chunk present")
                .set_state(ChunkState::Free);
            self.fastbins
                .entry(chunk.usable_size())
                .or_default()
                .push(base);
            return Ok(freed);
        }

        // Coalesce with free (non-fastbin) neighbours.
        let mut merged_header = chunk.header_base();
        let mut merged_end = chunk.end();
        self.chunks.remove(&base);

        let prev = self.chunks.range(..base).next_back().map(|(_, c)| *c);
        if let Some(prev) = prev {
            if prev.state() == ChunkState::Free
                && prev.usable_size() > self.config.fastbin_max
                && prev.end() == merged_header
            {
                self.unbin(prev.base(), prev.usable_size());
                merged_header = prev.header_base();
                self.chunks.remove(&prev.base());
            }
        }
        let next = self.chunks.range(base..).next().map(|(_, c)| *c);
        if let Some(next) = next {
            if next.state() == ChunkState::Free
                && next.usable_size() > self.config.fastbin_max
                && next.header_base() == merged_end
            {
                self.unbin(next.base(), next.usable_size());
                merged_end = next.end();
                self.chunks.remove(&next.base());
            }
        }

        if merged_end == self.top {
            // Give the space back to the wilderness.
            self.top = merged_header;
            return Ok(freed);
        }

        let new_base = merged_header + HEADER_SIZE;
        let new_usable = merged_end - new_base;
        let mut merged = Chunk::new(new_base, new_usable);
        merged.set_state(ChunkState::Free);
        self.chunks.insert(new_base, merged);
        self.bins.entry(new_usable).or_default().push(new_base);
        Ok(freed)
    }

    /// Resizes an allocation, glibc-style: shrink in place when the
    /// chunk already suffices (splitting off a remainder when large
    /// enough), otherwise allocate-new + free-old. The caller is
    /// responsible for copying data when the base moves (the allocator
    /// does not own memory contents).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError::InvalidFree`]/[`HeapError::DoubleFree`]
    /// for bad bases and [`HeapError::OutOfMemory`] when growth fails;
    /// on error the original allocation is untouched.
    pub fn realloc(&mut self, base: u64, new_request: u64) -> Result<Allocation, HeapError> {
        let chunk = *self
            .chunks
            .get(&base)
            .ok_or(HeapError::InvalidFree { pointer: base })?;
        if chunk.state() == ChunkState::Free {
            return Err(HeapError::DoubleFree { pointer: base });
        }
        let wanted = Self::granule(new_request);
        if wanted <= chunk.usable_size() {
            // Shrink (or keep) in place; split off a worthwhile tail.
            let remainder = chunk.usable_size() - wanted;
            if remainder >= 32 + HEADER_SIZE {
                self.chunks
                    .get_mut(&base)
                    .expect("chunk present")
                    .set_usable_size(wanted);
                let rem_base = base + wanted + HEADER_SIZE;
                let rem_usable = remainder - HEADER_SIZE;
                let mut rem = Chunk::new(rem_base, rem_usable);
                rem.set_state(ChunkState::Free);
                self.chunks.insert(rem_base, rem);
                self.bins.entry(rem_usable).or_default().push(rem_base);
                self.profile.note_shrink(remainder);
            }
            let usable_size = self.chunks[&base].usable_size();
            return Ok(Allocation {
                base,
                usable_size,
            });
        }
        // Grow: new allocation first so failure leaves the old intact.
        let fresh = self.malloc(new_request)?;
        self.free(base).expect("source chunk was live");
        Ok(fresh)
    }

    /// Models the glibc fastbin free path for a *crafted* chunk, as
    /// exploited by House of Spirit (paper Fig. 1): the address is
    /// accepted into a fastbin with only a size-sanity check, without
    /// verifying it was ever returned by `malloc`. A subsequent
    /// `malloc` of the same size class will hand the attacker-chosen
    /// address back out.
    ///
    /// # Errors
    ///
    /// Returns [`HeapError::InvalidFree`] if the claimed size fails the
    /// fastbin sanity test (not 16-byte granular, or larger than the
    /// fastbin threshold) — the only checks glibc performs.
    pub fn fastbin_insert_raw(
        &mut self,
        base: u64,
        claimed_usable: u64,
    ) -> Result<(), HeapError> {
        if !base.is_multiple_of(16)
            || !claimed_usable.is_multiple_of(16)
            || claimed_usable == 0
            || claimed_usable > self.config.fastbin_max
        {
            return Err(HeapError::InvalidFree { pointer: base });
        }
        let mut chunk = Chunk::new(base, claimed_usable);
        chunk.set_state(ChunkState::Free);
        self.chunks.insert(base, chunk);
        self.fastbins
            .entry(claimed_usable)
            .or_default()
            .push(base);
        self.profile.note_free(claimed_usable);
        Ok(())
    }

    fn unbin(&mut self, base: u64, usable: u64) {
        if let Some(list) = self.bins.get_mut(&usable) {
            list.retain(|&b| b != base);
            if list.is_empty() {
                self.bins.remove(&usable);
            }
        }
    }

    /// Looks up the chunk record for a user pointer.
    pub fn chunk_at(&self, base: u64) -> Option<&Chunk> {
        self.chunks.get(&base)
    }

    /// Finds the chunk containing an arbitrary address, if any.
    pub fn chunk_containing(&self, addr: u64) -> Option<&Chunk> {
        self.chunks
            .range(..=addr)
            .next_back()
            .map(|(_, c)| c)
            .filter(|c| c.contains(addr))
    }

    /// Iterates over the currently live (in-use) chunks in address
    /// order.
    pub fn live_chunks(&self) -> impl Iterator<Item = &Chunk> {
        self.chunks
            .values()
            .filter(|c| c.state() == ChunkState::InUse)
    }

    /// Number of live chunks.
    pub fn live_count(&self) -> u64 {
        self.profile.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap() -> HeapAllocator {
        HeapAllocator::new(HeapConfig::default())
    }

    #[test]
    fn malloc_is_aligned_and_sized() {
        let mut h = heap();
        for req in [1u64, 15, 16, 17, 100, 1000, 4096] {
            let a = h.malloc(req).unwrap();
            assert_eq!(a.base % 16, 0);
            assert!(a.usable_size >= req);
            assert_eq!(a.usable_size % 16, 0);
        }
    }

    #[test]
    fn chunks_do_not_overlap() {
        let mut h = heap();
        let allocs: Vec<Allocation> = (0..64).map(|i| h.malloc(24 + i * 8).unwrap()).collect();
        for w in allocs.windows(2) {
            assert!(w[0].base + w[0].usable_size <= w[1].base - 16 + 16);
        }
        let mut sorted = allocs.clone();
        sorted.sort_by_key(|a| a.base);
        for w in sorted.windows(2) {
            assert!(
                w[0].base + w[0].usable_size + 16 <= w[1].base,
                "header space between chunks"
            );
        }
    }

    #[test]
    fn fastbin_reuses_lifo() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        h.free(a.base).unwrap();
        h.free(b.base).unwrap();
        // LIFO: most recently freed comes back first.
        assert_eq!(h.malloc(64).unwrap().base, b.base);
        assert_eq!(h.malloc(64).unwrap().base, a.base);
    }

    #[test]
    fn large_chunks_reused_best_fit_with_split() {
        let mut h = heap();
        let big = h.malloc(4096).unwrap();
        // Keep a spacer so the freed chunk does not merge into top.
        let _spacer = h.malloc(64).unwrap();
        h.free(big.base).unwrap();
        let small = h.malloc(512).unwrap();
        assert_eq!(small.base, big.base, "best-fit reuses the hole");
        let rest = h.malloc(3000).unwrap();
        assert!(
            rest.base > small.base && rest.base < big.base + 4096 + 32,
            "split remainder is reused"
        );
    }

    #[test]
    fn free_neighbors_coalesce() {
        let mut h = heap();
        let a = h.malloc(512).unwrap();
        let b = h.malloc(512).unwrap();
        let _spacer = h.malloc(512).unwrap();
        h.free(a.base).unwrap();
        h.free(b.base).unwrap();
        // Coalesced hole fits a request larger than either part.
        let big = h.malloc(900).unwrap();
        assert_eq!(big.base, a.base);
    }

    #[test]
    fn freeing_last_chunk_returns_to_top() {
        let mut h = heap();
        let a = h.malloc(512).unwrap();
        let end_before = h.segment_end();
        h.free(a.base).unwrap();
        assert!(h.segment_end() < end_before, "wilderness reclaimed");
        let b = h.malloc(512).unwrap();
        assert_eq!(b.base, a.base, "same space handed out again");
    }

    #[test]
    fn invalid_free_detected() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        assert_eq!(
            h.free(a.base + 16),
            Err(HeapError::InvalidFree { pointer: a.base + 16 })
        );
    }

    #[test]
    fn double_free_detected() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        h.free(a.base).unwrap();
        assert_eq!(h.free(a.base), Err(HeapError::DoubleFree { pointer: a.base }));
    }

    #[test]
    fn try_new_rejects_misaligned_base_without_panicking() {
        let bad = HeapConfig {
            base_addr: 0x4000_0001,
            ..HeapConfig::default()
        };
        let err = HeapAllocator::try_new(bad).unwrap_err();
        assert!(err.to_string().contains("16-byte aligned"), "{err}");
        assert!(HeapAllocator::try_new(HeapConfig::default()).is_ok());
    }

    #[test]
    fn heap_errors_lift_into_the_shared_taxonomy() {
        let oom = aos_util::AosError::from(HeapError::OutOfMemory { requested: 4096 });
        assert!(matches!(oom, aos_util::AosError::ResourceExhausted { .. }));
        let df = aos_util::AosError::from(HeapError::DoubleFree { pointer: 0x10 });
        assert!(matches!(df, aos_util::AosError::SafetyViolation { .. }));
        assert!(df.to_string().contains("double free"));
    }

    #[test]
    fn out_of_memory_reported() {
        let mut h = HeapAllocator::new(HeapConfig {
            limit_bytes: 1024,
            ..HeapConfig::default()
        });
        assert!(h.malloc(256).is_ok());
        let err = h.malloc(4096).unwrap_err();
        assert_eq!(err, HeapError::OutOfMemory { requested: 4096 });
    }

    #[test]
    fn profile_tracks_max_active() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        h.free(a.base).unwrap();
        let c = h.malloc(64).unwrap();
        h.free(b.base).unwrap();
        h.free(c.base).unwrap();
        let p = h.profile();
        assert_eq!(p.allocations, 3);
        assert_eq!(p.deallocations, 3);
        assert_eq!(p.live, 0);
        assert_eq!(p.max_live, 2);
    }

    #[test]
    fn realloc_shrinks_in_place_with_split() {
        let mut h = heap();
        let a = h.malloc(1024).unwrap();
        let _spacer = h.malloc(64).unwrap();
        let b = h.realloc(a.base, 128).unwrap();
        assert_eq!(b.base, a.base, "shrink stays in place");
        assert_eq!(b.usable_size, 128);
        // The split tail is reusable.
        let c = h.malloc(512).unwrap();
        assert!(c.base > a.base && c.base < a.base + 1024 + 32);
    }

    #[test]
    fn realloc_grows_by_moving() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        let _spacer = h.malloc(64).unwrap();
        let b = h.realloc(a.base, 4096).unwrap();
        assert_ne!(b.base, a.base, "growth past neighbours must move");
        assert!(b.usable_size >= 4096);
        assert_eq!(
            h.chunk_at(a.base).unwrap().state(),
            ChunkState::Free,
            "old chunk freed"
        );
    }

    #[test]
    fn realloc_same_size_is_identity() {
        let mut h = heap();
        let a = h.malloc(256).unwrap();
        let b = h.realloc(a.base, 256).unwrap();
        assert_eq!(b, a);
    }

    #[test]
    fn realloc_of_bad_base_fails_cleanly() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        assert!(matches!(
            h.realloc(a.base + 8, 128),
            Err(HeapError::InvalidFree { .. })
        ));
        h.free(a.base).unwrap();
        assert!(matches!(
            h.realloc(a.base, 128),
            Err(HeapError::DoubleFree { .. })
        ));
    }

    #[test]
    fn house_of_spirit_fastbin_insertion() {
        // The attack from paper Fig. 1: a crafted, never-malloc'd
        // address enters a fastbin and malloc returns it.
        let mut h = heap();
        let crafted = 0x7000_0000u64;
        h.fastbin_insert_raw(crafted, 48).unwrap();
        let victim = h.malloc(48).unwrap();
        assert_eq!(victim.base, crafted, "attacker controls the allocation");
    }

    #[test]
    fn fastbin_insert_raw_sanity_checks() {
        let mut h = heap();
        assert!(h.fastbin_insert_raw(0x7000_0004, 48).is_err(), "misaligned");
        assert!(h.fastbin_insert_raw(0x7000_0000, 40).is_err(), "ragged size");
        assert!(
            h.fastbin_insert_raw(0x7000_0000, 4096).is_err(),
            "not fastbin sized"
        );
    }

    #[test]
    fn chunk_lookup_by_interior_address() {
        let mut h = heap();
        let a = h.malloc(256).unwrap();
        let c = h.chunk_containing(a.base + 100).unwrap();
        assert_eq!(c.base(), a.base);
        assert!(h.chunk_containing(a.base + 256).is_none() || a.usable_size > 256);
        assert!(h.chunk_containing(0x10).is_none());
    }

    #[test]
    fn live_chunks_iterates_in_use_only() {
        let mut h = heap();
        let a = h.malloc(64).unwrap();
        let b = h.malloc(64).unwrap();
        h.free(a.base).unwrap();
        let live: Vec<u64> = h.live_chunks().map(Chunk::base).collect();
        assert_eq!(live, vec![b.base]);
        assert_eq!(h.live_count(), 1);
    }

    #[test]
    fn many_allocations_stay_consistent() {
        let mut h = heap();
        let mut live = Vec::new();
        for i in 0..2000u64 {
            let a = h.malloc((i % 700) + 1).unwrap();
            live.push(a);
            if i % 3 == 0 {
                let victim = live.swap_remove((i as usize * 7) % live.len());
                h.free(victim.base).unwrap();
            }
        }
        // All remaining live chunks must be distinct and non-overlapping.
        live.sort_by_key(|a| a.base);
        for w in live.windows(2) {
            assert!(w[0].base + w[0].usable_size <= w[1].base);
        }
        assert_eq!(h.profile().live as usize, live.len());
    }
}
