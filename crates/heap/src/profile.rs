//! Allocation-profile accounting (paper Tables II and III).
//!
//! The paper characterizes workloads by their *maximum number of
//! active chunks* versus total allocation/deallocation counts — the
//! observation (§VI) that motivates the hashed bounds table: programs
//! allocate millions of times but keep only a modest working set live,
//! so a PAC-indexed table with a handful of ways per row suffices.

/// Running allocation statistics, updated by the allocator.
///
/// # Examples
///
/// ```
/// use aos_heap::profile::UsageProfile;
/// let mut p = UsageProfile::default();
/// p.note_alloc(64);
/// p.note_alloc(64);
/// p.note_free(64);
/// assert_eq!(p.max_live, 2);
/// assert_eq!(p.live, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UsageProfile {
    /// Total `malloc` calls.
    pub allocations: u64,
    /// Total `free` calls.
    pub deallocations: u64,
    /// Currently live chunks.
    pub live: u64,
    /// Peak live chunks ("Max Active" in Table II).
    pub max_live: u64,
    /// Currently live usable bytes.
    pub live_bytes: u64,
    /// Peak live usable bytes.
    pub max_live_bytes: u64,
}

impl UsageProfile {
    /// Records one allocation of `bytes` usable bytes.
    pub fn note_alloc(&mut self, bytes: u64) {
        self.allocations += 1;
        self.live += 1;
        self.max_live = self.max_live.max(self.live);
        self.live_bytes += bytes;
        self.max_live_bytes = self.max_live_bytes.max(self.live_bytes);
    }

    /// Records one deallocation of `bytes` usable bytes.
    pub fn note_free(&mut self, bytes: u64) {
        self.deallocations += 1;
        self.live = self.live.saturating_sub(1);
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
    }

    /// Records an in-place shrink: live-byte accounting only (the
    /// chunk count is unchanged).
    pub fn note_shrink(&mut self, bytes: u64) {
        self.live_bytes = self.live_bytes.saturating_sub(bytes);
    }

    /// Formats the three columns the paper reports: max active,
    /// allocations, deallocations.
    pub fn table_row(&self, name: &str) -> String {
        format!(
            "{name:<12} {:>12} {:>12} {:>12}",
            self.max_live, self.allocations, self.deallocations
        )
    }
}

impl std::fmt::Display for UsageProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "max_active={} allocations={} deallocations={} live={}",
            self.max_live, self.allocations, self.deallocations, self.live
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_bookkeeping() {
        let mut p = UsageProfile::default();
        p.note_alloc(100);
        p.note_alloc(200);
        assert_eq!(p.live_bytes, 300);
        assert_eq!(p.max_live_bytes, 300);
        p.note_free(100);
        assert_eq!(p.live_bytes, 200);
        assert_eq!(p.max_live_bytes, 300);
        assert_eq!(p.live, 1);
        assert_eq!(p.max_live, 2);
    }

    #[test]
    fn shrink_adjusts_bytes_only() {
        let mut p = UsageProfile::default();
        p.note_alloc(128);
        p.note_shrink(64);
        assert_eq!(p.live, 1);
        assert_eq!(p.live_bytes, 64);
        assert_eq!(p.deallocations, 0);
    }

    #[test]
    fn free_never_underflows() {
        let mut p = UsageProfile::default();
        p.note_free(50);
        assert_eq!(p.live, 0);
        assert_eq!(p.live_bytes, 0);
    }

    #[test]
    fn table_row_contains_columns() {
        let mut p = UsageProfile::default();
        for _ in 0..5 {
            p.note_alloc(16);
        }
        p.note_free(16);
        let row = p.table_row("mcf");
        assert!(row.contains("mcf"));
        assert!(row.contains('5'));
        assert!(row.contains('1'));
    }

    #[test]
    fn display_is_nonempty() {
        let p = UsageProfile::default();
        assert!(!p.to_string().is_empty());
    }
}
