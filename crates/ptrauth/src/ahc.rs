//! Address hashing codes (paper Algorithm 1) and BWB tags (Algorithm 2).

/// The 2-bit address hashing code embedded next to the PAC.
///
/// The AHC serves two purposes (paper §IV-A): a nonzero value marks the
/// pointer as signed, and the value classifies the object's size so
/// that the bounds way buffer can derive region-invariant tags:
///
/// - [`Ahc::Small`] (1): the object fits one aligned 128-byte window
///   (≈64-byte chunks),
/// - [`Ahc::Medium`] (2): fits one aligned 1-KiB window (≈256-byte
///   chunks),
/// - [`Ahc::Large`] (3): anything bigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Ahc {
    /// Size class 1: tAddr bits above bit 6 are zero.
    Small = 1,
    /// Size class 2: tAddr bits above bit 9 are zero.
    Medium = 2,
    /// Size class 3: everything larger.
    Large = 3,
}

impl Ahc {
    /// The raw 2-bit encoding.
    pub fn bits(self) -> u8 {
        self as u8
    }

    /// Decodes a nonzero 2-bit value.
    ///
    /// Returns `None` for 0 (an unsigned pointer) or values above 3.
    pub fn from_bits(bits: u8) -> Option<Self> {
        match bits {
            1 => Some(Ahc::Small),
            2 => Some(Ahc::Medium),
            3 => Some(Ahc::Large),
            _ => None,
        }
    }
}

impl std::fmt::Display for Ahc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ahc::Small => write!(f, "small"),
            Ahc::Medium => write!(f, "medium"),
            Ahc::Large => write!(f, "large"),
        }
    }
}

/// Algorithm 1: computes the AHC for an object at `addr` of `size`
/// bytes under a `va_size`-bit address space.
///
/// `tAddr = addr ^ (addr + size - 1)` has ones exactly in the bit
/// positions where the first and last byte of the object differ; the
/// AHC records how high those ones reach. A `size` of zero (the paper
/// passes `xzr` when re-signing a freed pointer) degenerates to the
/// object's alignment run and still yields a nonzero AHC, which is what
/// keeps a freed pointer marked as signed.
///
/// # Examples
///
/// ```
/// use aos_ptrauth::{compute_ahc, Ahc};
/// assert_eq!(compute_ahc(0x1000, 64, 46), Ahc::Small);
/// assert_eq!(compute_ahc(0x1000, 256, 46), Ahc::Medium);
/// assert_eq!(compute_ahc(0x1000, 4096, 46), Ahc::Large);
/// ```
pub fn compute_ahc(addr: u64, size: u64, va_size: u32) -> Ahc {
    let last = addr.wrapping_add(size).wrapping_sub(1);
    let taddr = (addr ^ last) & ((1u64 << va_size) - 1);
    if taddr >> 7 == 0 {
        Ahc::Small
    } else if taddr >> 10 == 0 {
        Ahc::Medium
    } else {
        Ahc::Large
    }
}

/// Algorithm 2: the 32-bit bounds-way-buffer tag for a pointer.
///
/// The tag concatenates the 16-bit PAC, 14 AHC-selected address bits
/// and the 2-bit AHC. The address bits are chosen so that every
/// address *within* the same object produces the same tag: class 1
/// objects live inside one aligned 128-byte window, so bits `[20:7]`
/// are invariant across the object; class 2 uses `[23:10]`; class 3
/// uses `[25:12]`.
///
/// # Examples
///
/// ```
/// use aos_ptrauth::{bwb_tag, Ahc};
/// let t1 = bwb_tag(0x1008, Ahc::Small, 0xBEEF);
/// let t2 = bwb_tag(0x1010, Ahc::Small, 0xBEEF);
/// assert_eq!(t1, t2, "addresses in the same 128B window share a tag");
/// ```
pub fn bwb_tag(addr: u64, ahc: Ahc, pac: u64) -> u32 {
    let field = match ahc {
        Ahc::Small => (addr >> 7) & 0x3FFF,
        Ahc::Medium => (addr >> 10) & 0x3FFF,
        Ahc::Large => (addr >> 12) & 0x3FFF,
    };
    (((pac & 0xFFFF) as u32) << 16) | ((field as u32) << 2) | ahc.bits() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ahc_matches_bin_sizes() {
        // 16-byte-aligned allocations, as malloc returns.
        assert_eq!(compute_ahc(0x2000, 16, 46), Ahc::Small);
        assert_eq!(compute_ahc(0x2000, 64, 46), Ahc::Small);
        assert_eq!(compute_ahc(0x2000, 128, 46), Ahc::Small);
        assert_eq!(compute_ahc(0x2000, 129, 46), Ahc::Medium);
        assert_eq!(compute_ahc(0x2000, 1024, 46), Ahc::Medium);
        assert_eq!(compute_ahc(0x2000, 1025, 46), Ahc::Large);
        assert_eq!(compute_ahc(0x2000, 1 << 20, 46), Ahc::Large);
    }

    #[test]
    fn ahc_depends_on_alignment_not_just_size() {
        // A 64-byte object straddling a 128-byte boundary is "medium":
        // its first and last byte differ at bit 7.
        assert_eq!(compute_ahc(0x20F0, 64, 46), Ahc::Medium);
        // Aligned, it is small.
        assert_eq!(compute_ahc(0x2080, 64, 46), Ahc::Small);
    }

    #[test]
    fn zero_size_still_signs() {
        // Re-signing after free passes size 0 (xzr); the result must be
        // a valid (nonzero) AHC so the pointer stays "locked".
        for addr in [0x10u64, 0x100, 0x2340, 0x7FFF_FFF0] {
            let ahc = compute_ahc(addr, 0, 46);
            assert!(ahc.bits() >= 1);
        }
    }

    #[test]
    fn ahc_bits_roundtrip() {
        for ahc in [Ahc::Small, Ahc::Medium, Ahc::Large] {
            assert_eq!(Ahc::from_bits(ahc.bits()), Some(ahc));
        }
        assert_eq!(Ahc::from_bits(0), None);
        assert_eq!(Ahc::from_bits(4), None);
    }

    #[test]
    fn ahc_display() {
        assert_eq!(Ahc::Small.to_string(), "small");
        assert_eq!(Ahc::Medium.to_string(), "medium");
        assert_eq!(Ahc::Large.to_string(), "large");
    }

    #[test]
    fn tag_invariant_within_object_windows() {
        // Medium object: all addresses in one aligned 1KiB window agree.
        let base = 0x4_0000u64;
        let t0 = bwb_tag(base, Ahc::Medium, 0x1234);
        for off in (0..1024).step_by(64) {
            assert_eq!(bwb_tag(base + off, Ahc::Medium, 0x1234), t0);
        }
    }

    #[test]
    fn tag_differs_across_windows_and_pacs() {
        let a = bwb_tag(0x4_0000, Ahc::Medium, 0x1234);
        let b = bwb_tag(0x4_0400, Ahc::Medium, 0x1234);
        assert_ne!(a, b, "different 1KiB windows");
        let c = bwb_tag(0x4_0000, Ahc::Medium, 0x1235);
        assert_ne!(a, c, "different PACs");
        let d = bwb_tag(0x4_0000, Ahc::Large, 0x1234);
        assert_ne!(a, d, "different AHCs");
    }

    #[test]
    fn tag_packs_fields() {
        let t = bwb_tag(0, Ahc::Small, 0xFFFF);
        assert_eq!(t >> 16, 0xFFFF);
        assert_eq!(t & 0b11, 1);
    }
}
