//! Pointer signing for AOS: layout, address hashing codes and the
//! `pacma`/`autm`/`xpacm` instruction semantics.
//!
//! AOS signs every data pointer returned by `malloc` (paper §IV): a
//! PAC — computed by [`aos_qarma`] over the chunk's base address — and a
//! 2-bit address hashing code (AHC, Algorithm 1) are placed in the
//! pointer's unused upper bits. Because the PAC travels *inside* the
//! pointer, it propagates through arithmetic and memory for free, which
//! is the paper's answer to the metadata-propagation problem of fat
//! pointers.
//!
//! This crate provides:
//!
//! - [`PointerLayout`] — where the address, PAC and AHC live in a
//!   64-bit pointer;
//! - [`Ahc`] / [`compute_ahc`] — Algorithm 1 (size-class encoding);
//! - [`bwb_tag`] — Algorithm 2 (the tag used by the bounds way buffer);
//! - [`PointerSigner`] — the `pacma` / `autm` / `xpacm` instruction
//!   semantics over a QARMA key.
//!
//! # Layout note (documented deviation)
//!
//! Real AArch64 scatters PAC bits around bit 55 depending on the VA
//! size and TBI setting. We use a clean parameterized layout — AHC in
//! bits `[63:62]`, the PAC directly below it, the virtual address in
//! the low `va_size` bits — which preserves every property the paper
//! relies on (PAC+AHC ride along with the pointer; AHC ≠ 0 ⇔ signed)
//! without modeling the architectural bit-scatter.
//!
//! # Examples
//!
//! ```
//! use aos_ptrauth::{PointerLayout, PointerSigner};
//! use aos_qarma::PacKey;
//!
//! let signer = PointerSigner::new(PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9),
//!                                 PointerLayout::default());
//! let ptr = 0x0000_2000_1000; // 16-byte-aligned heap address
//! let signed = signer.pacma(ptr, 0x477d469dec0b8762, 64);
//! assert!(signer.layout().is_signed(signed));
//! assert_eq!(signer.xpacm(signed), ptr);
//! assert!(signer.autm(signed).is_ok());
//! ```

mod ahc;
mod layout;
mod signer;

pub use ahc::{bwb_tag, compute_ahc, Ahc};
pub use layout::PointerLayout;
pub use signer::{AuthError, PointerSigner};
