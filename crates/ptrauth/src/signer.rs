//! The AOS ISA-extension semantics: `pacma`, `autm`, `xpacm`
//! (paper §IV-A).

use crate::ahc::{compute_ahc, Ahc};
use crate::layout::PointerLayout;
use aos_qarma::{truncate_pac, PacKey, Qarma64};
use aos_util::{Counter, Telemetry};

/// Error returned by [`PointerSigner::autm`] when authentication fails.
///
/// In hardware a failed `autm` corrupts the pointer so that any later
/// dereference takes a translation fault; in this model we surface the
/// failure directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthError {
    pointer: u64,
}

impl AuthError {
    /// The pointer that failed authentication.
    pub fn pointer(&self) -> u64 {
        self.pointer
    }
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pointer {:#x} failed autm authentication (AHC is zero)",
            self.pointer
        )
    }
}

impl std::error::Error for AuthError {}

/// Implements the AOS signing instructions over a QARMA key and a
/// pointer layout.
///
/// # Examples
///
/// ```
/// use aos_ptrauth::{PointerLayout, PointerSigner};
/// use aos_qarma::PacKey;
///
/// let signer = PointerSigner::new(PacKey::new(1, 2), PointerLayout::default());
/// let signed = signer.pacma(0x4000, 0xDEAD, 128);
/// assert_eq!(signer.layout().address(signed), 0x4000);
/// assert_ne!(signed, 0x4000, "PAC and AHC are embedded");
/// ```
#[derive(Debug, Clone)]
pub struct PointerSigner {
    qarma: Qarma64,
    layout: PointerLayout,
    telemetry: Telemetry,
}

impl PointerSigner {
    /// Creates a signer from a PA key (key M in the paper's naming)
    /// and a pointer layout.
    pub fn new(key: PacKey, layout: PointerLayout) -> Self {
        Self {
            qarma: Qarma64::new(key),
            layout,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle: PAC computations, sign/strip/auth
    /// operations and authentication failures are recorded into it.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// The pointer layout in use.
    pub fn layout(&self) -> PointerLayout {
        self.layout
    }

    /// Computes the (truncated) PAC for a chunk base address under
    /// `modifier`. AOS always signs the *base* address returned by
    /// `malloc`, so every interior pointer of a chunk carries the same
    /// PAC.
    pub fn pac_for(&self, base_addr: u64, modifier: u64) -> u64 {
        truncate_pac(
            self.qarma.compute_with(base_addr, modifier, &self.telemetry),
            self.layout.pac_size(),
        )
    }

    /// Batch [`PointerSigner::pac_for`]: `out[i]` becomes the truncated
    /// PAC of `base_addrs[i]` under the shared `modifier`, computed
    /// through the multi-lane [`Qarma64::compute_batch_uniform`] path.
    /// Telemetry records the same per-pointer `PacComputations` events
    /// as the per-call form.
    ///
    /// # Panics
    ///
    /// Panics if `base_addrs` and `out` differ in length.
    pub fn pac_for_batch(&self, base_addrs: &[u64], modifier: u64, out: &mut [u64]) {
        self.telemetry
            .add(Counter::PacComputations, base_addrs.len() as u64);
        self.qarma.compute_batch_uniform(base_addrs, modifier, out);
        for pac in out.iter_mut() {
            *pac = truncate_pac(*pac, self.layout.pac_size());
        }
    }

    /// Batch [`PointerSigner::pacma`]: signs `pointers[i]` with size
    /// `sizes[i]` under the shared `modifier` into `out[i]`,
    /// bit-identical to the per-call form. The QARMA lanes run over
    /// stack-resident chunks, so the batch length is unbounded and no
    /// scratch allocation happens.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length, or if a stripped address
    /// exceeds the layout's VA width.
    pub fn pacma_batch(&self, pointers: &[u64], sizes: &[u64], modifier: u64, out: &mut [u64]) {
        assert_eq!(pointers.len(), sizes.len(), "pointer/size length mismatch");
        assert_eq!(pointers.len(), out.len(), "pointer/out length mismatch");
        self.telemetry.add(Counter::PtrSigns, pointers.len() as u64);
        self.telemetry
            .add(Counter::PacComputations, pointers.len() as u64);
        const LANES: usize = Qarma64::BATCH_LANES;
        let mut addrs = [0u64; LANES];
        let mut pacs = [0u64; LANES];
        let chunks = pointers
            .chunks(LANES)
            .zip(sizes.chunks(LANES))
            .zip(out.chunks_mut(LANES));
        for ((ptr_chunk, size_chunk), out_chunk) in chunks {
            let n = ptr_chunk.len();
            for (addr, &pointer) in addrs[..n].iter_mut().zip(ptr_chunk) {
                *addr = self.layout.address(pointer);
            }
            self.qarma
                .compute_batch_uniform(&addrs[..n], modifier, &mut pacs[..n]);
            for i in 0..n {
                let pac = truncate_pac(pacs[i], self.layout.pac_size());
                let ahc = compute_ahc(addrs[i], size_chunk[i], self.layout.va_size());
                out_chunk[i] = self.layout.compose(addrs[i], pac, ahc.bits());
            }
        }
    }

    /// `pacma <Xd>, <Xn|SP>, <Xm>` — signs `pointer` using `modifier`,
    /// embedding the PAC of its (stripped) address and the AHC derived
    /// from `size` (paper §IV-A). Passing `size == 0` models the `xzr`
    /// operand used when re-signing a freed pointer.
    ///
    /// # Panics
    ///
    /// Panics if the stripped address exceeds the layout's VA width.
    pub fn pacma(&self, pointer: u64, modifier: u64, size: u64) -> u64 {
        self.telemetry.count(Counter::PtrSigns);
        let addr = self.layout.address(pointer);
        let pac = self.pac_for(addr, modifier);
        let ahc = compute_ahc(addr, size, self.layout.va_size());
        self.layout.compose(addr, pac, ahc.bits())
    }

    /// `xpacm <Xd>` — strips both the PAC and the AHC, recovering the
    /// raw address.
    pub fn xpacm(&self, pointer: u64) -> u64 {
        self.telemetry.count(Counter::PtrStrips);
        self.layout.strip(pointer)
    }

    /// `autm <Xd>` — authenticates that the pointer was signed by AOS
    /// by checking its AHC is nonzero. Unlike `autda`, it neither
    /// recomputes the PAC (interior pointers no longer match the base
    /// address PAC) nor strips the AHC (paper §IV-A, §VII-B).
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if the AHC is zero, i.e. the pointer is
    /// not marked as an AOS-signed pointer.
    pub fn autm(&self, pointer: u64) -> Result<u64, AuthError> {
        self.telemetry.count(Counter::PtrAuths);
        if self.layout.is_signed(pointer) {
            Ok(pointer)
        } else {
            self.telemetry.count(Counter::AuthFailures);
            Err(AuthError { pointer })
        }
    }

    /// Reads the AHC of a signed pointer, if any.
    pub fn ahc_of(&self, pointer: u64) -> Option<Ahc> {
        Ahc::from_bits(self.layout.ahc(pointer))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signer() -> PointerSigner {
        PointerSigner::new(
            PacKey::new(0x84be85ce9804e94b, 0xec2802d4e0a488e9),
            PointerLayout::default(),
        )
    }

    #[test]
    fn pacma_embeds_pac_and_ahc() {
        let s = signer();
        let signed = s.pacma(0x2000, 7, 64);
        assert_eq!(s.layout().address(signed), 0x2000);
        assert_eq!(s.layout().pac(signed), s.pac_for(0x2000, 7));
        assert_eq!(s.ahc_of(signed), Some(Ahc::Small));
    }

    #[test]
    fn pacma_is_deterministic() {
        let s = signer();
        assert_eq!(s.pacma(0x2000, 7, 64), s.pacma(0x2000, 7, 64));
    }

    #[test]
    fn pacma_depends_on_modifier() {
        let s = signer();
        assert_ne!(s.pacma(0x2000, 7, 64), s.pacma(0x2000, 8, 64));
    }

    #[test]
    fn pacma_with_zero_size_locks_pointer() {
        let s = signer();
        let resigned = s.pacma(0x2000, 7, 0);
        assert!(s.layout().is_signed(resigned), "freed pointer stays signed");
    }

    #[test]
    fn pacma_on_already_signed_pointer_resigns_base() {
        let s = signer();
        let once = s.pacma(0x2000, 7, 64);
        let twice = s.pacma(once, 7, 64);
        assert_eq!(once, twice, "stripping before signing is implicit");
    }

    #[test]
    fn xpacm_strips_everything() {
        let s = signer();
        let signed = s.pacma(0x3000, 1, 4096);
        assert_eq!(s.xpacm(signed), 0x3000);
        assert_eq!(s.xpacm(0x3000), 0x3000, "stripping unsigned is a no-op");
    }

    #[test]
    fn autm_accepts_signed_rejects_unsigned() {
        let s = signer();
        let signed = s.pacma(0x3000, 1, 64);
        assert_eq!(s.autm(signed), Ok(signed));
        let err = s.autm(0x3000).unwrap_err();
        assert_eq!(err.pointer(), 0x3000);
        let shown = err.to_string();
        assert!(shown.contains("autm"), "display was {shown}");
    }

    #[test]
    fn autm_does_not_strip() {
        let s = signer();
        let signed = s.pacma(0x3000, 1, 64);
        let authed = s.autm(signed).unwrap();
        assert!(s.layout().is_signed(authed));
    }

    #[test]
    fn interior_pointer_keeps_pac_through_arithmetic() {
        // The whole point of in-pointer metadata: ordinary adds leave
        // PAC and AHC intact.
        let s = signer();
        let signed = s.pacma(0x4000, 9, 256);
        let interior = signed + 0x80;
        assert_eq!(s.layout().pac(interior), s.layout().pac(signed));
        assert_eq!(s.layout().ahc(interior), s.layout().ahc(signed));
        assert_eq!(s.layout().address(interior), 0x4080);
    }

    #[test]
    fn pacma_signs_only_the_address_field() {
        // Bits above the VA field are metadata, not address: signing a
        // pointer whose upper bits are set operates on the masked
        // address, as the hardware field extraction does.
        let s = signer();
        let garbage_upper = (1u64 << 47) | 0x2000;
        assert_eq!(s.pacma(garbage_upper, 7, 64), s.pacma(0x2000, 7, 64));
    }

    #[test]
    fn pac_for_batch_matches_per_call() {
        let s = signer();
        // 19 addresses: two full lane groups plus a remainder.
        let addrs: Vec<u64> = (0..19u64).map(|i| 0x1000 + (i << 7)).collect();
        let mut out = vec![0u64; addrs.len()];
        s.pac_for_batch(&addrs, 0xDEAD, &mut out);
        for (i, &addr) in addrs.iter().enumerate() {
            assert_eq!(out[i], s.pac_for(addr, 0xDEAD), "i={i}");
        }
    }

    #[test]
    fn pacma_batch_matches_per_call() {
        let s = signer();
        let pointers: Vec<u64> = (0..21u64).map(|i| 0x4000 + (i << 10)).collect();
        let sizes: Vec<u64> = (0..21u64).map(|i| 16 << (i % 8)).collect();
        let mut out = vec![0u64; pointers.len()];
        s.pacma_batch(&pointers, &sizes, 7, &mut out);
        for i in 0..pointers.len() {
            assert_eq!(out[i], s.pacma(pointers[i], 7, sizes[i]), "i={i}");
        }
    }

    #[test]
    fn pacma_batch_records_same_telemetry_as_per_call() {
        let batched = Telemetry::enabled();
        let s = PointerSigner::new(PacKey::new(1, 2), PointerLayout::default())
            .with_telemetry(batched.clone());
        let pointers = [0x2000u64; 13];
        let sizes = [64u64; 13];
        let mut out = [0u64; 13];
        s.pacma_batch(&pointers, &sizes, 7, &mut out);

        let per_call = Telemetry::enabled();
        let s2 = PointerSigner::new(PacKey::new(1, 2), PointerLayout::default())
            .with_telemetry(per_call.clone());
        for (&p, &sz) in pointers.iter().zip(&sizes) {
            let _ = s2.pacma(p, 7, sz);
        }
        assert_eq!(batched.snapshot(), per_call.snapshot());
    }

    #[test]
    fn pac_for_matches_qarma_truncation() {
        let s = signer();
        let pac = s.pac_for(0xfb62_3599_da6e_8127 & ((1 << 46) - 1), 0x477d469dec0b8762);
        assert!(pac < 1 << 16);
    }
}
