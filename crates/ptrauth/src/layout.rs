//! The 64-bit pointer bit layout used throughout the AOS reproduction.

/// Describes where the virtual address, PAC and AHC fields live inside
/// a 64-bit pointer.
///
/// ```text
///  63 62 61        62-pac_size      va_size-1        0
/// +-----+--------------+----- ... -----+-------------+
/// | AHC |     PAC      |   (zero)      |   address   |
/// +-----+--------------+----- ... -----+-------------+
/// ```
///
/// An *unsigned* pointer has every bit above `va_size` clear; a
/// *signed* pointer has a nonzero AHC (the paper's "signed" mark,
/// §IV-A) and carries its PAC in the PAC field.
///
/// # Examples
///
/// ```
/// use aos_ptrauth::PointerLayout;
/// let layout = PointerLayout::default(); // 46-bit VA, 16-bit PAC
/// let p = layout.compose(0x1234_5678, 0xBEEF, 1);
/// assert_eq!(layout.address(p), 0x1234_5678);
/// assert_eq!(layout.pac(p), 0xBEEF);
/// assert_eq!(layout.ahc(p), 1);
/// assert!(layout.is_signed(p));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PointerLayout {
    va_size: u32,
    pac_size: u32,
}

impl PointerLayout {
    /// Creates a layout with the given virtual-address width and PAC
    /// width.
    ///
    /// # Panics
    ///
    /// Panics unless `24 <= va_size`, `11 <= pac_size <= 32` (the PAC
    /// range the paper cites) and `va_size + pac_size + 2 <= 64` so
    /// that the address, PAC and AHC all fit.
    pub fn new(va_size: u32, pac_size: u32) -> Self {
        assert!(va_size >= 24, "va_size must be at least 24, got {va_size}");
        assert!(
            (11..=32).contains(&pac_size),
            "pac_size must be 11..=32, got {pac_size}"
        );
        assert!(
            va_size + pac_size + 2 <= 64,
            "va {va_size} + pac {pac_size} + 2 AHC bits exceed 64"
        );
        Self { va_size, pac_size }
    }

    /// Virtual-address width in bits.
    pub fn va_size(self) -> u32 {
        self.va_size
    }

    /// PAC width in bits.
    pub fn pac_size(self) -> u32 {
        self.pac_size
    }

    /// Number of distinct PAC values (= rows of the hashed bounds
    /// table).
    pub fn pac_space(self) -> u64 {
        1u64 << self.pac_size
    }

    /// Mask selecting the address bits.
    pub fn address_mask(self) -> u64 {
        (1u64 << self.va_size) - 1
    }

    /// Lowest bit position of the PAC field.
    pub fn pac_shift(self) -> u32 {
        62 - self.pac_size
    }

    /// Extracts the virtual address.
    pub fn address(self, pointer: u64) -> u64 {
        pointer & self.address_mask()
    }

    /// Extracts the PAC field.
    pub fn pac(self, pointer: u64) -> u64 {
        (pointer >> self.pac_shift()) & (self.pac_space() - 1)
    }

    /// Extracts the 2-bit AHC field (bits `[63:62]`).
    pub fn ahc(self, pointer: u64) -> u8 {
        (pointer >> 62) as u8
    }

    /// Returns `true` if the pointer is signed, i.e. its AHC is
    /// nonzero — the test the memory check unit applies to decide
    /// whether an access needs bounds checking (paper Fig. 6).
    pub fn is_signed(self, pointer: u64) -> bool {
        self.ahc(pointer) != 0
    }

    /// Builds a pointer from its fields.
    ///
    /// # Panics
    ///
    /// Panics if `address`, `pac` or `ahc` overflow their fields.
    pub fn compose(self, address: u64, pac: u64, ahc: u8) -> u64 {
        assert!(
            address <= self.address_mask(),
            "address {address:#x} exceeds {}-bit VA",
            self.va_size
        );
        assert!(
            pac < self.pac_space(),
            "pac {pac:#x} exceeds {}-bit field",
            self.pac_size
        );
        assert!(ahc < 4, "ahc must be 2 bits, got {ahc}");
        address | (pac << self.pac_shift()) | ((ahc as u64) << 62)
    }

    /// Clears the PAC and AHC fields, leaving the raw address — the
    /// `xpacm` result.
    pub fn strip(self, pointer: u64) -> u64 {
        self.address(pointer)
    }
}

impl Default for PointerLayout {
    /// The evaluation configuration: 46-bit virtual addresses and the
    /// 16-bit PAC from Table IV, filling the 64-bit word exactly.
    fn default() -> Self {
        Self::new(46, 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_layout_fills_word() {
        let l = PointerLayout::default();
        assert_eq!(l.va_size() + l.pac_size() + 2, 64);
        assert_eq!(l.pac_shift(), 46);
        assert_eq!(l.pac_space(), 65536);
    }

    #[test]
    fn compose_and_extract_roundtrip() {
        let l = PointerLayout::new(39, 16);
        for (addr, pac, ahc) in [
            (0u64, 0u64, 0u8),
            (0x7F_FFFF_FFFF, 0xFFFF, 3),
            (0x12_3456_7890, 0x0001, 2),
        ] {
            let p = l.compose(addr, pac, ahc);
            assert_eq!(l.address(p), addr);
            assert_eq!(l.pac(p), pac);
            assert_eq!(l.ahc(p), ahc);
        }
    }

    #[test]
    fn unsigned_pointer_has_zero_ahc() {
        let l = PointerLayout::default();
        assert!(!l.is_signed(0x1234));
        assert!(l.is_signed(l.compose(0x1234, 0, 1)));
    }

    #[test]
    fn strip_removes_metadata() {
        let l = PointerLayout::default();
        let p = l.compose(0xABCD_1234, 0x5A5A, 3);
        assert_eq!(l.strip(p), 0xABCD_1234);
        assert!(!l.is_signed(l.strip(p)));
    }

    #[test]
    fn pac_sizes_across_supported_range() {
        for pac in [11u32, 16, 24, 32] {
            let va = 62 - pac;
            let l = PointerLayout::new(va.min(46), pac);
            let p = l.compose(1, l.pac_space() - 1, 1);
            assert_eq!(l.pac(p), l.pac_space() - 1);
        }
    }

    #[test]
    #[should_panic(expected = "exceed 64")]
    fn overfull_layout_rejected() {
        PointerLayout::new(48, 16);
    }

    #[test]
    #[should_panic(expected = "pac_size")]
    fn tiny_pac_rejected() {
        PointerLayout::new(39, 8);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_address_rejected() {
        let l = PointerLayout::new(32, 16);
        l.compose(1u64 << 33, 0, 0);
    }
}
