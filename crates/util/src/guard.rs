//! Guarded execution of untrusted units of work.
//!
//! The campaign runner (PR 2) grew a protection stack — `catch_unwind`
//! per attempt, an optional wall-clock watchdog, bounded retry with
//! backoff — that the long-running service mode needs verbatim: a
//! poisoned job must not take down the process, a hung job must not
//! wedge a worker forever, and a transiently failing job deserves a
//! bounded number of fresh attempts. This module is that stack,
//! factored out of `aos-core::experiment::campaign` so both the
//! campaign runner and `aos-serve` execute work through one audited
//! implementation.
//!
//! A unit of work is a plain `Fn() -> T` closure behind an [`Arc`]
//! (shared because a timed-out attempt leaves a clone running on its
//! abandoned watchdog thread). [`run_guarded`] drives it through up to
//! `retries + 1` attempts and reports the outcome plus the attempts
//! consumed, with the failure kind preserved so callers can count
//! panics and timeouts separately.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use aos_util::guard::{run_guarded, GuardOptions};
//!
//! let (outcome, attempts) = run_guarded(Arc::new(|| 2 + 2), &GuardOptions::default());
//! assert_eq!(outcome.unwrap(), 4);
//! assert_eq!(attempts, 1);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use crate::error::panic_message;

/// The work a guard runs: shared so a timed-out attempt can keep its
/// abandoned clone without blocking the next attempt.
pub type Work<T> = Arc<dyn Fn() -> T + Send + Sync>;

/// How attempt `n` (1-based) waits before attempt `n + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backoff {
    /// `base * n` — the campaign runner's historical ramp.
    Linear(Duration),
    /// `base * 2^(n-1)` — the service's transient-failure ramp.
    Exponential(Duration),
}

impl Backoff {
    /// The sleep before the attempt after `attempt` failures.
    pub fn delay(self, attempt: u32) -> Duration {
        match self {
            Backoff::Linear(base) => base * attempt,
            Backoff::Exponential(base) => base * 2u32.saturating_pow(attempt.saturating_sub(1)),
        }
    }

    /// Whether this backoff ever sleeps.
    pub fn is_zero(self) -> bool {
        match self {
            Backoff::Linear(base) | Backoff::Exponential(base) => base.is_zero(),
        }
    }
}

/// The guard's knobs; the default is one attempt, no timeout.
#[derive(Debug, Clone, Copy)]
pub struct GuardOptions {
    /// Per-attempt wall-clock limit. `None` disables the watchdog and
    /// runs the attempt inline on the calling thread.
    pub timeout: Option<Duration>,
    /// Extra attempts after a failed one (0 = fail fast).
    pub retries: u32,
    /// Sleep schedule between attempts.
    pub backoff: Backoff,
}

impl Default for GuardOptions {
    fn default() -> Self {
        Self {
            timeout: None,
            retries: 0,
            backoff: Backoff::Linear(Duration::ZERO),
        }
    }
}

/// How the final attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GuardError {
    /// The work panicked; the payload is the captured message.
    Panicked(String),
    /// The work exceeded the per-attempt wall-clock limit.
    TimedOut(Duration),
}

impl GuardError {
    /// The stable wire name of the failure kind (`panic` / `timeout`).
    pub fn kind(&self) -> &'static str {
        match self {
            GuardError::Panicked(_) => "panic",
            GuardError::TimedOut(_) => "timeout",
        }
    }
}

impl std::fmt::Display for GuardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuardError::Panicked(message) => write!(f, "panicked: {message}"),
            GuardError::TimedOut(limit) => {
                write!(f, "timed out after {:.3}s", limit.as_secs_f64())
            }
        }
    }
}

impl std::error::Error for GuardError {}

/// Runs `work` under the full protection stack and returns the final
/// outcome plus attempts consumed (1 = clean first run).
///
/// Every attempt runs under `catch_unwind`; with a timeout configured
/// the attempt runs on a watchdog thread instead — Rust threads cannot
/// be cancelled, so a timed-out attempt is *abandoned*: it keeps
/// running in the background and its eventual result is dropped with
/// the disconnected channel. Callers own that trade-off (acceptable
/// for campaign cells and service jobs, whose processes outlive any
/// straggler or exit wholesale).
pub fn run_guarded<T: Send + 'static>(
    work: Work<T>,
    options: &GuardOptions,
) -> (Result<T, GuardError>, u32) {
    let max_attempts = options.retries.saturating_add(1);
    let mut last_error = GuardError::Panicked(String::from("<no attempt ran>"));
    for attempt in 1..=max_attempts {
        let result = match options.timeout {
            None => catch_unwind(AssertUnwindSafe(|| work()))
                .map_err(|payload| GuardError::Panicked(panic_message(payload.as_ref()))),
            Some(limit) => run_attempt_with_timeout(&work, limit),
        };
        match result {
            Ok(value) => return (Ok(value), attempt),
            Err(error) => {
                last_error = error;
                if attempt < max_attempts && !options.backoff.is_zero() {
                    std::thread::sleep(options.backoff.delay(attempt));
                }
            }
        }
    }
    (Err(last_error), max_attempts)
}

/// One attempt on a watchdog thread (see [`run_guarded`] for the
/// abandonment semantics).
fn run_attempt_with_timeout<T: Send + 'static>(
    work: &Work<T>,
    limit: Duration,
) -> Result<T, GuardError> {
    let (tx, rx) = mpsc::channel();
    let work = Arc::clone(work);
    std::thread::spawn(move || {
        let result = catch_unwind(AssertUnwindSafe(|| work()))
            .map_err(|payload| GuardError::Panicked(panic_message(payload.as_ref())));
        // The receiver may have timed out and gone away; ignore.
        let _ = tx.send(result);
    });
    match rx.recv_timeout(limit) {
        Ok(result) => result,
        Err(mpsc::RecvTimeoutError::Timeout) => Err(GuardError::TimedOut(limit)),
        Err(mpsc::RecvTimeoutError::Disconnected) => Err(GuardError::Panicked(String::from(
            "worker thread vanished without reporting",
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn clean_work_runs_once() {
        let (outcome, attempts) = run_guarded(Arc::new(|| 7u32), &GuardOptions::default());
        assert_eq!(outcome.unwrap(), 7);
        assert_eq!(attempts, 1);
    }

    #[test]
    fn panics_are_captured_not_propagated() {
        let (outcome, attempts) = run_guarded(
            Arc::new(|| -> u32 { panic!("poisoned job") }),
            &GuardOptions::default(),
        );
        match outcome {
            Err(GuardError::Panicked(message)) => assert!(message.contains("poisoned job")),
            other => panic!("expected a captured panic, got {other:?}"),
        }
        assert_eq!(attempts, 1);
    }

    #[test]
    fn transient_failures_recover_within_the_retry_budget() {
        let calls = Arc::new(AtomicU32::new(0));
        let calls_in_work = Arc::clone(&calls);
        let options = GuardOptions {
            retries: 2,
            ..GuardOptions::default()
        };
        let (outcome, attempts) = run_guarded(
            Arc::new(move || {
                if calls_in_work.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient");
                }
                42u32
            }),
            &options,
        );
        assert_eq!(outcome.unwrap(), 42);
        assert_eq!(attempts, 3);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn hung_work_times_out_with_the_typed_error() {
        let options = GuardOptions {
            timeout: Some(Duration::from_millis(20)),
            ..GuardOptions::default()
        };
        let (outcome, attempts) = run_guarded(
            Arc::new(|| std::thread::sleep(Duration::from_secs(60))),
            &options,
        );
        match outcome {
            Err(GuardError::TimedOut(limit)) => {
                assert_eq!(limit, Duration::from_millis(20));
            }
            other => panic!("expected a timeout, got {other:?}"),
        }
        assert_eq!(attempts, 1);
    }

    #[test]
    fn backoff_schedules_differ() {
        let base = Duration::from_millis(10);
        assert_eq!(Backoff::Linear(base).delay(3), Duration::from_millis(30));
        assert_eq!(
            Backoff::Exponential(base).delay(3),
            Duration::from_millis(40)
        );
        assert_eq!(Backoff::Exponential(base).delay(1), base);
        assert!(Backoff::Linear(Duration::ZERO).is_zero());
        assert!(!Backoff::Exponential(base).is_zero());
    }

    #[test]
    fn guard_error_kinds_are_stable_wire_names() {
        assert_eq!(GuardError::Panicked(String::new()).kind(), "panic");
        assert_eq!(
            GuardError::TimedOut(Duration::from_secs(1)).kind(),
            "timeout"
        );
        assert!(GuardError::TimedOut(Duration::from_secs(1))
            .to_string()
            .contains("timed out after 1.000s"));
    }
}
