//! Deterministic pseudo-random number generation.
//!
//! The workload generator, the allocator fuzz tests and the PAC
//! distribution microbenchmark all need reproducible randomness. We use
//! the public-domain SplitMix64 and xoshiro256** generators (Blackman &
//! Vigna) rather than an external crate so that seeds produce identical
//! streams on every platform and toolchain.

/// SplitMix64: a tiny 64-bit generator, mainly used to seed
/// [`Xoshiro256StarStar`] and to derive per-stream sub-seeds.
///
/// # Examples
///
/// ```
/// use aos_util::rng::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed is valid.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        Self::new(0)
    }
}

/// xoshiro256**: the workhorse generator for workload synthesis.
///
/// 256 bits of state, excellent statistical quality, and — because it is
/// implemented here — byte-for-byte reproducible streams for a given
/// seed, forever.
///
/// # Examples
///
/// ```
/// use aos_util::rng::Xoshiro256StarStar;
/// let mut rng = Xoshiro256StarStar::seed_from_u64(1);
/// let v: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
/// let mut rng2 = Xoshiro256StarStar::seed_from_u64(1);
/// let w: Vec<u64> = (0..3).map(|_| rng2.next_u64()).collect();
/// assert_eq!(v, w);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the full 256-bit state by running SplitMix64 from `seed`,
    /// the procedure recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // The all-zero state is a fixed point; SplitMix64 cannot produce
        // four zero outputs in a row, so `s` is always valid.
        Self { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range bound must be nonzero");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_range(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial: returns `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent generator for a named sub-stream, so that
    /// e.g. address choice and size choice do not perturb each other.
    pub fn fork(&mut self, stream: u64) -> Self {
        let mut sm = SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

/// Sampler for a (truncated) Zipf distribution over `[0, n)`.
///
/// Used to model temporal locality: low ranks are chosen much more often
/// than high ranks, which is how real programs revisit hot heap objects.
/// Sampling uses a precomputed CDF with binary search, rebuilt only when
/// `n` changes, so per-sample cost is `O(log n)`.
///
/// # Examples
///
/// ```
/// use aos_util::rng::{Xoshiro256StarStar, Zipf};
/// let mut rng = Xoshiro256StarStar::seed_from_u64(3);
/// let mut zipf = Zipf::new(100, 1.0);
/// let r = zipf.sample(&mut rng);
/// assert!(r < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: usize,
    exponent: f64,
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `[0, n)` with the given exponent
    /// (`exponent == 0.0` degenerates to uniform).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "Zipf support must be nonempty");
        let mut z = Self {
            n: 0,
            exponent,
            cdf: Vec::new(),
        };
        z.resize(n);
        z
    }

    /// Number of ranks in the support.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the support is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Changes the support size, rebuilding the CDF if needed.
    pub fn resize(&mut self, n: usize) {
        assert!(n > 0, "Zipf support must be nonempty");
        if n == self.n {
            return;
        }
        self.n = n;
        self.cdf.clear();
        self.cdf.reserve(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(self.exponent);
            self.cdf.push(acc);
        }
        let total = acc;
        for v in &mut self.cdf {
            *v /= total;
        }
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&mut self, rng: &mut Xoshiro256StarStar) -> usize {
        let u = rng.next_f64();
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF contains no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.n - 1),
        }
    }
}

/// A discrete distribution over arbitrary items with fixed weights.
///
/// Used for allocation-size histograms (e.g. "70% of chunks are ≤64 B").
///
/// # Examples
///
/// ```
/// use aos_util::rng::{DiscreteTable, Xoshiro256StarStar};
/// let mut rng = Xoshiro256StarStar::seed_from_u64(9);
/// let table = DiscreteTable::new(vec![(16u64, 3.0), (256, 1.0)]);
/// let v = *table.sample(&mut rng);
/// assert!(v == 16 || v == 256);
/// ```
#[derive(Debug, Clone)]
pub struct DiscreteTable<T> {
    items: Vec<T>,
    cdf: Vec<f64>,
}

impl<T> DiscreteTable<T> {
    /// Builds the table from `(item, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty or all weights are zero/negative.
    pub fn new(entries: Vec<(T, f64)>) -> Self {
        assert!(!entries.is_empty(), "discrete table must be nonempty");
        let mut items = Vec::with_capacity(entries.len());
        let mut cdf = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for (item, w) in entries {
            acc += w.max(0.0);
            items.push(item);
            cdf.push(acc);
        }
        assert!(acc > 0.0, "discrete table weights must sum to > 0");
        for v in &mut cdf {
            *v /= acc;
        }
        Self { items, cdf }
    }

    /// Draws an item reference according to the weights.
    pub fn sample(&self, rng: &mut Xoshiro256StarStar) -> &T {
        let u = rng.next_f64();
        let i = match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF contains no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.items.len() - 1),
        };
        &self.items[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_known() {
        // Reference values generated from the public-domain
        // splitmix64.c (seed 1234567).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(sm.next_u64(), 0x2C73_F084_5854_0FA5);
    }

    #[test]
    fn xoshiro_streams_are_reproducible() {
        let mut a = Xoshiro256StarStar::seed_from_u64(99);
        let mut b = Xoshiro256StarStar::seed_from_u64(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_range_is_in_bounds_and_covers() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = rng.next_range(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn next_range_zero_panics() {
        Xoshiro256StarStar::seed_from_u64(0).next_range(0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bernoulli_matches_probability_roughly() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        let hits = (0..100_000).filter(|_| rng.next_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn forked_streams_differ() {
        let mut base = Xoshiro256StarStar::seed_from_u64(11);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(21);
        let mut zipf = Zipf::new(1000, 1.0);
        let mut low = 0usize;
        let n = 50_000;
        for _ in 0..n {
            if zipf.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // Under Zipf(1.0) over 1000 ranks, the top-10 mass is ~39%;
        // uniform would give 1%.
        assert!(low as f64 / n as f64 > 0.25, "low mass {low}/{n}");
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(23);
        let mut zipf = Zipf::new(4, 0.0);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "counts {counts:?}");
        }
    }

    #[test]
    fn zipf_resize_keeps_sampling_valid() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(29);
        let mut zipf = Zipf::new(10, 1.2);
        zipf.resize(3);
        for _ in 0..100 {
            assert!(zipf.sample(&mut rng) < 3);
        }
        assert_eq!(zipf.len(), 3);
        assert!(!zipf.is_empty());
    }

    #[test]
    fn discrete_table_respects_weights() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(31);
        let table = DiscreteTable::new(vec![("a", 9.0), ("b", 1.0)]);
        let hits = (0..20_000)
            .filter(|_| *table.sample(&mut rng) == "a")
            .count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.9).abs() < 0.02, "rate was {rate}");
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn discrete_table_empty_panics() {
        let _ = DiscreteTable::<u8>::new(vec![]);
    }
}
