//! A tiny `std`-only fork/join layer: [`ordered_parallel_map`] fans a
//! work list out across a `std::thread::scope` pool and returns the
//! results **in input order**, so callers see exactly the output a
//! sequential `iter().map().collect()` would produce — just faster.
//!
//! The worker count is resolved by [`effective_threads`]: the
//! `AOS_CAMPAIGN_THREADS` environment variable if set, otherwise
//! [`std::thread::available_parallelism`]. A count of 1 runs inline on
//! the calling thread (no spawn overhead, identical results), which is
//! also the fallback on exotic platforms where spawning fails.
//!
//! # Examples
//!
//! ```
//! use aos_util::par::ordered_parallel_map;
//!
//! let squares = ordered_parallel_map(&[1u64, 2, 3, 4], 4, |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::error::panic_message;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "AOS_CAMPAIGN_THREADS";

/// Resolves the worker count for a parallel region.
///
/// Order of precedence: an explicit non-zero `requested`, then a
/// parseable non-zero [`THREADS_ENV`], then the machine's available
/// parallelism, then 1. The result is clamped to at least 1.
pub fn effective_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        if n > 0 {
            return n;
        }
    }
    if let Some(v) = std::env::var_os(THREADS_ENV) {
        if let Some(n) = v.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads and
/// returns the outputs in input order.
///
/// `f` receives `(index, &item)` so callers can label or seed per-cell
/// work. Work is distributed dynamically (an atomic next-index
/// counter), so heterogeneous cell costs still balance. With
/// `threads <= 1` or a single item the map runs inline on the calling
/// thread — the parallel and sequential paths produce identical
/// output by construction, because each output slot is written only by
/// the worker that claimed that input index.
///
/// # Panics
///
/// Re-raises the first (lowest-index) worker panic with its original
/// message. Unlike a bare scope join, the panic is caught at the item
/// that raised it, so every other item still completes first and the
/// join itself never observes an unwinding thread; callers that want
/// the per-item errors instead use [`ordered_parallel_catch`].
pub fn ordered_parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    ordered_parallel_catch(items, threads, f)
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|msg| panic!("worker panicked: {msg}")))
        .collect()
}

/// Like [`ordered_parallel_map`], but a panic in `f` is confined to
/// the item that raised it: that slot becomes `Err(message)` while
/// every other item still completes and returns `Ok`.
///
/// This is the substrate for campaign-cell isolation — one poisoned
/// cell must never sink the whole run. Each invocation of `f` runs
/// under [`std::panic::catch_unwind`], so the worker that claimed the
/// item survives the panic and moves on to the next index; the scope
/// join at the end never observes an unwinding thread.
///
/// `AssertUnwindSafe` is sound here because a panicking call's output
/// slot is only ever written with the `Err` payload — no partially
/// constructed `R` escapes — and `f` is shared read-only (`Sync`)
/// exactly as in [`ordered_parallel_map`].
pub fn ordered_parallel_catch<T, R, F>(
    items: &[T],
    threads: usize,
    f: F,
) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_ordered(items, threads, |i, item| {
        catch_unwind(AssertUnwindSafe(|| f(i, item)))
            .map_err(|payload| panic_message(payload.as_ref()))
    })
}

/// The shared fork/join machinery: maps `f` over `items` on up to
/// `threads` scoped workers, results in input order. `f` must not
/// panic (both public entry points wrap it in `catch_unwind`).
fn run_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, items.len());
    if threads == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let next = AtomicUsize::new(0);

    // Hand each worker a disjoint set of &mut slots via raw parts:
    // safe because slot `i` is written exactly once, by the unique
    // worker that won the fetch_add for index `i`, and the scope
    // joins every worker before `slots` is read.
    struct SlotArray<R>(*mut Option<R>);
    // SAFETY: sharing the base pointer across workers is sound because
    // each index is claimed by exactly one worker (the fetch_add
    // winner), so concurrent accesses never alias the same slot, and
    // `R: Send` lets the written values move to the joining thread.
    unsafe impl<R: Send> Sync for SlotArray<R> {}
    let out = SlotArray(slots.as_mut_ptr());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let out = &out;
            let next = &next;
            let f = &f;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let result = f(i, &items[i]);
                // SAFETY: `i` came from a unique fetch_add claim below
                // `items.len()`, so no other worker writes this slot,
                // and the enclosing scope outlives every write.
                unsafe {
                    *out.0.add(i) = Some(result);
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("every claimed index writes its slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let out = ordered_parallel_map(&items, 8, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn matches_sequential_for_any_thread_count() {
        let items: Vec<u64> = (0..23).collect();
        let sequential = ordered_parallel_map(&items, 1, |_, &x| x.wrapping_mul(0x9E37));
        for threads in [2, 3, 8, 64] {
            let parallel = ordered_parallel_map(&items, threads, |_, &x| x.wrapping_mul(0x9E37));
            assert_eq!(parallel, sequential, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(ordered_parallel_map(&empty, 8, |_, &x| x).is_empty());
        assert_eq!(ordered_parallel_map(&[7u32], 8, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn unbalanced_work_still_ordered() {
        let items: Vec<u64> = (0..32).collect();
        let out = ordered_parallel_map(&items, 4, |_, &x| {
            // Make early items slow so late items finish first.
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, items);
    }

    #[test]
    fn effective_threads_precedence() {
        assert_eq!(effective_threads(Some(3)), 3);
        assert!(effective_threads(None) >= 1);
        assert!(effective_threads(Some(0)) >= 1);
    }

    #[test]
    fn catch_confines_panic_to_its_item() {
        let items: Vec<u64> = (0..16).collect();
        for threads in [1, 4] {
            let out = ordered_parallel_catch(&items, threads, |_, &x| {
                assert!(x != 5, "poisoned item {x}");
                x * 2
            });
            assert_eq!(out.len(), items.len());
            for (i, slot) in out.iter().enumerate() {
                if i == 5 {
                    let msg = slot.as_ref().unwrap_err();
                    assert!(msg.contains("poisoned item 5"), "got: {msg}");
                } else {
                    assert_eq!(*slot, Ok(i as u64 * 2), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn catch_survives_every_item_panicking() {
        let items: Vec<u64> = (0..8).collect();
        let out = ordered_parallel_catch(&items, 4, |i, _| -> u64 { panic!("item {i}") });
        assert!(out.iter().all(Result::is_err));
    }

    #[test]
    fn map_repanics_with_worker_message() {
        let items: Vec<u64> = (0..8).collect();
        let err = std::panic::catch_unwind(|| {
            ordered_parallel_map(&items, 4, |_, &x| {
                assert!(x != 3, "bad cell");
                x
            })
        })
        .unwrap_err();
        let msg = crate::error::panic_message(err.as_ref());
        assert!(msg.contains("bad cell"), "got: {msg}");
    }
}
