//! Shared utilities for the AOS reproduction workspace.
//!
//! This crate deliberately avoids external dependencies so every workload
//! trace, PAC distribution and simulation result in the repository is
//! **bit-reproducible** across platforms and library versions:
//!
//! - [`rng`] — a small, fast, seedable PRNG family ([`rng::SplitMix64`],
//!   [`rng::Xoshiro256StarStar`]) plus the sampling helpers the workload
//!   generator needs (uniform ranges, Bernoulli, Zipf, discrete tables).
//! - [`stats`] — the summary statistics the paper reports (mean, standard
//!   deviation, geometric mean) and a fixed-bin [`stats::Histogram`].
//! - [`par`] — a `std::thread::scope` fork/join helper
//!   ([`par::ordered_parallel_map`]) that fans independent work items
//!   across a worker pool while preserving input order, the substrate
//!   for the campaign runner in `aos-core`; its panic-isolating twin
//!   [`par::ordered_parallel_catch`] turns worker panics into per-item
//!   errors instead of poisoning the whole join.
//! - [`error`] — the shared [`error::AosError`] taxonomy the pipeline
//!   crates converge to at subsystem boundaries.
//! - [`guard`] — guarded execution of untrusted work
//!   ([`guard::run_guarded`]: `catch_unwind` isolation, wall-clock
//!   watchdog, bounded retry with linear or exponential backoff), the
//!   protection stack shared by the campaign runner and `aos-serve`.
//! - [`telemetry`] — the zero-cost-when-disabled metrics registry
//!   ([`telemetry::Telemetry`] handle, fixed counter/gauge/histogram
//!   taxonomy, mergeable [`telemetry::TelemetrySnapshot`]) that every
//!   pipeline stage records into.
//!
//! # Examples
//!
//! ```
//! use aos_util::rng::Xoshiro256StarStar;
//! use aos_util::stats::geomean;
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(42);
//! let x = rng.next_range(16);
//! assert!(x < 16);
//! assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
//! ```

pub mod error;
pub mod guard;
pub mod par;
pub mod rng;
pub mod stats;
pub mod telemetry;

pub use error::AosError;
pub use telemetry::{Counter, Gauge, Hist, Telemetry, TelemetrySnapshot};
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use stats::{geomean, mean, stdev, Histogram};
