//! Summary statistics used throughout the evaluation harness.
//!
//! The paper reports arithmetic means (Fig. 11), geometric means of
//! normalized execution times (Figs. 14, 15, 18) and standard deviations
//! (Fig. 11). These helpers keep that logic in one tested place.

/// Arithmetic mean. Returns `0.0` for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(aos_util::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation. Returns `0.0` for fewer than two
/// samples.
///
/// # Examples
///
/// ```
/// let s = aos_util::stats::stdev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert!((s - 2.0).abs() < 1e-12);
/// ```
pub fn stdev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Geometric mean, the paper's aggregate for normalized results.
/// Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive — a normalized execution
/// time of zero or below indicates a harness bug.
///
/// # Examples
///
/// ```
/// assert!((aos_util::stats::geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// A fixed-width-bin histogram over `u64` keys, used for the PAC
/// distribution study (Fig. 11).
///
/// # Examples
///
/// ```
/// use aos_util::stats::Histogram;
/// let mut h = Histogram::new(16);
/// h.record(3);
/// h.record(3);
/// h.record(15);
/// assert_eq!(h.count(3), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bins: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` buckets for keys `0..bins`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.bins.len()
    }

    /// Returns `true` if the histogram has zero buckets (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.bins.is_empty()
    }

    /// Records one occurrence of `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is outside `0..len()`.
    pub fn record(&mut self, key: u64) {
        let idx = usize::try_from(key).expect("histogram key fits usize");
        assert!(idx < self.bins.len(), "key {key} out of range");
        self.bins[idx] += 1;
        self.total += 1;
    }

    /// Occurrences recorded for `key` (zero when out of range).
    pub fn count(&self, key: u64) -> u64 {
        usize::try_from(key)
            .ok()
            .and_then(|i| self.bins.get(i).copied())
            .unwrap_or(0)
    }

    /// Total number of recorded samples.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterator over per-bin counts, in key order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.bins.iter().copied()
    }

    /// Summary of the per-bin occupancy: `(mean, max, min, stdev)` — the
    /// four numbers printed in the Fig. 11 caption.
    pub fn occupancy_summary(&self) -> OccupancySummary {
        let as_f: Vec<f64> = self.bins.iter().map(|&c| c as f64).collect();
        OccupancySummary {
            mean: mean(&as_f),
            max: self.bins.iter().copied().max().unwrap_or(0),
            min: self.bins.iter().copied().min().unwrap_or(0),
            stdev: stdev(&as_f),
        }
    }
}

/// Per-bin occupancy summary produced by [`Histogram::occupancy_summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OccupancySummary {
    /// Mean samples per bin.
    pub mean: f64,
    /// Largest bin count.
    pub max: u64,
    /// Smallest bin count.
    pub min: u64,
    /// Population standard deviation of bin counts.
    pub stdev: f64,
}

impl std::fmt::Display for OccupancySummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Avg:{:.1}, Max:{}, Min:{}, Stdev: {:.2}",
            self.mean, self.max, self.min, self.stdev
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn stdev_of_constant_is_zero() {
        assert_eq!(stdev(&[4.0, 4.0, 4.0]), 0.0);
    }

    #[test]
    fn stdev_single_sample_is_zero() {
        assert_eq!(stdev(&[42.0]), 0.0);
    }

    #[test]
    fn geomean_matches_hand_computation() {
        let g = geomean(&[1.0, 10.0, 100.0]);
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn histogram_counts_and_summary() {
        let mut h = Histogram::new(4);
        for k in [0u64, 0, 1, 2, 2, 2] {
            h.record(k);
        }
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(3), 0);
        assert_eq!(h.count(99), 0);
        assert_eq!(h.total(), 6);
        assert_eq!(h.len(), 4);
        assert!(!h.is_empty());
        let s = h.occupancy_summary();
        assert_eq!(s.max, 3);
        assert_eq!(s.min, 0);
        assert!((s.mean - 1.5).abs() < 1e-12);
        let shown = s.to_string();
        assert!(shown.contains("Avg:1.5"), "display was {shown}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn histogram_rejects_out_of_range_record() {
        Histogram::new(2).record(2);
    }

    #[test]
    fn histogram_iter_in_key_order() {
        let mut h = Histogram::new(3);
        h.record(1);
        h.record(1);
        h.record(2);
        let v: Vec<u64> = h.iter().collect();
        assert_eq!(v, vec![0, 2, 1]);
    }
}
