//! A zero-cost-when-disabled metrics registry for the AOS pipeline.
//!
//! The paper's evaluation leans on microarchitectural *rates* — BWB
//! hit rate (Algorithm 2), MCQ occupancy and store-load replays
//! (Fig. 8), HBT way utilization and gradual-resizing migration
//! progress (Fig. 10) — that were previously computed ad hoc inside
//! individual subsystems. This module makes them first-class:
//!
//! - a fixed **taxonomy** of monotonic [`Counter`]s, high-watermark /
//!   level [`Gauge`]s and power-of-two bucketed [`Hist`]ograms, each
//!   with a stable wire name (the `aos-campaign-report/v5` counter
//!   keys);
//! - a [`Telemetry`] **handle** threaded through construction — no
//!   globals, no locks on the hot path. A disabled handle is a `None`
//!   and every record call is a single branch; an enabled handle
//!   shares one [`Arc`] of plain `u64` cells (relaxed atomics, so the
//!   same registry can be read across the campaign runner's worker
//!   threads without synchronization);
//! - an immutable [`TelemetrySnapshot`] for reporting: plain arrays,
//!   `PartialEq`/`Eq` for the bit-identity differential tests,
//!   [`TelemetrySnapshot::merge`] for campaign-level aggregation, and
//!   JSON / human-table renderers.
//!
//! Determinism contract: every counter in the taxonomy is driven by
//! the simulation's deterministic event stream, so two runs of the
//! same `(workload, system, scale)` produce bit-identical snapshots —
//! and a *disabled* run is bit-identical in everything else, because
//! recording never feeds back into simulated state.
//!
//! # Examples
//!
//! ```
//! use aos_util::telemetry::{Counter, Telemetry};
//!
//! let t = Telemetry::enabled();
//! t.count(Counter::BwbHits);
//! t.add(Counter::BwbMisses, 3);
//! let snap = t.snapshot();
//! assert_eq!(snap.counter(Counter::BwbHits), 1);
//! assert_eq!(snap.counter(Counter::BwbMisses), 3);
//! assert!(Telemetry::disabled().snapshot().is_empty());
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonic event counters, one per instrumented pipeline event.
///
/// The discriminant is the cell index; [`Counter::NAMES`] (same
/// order) are the stable wire names used by the v4 campaign report
/// and `aos stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// QARMA-64 block-cipher invocations (PAC computations).
    PacComputations,
    /// `pacma` sign operations performed by the signer.
    PtrSigns,
    /// `xpacm` strip operations performed by the signer.
    PtrStrips,
    /// `autm` authentication attempts performed by the signer.
    PtrAuths,
    /// `autm` attempts that failed authentication.
    AuthFailures,
    /// HBT lookups (`check`, functional path).
    HbtLookups,
    /// HBT lookups that found a validating bounds record.
    HbtHits,
    /// HBT lookups that fell through every way.
    HbtMisses,
    /// Bounds records inserted (successful `store`s, plus MCU-driven
    /// slot writes of non-empty bounds).
    HbtInserts,
    /// Bounds records cleared (successful `clear`s, plus MCU-driven
    /// slot writes of empty bounds).
    HbtClears,
    /// `clear` calls that found no matching record.
    HbtFailedClears,
    /// Gradual resizes begun.
    HbtResizes,
    /// Rows moved by the background migration engine.
    HbtMigrationRows,
    /// BWB lookups that hit.
    BwbHits,
    /// BWB lookups that missed.
    BwbMisses,
    /// BWB fills/refreshes (`update` calls).
    BwbUpdates,
    /// BWB LRU evictions on fill.
    BwbEvictions,
    /// Operations enqueued into the MCQ.
    McqEnqueued,
    /// Store-to-load replays (§V-E).
    McqReplays,
    /// Store-to-load bounds forwards.
    McqForwards,
    /// AOS exceptions raised by MCQ FSMs.
    McqExceptions,
    /// MCQ entries retired clean.
    McqRetired,
    /// Violations the machine charged (exceptions minus resize
    /// retries).
    SimViolations,
    /// Heap allocations served.
    HeapAllocs,
    /// Heap frees served.
    HeapFrees,
    /// Ops scanned by the static protocol linter (`aos-lint`).
    LintOpsScanned,
    /// Diagnostics the linter emitted (all rules, all severities).
    LintDiagnostics,
    /// Ops delivered through batch refills of the streaming pipeline.
    BatchOpsRefilled,
    /// Refilled ops that degraded to the per-op fallback pull (≈ 0
    /// when every stage of the pipeline is batch-native).
    BatchFallbackOps,
    /// Jobs the service accepted into its bounded queue.
    ServeJobsAccepted,
    /// Jobs the service rejected with a retry-after backpressure
    /// reply because the queue was full.
    ServeJobsRejected,
    /// Jobs that needed at least one retry before completing or
    /// finally failing.
    ServeJobsRetried,
    /// Jobs whose every attempt exceeded the per-job deadline.
    ServeJobsTimedOut,
    /// Jobs whose every attempt panicked (isolated by the guard; the
    /// service kept serving).
    ServeJobsPanicked,
    /// Corpus frames written (entry headers, op blocks, trailers).
    CorpusBlocksWritten,
    /// Corpus frames read and CRC-validated.
    CorpusBlocksRead,
    /// Corpus frames that failed their CRC / framing check and were
    /// quarantined with a typed error instead of replayed.
    CorpusCrcFailures,
    /// Cycles the stage-structured core could not dispatch because the
    /// reorder buffer was full.
    SimStallRob,
    /// Cycles the stage-structured core could not dispatch because the
    /// load/store queue was full.
    SimStallLsq,
    /// Cycles the stage-structured core could not dispatch because the
    /// memory check queue was full (MCU back-pressure, §V-B).
    SimStallMcq,
    /// Loads the LSQ replayed after a same-window older store resolved
    /// to an overlapping address (store→load ordering speculation).
    SimReplays,
    /// Pipeline flushes: precise-exception squashes of everything
    /// younger than a faulting op at commit (delayed retirement,
    /// §V-A).
    SimFlushes,
    /// Adversarial scenarios generated and replayed by the fuzzing
    /// engine (one per composed attack chain).
    FuzzScenarios,
    /// Individual attack steps composed into scenarios (base injector
    /// faults plus composite primitives).
    FuzzSteps,
    /// Differential findings: scenarios whose static/dynamic verdicts
    /// disagreed with the pinned expectation split.
    FuzzFindings,
    /// Discrepancy-triggering streams banked into regression corpora.
    FuzzCorpusBanked,
    /// Diagnostics emitted by non-AOS static policy verifiers
    /// (CryptSan/PACSan/PACTight models) in matrix scans.
    LintPolicyDiagnostics,
    /// Distinct coverage points (rules fired, violation sites
    /// reached) the fuzzing engine's coverage map accumulated.
    FuzzCoveragePoints,
}

impl Counter {
    /// Number of counters in the taxonomy.
    pub const COUNT: usize = 48;

    /// Every counter, in cell (and wire) order.
    pub const ALL: [Counter; Self::COUNT] = [
        Counter::PacComputations,
        Counter::PtrSigns,
        Counter::PtrStrips,
        Counter::PtrAuths,
        Counter::AuthFailures,
        Counter::HbtLookups,
        Counter::HbtHits,
        Counter::HbtMisses,
        Counter::HbtInserts,
        Counter::HbtClears,
        Counter::HbtFailedClears,
        Counter::HbtResizes,
        Counter::HbtMigrationRows,
        Counter::BwbHits,
        Counter::BwbMisses,
        Counter::BwbUpdates,
        Counter::BwbEvictions,
        Counter::McqEnqueued,
        Counter::McqReplays,
        Counter::McqForwards,
        Counter::McqExceptions,
        Counter::McqRetired,
        Counter::SimViolations,
        Counter::HeapAllocs,
        Counter::HeapFrees,
        Counter::LintOpsScanned,
        Counter::LintDiagnostics,
        Counter::BatchOpsRefilled,
        Counter::BatchFallbackOps,
        Counter::ServeJobsAccepted,
        Counter::ServeJobsRejected,
        Counter::ServeJobsRetried,
        Counter::ServeJobsTimedOut,
        Counter::ServeJobsPanicked,
        Counter::CorpusBlocksWritten,
        Counter::CorpusBlocksRead,
        Counter::CorpusCrcFailures,
        Counter::SimStallRob,
        Counter::SimStallLsq,
        Counter::SimStallMcq,
        Counter::SimReplays,
        Counter::SimFlushes,
        Counter::FuzzScenarios,
        Counter::FuzzSteps,
        Counter::FuzzFindings,
        Counter::FuzzCorpusBanked,
        Counter::LintPolicyDiagnostics,
        Counter::FuzzCoveragePoints,
    ];

    /// Stable wire names, in the same order as [`Counter::ALL`].
    pub const NAMES: [&'static str; Self::COUNT] = [
        "pac_computations",
        "ptr_signs",
        "ptr_strips",
        "ptr_auths",
        "auth_failures",
        "hbt_lookups",
        "hbt_hits",
        "hbt_misses",
        "hbt_inserts",
        "hbt_clears",
        "hbt_failed_clears",
        "hbt_resizes",
        "hbt_migration_rows",
        "bwb_hits",
        "bwb_misses",
        "bwb_updates",
        "bwb_evictions",
        "mcq_enqueued",
        "mcq_replays",
        "mcq_forwards",
        "mcq_exceptions",
        "mcq_retired",
        "sim_violations",
        "heap_allocs",
        "heap_frees",
        "lint_ops_scanned",
        "lint_diagnostics",
        "batch_ops_refilled",
        "batch_fallback_ops",
        "serve_jobs_accepted",
        "serve_jobs_rejected",
        "serve_jobs_retried",
        "serve_jobs_timed_out",
        "serve_jobs_panicked",
        "corpus_blocks_written",
        "corpus_blocks_read",
        "corpus_crc_failures",
        "sim_stall_rob",
        "sim_stall_lsq",
        "sim_stall_mcq",
        "sim_replays",
        "sim_flushes",
        "fuzz_scenarios",
        "fuzz_steps",
        "fuzz_findings",
        "fuzz_corpus_banked",
        "lint_policy_diagnostics",
        "fuzz_coverage_points",
    ];

    /// The counter's stable wire name.
    pub fn name(self) -> &'static str {
        Self::NAMES[self as usize]
    }
}

/// Level / high-watermark cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Peak MCQ occupancy observed (Fig. 8's pressure signal).
    McqPeakOccupancy,
    /// Final HBT associativity (ways).
    HbtWays,
    /// Peak depth of the service's bounded job queue — the MCQ
    /// occupancy signal applied to the repo's own deployment shape.
    ServeQueueDepth,
}

impl Gauge {
    /// Number of gauges in the taxonomy.
    pub const COUNT: usize = 3;

    /// Every gauge, in cell (and wire) order.
    pub const ALL: [Gauge; Self::COUNT] =
        [Gauge::McqPeakOccupancy, Gauge::HbtWays, Gauge::ServeQueueDepth];

    /// Stable wire names, in the same order as [`Gauge::ALL`].
    pub const NAMES: [&'static str; Self::COUNT] =
        ["mcq_peak_occupancy", "hbt_ways", "serve_queue_depth"];

    /// The gauge's stable wire name.
    pub fn name(self) -> &'static str {
        Self::NAMES[self as usize]
    }
}

/// Bucketed histograms (power-of-two buckets starting at 16 bytes,
/// matching the heap's 16-byte granule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Usable size of each heap allocation (size-class profile,
    /// Tables II/III flavor).
    HeapAllocSize,
}

impl Hist {
    /// Number of histograms in the taxonomy.
    pub const COUNT: usize = 1;

    /// Every histogram, in cell (and wire) order.
    pub const ALL: [Hist; Self::COUNT] = [Hist::HeapAllocSize];

    /// Stable wire names, in the same order as [`Hist::ALL`].
    pub const NAMES: [&'static str; Self::COUNT] = ["heap_alloc_size"];

    /// The histogram's stable wire name.
    pub fn name(self) -> &'static str {
        Self::NAMES[self as usize]
    }
}

/// Buckets per histogram: `le_16`, `le_32`, …, `le_262144`, then one
/// overflow bucket for everything larger.
pub const HIST_BUCKETS: usize = 16;

/// The bucket a value lands in: bucket `i` holds values in
/// `(16·2^(i-1), 16·2^i]` (bucket 0 holds everything ≤ 16), the last
/// bucket everything beyond the covered range.
pub fn hist_bucket_index(value: u64) -> usize {
    let v = value.max(1);
    if v > 1 << 62 {
        return HIST_BUCKETS - 1;
    }
    let ceil_log2 = (v.next_power_of_two().trailing_zeros()) as usize;
    ceil_log2.saturating_sub(4).min(HIST_BUCKETS - 1)
}

/// The stable wire name of a histogram bucket.
pub fn hist_bucket_name(index: usize) -> String {
    if index + 1 < HIST_BUCKETS {
        format!("le_{}", 16u64 << index)
    } else {
        format!("gt_{}", 16u64 << (HIST_BUCKETS - 2))
    }
}

/// The shared cell store behind an enabled handle.
#[derive(Debug)]
struct Registry {
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    hists: [[AtomicU64; HIST_BUCKETS]; Hist::COUNT],
}

impl Registry {
    fn new() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            hists: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

/// The handle threaded through construction.
///
/// Cloning shares the registry: a machine hands clones to its MCU,
/// BWB and HBT and every part records into the same cells. The
/// default handle is disabled; [`Telemetry::enabled`] allocates a
/// fresh zeroed registry.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    registry: Option<Arc<Registry>>,
}

impl Telemetry {
    /// A recording handle with a fresh, zeroed registry.
    pub fn enabled() -> Self {
        Self {
            registry: Some(Arc::new(Registry::new())),
        }
    }

    /// A no-op handle: every record call is a single `None` branch.
    pub fn disabled() -> Self {
        Self { registry: None }
    }

    /// `enabled()` or `disabled()` by flag.
    pub fn new(enabled: bool) -> Self {
        if enabled {
            Self::enabled()
        } else {
            Self::disabled()
        }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn count(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Adds `n` to a counter.
    ///
    /// Recording uses plain load+store on the cells rather than atomic
    /// read-modify-write: a registry has a single writer (the machine
    /// that owns the handle and the components it hands clones to, all
    /// on one thread), and dropping the `lock` prefix keeps the
    /// hot-path cost at a couple of cycles. Concurrent *snapshots*
    /// from other threads are safe; concurrent writers are not
    /// supported and would lose increments.
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if let Some(r) = &self.registry {
            let cell = &r.counters[counter as usize];
            cell.store(cell.load(Ordering::Relaxed) + n, Ordering::Relaxed);
        }
    }

    /// Raises a gauge to `value` if `value` is higher (high-watermark
    /// semantics, e.g. peak MCQ occupancy).
    #[inline]
    pub fn gauge_max(&self, gauge: Gauge, value: u64) {
        if let Some(r) = &self.registry {
            let cell = &r.gauges[gauge as usize];
            if value > cell.load(Ordering::Relaxed) {
                cell.store(value, Ordering::Relaxed);
            }
        }
    }

    /// Sets a gauge to `value` (level semantics, e.g. current HBT
    /// ways).
    #[inline]
    pub fn gauge_set(&self, gauge: Gauge, value: u64) {
        if let Some(r) = &self.registry {
            r.gauges[gauge as usize].store(value, Ordering::Relaxed);
        }
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&self, hist: Hist, value: u64) {
        if let Some(r) = &self.registry {
            let cell = &r.hists[hist as usize][hist_bucket_index(value)];
            cell.store(cell.load(Ordering::Relaxed) + 1, Ordering::Relaxed);
        }
    }

    /// An immutable copy of every cell.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.registry {
            None => TelemetrySnapshot::default(),
            Some(r) => TelemetrySnapshot {
                enabled: true,
                counters: std::array::from_fn(|i| r.counters[i].load(Ordering::Relaxed)),
                gauges: std::array::from_fn(|i| r.gauges[i].load(Ordering::Relaxed)),
                hists: std::array::from_fn(|h| {
                    std::array::from_fn(|b| r.hists[h][b].load(Ordering::Relaxed))
                }),
            },
        }
    }
}

/// An immutable copy of a registry's cells, suitable for reports and
/// the bit-identity differential tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Whether the snapshot came from an enabled handle.
    pub enabled: bool,
    /// Counter cells, indexed by [`Counter`] discriminant.
    pub counters: [u64; Counter::COUNT],
    /// Gauge cells, indexed by [`Gauge`] discriminant.
    pub gauges: [u64; Gauge::COUNT],
    /// Histogram cells, indexed by [`Hist`] discriminant then bucket.
    pub hists: [[u64; HIST_BUCKETS]; Hist::COUNT],
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        Self {
            enabled: false,
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            hists: [[0; HIST_BUCKETS]; Hist::COUNT],
        }
    }
}

impl TelemetrySnapshot {
    /// One counter cell.
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// One gauge cell.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize]
    }

    /// One histogram's buckets.
    pub fn hist(&self, hist: Hist) -> &[u64; HIST_BUCKETS] {
        &self.hists[hist as usize]
    }

    /// True when every cell is zero (always the case for a snapshot
    /// of a disabled handle).
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.hists.iter().flatten().all(|&b| b == 0)
    }

    /// BWB hit rate over recorded lookups (0.0 when none).
    pub fn bwb_hit_rate(&self) -> f64 {
        let hits = self.counter(Counter::BwbHits);
        let total = hits + self.counter(Counter::BwbMisses);
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// A copy with the given counters zeroed. The batch-plumbing
    /// counters (`batch_ops_refilled` / `batch_fallback_ops`) describe
    /// how ops were *delivered*, not what was simulated, so the
    /// batched-vs-per-op equivalence tests zero them before comparing
    /// snapshots bit for bit.
    pub fn with_counters_zeroed(&self, zeroed: &[Counter]) -> TelemetrySnapshot {
        let mut out = self.clone();
        for &c in zeroed {
            out.counters[c as usize] = 0;
        }
        out
    }

    /// Folds another snapshot in: counters and histogram buckets sum,
    /// gauges take the maximum (peak-of-peaks), `enabled` ORs — the
    /// campaign-level aggregation.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        self.enabled |= other.enabled;
        for i in 0..Counter::COUNT {
            self.counters[i] += other.counters[i];
        }
        for i in 0..Gauge::COUNT {
            self.gauges[i] = self.gauges[i].max(other.gauges[i]);
        }
        for h in 0..Hist::COUNT {
            for b in 0..HIST_BUCKETS {
                self.hists[h][b] += other.hists[h][b];
            }
        }
    }

    /// The snapshot as a JSON object (the v4 report's per-cell
    /// `telemetry` value). `indent` is the prefix for nested lines;
    /// the opening brace is not indented so the object can sit after
    /// a key.
    pub fn to_json(&self, indent: &str) -> String {
        let pad = format!("{indent}  ");
        let mut s = String::from("{\n");
        let _ = writeln!(s, "{pad}\"enabled\": {},", self.enabled);
        let _ = writeln!(s, "{pad}\"counters\": {{");
        for (i, name) in Counter::NAMES.iter().enumerate() {
            let comma = if i + 1 < Counter::COUNT { "," } else { "" };
            let _ = writeln!(s, "{pad}  \"{name}\": {}{comma}", self.counters[i]);
        }
        let _ = writeln!(s, "{pad}}},");
        let _ = writeln!(s, "{pad}\"gauges\": {{");
        for (i, name) in Gauge::NAMES.iter().enumerate() {
            let comma = if i + 1 < Gauge::COUNT { "," } else { "" };
            let _ = writeln!(s, "{pad}  \"{name}\": {}{comma}", self.gauges[i]);
        }
        let _ = writeln!(s, "{pad}}},");
        let _ = writeln!(s, "{pad}\"hists\": {{");
        for (h, name) in Hist::NAMES.iter().enumerate() {
            let _ = writeln!(s, "{pad}  \"{name}\": {{");
            for b in 0..HIST_BUCKETS {
                let comma = if b + 1 < HIST_BUCKETS { "," } else { "" };
                let _ = writeln!(
                    s,
                    "{pad}    \"{}\": {}{comma}",
                    hist_bucket_name(b),
                    self.hists[h][b]
                );
            }
            let comma = if h + 1 < Hist::COUNT { "," } else { "" };
            let _ = writeln!(s, "{pad}  }}{comma}");
        }
        let _ = writeln!(s, "{pad}}}");
        let _ = write!(s, "{indent}}}");
        s
    }

    /// The snapshot as an aligned human table.
    pub fn to_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "telemetry ({})",
            if self.enabled { "enabled" } else { "disabled" }
        );
        let _ = writeln!(s, "  {:<24} {:>16}", "counter", "value");
        for (i, name) in Counter::NAMES.iter().enumerate() {
            let _ = writeln!(s, "  {:<24} {:>16}", name, self.counters[i]);
        }
        for (i, name) in Gauge::NAMES.iter().enumerate() {
            let _ = writeln!(s, "  {:<24} {:>16}", name, self.gauges[i]);
        }
        let _ = writeln!(s, "  {:<24} {:>15.1}%", "bwb_hit_rate", self.bwb_hit_rate() * 100.0);
        for (h, name) in Hist::NAMES.iter().enumerate() {
            let total: u64 = self.hists[h].iter().sum();
            let _ = writeln!(s, "  {:<24} {:>16} observations", name, total);
            for b in 0..HIST_BUCKETS {
                if self.hists[h][b] > 0 {
                    let _ = writeln!(
                        s,
                        "    {:<22} {:>16}",
                        hist_bucket_name(b),
                        self.hists[h][b]
                    );
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        t.count(Counter::BwbHits);
        t.gauge_max(Gauge::McqPeakOccupancy, 10);
        t.observe(Hist::HeapAllocSize, 64);
        assert!(!t.is_enabled());
        let snap = t.snapshot();
        assert!(snap.is_empty());
        assert!(!snap.enabled);
        assert_eq!(snap, TelemetrySnapshot::default());
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::enabled();
        let u = t.clone();
        t.count(Counter::HbtInserts);
        u.add(Counter::HbtInserts, 2);
        assert_eq!(t.snapshot().counter(Counter::HbtInserts), 3);
        assert_eq!(t.snapshot(), u.snapshot());
    }

    #[test]
    fn gauge_max_keeps_the_high_watermark() {
        let t = Telemetry::enabled();
        t.gauge_max(Gauge::McqPeakOccupancy, 5);
        t.gauge_max(Gauge::McqPeakOccupancy, 3);
        assert_eq!(t.snapshot().gauge(Gauge::McqPeakOccupancy), 5);
        t.gauge_set(Gauge::HbtWays, 4);
        t.gauge_set(Gauge::HbtWays, 2);
        assert_eq!(t.snapshot().gauge(Gauge::HbtWays), 2);
    }

    #[test]
    fn hist_buckets_are_power_of_two_from_16() {
        assert_eq!(hist_bucket_index(0), 0);
        assert_eq!(hist_bucket_index(1), 0);
        assert_eq!(hist_bucket_index(16), 0);
        assert_eq!(hist_bucket_index(17), 1);
        assert_eq!(hist_bucket_index(32), 1);
        assert_eq!(hist_bucket_index(33), 2);
        assert_eq!(hist_bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(hist_bucket_name(0), "le_16");
        assert_eq!(hist_bucket_name(1), "le_32");
        assert!(hist_bucket_name(HIST_BUCKETS - 1).starts_with("gt_"));
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let a = Telemetry::enabled();
        a.add(Counter::McqReplays, 2);
        a.gauge_max(Gauge::McqPeakOccupancy, 7);
        let b = Telemetry::enabled();
        b.add(Counter::McqReplays, 3);
        b.gauge_max(Gauge::McqPeakOccupancy, 4);
        b.observe(Hist::HeapAllocSize, 100);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.counter(Counter::McqReplays), 5);
        assert_eq!(m.gauge(Gauge::McqPeakOccupancy), 7);
        assert_eq!(m.hist(Hist::HeapAllocSize)[hist_bucket_index(100)], 1);
        assert!(m.enabled);
    }

    #[test]
    fn taxonomy_names_are_unique_and_aligned() {
        let mut names: Vec<&str> = Counter::NAMES
            .iter()
            .chain(Gauge::NAMES.iter())
            .chain(Hist::NAMES.iter())
            .copied()
            .collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate wire name");
        for c in Counter::ALL {
            assert_eq!(Counter::NAMES[c as usize], c.name());
        }
    }

    #[test]
    fn json_rendering_is_well_formed_and_ordered() {
        let t = Telemetry::enabled();
        t.count(Counter::PacComputations);
        let json = t.snapshot().to_json("");
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let pac = json.find("\"pac_computations\"").unwrap();
        let frees = json.find("\"heap_frees\"").unwrap();
        assert!(pac < frees, "counter keys must keep taxonomy order");
        assert!(json.contains("\"mcq_peak_occupancy\""));
        assert!(json.contains("\"heap_alloc_size\""));
    }
}
