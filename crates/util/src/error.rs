//! The shared error taxonomy for the AOS workspace.
//!
//! Every crate in the pipeline speaks its own precise error language
//! (`HeapError`, `AosException`, `MemorySafetyError`, …); [`AosError`]
//! is the common denominator those converge to at subsystem
//! boundaries — the campaign runner, the CLI, the fault harness — so a
//! malformed trace or a poisoned cell surfaces as a typed, printable
//! error instead of a Rust panic.
//!
//! `aos-util` sits at the bottom of the dependency stack, so the
//! variants carry owned strings rather than foreign error types; the
//! `From` impls that lift crate-specific errors into [`AosError`] live
//! in the crates that define those errors.

/// A typed error from any stage of the AOS pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AosError {
    /// Untrusted input (a trace, a CLI flag, a workload profile) was
    /// malformed or out of the accepted domain.
    InvalidInput {
        /// Which input or parser rejected the value.
        context: String,
        /// What was wrong with it.
        detail: String,
    },
    /// A bounded resource (heap arena, HBT associativity, MCQ
    /// capacity) was exhausted and could not be grown further.
    ResourceExhausted {
        /// The resource that ran out.
        resource: String,
        /// The limit and demand involved.
        detail: String,
    },
    /// AOS detected a memory-safety violation (the paper's exception
    /// class: bounds-check, bounds-clear or authentication failure).
    SafetyViolation {
        /// Human-readable diagnosis of the violation.
        detail: String,
    },
    /// Stored state failed an integrity check — a bounds record with a
    /// bad CRC, a trace that decodes to an impossible op.
    Corruption {
        /// The structure that failed validation.
        context: String,
        /// What the check found.
        detail: String,
    },
    /// A unit of work (a campaign cell, a fault trial) panicked,
    /// timed out, or otherwise failed to produce a result.
    TaskFailed {
        /// A label identifying the task (e.g. a campaign cell).
        label: String,
        /// The captured panic message or failure reason.
        detail: String,
    },
    /// An I/O failure while reading or writing traces and reports.
    Io {
        /// The path or stream involved.
        context: String,
        /// The underlying I/O error, rendered.
        detail: String,
    },
}

impl AosError {
    /// Shorthand for [`AosError::InvalidInput`] from any displayables.
    pub fn invalid_input(context: impl Into<String>, detail: impl std::fmt::Display) -> Self {
        AosError::InvalidInput {
            context: context.into(),
            detail: detail.to_string(),
        }
    }

    /// Shorthand for [`AosError::ResourceExhausted`].
    pub fn exhausted(resource: impl Into<String>, detail: impl std::fmt::Display) -> Self {
        AosError::ResourceExhausted {
            resource: resource.into(),
            detail: detail.to_string(),
        }
    }

    /// Shorthand for [`AosError::Corruption`].
    pub fn corruption(context: impl Into<String>, detail: impl std::fmt::Display) -> Self {
        AosError::Corruption {
            context: context.into(),
            detail: detail.to_string(),
        }
    }

    /// Shorthand for [`AosError::TaskFailed`].
    pub fn task_failed(label: impl Into<String>, detail: impl std::fmt::Display) -> Self {
        AosError::TaskFailed {
            label: label.into(),
            detail: detail.to_string(),
        }
    }
}

impl std::fmt::Display for AosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AosError::InvalidInput { context, detail } => {
                write!(f, "invalid input in {context}: {detail}")
            }
            AosError::ResourceExhausted { resource, detail } => {
                write!(f, "{resource} exhausted: {detail}")
            }
            AosError::SafetyViolation { detail } => {
                write!(f, "memory-safety violation: {detail}")
            }
            AosError::Corruption { context, detail } => {
                write!(f, "corrupted {context}: {detail}")
            }
            AosError::TaskFailed { label, detail } => {
                write!(f, "task {label} failed: {detail}")
            }
            AosError::Io { context, detail } => {
                write!(f, "i/o error on {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for AosError {}

impl From<std::io::Error> for AosError {
    fn from(e: std::io::Error) -> Self {
        AosError::Io {
            context: String::from("<unknown>"),
            detail: e.to_string(),
        }
    }
}

/// Renders a `catch_unwind` payload as the panic message, falling back
/// to a placeholder for non-string payloads.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AosError::invalid_input("trace decoder", "opcode 0x99");
        assert_eq!(e.to_string(), "invalid input in trace decoder: opcode 0x99");
        let e = AosError::exhausted("HBT", "128 ways at max");
        assert!(e.to_string().contains("HBT exhausted"));
        let e = AosError::SafetyViolation {
            detail: String::from("oob store"),
        };
        assert!(e.to_string().contains("violation"));
        let e = AosError::corruption("bounds record", "CRC mismatch");
        assert!(e.to_string().contains("corrupted bounds record"));
        let e = AosError::task_failed("mcf/AOS", "panicked");
        assert!(e.to_string().contains("task mcf/AOS failed"));
    }

    #[test]
    fn io_errors_lift() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = AosError::from(io);
        assert!(matches!(e, AosError::Io { .. }));
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn panic_payloads_render() {
        let err = std::panic::catch_unwind(|| panic!("boom {}", 42)).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "boom 42");
        let err = std::panic::catch_unwind(|| std::panic::panic_any(7u32)).unwrap_err();
        assert_eq!(panic_message(err.as_ref()), "<non-string panic payload>");
    }
}
