//! The shared per-policy rule registry: every static policy owns a
//! fixed taxonomy of rules with stable wire names, fixed severities,
//! and a one-line statement of the obligation each rule enforces.
//!
//! Hoisting the metadata out of the verifiers gives the reports one
//! source of truth for *exact per-rule counts per policy* — the
//! [`MAX_STORED_DIAGNOSTICS`](crate::verifier::MAX_STORED_DIAGNOSTICS)
//! cap bounds only the stored diagnostics, never the counts, and each
//! policy counts into its own registry-sized array so findings from
//! different policies can never interleave in one counter.

use crate::rules::Severity;

/// Static metadata for one rule in a policy's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleInfo {
    /// Stable wire name (report keys, CLI tables, corpus metadata).
    pub name: &'static str,
    /// Fixed severity of every finding under the rule.
    pub severity: Severity,
    /// The obligation the rule enforces — one line for the docs and
    /// CLI tables.
    pub obligation: &'static str,
}

/// The 9 AOS lifecycle rules (Fig. 7 / Algorithm 1), in the same
/// order as [`crate::rules::Rule::ALL`] — `Rule as usize` indexes this
/// array.
pub const AOS_RULES: [RuleInfo; 9] = [
    RuleInfo {
        name: "use-before-bndstr",
        severity: Severity::Error,
        obligation: "malloc signs then stores bounds before first use (Fig. 7a)",
    },
    RuleInfo {
        name: "unknown-pac",
        severity: Severity::Error,
        obligation: "every signed pointer descends from a pacma (Fig. 7a)",
    },
    RuleInfo {
        name: "access-after-clear",
        severity: Severity::Error,
        obligation: "no use after the free-site bndclr (Fig. 7b)",
    },
    RuleInfo {
        name: "double-bndclr",
        severity: Severity::Error,
        obligation: "each allocation is cleared exactly once (Fig. 7b)",
    },
    RuleInfo {
        name: "xpacm-without-bndclr",
        severity: Severity::Error,
        obligation: "xpacm strips only as part of the free sequence (Fig. 7b)",
    },
    RuleInfo {
        name: "bndstr-without-pacma",
        severity: Severity::Error,
        obligation: "bndstr pairs with the pacma that signed it (Fig. 7a)",
    },
    RuleInfo {
        name: "ahc-size-mismatch",
        severity: Severity::Error,
        obligation: "AHC bits encode Algorithm 1 of the size operand",
    },
    RuleInfo {
        name: "access-ahc-mismatch",
        severity: Severity::Error,
        obligation: "accesses select the AHC way their bounds live in",
    },
    RuleInfo {
        name: "unbalanced-at-end",
        severity: Severity::Warning,
        obligation: "protocol sequences complete before the stream ends",
    },
];

/// CryptSan's 3 lock-and-key rules: its runtime keys every allocation
/// and checks the key on free and dereference, so the static model
/// proves exactly allocation-key validity — nothing spatial, nothing
/// about AHC size classes (which CryptSan's metadata does not encode).
pub const CRYPTSAN_RULES: [RuleInfo; 3] = [
    RuleInfo {
        name: "unallocated-key",
        severity: Severity::Error,
        obligation: "every keyed pointer descends from a registered allocation",
    },
    RuleInfo {
        name: "revoked-key",
        severity: Severity::Error,
        obligation: "no dereference after the allocation's key is revoked",
    },
    RuleInfo {
        name: "double-revoke",
        severity: Severity::Error,
        obligation: "each allocation's key is revoked exactly once",
    },
];

/// PACSan's 4 seal rules: its shadow memory seals pointers with a PAC
/// at allocation and validates the seal (including its class) on use
/// — but a re-seal launders the pointer, so temporal bugs that end in
/// a fresh `pacma` are invisible to it.
pub const PACSAN_RULES: [RuleInfo; 4] = [
    RuleInfo {
        name: "unsealed-pointer",
        severity: Severity::Error,
        obligation: "every checked pointer carries a seal some pacma produced",
    },
    RuleInfo {
        name: "stale-seal",
        severity: Severity::Error,
        obligation: "no use of a seal after every instance was invalidated",
    },
    RuleInfo {
        name: "seal-class-mismatch",
        severity: Severity::Error,
        obligation: "a use's size class matches the class it was sealed in",
    },
    RuleInfo {
        name: "double-invalidate",
        severity: Severity::Error,
        obligation: "each seal is invalidated at most once per sealing",
    },
];

/// PACTight's 2 pointer-integrity rules: it signs pointers and
/// authenticates them on use, proving only that the bits were never
/// tampered with — no liveness, no bounds, no revocation.
pub const PACTIGHT_RULES: [RuleInfo; 2] = [
    RuleInfo {
        name: "forged-pointer",
        severity: Severity::Error,
        obligation: "every authenticated pointer was signed by this process",
    },
    RuleInfo {
        name: "integrity-class-mismatch",
        severity: Severity::Error,
        obligation: "a pointer authenticates in the class it was signed in",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    #[test]
    fn aos_registry_mirrors_the_rule_enum() {
        assert_eq!(AOS_RULES.len(), Rule::COUNT);
        for (i, rule) in Rule::ALL.iter().enumerate() {
            assert_eq!(Rule::NAMES[i], AOS_RULES[i].name);
            assert_eq!(rule.name(), AOS_RULES[i].name);
            assert_eq!(rule.severity(), AOS_RULES[i].severity);
            assert_eq!(rule.obligation(), AOS_RULES[i].obligation);
        }
    }

    #[test]
    fn wire_names_are_unique_within_each_registry() {
        for registry in [
            &AOS_RULES[..],
            &CRYPTSAN_RULES[..],
            &PACSAN_RULES[..],
            &PACTIGHT_RULES[..],
        ] {
            let mut names: Vec<&str> = registry.iter().map(|r| r.name).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            assert_eq!(before, names.len(), "duplicate rule name in registry");
        }
    }
}
