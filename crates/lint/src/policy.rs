//! Pluggable static policies: the abstract-interpretation framework
//! behind the cross-paper detection matrix.
//!
//! A [`PolicyVerifier`] is a per-op transfer function over an
//! abstract heap/PAC state, with a policy-owned rule taxonomy (the
//! [`registry`](crate::registry)) and the same memory contract as the
//! AOS linter: O(distinct PACs observed) state, zero buffered ops,
//! stored diagnostics capped at
//! [`MAX_STORED_DIAGNOSTICS`](crate::verifier::MAX_STORED_DIAGNOSTICS)
//! while per-rule counts stay exact.
//!
//! Four implementations ship:
//!
//! - [`Policy::Aos`] — the Fig. 7 / Algorithm 1 lifecycle verifier,
//!   a transparent wrapper around [`Linter`] producing bit-identical
//!   findings;
//! - [`Policy::CryptSan`] — a lock-and-key model: allocation
//!   registers a key, free revokes it, dereference checks it. Sees
//!   temporal bugs and forged keys; blind to spatial overflow and to
//!   AHC size classes (its metadata has no size-class notion);
//! - [`Policy::PacSan`] — a PAC-sealed shadow model: `pacma` seals,
//!   free invalidates, use validates the seal and its class. The
//!   crucial blind spot is *authentication laundering*: the Fig. 7b
//!   free-site re-sign produces a perfectly valid seal, so
//!   use-after-free that dereferences the re-signed pointer passes
//!   its check;
//! - [`Policy::PacTight`] — pointer integrity only: a use is valid
//!   iff its PAC+class were ever produced by a `pacma`. No liveness,
//!   no bounds — the strictly weakest model in the matrix.
//!
//! Each model encodes what the paper's instrumentation *can prove
//! about a trace*, not how its runtime implements the check; the
//! point of the matrix is which attack chains slip past which
//! policy's evidence.

use std::collections::HashMap;

use aos_isa::Op;
use aos_ptrauth::PointerLayout;
use aos_util::{Counter, Telemetry};

use crate::registry::{RuleInfo, AOS_RULES, CRYPTSAN_RULES, PACSAN_RULES, PACTIGHT_RULES};
use crate::report::LintReport;
use crate::rules::Rule;
use crate::verifier::{Linter, MAX_STORED_DIAGNOSTICS};

/// The static policies the matrix can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// The AOS Fig. 7 lifecycle verifier (the pre-existing linter).
    Aos,
    /// CryptSan's lock-and-key heap metadata, modeled statically.
    CryptSan,
    /// PACSan's PAC-sealed shadow checks, modeled statically.
    PacSan,
    /// PACTight's pointer-integrity signing, modeled statically.
    PacTight,
}

impl Policy {
    /// Number of policies.
    pub const COUNT: usize = 4;

    /// Every policy, in matrix (and wire) order.
    pub const ALL: [Policy; Self::COUNT] =
        [Policy::Aos, Policy::CryptSan, Policy::PacSan, Policy::PacTight];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Aos => "aos",
            Policy::CryptSan => "cryptsan",
            Policy::PacSan => "pacsan",
            Policy::PacTight => "pactight",
        }
    }

    /// Parses a wire name.
    pub fn parse(name: &str) -> Option<Policy> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }

    /// The policy's rule taxonomy; [`PolicyDiagnostic::rule`] and
    /// [`PolicyReport::rule_counts`] index into this slice.
    pub fn rules(self) -> &'static [RuleInfo] {
        match self {
            Policy::Aos => &AOS_RULES,
            Policy::CryptSan => &CRYPTSAN_RULES,
            Policy::PacSan => &PACSAN_RULES,
            Policy::PacTight => &PACTIGHT_RULES,
        }
    }

    /// One line on what the policy's instrumentation proves.
    pub fn claim(self) -> &'static str {
        match self {
            Policy::Aos => "full Fig. 7 lifecycle + Algorithm 1 AHC encoding",
            Policy::CryptSan => "lock-and-key: allocation keys checked on free and use",
            Policy::PacSan => "PAC seals validated (with class) on free and use",
            Policy::PacTight => "pointer integrity: PAC+class were once signed",
        }
    }

    /// A fresh verifier for this policy.
    pub fn new_verifier(self, layout: PointerLayout) -> Box<dyn PolicyVerifier> {
        match self {
            Policy::Aos => Box::new(AosPolicy {
                linter: Linter::new(layout),
            }),
            Policy::CryptSan => Box::new(CryptSanPolicy {
                layout,
                pacs: HashMap::new(),
                findings: Findings::new(self),
            }),
            Policy::PacSan => Box::new(PacSanPolicy {
                layout,
                pacs: HashMap::new(),
                findings: Findings::new(self),
            }),
            Policy::PacTight => Box::new(PacTightPolicy {
                layout,
                pacs: HashMap::new(),
                findings: Findings::new(self),
            }),
        }
    }
}

impl std::fmt::Display for Policy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding from a policy verifier. `rule` indexes the policy's
/// [`Policy::rules`] slice (severity and wire name live there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyDiagnostic {
    /// Index into the owning policy's rule registry.
    pub rule: usize,
    /// Zero-based index of the offending op in the scanned stream.
    pub op_index: u64,
    /// The PAC the finding is attributed to (0 when none applies).
    pub pac: u64,
    /// Human-readable specifics.
    pub detail: String,
}

/// A per-op abstract interpreter for one policy.
///
/// Contract: `scan` is called once per op in stream order; `finish`
/// closes the stream and yields the report. Implementations hold
/// O(distinct PACs) state and buffer no ops.
pub trait PolicyVerifier {
    /// Which policy this verifier implements.
    fn policy(&self) -> Policy;

    /// Advances the abstract interpretation by one op.
    fn scan(&mut self, op: &Op);

    /// Closes the stream and produces the report. Scan counters land
    /// on `telemetry`.
    fn finish(self: Box<Self>, telemetry: &Telemetry) -> PolicyReport;
}

/// What one policy's scan found. The policy analogue of
/// [`LintReport`]: exact per-rule counts (indexed like
/// [`Policy::rules`]), capped stored diagnostics, and the memory
/// bound.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// Which policy produced the report.
    pub policy: Policy,
    /// Ops consumed from the stream.
    pub ops_scanned: u64,
    /// Exact findings per rule; `rule_counts[i]` counts
    /// `policy.rules()[i]`.
    pub rule_counts: Vec<u64>,
    /// The first findings, in stream order (capped).
    pub diagnostics: Vec<PolicyDiagnostic>,
    /// Findings beyond the storage cap (counted, not stored).
    pub dropped_diagnostics: u64,
    /// Distinct PACs tracked — the verifier's memory bound.
    pub tracked_pacs: usize,
}

impl PolicyReport {
    /// Total findings across every rule.
    pub fn total_diagnostics(&self) -> u64 {
        self.rule_counts.iter().sum()
    }

    /// `true` when the scan produced no findings.
    pub fn clean(&self) -> bool {
        self.total_diagnostics() == 0
    }

    /// Exact count for one rule index.
    pub fn count(&self, rule: usize) -> u64 {
        self.rule_counts[rule]
    }

    /// Wire names of the rules that fired, in taxonomy order.
    pub fn rule_names_fired(&self) -> Vec<&'static str> {
        let rules = self.policy.rules();
        self.rule_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| rules[i].name)
            .collect()
    }

    /// The AOS policy report equivalent to a [`LintReport`] — the
    /// bridge the bit-identity tests compare across.
    pub fn from_lint(report: &LintReport) -> PolicyReport {
        PolicyReport {
            policy: Policy::Aos,
            ops_scanned: report.ops_scanned,
            rule_counts: report.rule_counts.to_vec(),
            diagnostics: report
                .diagnostics
                .iter()
                .map(|d| PolicyDiagnostic {
                    rule: d.rule as usize,
                    op_index: d.op_index,
                    pac: d.pac,
                    detail: d.detail.clone(),
                })
                .collect(),
            dropped_diagnostics: report.dropped_diagnostics,
            tracked_pacs: report.distinct_pacs,
        }
    }

    /// For AOS reports: the [`Rule`]s that fired, in taxonomy order.
    pub fn aos_rules_fired(&self) -> Vec<Rule> {
        debug_assert_eq!(self.policy, Policy::Aos);
        Rule::ALL
            .iter()
            .copied()
            .filter(|&r| self.rule_counts.get(r as usize).copied().unwrap_or(0) > 0)
            .collect()
    }
}

/// Shared finding accumulator: exact counts, capped storage.
#[derive(Debug)]
struct Findings {
    policy: Policy,
    rule_counts: Vec<u64>,
    diagnostics: Vec<PolicyDiagnostic>,
    dropped: u64,
    ops_scanned: u64,
}

impl Findings {
    fn new(policy: Policy) -> Self {
        Self {
            policy,
            rule_counts: vec![0; policy.rules().len()],
            diagnostics: Vec::new(),
            dropped: 0,
            ops_scanned: 0,
        }
    }

    fn emit(&mut self, rule: usize, op_index: u64, pac: u64, detail: String) {
        self.rule_counts[rule] += 1;
        if self.diagnostics.len() < MAX_STORED_DIAGNOSTICS {
            self.diagnostics.push(PolicyDiagnostic {
                rule,
                op_index,
                pac,
                detail,
            });
        } else {
            self.dropped += 1;
        }
    }

    fn into_report(self, tracked_pacs: usize, telemetry: &Telemetry) -> PolicyReport {
        telemetry.add(
            Counter::LintPolicyDiagnostics,
            self.rule_counts.iter().sum::<u64>(),
        );
        PolicyReport {
            policy: self.policy,
            ops_scanned: self.ops_scanned,
            rule_counts: self.rule_counts,
            diagnostics: self.diagnostics,
            dropped_diagnostics: self.dropped,
            tracked_pacs,
        }
    }
}

/// The AOS lifecycle policy: a transparent wrapper around [`Linter`].
/// Findings are bit-identical to the pre-framework verifier because
/// they *are* the verifier's findings.
struct AosPolicy {
    linter: Linter,
}

impl PolicyVerifier for AosPolicy {
    fn policy(&self) -> Policy {
        Policy::Aos
    }

    fn scan(&mut self, op: &Op) {
        self.linter.scan(op);
    }

    fn finish(self: Box<Self>, telemetry: &Telemetry) -> PolicyReport {
        PolicyReport::from_lint(&self.linter.finish(telemetry))
    }
}

// CryptSan rule indices (into CRYPTSAN_RULES).
const CS_UNALLOCATED: usize = 0;
const CS_REVOKED: usize = 1;
const CS_DOUBLE_REVOKE: usize = 2;

/// Per-key abstract state for the CryptSan model.
#[derive(Debug, Default)]
struct KeyState {
    /// Outstanding allocation keys under this PAC (counting, so PAC
    /// collisions stay clean, exactly like the real metadata keyed by
    /// allocation identity).
    keys_live: u32,
    /// A key was ever registered under this PAC.
    ever_allocated: bool,
}

/// CryptSan as a static policy: `bndstr` registers an allocation key,
/// `bndclr` revokes it, every signed access checks it. The model is
/// deliberately blind to `pacma`/`xpacm` (CryptSan has no pointer
/// signing of its own) and to AHC classes and addresses (its metadata
/// carries no size class and its check is key validity, not bounds) —
/// so spatial overflow and class confusion pass it clean.
struct CryptSanPolicy {
    layout: PointerLayout,
    pacs: HashMap<u64, KeyState>,
    findings: Findings,
}

impl PolicyVerifier for CryptSanPolicy {
    fn policy(&self) -> Policy {
        Policy::CryptSan
    }

    fn scan(&mut self, op: &Op) {
        let index = self.findings.ops_scanned;
        self.findings.ops_scanned += 1;
        match *op {
            Op::BndStr { pointer, .. } if self.layout.is_signed(pointer) => {
                let entry = self.pacs.entry(self.layout.pac(pointer)).or_default();
                entry.keys_live += 1;
                entry.ever_allocated = true;
            }
            Op::BndClr { pointer } if self.layout.is_signed(pointer) => {
                let pac = self.layout.pac(pointer);
                match self.pacs.get_mut(&pac) {
                    Some(entry) if entry.keys_live > 0 => entry.keys_live -= 1,
                    Some(entry) if entry.ever_allocated => self.findings.emit(
                        CS_DOUBLE_REVOKE,
                        index,
                        pac,
                        "key already revoked for every allocation under this PAC".to_string(),
                    ),
                    _ => self.findings.emit(
                        CS_UNALLOCATED,
                        index,
                        pac,
                        "revoke of a key no allocation registered".to_string(),
                    ),
                }
            }
            Op::Load { pointer, .. } | Op::Store { pointer, .. } | Op::Autm { pointer }
                if self.layout.is_signed(pointer) =>
            {
                let pac = self.layout.pac(pointer);
                match self.pacs.get(&pac) {
                    Some(entry) if entry.keys_live > 0 => {}
                    Some(entry) if entry.ever_allocated => self.findings.emit(
                        CS_REVOKED,
                        index,
                        pac,
                        "dereference after the allocation's key was revoked".to_string(),
                    ),
                    _ => self.findings.emit(
                        CS_UNALLOCATED,
                        index,
                        pac,
                        "dereference through a key no allocation registered".to_string(),
                    ),
                }
            }
            // pacma/xpacm and unsigned traffic carry no CryptSan
            // obligations: the model has no signing of its own.
            _ => {}
        }
    }

    fn finish(self: Box<Self>, telemetry: &Telemetry) -> PolicyReport {
        let tracked = self.pacs.len();
        self.findings.into_report(tracked, telemetry)
    }
}

// PACSan rule indices (into PACSAN_RULES).
const PS_UNSEALED: usize = 0;
const PS_STALE: usize = 1;
const PS_CLASS: usize = 2;
const PS_DOUBLE_INVALIDATE: usize = 3;

/// Per-PAC abstract state for the PACSan model.
#[derive(Debug, Default)]
struct SealState {
    /// Outstanding seals per AHC class (counting, for collisions).
    sealed: [u32; 4],
    /// A seal was ever produced under this PAC.
    ever_sealed: bool,
    /// The last event on this PAC was an invalidation with no re-seal
    /// since — the window in which a second invalidation is a double
    /// free.
    just_invalidated: bool,
}

impl SealState {
    fn total(&self) -> u32 {
        self.sealed.iter().sum()
    }
}

/// PACSan as a static policy: `pacma` seals a pointer (any size —
/// including the Fig. 7b size-0 re-sign, which is the model's blind
/// spot: a re-seal *launders* a dangling pointer, so the UAF chains
/// that end in the re-sign pass PACSan's validation while AOS and
/// CryptSan still flag them). `bndclr` invalidates a seal, and every
/// signed access validates that a seal of the pointer's class is
/// outstanding.
struct PacSanPolicy {
    layout: PointerLayout,
    pacs: HashMap<u64, SealState>,
    findings: Findings,
}

impl PolicyVerifier for PacSanPolicy {
    fn policy(&self) -> Policy {
        Policy::PacSan
    }

    fn scan(&mut self, op: &Op) {
        let index = self.findings.ops_scanned;
        self.findings.ops_scanned += 1;
        match *op {
            Op::Pacma { pointer, .. } if self.layout.is_signed(pointer) => {
                let ahc = self.layout.ahc(pointer) as usize & 3;
                let entry = self.pacs.entry(self.layout.pac(pointer)).or_default();
                entry.sealed[ahc] += 1;
                entry.ever_sealed = true;
                entry.just_invalidated = false;
            }
            Op::BndClr { pointer } if self.layout.is_signed(pointer) => {
                let pac = self.layout.pac(pointer);
                let ahc = self.layout.ahc(pointer) as usize & 3;
                let entry = self.pacs.entry(pac).or_default();
                if !entry.ever_sealed {
                    self.findings.emit(
                        PS_UNSEALED,
                        index,
                        pac,
                        "invalidation of a pointer no pacma sealed".to_string(),
                    );
                } else if entry.just_invalidated {
                    self.findings.emit(
                        PS_DOUBLE_INVALIDATE,
                        index,
                        pac,
                        "second invalidation with no re-seal in between".to_string(),
                    );
                } else {
                    if entry.sealed[ahc] > 0 {
                        entry.sealed[ahc] -= 1;
                    } else if let Some(slot) = entry.sealed.iter_mut().find(|c| **c > 0) {
                        // Fail-open on the count (the class complaint
                        // belongs to the access rules, not the free).
                        *slot -= 1;
                    }
                    entry.just_invalidated = true;
                }
            }
            Op::Load { pointer, .. } | Op::Store { pointer, .. } | Op::Autm { pointer }
                if self.layout.is_signed(pointer) =>
            {
                let pac = self.layout.pac(pointer);
                let ahc = self.layout.ahc(pointer) as usize & 3;
                match self.pacs.get(&pac) {
                    None => self.findings.emit(
                        PS_UNSEALED,
                        index,
                        pac,
                        "use of a pointer no pacma sealed".to_string(),
                    ),
                    Some(entry) if entry.total() == 0 => {
                        if entry.ever_sealed {
                            self.findings.emit(
                                PS_STALE,
                                index,
                                pac,
                                "use after every seal instance was invalidated".to_string(),
                            );
                        } else {
                            self.findings.emit(
                                PS_UNSEALED,
                                index,
                                pac,
                                "use of a pointer no pacma sealed".to_string(),
                            );
                        }
                    }
                    Some(entry) if entry.sealed[ahc] == 0 => self.findings.emit(
                        PS_CLASS,
                        index,
                        pac,
                        format!("use in class {ahc} but the seal was produced elsewhere"),
                    ),
                    Some(_) => {}
                }
            }
            // bndstr/xpacm and unsigned traffic: PACSan's shadow
            // tracks seals, not bounds records.
            _ => {}
        }
    }

    fn finish(self: Box<Self>, telemetry: &Telemetry) -> PolicyReport {
        let tracked = self.pacs.len();
        self.findings.into_report(tracked, telemetry)
    }
}

// PACTight rule indices (into PACTIGHT_RULES).
const PT_FORGED: usize = 0;
const PT_CLASS: usize = 1;

/// PACTight as a static policy: the weakest model. `pacma` records
/// that (PAC, class) was signed; every signed access merely
/// authenticates that fact. No revocation, no liveness, no bounds —
/// every temporal and spatial chain passes, only outright forgery
/// (a PAC or class no pacma ever produced) is caught.
struct PacTightPolicy {
    layout: PointerLayout,
    /// Per PAC: bitmask of AHC classes ever signed.
    pacs: HashMap<u64, u8>,
    findings: Findings,
}

impl PolicyVerifier for PacTightPolicy {
    fn policy(&self) -> Policy {
        Policy::PacTight
    }

    fn scan(&mut self, op: &Op) {
        let index = self.findings.ops_scanned;
        self.findings.ops_scanned += 1;
        match *op {
            Op::Pacma { pointer, .. } if self.layout.is_signed(pointer) => {
                let ahc = self.layout.ahc(pointer) & 3;
                *self.pacs.entry(self.layout.pac(pointer)).or_default() |= 1 << ahc;
            }
            Op::Load { pointer, .. } | Op::Store { pointer, .. } | Op::Autm { pointer }
                if self.layout.is_signed(pointer) =>
            {
                let pac = self.layout.pac(pointer);
                let ahc = self.layout.ahc(pointer) & 3;
                match self.pacs.get(&pac) {
                    None => self.findings.emit(
                        PT_FORGED,
                        index,
                        pac,
                        "authentication of a PAC no pacma produced".to_string(),
                    ),
                    Some(classes) if classes & (1 << ahc) == 0 => self.findings.emit(
                        PT_CLASS,
                        index,
                        pac,
                        format!("pointer authenticates in class {ahc}, never signed there"),
                    ),
                    Some(_) => {}
                }
            }
            _ => {}
        }
    }

    fn finish(self: Box<Self>, telemetry: &Telemetry) -> PolicyReport {
        let tracked = self.pacs.len();
        self.findings.into_report(tracked, telemetry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_ptrauth::compute_ahc;

    fn layout() -> PointerLayout {
        PointerLayout::default()
    }

    fn signed(addr: u64, pac: u64, size: u64) -> u64 {
        let l = layout();
        l.compose(addr, pac, compute_ahc(addr, size, l.va_size()).bits())
    }

    fn malloc(ptr: u64, size: u64) -> Vec<Op> {
        vec![Op::Pacma { pointer: ptr, size }, Op::BndStr { pointer: ptr, size }]
    }

    fn free(ptr: u64) -> Vec<Op> {
        vec![
            Op::BndClr { pointer: ptr },
            Op::Xpacm,
            Op::Pacma {
                pointer: ptr,
                size: 0,
            },
        ]
    }

    fn load(ptr: u64) -> Op {
        Op::Load {
            pointer: ptr,
            bytes: 8,
            chained: false,
        }
    }

    fn run(policy: Policy, ops: &[Op]) -> PolicyReport {
        let mut v = policy.new_verifier(layout());
        for op in ops {
            v.scan(op);
        }
        v.finish(&Telemetry::disabled())
    }

    fn lifecycle(ptr: u64, size: u64) -> Vec<Op> {
        let mut ops = malloc(ptr, size);
        ops.push(load(ptr));
        ops.extend(free(ptr));
        ops
    }

    #[test]
    fn policy_names_roundtrip() {
        for p in Policy::ALL {
            assert_eq!(Policy::parse(p.name()), Some(p));
            assert!(!p.rules().is_empty());
            assert!(!p.claim().is_empty());
        }
        assert_eq!(Policy::parse("nonesuch"), None);
    }

    #[test]
    fn a_clean_lifecycle_is_clean_under_every_policy() {
        let ptr = signed(0x4000, 7, 64);
        let mut ops = lifecycle(ptr, 64);
        // A second lifecycle on the same PAC: collision tolerance.
        ops.extend(lifecycle(ptr, 64));
        for p in Policy::ALL {
            let report = run(p, &ops);
            assert!(report.clean(), "{p}: {:?}", report.diagnostics);
        }
    }

    #[test]
    fn use_after_free_splits_cryptsan_from_pacsan() {
        let ptr = signed(0x4000, 7, 64);
        let mut ops = malloc(ptr, 64);
        ops.extend(free(ptr));
        ops.push(load(ptr));
        // CryptSan: the key was revoked — caught.
        let cs = run(Policy::CryptSan, &ops);
        assert_eq!(cs.rule_names_fired(), vec!["revoked-key"]);
        // PACSan: the size-0 re-sign laundered the pointer — missed.
        let ps = run(Policy::PacSan, &ops);
        assert!(ps.clean(), "{:?}", ps.diagnostics);
        // PACTight: the PAC was signed once — missed.
        assert!(run(Policy::PacTight, &ops).clean());
        // AOS: access-after-clear, as ever.
        let aos = run(Policy::Aos, &ops);
        assert_eq!(aos.rule_names_fired(), vec!["access-after-clear"]);
    }

    #[test]
    fn double_free_is_caught_by_all_but_pactight() {
        let ptr = signed(0x4000, 7, 64);
        let mut ops = malloc(ptr, 64);
        // The injector shape: the second bndclr lands immediately
        // after the first, before the xpacm/re-sign tail.
        ops.push(Op::BndClr { pointer: ptr });
        ops.push(Op::BndClr { pointer: ptr });
        ops.push(Op::Xpacm);
        ops.push(Op::Pacma {
            pointer: ptr,
            size: 0,
        });
        assert!(run(Policy::Aos, &ops)
            .rule_names_fired()
            .contains(&"double-bndclr"));
        assert_eq!(
            run(Policy::CryptSan, &ops).rule_names_fired(),
            vec!["double-revoke"]
        );
        assert_eq!(
            run(Policy::PacSan, &ops).rule_names_fired(),
            vec!["double-invalidate"]
        );
        assert!(run(Policy::PacTight, &ops).clean());
    }

    #[test]
    fn forged_pointers_are_caught_by_every_policy() {
        let ptr = signed(0x4000, 7, 64);
        let forged = signed(0x4000, 0x99, 64);
        let mut ops = malloc(ptr, 64);
        ops.push(load(forged));
        for (p, rule) in [
            (Policy::Aos, "unknown-pac"),
            (Policy::CryptSan, "unallocated-key"),
            (Policy::PacSan, "unsealed-pointer"),
            (Policy::PacTight, "forged-pointer"),
        ] {
            assert_eq!(run(p, &ops).rule_names_fired(), vec![rule], "{p}");
        }
    }

    #[test]
    fn class_confusion_is_invisible_to_cryptsan_only() {
        let l = layout();
        let ptr = signed(0x4000, 7, 64);
        let real = l.ahc(ptr);
        let confused = (real % 3) + 1;
        let mut ops = malloc(ptr, 64);
        ops.push(load(l.compose(0x4000 + 64, 7, confused)));
        assert_eq!(
            run(Policy::Aos, &ops).rule_names_fired(),
            vec!["access-ahc-mismatch"]
        );
        assert!(run(Policy::CryptSan, &ops).clean());
        assert_eq!(
            run(Policy::PacSan, &ops).rule_names_fired(),
            vec!["seal-class-mismatch"]
        );
        assert_eq!(
            run(Policy::PacTight, &ops).rule_names_fired(),
            vec!["integrity-class-mismatch"]
        );
    }

    #[test]
    fn spatial_overflow_passes_every_static_policy() {
        let l = layout();
        let ptr = signed(0x4000, 7, 64);
        let mut ops = malloc(ptr, 64);
        // One slot past the end, same PAC and class: protocol-clean.
        ops.push(Op::Store {
            pointer: l.compose(0x4000 + 64, 7, l.ahc(ptr)),
            bytes: 8,
        });
        for p in Policy::ALL {
            assert!(run(p, &ops).clean(), "{p} must be blind to pure overflow");
        }
    }

    #[test]
    fn aos_policy_report_is_bit_identical_to_the_linter() {
        let ptr = signed(0x4000, 7, 64);
        let mut ops = malloc(ptr, 64);
        ops.extend(free(ptr));
        ops.push(load(ptr));
        ops.push(Op::BndClr { pointer: ptr });
        let direct = {
            let mut linter = Linter::new(layout());
            for op in &ops {
                linter.scan(op);
            }
            linter.finish(&Telemetry::disabled())
        };
        let via_policy = run(Policy::Aos, &ops);
        assert_eq!(via_policy, PolicyReport::from_lint(&direct));
        assert_eq!(via_policy.aos_rules_fired(), direct.rules_fired());
    }

    #[test]
    fn policy_memory_stays_bounded_by_distinct_pacs() {
        let mut ops = Vec::new();
        for i in 0..64u64 {
            ops.extend(lifecycle(signed(0x4000 + i * 0x100, i % 8, 64), 64));
        }
        for p in Policy::ALL {
            let report = run(p, &ops);
            assert!(report.tracked_pacs <= 8, "{p} tracked {}", report.tracked_pacs);
        }
    }

    #[test]
    fn telemetry_counts_non_aos_policy_findings() {
        let t = Telemetry::enabled();
        let forged = signed(0x4000, 0x99, 64);
        let mut v = Policy::PacTight.new_verifier(layout());
        v.scan(&load(forged));
        let report = v.finish(&t);
        assert_eq!(report.total_diagnostics(), 1);
        assert_eq!(
            t.snapshot().counter(Counter::LintPolicyDiagnostics),
            1
        );
    }
}
