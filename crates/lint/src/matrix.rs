//! The multi-policy matrix runner: one streaming pass, shared
//! decode, per-policy abstract state — and the `aos-lint-matrix/v1`
//! report that crosses policies with fault kinds.
//!
//! [`MatrixScan`] drives any subset of [`Policy::ALL`] over a single
//! op stream: each op is decoded once and handed to every policy's
//! transfer function, so an N-policy scan costs one stream traversal
//! plus N O(live-PACs) states — never N traversals.

use std::fmt::Write as _;

use aos_isa::Op;
use aos_ptrauth::PointerLayout;
use aos_util::Telemetry;

use crate::policy::{Policy, PolicyReport, PolicyVerifier};
use crate::report::json_escape;

/// A single-pass scan over several policies at once.
pub struct MatrixScan {
    verifiers: Vec<Box<dyn PolicyVerifier>>,
}

impl MatrixScan {
    /// A fresh scan over `policies` (in the given order).
    pub fn new(policies: &[Policy], layout: PointerLayout) -> Self {
        Self {
            verifiers: policies.iter().map(|p| p.new_verifier(layout)).collect(),
        }
    }

    /// Advances every policy by one op.
    pub fn scan(&mut self, op: &Op) {
        for v in &mut self.verifiers {
            v.scan(op);
        }
    }

    /// Closes the stream: one [`PolicyReport`] per policy, in
    /// construction order.
    pub fn finish(self, telemetry: &Telemetry) -> Vec<PolicyReport> {
        self.verifiers
            .into_iter()
            .map(|v| v.finish(telemetry))
            .collect()
    }

    /// Convenience: scans a whole stream in one call.
    pub fn run(
        policies: &[Policy],
        stream: impl Iterator<Item = Op>,
        layout: PointerLayout,
        telemetry: &Telemetry,
    ) -> Vec<PolicyReport> {
        let mut scan = MatrixScan::new(policies, layout);
        for op in stream {
            scan.scan(&op);
        }
        scan.finish(telemetry)
    }
}

impl std::fmt::Debug for MatrixScan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MatrixScan")
            .field(
                "policies",
                &self.verifiers.iter().map(|v| v.policy()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// One row of the detection matrix: a subject (a fault kind, a
/// composite primitive, or `"clean"`) crossed with every policy.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixEntry {
    /// What was injected into the scanned stream.
    pub subject: String,
    /// Per policy (report order): exact per-rule finding totals,
    /// summed across the seeds that contributed to the row.
    pub rule_counts: Vec<Vec<u64>>,
}

impl MatrixEntry {
    /// Total findings for the `p`-th policy.
    pub fn diagnostics(&self, p: usize) -> u64 {
        self.rule_counts[p].iter().sum()
    }

    /// Whether the `p`-th policy flagged this subject at all.
    pub fn detected(&self, p: usize) -> bool {
        self.diagnostics(p) > 0
    }
}

/// The policy × rule × fault-kind detection matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    /// Workload profile the traces came from.
    pub workload: String,
    /// Trace scale factor.
    pub scale: f64,
    /// Seeds each subject was injected under.
    pub seeds: Vec<u64>,
    /// The policies, in column order.
    pub policies: Vec<Policy>,
    /// One row per subject, in injection order (clean first).
    pub entries: Vec<MatrixEntry>,
    /// Total ops scanned across every cell.
    pub ops_scanned: u64,
}

impl MatrixReport {
    /// Accumulates one scan's reports into the row for `subject`,
    /// creating the row on first sight. `reports` must be in the
    /// matrix's policy order.
    pub fn absorb(&mut self, subject: &str, reports: &[PolicyReport]) {
        debug_assert_eq!(reports.len(), self.policies.len());
        if let Some(first) = reports.first() {
            self.ops_scanned += first.ops_scanned;
        }
        let entry = match self.entries.iter_mut().find(|e| e.subject == subject) {
            Some(entry) => entry,
            None => {
                self.entries.push(MatrixEntry {
                    subject: subject.to_string(),
                    rule_counts: self
                        .policies
                        .iter()
                        .map(|p| vec![0; p.rules().len()])
                        .collect(),
                });
                self.entries.last_mut().expect("just pushed")
            }
        };
        for (p, report) in reports.iter().enumerate() {
            for (i, &c) in report.rule_counts.iter().enumerate() {
                entry.rule_counts[p][i] += c;
            }
        }
    }

    /// An empty matrix ready to [`absorb`](MatrixReport::absorb).
    pub fn new(workload: &str, scale: f64, seeds: Vec<u64>, policies: Vec<Policy>) -> Self {
        Self {
            workload: workload.to_string(),
            scale,
            seeds,
            policies,
            entries: Vec::new(),
            ops_scanned: 0,
        }
    }

    /// The row for `subject`, if any seed produced one.
    pub fn entry(&self, subject: &str) -> Option<&MatrixEntry> {
        self.entries.iter().find(|e| e.subject == subject)
    }

    /// The `aos-lint-matrix/v1` JSON document. Stable key order,
    /// pinned by `tests/lint_matrix_golden.rs`; an intentional shape
    /// change means bumping the version string and regenerating the
    /// golden.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"aos-lint-matrix/v1\",\n");
        let _ = writeln!(out, "  \"workload\": \"{}\",", json_escape(&self.workload));
        let _ = writeln!(out, "  \"scale\": {},", self.scale);
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "  \"seeds\": [{}],", seeds.join(", "));
        let _ = writeln!(out, "  \"ops_scanned\": {},", self.ops_scanned);
        let names: Vec<String> = self
            .policies
            .iter()
            .map(|p| format!("\"{}\"", p.name()))
            .collect();
        let _ = writeln!(out, "  \"policies\": [{}],", names.join(", "));
        out.push_str("  \"matrix\": [\n");
        for (e, entry) in self.entries.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"subject\": \"{}\",", json_escape(&entry.subject));
            out.push_str("      \"verdicts\": {\n");
            for (p, policy) in self.policies.iter().enumerate() {
                let _ = writeln!(out, "        \"{}\": {{", policy.name());
                let _ = writeln!(out, "          \"detected\": {},", entry.detected(p));
                let _ = writeln!(out, "          \"diagnostics\": {},", entry.diagnostics(p));
                out.push_str("          \"rules\": {\n");
                let rules = policy.rules();
                for (i, info) in rules.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "            \"{}\": {}{}",
                        info.name,
                        entry.rule_counts[p][i],
                        if i + 1 < rules.len() { "," } else { "" }
                    );
                }
                out.push_str("          }\n");
                let _ = writeln!(
                    out,
                    "        }}{}",
                    if p + 1 < self.policies.len() { "," } else { "" }
                );
            }
            out.push_str("      }\n");
            let _ = writeln!(
                out,
                "    }}{}",
                if e + 1 < self.entries.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A human-readable detection table: one row per subject, one
    /// column per policy, the rules each policy fired underneath.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "policy detection matrix — workload {}, scale {}, seeds {:?}, {} ops scanned",
            self.workload, self.scale, self.seeds, self.ops_scanned
        );
        let _ = write!(out, "{:<18}", "subject");
        for p in &self.policies {
            let _ = write!(out, " {:>12}", p.name());
        }
        out.push('\n');
        for entry in &self.entries {
            let _ = write!(out, "{:<18}", entry.subject);
            for p in 0..self.policies.len() {
                let cell = if entry.detected(p) {
                    format!("hit({})", entry.diagnostics(p))
                } else {
                    "-".to_string()
                };
                let _ = write!(out, " {cell:>12}");
            }
            out.push('\n');
        }
        for entry in &self.entries {
            let mut fired: Vec<String> = Vec::new();
            for (p, policy) in self.policies.iter().enumerate() {
                let rules: Vec<&str> = policy
                    .rules()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| entry.rule_counts[p][*i] > 0)
                    .map(|(_, info)| info.name)
                    .collect();
                if !rules.is_empty() {
                    fired.push(format!("{}: {}", policy.name(), rules.join(", ")));
                }
            }
            if !fired.is_empty() {
                let _ = writeln!(out, "  {:<16} {}", entry.subject, fired.join(" | "));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aos_ptrauth::compute_ahc;

    fn ops_with_forged_load() -> Vec<Op> {
        let l = PointerLayout::default();
        let ahc = compute_ahc(0x4000, 64, l.va_size()).bits();
        let ptr = l.compose(0x4000, 7, ahc);
        let forged = l.compose(0x5000, 0x99, 1);
        vec![
            Op::Pacma {
                pointer: ptr,
                size: 64,
            },
            Op::BndStr {
                pointer: ptr,
                size: 64,
            },
            Op::Load {
                pointer: forged,
                bytes: 8,
                chained: false,
            },
        ]
    }

    #[test]
    fn one_pass_yields_one_report_per_policy_in_order() {
        let reports = MatrixScan::run(
            &Policy::ALL,
            ops_with_forged_load().into_iter(),
            PointerLayout::default(),
            &Telemetry::disabled(),
        );
        assert_eq!(reports.len(), Policy::ALL.len());
        for (p, report) in Policy::ALL.iter().zip(&reports) {
            assert_eq!(report.policy, *p);
            assert_eq!(report.ops_scanned, 3);
            assert_eq!(report.total_diagnostics(), 1, "{p}");
        }
    }

    #[test]
    fn matrix_report_absorbs_rows_and_renders() {
        let mut matrix = MatrixReport::new("hmmer", 0.004, vec![1, 2], Policy::ALL.to_vec());
        let reports = MatrixScan::run(
            &Policy::ALL,
            ops_with_forged_load().into_iter(),
            PointerLayout::default(),
            &Telemetry::disabled(),
        );
        matrix.absorb("pac-tamper", &reports);
        matrix.absorb("pac-tamper", &reports);
        let entry = matrix.entry("pac-tamper").expect("row exists");
        for p in 0..Policy::ALL.len() {
            assert!(entry.detected(p));
            assert_eq!(entry.diagnostics(p), 2, "two seeds absorbed");
        }
        assert_eq!(matrix.ops_scanned, 6);
        let json = matrix.to_json();
        assert!(json.contains("\"aos-lint-matrix/v1\""));
        assert!(json.contains("\"pac-tamper\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let table = matrix.to_table();
        assert!(table.contains("pac-tamper"));
        assert!(table.contains("hit(2)"));
    }
}
