//! The lint rule taxonomy: one rule per Fig. 7 / Algorithm 1 protocol
//! obligation, with stable wire names and fixed severities.

/// How bad a finding is.
///
/// `Error` findings are protocol violations — an instrumentation
/// stream a correct AOS compiler cannot emit. `Warning` findings are
/// end-of-stream imbalances that may be benign truncation (a trace
/// window ending mid-protocol) but deserve a look.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but possibly benign (e.g. a truncated window).
    Warning,
    /// A definite violation of the instrumentation protocol.
    Error,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The static protocol rules, one per lifecycle obligation of the
/// paper's Fig. 7 instrumentation and Algorithm 1 AHC encoding.
///
/// The discriminant is the per-rule counter index; [`Rule::NAMES`]
/// (same order) are the stable wire names used by the
/// `aos-lint-report/v1` document and the CLI table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Rule {
    /// A signed pointer was dereferenced after its `pacma` but before
    /// any `bndstr` recorded bounds for it — the malloc protocol is
    /// `pacma` *then* `bndstr` (Fig. 7a), and until the bounds exist
    /// every access would miss the HBT.
    UseBeforeBndstr,
    /// A signed pointer whose PAC was never produced by any `pacma`
    /// in the stream — a forged or tampered signature.
    UnknownPac,
    /// A signed pointer was dereferenced after every bounds record
    /// under its PAC had been `bndclr`ed — the static shadow of a
    /// use-after-free.
    AccessAfterClear,
    /// A `bndclr` for a PAC with no live bounds record — the static
    /// shadow of a double free (Fig. 7b clears exactly once).
    DoubleBndclr,
    /// An `xpacm` with no outstanding `bndclr` — Fig. 7b strips the
    /// PAC only as part of the clear-then-strip free sequence.
    XpacmWithoutBndclr,
    /// A `bndstr` whose PAC was not just signed by a matching `pacma`
    /// (missing sign, or the sizes disagree) — bounds without a
    /// signature can never validate an access.
    BndstrWithoutPacma,
    /// A `pacma` whose pointer's AHC bits disagree with Algorithm 1
    /// applied to its size operand — the hash-table way selection
    /// would diverge between store and check.
    AhcSizeMismatch,
    /// An operation on a PAC that has live bounds records, but none
    /// in the AHC class the pointer's top bits select — store and
    /// check would walk different HBT ways.
    AccessAhcMismatch,
    /// Protocol state left open at end of stream: a `pacma` whose
    /// `bndstr` never arrived, or `bndclr`s with no matching `xpacm`.
    /// Live bounds records at exit are *not* flagged — a process may
    /// legitimately exit with allocations live.
    UnbalancedAtEnd,
}

impl Rule {
    /// Number of rules in the taxonomy.
    pub const COUNT: usize = 9;

    /// Every rule, in counter (and wire) order.
    pub const ALL: [Rule; Self::COUNT] = [
        Rule::UseBeforeBndstr,
        Rule::UnknownPac,
        Rule::AccessAfterClear,
        Rule::DoubleBndclr,
        Rule::XpacmWithoutBndclr,
        Rule::BndstrWithoutPacma,
        Rule::AhcSizeMismatch,
        Rule::AccessAhcMismatch,
        Rule::UnbalancedAtEnd,
    ];

    /// Stable wire names, in the same order as [`Rule::ALL`].
    pub const NAMES: [&'static str; Self::COUNT] = [
        "use-before-bndstr",
        "unknown-pac",
        "access-after-clear",
        "double-bndclr",
        "xpacm-without-bndclr",
        "bndstr-without-pacma",
        "ahc-size-mismatch",
        "access-ahc-mismatch",
        "unbalanced-at-end",
    ];

    /// The rule's stable wire name (from the shared
    /// [`registry`](crate::registry)).
    pub fn name(self) -> &'static str {
        crate::registry::AOS_RULES[self as usize].name
    }

    /// The rule's fixed severity (from the shared registry).
    pub fn severity(self) -> Severity {
        crate::registry::AOS_RULES[self as usize].severity
    }

    /// The Fig. 7 / Algorithm 1 obligation the rule enforces — one
    /// line, used by the CLI table and DESIGN.md §12.
    pub fn obligation(self) -> &'static str {
        crate::registry::AOS_RULES[self as usize].obligation
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a rule fired at a stream position, attributed to a
/// PAC (0 when the offending op carries no pointer, e.g. `xpacm`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which protocol obligation was violated.
    pub rule: Rule,
    /// Zero-based index of the offending op in the scanned stream.
    pub op_index: u64,
    /// The PAC the finding is attributed to.
    pub pac: u64,
    /// [`Rule::severity`], denormalized for direct consumption.
    pub severity: Severity,
    /// Human-readable specifics (sizes, classes, counts).
    pub detail: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} at op {} (pac {:#x}): {}",
            self.severity, self.rule, self.op_index, self.pac, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_arrays_agree() {
        assert_eq!(Rule::ALL.len(), Rule::COUNT);
        assert_eq!(Rule::NAMES.len(), Rule::COUNT);
        for (i, rule) in Rule::ALL.iter().enumerate() {
            assert_eq!(*rule as usize, i, "{rule:?} discriminant drifted");
            assert_eq!(rule.name(), Rule::NAMES[i]);
            assert!(!rule.obligation().is_empty());
        }
    }

    #[test]
    fn only_end_imbalance_is_a_warning() {
        for rule in Rule::ALL {
            let expected = if rule == Rule::UnbalancedAtEnd {
                Severity::Warning
            } else {
                Severity::Error
            };
            assert_eq!(rule.severity(), expected, "{rule}");
        }
    }

    #[test]
    fn diagnostics_render_for_humans() {
        let d = Diagnostic {
            rule: Rule::DoubleBndclr,
            op_index: 17,
            pac: 0xbeef,
            severity: Rule::DoubleBndclr.severity(),
            detail: "no live bounds record".to_string(),
        };
        let text = d.to_string();
        assert!(text.contains("double-bndclr"));
        assert!(text.contains("op 17"));
        assert!(text.contains("0xbeef"));
    }
}
