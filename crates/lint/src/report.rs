//! The linter's product: exact per-rule counts, the stored findings,
//! and the memory-discipline evidence — with stable JSON
//! (`aos-lint-report/v1`) and human-table renderers.

use std::fmt::Write as _;

use crate::rules::{Diagnostic, Rule, Severity};

/// What one scan found. Per-rule counts are always exact; the stored
/// [`Diagnostic`]s are capped at
/// [`MAX_STORED_DIAGNOSTICS`](crate::verifier::MAX_STORED_DIAGNOSTICS)
/// with the overflow counted in `dropped_diagnostics`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Ops consumed from the stream.
    pub ops_scanned: u64,
    /// Exact findings per rule, indexed by `Rule as usize`.
    pub rule_counts: [u64; Rule::COUNT],
    /// The first findings, in stream order (capped).
    pub diagnostics: Vec<Diagnostic>,
    /// Findings beyond the storage cap (counted, not stored).
    pub dropped_diagnostics: u64,
    /// Distinct PACs the scan tracked — the linter's memory bound.
    pub distinct_pacs: usize,
    /// Bounds records still live when the stream ended (a process may
    /// legitimately exit with allocations live; not a finding).
    pub live_records_at_end: u64,
    /// High-water mark of simultaneously-live bounds records.
    pub peak_live_records: u64,
    /// The stream pipeline's op-buffering high-water mark, when the
    /// scan ran through [`lint_stream_metered`]
    /// (crate::verifier::lint_stream_metered); 0 otherwise. The
    /// linter itself always buffers zero ops.
    pub pipeline_peak_buffered_ops: usize,
}

impl LintReport {
    /// Total findings across every rule and severity.
    pub fn total_diagnostics(&self) -> u64 {
        self.rule_counts.iter().sum()
    }

    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> u64 {
        Rule::ALL
            .iter()
            .filter(|r| r.severity() == Severity::Error)
            .map(|&r| self.count(r))
            .sum()
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> u64 {
        self.total_diagnostics() - self.errors()
    }

    /// `true` when the scan produced no findings of any severity.
    pub fn clean(&self) -> bool {
        self.total_diagnostics() == 0
    }

    /// Exact number of findings for one rule.
    pub fn count(&self, rule: Rule) -> u64 {
        self.rule_counts[rule as usize]
    }

    /// The rules that fired at least once, in taxonomy order.
    pub fn rules_fired(&self) -> Vec<Rule> {
        Rule::ALL
            .iter()
            .copied()
            .filter(|&r| self.count(r) > 0)
            .collect()
    }

    /// The `aos-lint-report/v1` JSON document. Stable key order,
    /// pinned by `tests/lint_report_golden.rs`; an intentional shape
    /// change means bumping the version string and regenerating the
    /// golden.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"aos-lint-report/v1\",\n");
        let _ = writeln!(out, "  \"ops_scanned\": {},", self.ops_scanned);
        let _ = writeln!(out, "  \"diagnostics\": {},", self.total_diagnostics());
        let _ = writeln!(out, "  \"errors\": {},", self.errors());
        let _ = writeln!(out, "  \"warnings\": {},", self.warnings());
        let _ = writeln!(
            out,
            "  \"dropped_diagnostics\": {},",
            self.dropped_diagnostics
        );
        let _ = writeln!(out, "  \"distinct_pacs\": {},", self.distinct_pacs);
        let _ = writeln!(
            out,
            "  \"live_records_at_end\": {},",
            self.live_records_at_end
        );
        let _ = writeln!(out, "  \"peak_live_records\": {},", self.peak_live_records);
        let _ = writeln!(
            out,
            "  \"pipeline_peak_buffered_ops\": {},",
            self.pipeline_peak_buffered_ops
        );
        out.push_str("  \"rules\": {\n");
        for (i, rule) in Rule::ALL.iter().enumerate() {
            let _ = writeln!(
                out,
                "    \"{}\": {}{}",
                rule.name(),
                self.count(*rule),
                if i + 1 < Rule::COUNT { "," } else { "" }
            );
        }
        out.push_str("  },\n");
        out.push_str("  \"findings\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"rule\": \"{}\", \"severity\": \"{}\", \"op_index\": {}, \
                 \"pac\": {}, \"detail\": \"{}\"}}{}",
                d.rule,
                d.severity,
                d.op_index,
                d.pac,
                json_escape(&d.detail),
                if i + 1 < self.diagnostics.len() { "," } else { "" }
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// A human-readable summary table plus the stored findings.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>12} ops scanned, {} distinct PACs, {} live records at end (peak {})",
            self.ops_scanned, self.distinct_pacs, self.live_records_at_end, self.peak_live_records
        );
        if self.pipeline_peak_buffered_ops > 0 {
            let _ = writeln!(
                out,
                "{:>12} ops peak pipeline buffering (linter itself buffers none)",
                self.pipeline_peak_buffered_ops
            );
        }
        if self.clean() {
            let _ = writeln!(out, "clean: no protocol findings");
            return out;
        }
        let _ = writeln!(
            out,
            "{} finding(s): {} error(s), {} warning(s)",
            self.total_diagnostics(),
            self.errors(),
            self.warnings()
        );
        let _ = writeln!(out, "{:<22} {:>8}  obligation", "rule", "count");
        for rule in self.rules_fired() {
            let _ = writeln!(
                out,
                "{:<22} {:>8}  {}",
                rule.name(),
                self.count(rule),
                rule.obligation()
            );
        }
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        if self.dropped_diagnostics > 0 {
            let _ = writeln!(
                out,
                "  ... and {} more finding(s) beyond the storage cap",
                self.dropped_diagnostics
            );
        }
        out
    }
}

/// Minimal JSON string escaping, enough for diagnostic details.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty() -> LintReport {
        LintReport {
            ops_scanned: 10,
            rule_counts: [0; Rule::COUNT],
            diagnostics: Vec::new(),
            dropped_diagnostics: 0,
            distinct_pacs: 0,
            live_records_at_end: 0,
            peak_live_records: 0,
            pipeline_peak_buffered_ops: 0,
        }
    }

    #[test]
    fn clean_report_renders_and_counts() {
        let r = empty();
        assert!(r.clean());
        assert_eq!(r.errors(), 0);
        assert!(r.to_table().contains("clean"));
        assert!(r.to_json().contains("\"aos-lint-report/v1\""));
    }

    #[test]
    fn severity_split_adds_up() {
        let mut r = empty();
        r.rule_counts[Rule::DoubleBndclr as usize] = 2;
        r.rule_counts[Rule::UnbalancedAtEnd as usize] = 1;
        assert_eq!(r.total_diagnostics(), 3);
        assert_eq!(r.errors(), 2);
        assert_eq!(r.warnings(), 1);
        assert_eq!(r.rules_fired(), vec![Rule::DoubleBndclr, Rule::UnbalancedAtEnd]);
        assert!(!r.clean());
    }

    #[test]
    fn json_lists_every_rule_exactly_once() {
        let json = empty().to_json();
        for name in Rule::NAMES {
            assert_eq!(json.matches(&format!("\"{name}\"")).count(), 1, "{name}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn details_are_escaped() {
        let mut r = empty();
        r.rule_counts[Rule::UnknownPac as usize] = 1;
        r.diagnostics.push(Diagnostic {
            rule: Rule::UnknownPac,
            op_index: 0,
            pac: 1,
            severity: Severity::Error,
            detail: "quote \" and \\ backslash".to_string(),
        });
        let json = r.to_json();
        assert!(json.contains("quote \\\" and \\\\ backslash"));
    }
}
