//! The streaming abstract interpreter: per-PAC lifecycle state
//! machines driven by one forward scan of an [`Op`] stream.
//!
//! Memory discipline: the linter holds one small [`PacState`] per
//! *distinct PAC observed* — bounded by the PAC space (2^16 under the
//! default layout), independent of trace length — plus O(1) global
//! state. It buffers no ops, so composing it with the
//! [`aos_isa::stream`] adapters preserves the pipeline's `O(window)`
//! proof (see [`Linting`]).

use std::collections::HashMap;

use aos_isa::stream::{BufferedOps, OpStream};
use aos_isa::Op;
use aos_ptrauth::{compute_ahc, PointerLayout};
use aos_util::{Counter, Telemetry};

use crate::report::LintReport;
use crate::rules::{Diagnostic, Rule};

/// Cap on *stored* [`Diagnostic`]s. Per-rule counts in the report are
/// always exact; beyond the cap further findings only increment
/// counters (`LintReport::dropped_diagnostics` says how many), so a
/// pathological stream cannot make the linter's memory grow with its
/// violation count.
pub const MAX_STORED_DIAGNOSTICS: usize = 256;

/// Lifecycle state for one PAC: the abstract value the interpreter
/// tracks per distinct signature it has seen.
///
/// `live` counts outstanding bounds records per AHC class (index =
/// AHC bits, 1..=3; index 0 is never populated because an unsigned
/// pointer carries no PAC). Counting — not a boolean — is what lets
/// PAC collisions (two live chunks signed into the same PAC) pass
/// clean, exactly as the real HBT stores both records.
#[derive(Debug, Default, Clone)]
struct PacState {
    /// Outstanding bounds records, by AHC class.
    live: [u32; 4],
    /// Size operand of a `pacma` still awaiting its paired `bndstr`.
    pending_sign: Option<u64>,
    /// A `bndstr` has ever recorded bounds under this PAC.
    ever_stored: bool,
    /// The last event was the free-site re-`pacma` (size 0) that
    /// locks a dangling pointer (Fig. 7b).
    resigned_dangling: bool,
}

impl PacState {
    fn total_live(&self) -> u32 {
        self.live.iter().sum()
    }
}

/// The streaming protocol verifier. Feed ops with [`Linter::scan`],
/// then [`Linter::finish`] for the [`LintReport`] — or use the
/// [`lint_stream`] / [`Linting`] front ends.
#[derive(Debug)]
pub struct Linter {
    layout: PointerLayout,
    pacs: HashMap<u64, PacState>,
    /// `bndclr`s whose paired `xpacm` has not arrived yet. Global —
    /// `xpacm` takes no operand, so strips cannot be attributed to a
    /// PAC, only balanced in aggregate.
    pending_strips: u64,
    ops_scanned: u64,
    rule_counts: [u64; Rule::COUNT],
    diagnostics: Vec<Diagnostic>,
    dropped_diagnostics: u64,
    live_records: u64,
    peak_live_records: u64,
}

impl Linter {
    /// A fresh linter for streams using `layout`'s pointer encoding.
    pub fn new(layout: PointerLayout) -> Self {
        Self {
            layout,
            pacs: HashMap::new(),
            pending_strips: 0,
            ops_scanned: 0,
            rule_counts: [0; Rule::COUNT],
            diagnostics: Vec::new(),
            dropped_diagnostics: 0,
            live_records: 0,
            peak_live_records: 0,
        }
    }

    /// Distinct PACs currently tracked — the linter's O(live-PACs)
    /// memory bound, surfaced so tests can assert it.
    pub fn tracked_pacs(&self) -> usize {
        self.pacs.len()
    }

    /// Ops scanned so far.
    pub fn ops_scanned(&self) -> u64 {
        self.ops_scanned
    }

    /// Advances the abstract interpretation by one op.
    pub fn scan(&mut self, op: &Op) {
        let index = self.ops_scanned;
        self.ops_scanned += 1;
        match *op {
            Op::Pacma { pointer, size } => self.pacma(index, pointer, size),
            Op::BndStr { pointer, size } => self.bndstr(index, pointer, size),
            Op::BndClr { pointer } => self.bndclr(index, pointer),
            Op::Xpacm => self.xpacm(index),
            Op::Load { pointer, .. } | Op::Store { pointer, .. } | Op::Autm { pointer } => {
                self.access(index, pointer)
            }
            // Compute, branch, generic-PA and Watchdog ops carry no
            // AOS protocol obligations.
            _ => {}
        }
    }

    /// Closes the stream: emits the end-of-stream balance findings
    /// and produces the report. Counters land on `telemetry` (use
    /// [`Telemetry::disabled`] to opt out).
    pub fn finish(mut self, telemetry: &Telemetry) -> LintReport {
        if self.pending_strips > 0 {
            let detail = format!(
                "{} bndclr(s) with no matching xpacm at end of stream",
                self.pending_strips
            );
            self.emit(Rule::UnbalancedAtEnd, self.ops_scanned, 0, detail);
        }
        let unpaired: Vec<u64> = self
            .pacs
            .iter()
            .filter(|(_, s)| s.pending_sign.is_some())
            .map(|(&pac, _)| pac)
            .collect();
        for pac in unpaired {
            self.emit(
                Rule::UnbalancedAtEnd,
                self.ops_scanned,
                pac,
                "pacma with no matching bndstr at end of stream".to_string(),
            );
        }
        telemetry.add(Counter::LintOpsScanned, self.ops_scanned);
        telemetry.add(
            Counter::LintDiagnostics,
            self.rule_counts.iter().sum::<u64>(),
        );
        LintReport {
            ops_scanned: self.ops_scanned,
            rule_counts: self.rule_counts,
            diagnostics: self.diagnostics,
            dropped_diagnostics: self.dropped_diagnostics,
            distinct_pacs: self.pacs.len(),
            live_records_at_end: self.live_records,
            peak_live_records: self.peak_live_records,
            pipeline_peak_buffered_ops: 0,
        }
    }

    fn emit(&mut self, rule: Rule, op_index: u64, pac: u64, detail: String) {
        self.rule_counts[rule as usize] += 1;
        if self.diagnostics.len() < MAX_STORED_DIAGNOSTICS {
            self.diagnostics.push(Diagnostic {
                rule,
                op_index,
                pac,
                severity: rule.severity(),
                detail,
            });
        } else {
            self.dropped_diagnostics += 1;
        }
    }

    fn pacma(&mut self, index: u64, pointer: u64, size: u64) {
        let pac = self.layout.pac(pointer);
        let entry = self.pacs.entry(pac).or_default();
        if size == 0 {
            // Fig. 7b: the free site re-signs the dangling pointer
            // with an xzr size to lock it. Nothing to validate
            // statically — the pointer is *meant* to be poison now.
            entry.resigned_dangling = true;
            return;
        }
        entry.resigned_dangling = false;
        // Back-to-back signs without a bndstr in between surface as
        // the unpaired sign at end of stream; the newer size wins
        // for bndstr matching.
        entry.pending_sign = Some(size);
        let ahc = self.layout.ahc(pointer);
        let expected = compute_ahc(self.layout.address(pointer), size, self.layout.va_size());
        if ahc != expected.bits() {
            self.emit(
                Rule::AhcSizeMismatch,
                index,
                pac,
                format!(
                    "pacma size {size} implies AHC class {} but pointer carries {ahc}",
                    expected.bits()
                ),
            );
        }
    }

    fn bndstr(&mut self, index: u64, pointer: u64, size: u64) {
        if !self.layout.is_signed(pointer) {
            self.emit(
                Rule::BndstrWithoutPacma,
                index,
                0,
                "bndstr of an unsigned pointer".to_string(),
            );
            return;
        }
        let pac = self.layout.pac(pointer);
        let ahc = self.layout.ahc(pointer) as usize;
        let entry = self.pacs.entry(pac).or_default();
        match entry.pending_sign.take() {
            Some(signed) if signed == size => {}
            Some(signed) => self.emit(
                Rule::BndstrWithoutPacma,
                index,
                pac,
                format!("bndstr size {size} disagrees with pacma size {signed}"),
            ),
            None => self.emit(
                Rule::BndstrWithoutPacma,
                index,
                pac,
                "no preceding pacma signed this PAC".to_string(),
            ),
        }
        // Record the bounds regardless: the HBT would.
        let entry = self.pacs.entry(pac).or_default();
        entry.live[ahc & 3] += 1;
        entry.ever_stored = true;
        entry.resigned_dangling = false;
        self.live_records += 1;
        self.peak_live_records = self.peak_live_records.max(self.live_records);
    }

    fn bndclr(&mut self, index: u64, pointer: u64) {
        // Fig. 7b pairs every clear with a strip; balance is checked
        // globally because xpacm carries no operand.
        self.pending_strips += 1;
        if !self.layout.is_signed(pointer) {
            self.emit(
                Rule::UnknownPac,
                index,
                0,
                "bndclr of an unsigned pointer".to_string(),
            );
            return;
        }
        let pac = self.layout.pac(pointer);
        let ahc = self.layout.ahc(pointer) as usize & 3;
        // Resolve against the state first, emit after: `emit` needs
        // the whole linter, so the map borrow must end before it.
        enum Clr {
            Unknown,
            Double,
            WrongClass,
            Ok,
        }
        let outcome = match self.pacs.get_mut(&pac) {
            None => Clr::Unknown,
            Some(entry) if entry.total_live() == 0 => Clr::Double,
            Some(entry) => {
                if entry.live[ahc] > 0 {
                    entry.live[ahc] -= 1;
                    Clr::Ok
                } else {
                    // Some record exists, just not in this AHC class:
                    // clear one anyway (fail-open on the count, flag
                    // the class).
                    if let Some(slot) = entry.live.iter_mut().find(|c| **c > 0) {
                        *slot -= 1;
                    }
                    Clr::WrongClass
                }
            }
        };
        match outcome {
            Clr::Unknown => self.emit(
                Rule::UnknownPac,
                index,
                pac,
                "bndclr through a PAC no pacma produced".to_string(),
            ),
            Clr::Double => self.emit(
                Rule::DoubleBndclr,
                index,
                pac,
                "bndclr with no live bounds record under this PAC".to_string(),
            ),
            Clr::WrongClass => {
                self.live_records = self.live_records.saturating_sub(1);
                self.emit(
                    Rule::AccessAhcMismatch,
                    index,
                    pac,
                    format!("bndclr selects AHC class {ahc} but no record lives there"),
                );
            }
            Clr::Ok => self.live_records = self.live_records.saturating_sub(1),
        }
    }

    fn xpacm(&mut self, index: u64) {
        if self.pending_strips == 0 {
            self.emit(
                Rule::XpacmWithoutBndclr,
                index,
                0,
                "xpacm with no outstanding bndclr".to_string(),
            );
        } else {
            self.pending_strips -= 1;
        }
    }

    fn access(&mut self, index: u64, pointer: u64) {
        if !self.layout.is_signed(pointer) {
            return;
        }
        let pac = self.layout.pac(pointer);
        let ahc = self.layout.ahc(pointer) as usize & 3;
        let rule = match self.pacs.get(&pac) {
            None => Some(Rule::UnknownPac),
            Some(entry) if entry.total_live() == 0 => {
                if entry.ever_stored || entry.resigned_dangling {
                    Some(Rule::AccessAfterClear)
                } else {
                    Some(Rule::UseBeforeBndstr)
                }
            }
            Some(entry) if entry.live[ahc] == 0 => Some(Rule::AccessAhcMismatch),
            Some(_) => None,
        };
        match rule {
            Some(Rule::UnknownPac) => self.emit(
                Rule::UnknownPac,
                index,
                pac,
                "access through a PAC no pacma produced".to_string(),
            ),
            Some(Rule::AccessAfterClear) => self.emit(
                Rule::AccessAfterClear,
                index,
                pac,
                "access after every bounds record under this PAC was cleared".to_string(),
            ),
            Some(Rule::UseBeforeBndstr) => self.emit(
                Rule::UseBeforeBndstr,
                index,
                pac,
                "access between pacma and its bndstr".to_string(),
            ),
            Some(rule) => self.emit(
                rule,
                index,
                pac,
                format!("access selects AHC class {ahc} but no record lives there"),
            ),
            None => {}
        }
    }
}

/// Lints a whole stream in one pass. O(live-PACs) memory: the stream
/// is consumed op by op and never materialized.
pub fn lint_stream(stream: impl Iterator<Item = Op>, layout: PointerLayout) -> LintReport {
    lint_stream_with_telemetry(stream, layout, &Telemetry::disabled())
}

/// [`lint_stream`] with the scan counters recorded on `telemetry`.
pub fn lint_stream_with_telemetry(
    stream: impl Iterator<Item = Op>,
    layout: PointerLayout,
    telemetry: &Telemetry,
) -> LintReport {
    let mut linter = Linter::new(layout);
    for op in stream {
        linter.scan(&op);
    }
    linter.finish(telemetry)
}

/// The metered front end: wraps the stream in
/// [`aos_isa::stream::Metered`], lints it, and records the pipeline's
/// buffering high-water mark in the report — the executable proof
/// that linting added no trace materialization on top of the
/// producer's own `O(window)`.
pub fn lint_stream_metered<I>(stream: I, layout: PointerLayout, telemetry: &Telemetry) -> LintReport
where
    I: Iterator<Item = Op> + BufferedOps,
{
    let mut metered = stream.metered();
    let mut linter = Linter::new(layout);
    for op in &mut metered {
        linter.scan(&op);
    }
    let mut report = linter.finish(telemetry);
    debug_assert_eq!(report.ops_scanned, metered.ops());
    report.pipeline_peak_buffered_ops = metered.peak_buffered_ops();
    report
}

/// A transparent pass-through adapter: ops flow to the consumer
/// unchanged while the linter observes them, so a stream can be
/// linted *and* simulated in the same single pass. Buffers nothing —
/// its [`BufferedOps`] impl delegates straight to the inner stream.
#[derive(Debug)]
pub struct Linting<I> {
    inner: I,
    linter: Linter,
}

impl<I> Linting<I> {
    /// Wraps `inner`, linting every op that flows through.
    pub fn new(inner: I, layout: PointerLayout) -> Self {
        Self {
            inner,
            linter: Linter::new(layout),
        }
    }

    /// The linter's live state (e.g. for mid-stream assertions).
    pub fn linter(&self) -> &Linter {
        &self.linter
    }

    /// The wrapped stream.
    pub fn get_ref(&self) -> &I {
        &self.inner
    }

    /// Finishes the scan and returns the report. Call after the
    /// consumer has drained the stream.
    pub fn into_report(self, telemetry: &Telemetry) -> LintReport {
        self.linter.finish(telemetry)
    }
}

impl<I: Iterator<Item = Op>> Iterator for Linting<I> {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        let op = self.inner.next()?;
        self.linter.scan(&op);
        Some(op)
    }
}

impl<I: BufferedOps> BufferedOps for Linting<I> {
    fn peak_buffered_ops(&self) -> usize {
        self.inner.peak_buffered_ops()
    }
}

impl<I: aos_isa::stream::BatchSource> aos_isa::stream::BatchSource for Linting<I> {
    /// Batch-native pass-through: refill from the inner stream, then
    /// scan the newly added ops in place. Scan order equals yield
    /// order, so the report is identical to the per-op path.
    fn refill_batch(&mut self, batch: &mut aos_isa::stream::OpBatch) -> usize {
        let start = batch.len();
        let n = self.inner.refill_batch(batch);
        for i in start..start + n {
            self.linter.scan(&batch.get(i));
        }
        n
    }

    fn batch_native(&self) -> bool {
        self.inner.batch_native()
    }
}
