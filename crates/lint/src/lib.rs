//! Static verification of the AOS instrumentation protocol.
//!
//! The paper's security argument assumes the compiler emits the
//! Fig. 7 lifecycle correctly — `pacma` + `bndstr` after malloc,
//! `bndclr` + `xpacm` before the free body, a size-0 re-`pacma` to
//! lock the dangling pointer — and that AHC bits encode Algorithm 1
//! of the allocation size. The simulator only checks those invariants
//! *dynamically*: a malformed trace and a real violation look the
//! same until a machine replays them. This crate closes the gap with
//! a **streaming abstract interpreter** over [`Op`](aos_isa::Op)
//! streams:
//!
//! - [`Linter`] runs one per-PAC lifecycle state machine (Unsigned →
//!   Signed → Bounds-live → Cleared → Re-signed-dangling) per
//!   distinct PAC observed — `O(live-PACs)` memory, no trace
//!   materialization, same discipline as [`aos_isa::stream`];
//! - [`Rule`] names each protocol obligation; violations surface as
//!   typed [`Diagnostic`]s in a [`LintReport`] with exact per-rule
//!   counts and stable `aos-lint-report/v1` JSON;
//! - [`lint_stream`] / [`lint_stream_metered`] scan a whole stream;
//!   the [`Linting`] adapter lints in flight while a consumer (e.g. a
//!   machine replay) drains the same pass;
//! - scan counters thread through [`aos_util::telemetry`]
//!   (`lint_ops_scanned`, `lint_diagnostics`).
//!
//! The fault campaign uses the linter as a second, independent
//! detector: temporal faults and metadata forgeries (UAF, double
//! free, PAC tamper, AHC forge) are *statically* visible protocol
//! breaks, while spatial overflows/underflows are clean protocol
//! streams whose addresses are simply wrong — runtime phenomena only
//! the HBT bounds check can catch. `aos_fault` pins that split.
//!
//! The AOS verifier is one of four pluggable static policies: the
//! [`policy`] module adds abstract models of CryptSan (lock-and-key),
//! PACSan (PAC-sealed shadow) and PACTight (pointer integrity), each
//! encoding what that paper's instrumentation can and cannot prove
//! about a trace, behind one [`PolicyVerifier`] trait. The [`matrix`]
//! module runs any subset of them in a single streaming pass and
//! renders the policy × rule × fault-kind detection matrix
//! (`aos-lint-matrix/v1`); per-policy rule metadata lives in the
//! shared [`registry`].
//!
//! # Examples
//!
//! ```
//! use aos_isa::Op;
//! use aos_lint::{lint_stream, Rule};
//! use aos_ptrauth::PointerLayout;
//!
//! let layout = PointerLayout::default();
//! let ptr = layout.compose(0x1000, 0xbeef, 1);
//! // A well-formed malloc + use + free lifecycle lints clean.
//! let ops = [
//!     Op::Pacma { pointer: ptr, size: 32 },
//!     Op::BndStr { pointer: ptr, size: 32 },
//!     Op::Load { pointer: ptr, bytes: 8, chained: false },
//!     Op::BndClr { pointer: ptr },
//!     Op::Xpacm,
//!     Op::Pacma { pointer: ptr, size: 0 },
//! ];
//! assert!(lint_stream(ops.into_iter(), layout).clean());
//!
//! // A second bndclr is the static shadow of a double free.
//! let double_free = ops.into_iter().chain([Op::BndClr { pointer: ptr }]);
//! let report = lint_stream(double_free, layout);
//! assert_eq!(report.count(Rule::DoubleBndclr), 1);
//! ```

pub mod matrix;
pub mod policy;
pub mod registry;
pub mod report;
pub mod rules;
pub mod verifier;

pub use matrix::{MatrixEntry, MatrixReport, MatrixScan};
pub use policy::{Policy, PolicyDiagnostic, PolicyReport, PolicyVerifier};
pub use registry::RuleInfo;
pub use report::LintReport;
pub use rules::{Diagnostic, Rule, Severity};
pub use verifier::{
    lint_stream, lint_stream_metered, lint_stream_with_telemetry, Linter, Linting,
    MAX_STORED_DIAGNOSTICS,
};

#[cfg(test)]
mod tests {
    use aos_isa::stream::{BufferedOps, OpStream};
    use aos_isa::Op;
    use aos_ptrauth::{compute_ahc, PointerLayout};
    use aos_util::{Counter, Telemetry};

    use super::*;


    fn layout() -> PointerLayout {
        PointerLayout::default()
    }

    /// A pointer whose AHC bits honestly encode Algorithm 1 for
    /// `size`, as the signer would produce.
    fn signed(addr: u64, pac: u64, size: u64) -> u64 {
        let ahc = compute_ahc(addr, size, layout().va_size()).bits();
        layout().compose(addr, pac, ahc)
    }

    fn malloc(ptr: u64, size: u64) -> [Op; 2] {
        [
            Op::Pacma { pointer: ptr, size },
            Op::BndStr { pointer: ptr, size },
        ]
    }

    fn free(ptr: u64) -> [Op; 3] {
        [
            Op::BndClr { pointer: ptr },
            Op::Xpacm,
            Op::Pacma { pointer: ptr, size: 0 },
        ]
    }

    fn load(ptr: u64) -> Op {
        Op::Load {
            pointer: ptr,
            bytes: 8,
            chained: false,
        }
    }

    fn lint(ops: impl IntoIterator<Item = Op>) -> LintReport {
        lint_stream(ops.into_iter(), layout())
    }

    #[test]
    fn full_lifecycle_is_clean() {
        let p = signed(0x4000, 7, 64);
        let ops: Vec<Op> = malloc(p, 64)
            .into_iter()
            .chain([load(p), Op::Store { pointer: p + 8, bytes: 8 }])
            .chain(free(p))
            .collect();
        let report = lint(ops);
        assert!(report.clean(), "{}", report.to_table());
        assert_eq!(report.ops_scanned, 7);
        assert_eq!(report.distinct_pacs, 1);
        assert_eq!(report.live_records_at_end, 0);
        assert_eq!(report.peak_live_records, 1);
    }

    #[test]
    fn unfreed_allocations_at_exit_are_not_findings() {
        let p = signed(0x4000, 7, 64);
        let ops: Vec<Op> = malloc(p, 64).into_iter().chain([load(p)]).collect();
        let report = lint(ops);
        assert!(report.clean(), "{}", report.to_table());
        assert_eq!(report.live_records_at_end, 1);
    }

    #[test]
    fn use_after_free_is_access_after_clear() {
        let p = signed(0x4000, 7, 64);
        let ops: Vec<Op> = malloc(p, 64)
            .into_iter()
            .chain(free(p))
            .chain([load(p)])
            .collect();
        let report = lint(ops);
        assert_eq!(report.count(Rule::AccessAfterClear), 1);
        assert_eq!(report.diagnostics[0].op_index, 5);
        assert_eq!(report.diagnostics[0].pac, 7);
    }

    #[test]
    fn double_free_is_double_bndclr() {
        let p = signed(0x4000, 7, 64);
        let ops: Vec<Op> = malloc(p, 64)
            .into_iter()
            .chain(free(p))
            .chain([Op::BndClr { pointer: p }])
            .collect();
        let report = lint(ops);
        assert_eq!(report.count(Rule::DoubleBndclr), 1);
        // The unmatched second clear also leaves the strip balance
        // open at end of stream.
        assert_eq!(report.count(Rule::UnbalancedAtEnd), 1);
    }

    #[test]
    fn forged_pac_is_unknown() {
        let p = signed(0x4000, 7, 64);
        let forged = signed(0x4000, 0x1234, 64);
        let ops: Vec<Op> = malloc(p, 64).into_iter().chain([load(forged)]).collect();
        let report = lint(ops);
        assert_eq!(report.count(Rule::UnknownPac), 1);
        assert_eq!(report.diagnostics[0].pac, 0x1234);
    }

    #[test]
    fn access_before_bndstr_is_flagged() {
        let p = signed(0x4000, 7, 64);
        let ops = [Op::Pacma { pointer: p, size: 64 }, load(p)];
        let report = lint(ops);
        assert_eq!(report.count(Rule::UseBeforeBndstr), 1);
        // ... and the unpaired sign surfaces at end of stream.
        assert_eq!(report.count(Rule::UnbalancedAtEnd), 1);
    }

    #[test]
    fn lying_size_operand_is_ahc_mismatch() {
        // Sign with AHC honest for 16 bytes, then claim 1 MiB.
        let p = signed(0x4000, 7, 16);
        let report = lint([Op::Pacma {
            pointer: p,
            size: 1 << 20,
        }]);
        assert_eq!(report.count(Rule::AhcSizeMismatch), 1);
    }

    #[test]
    fn bare_xpacm_and_bare_bndstr_are_flagged() {
        let p = signed(0x4000, 7, 64);
        let report = lint([Op::Xpacm]);
        assert_eq!(report.count(Rule::XpacmWithoutBndclr), 1);
        let report = lint([Op::BndStr { pointer: p, size: 64 }]);
        assert_eq!(report.count(Rule::BndstrWithoutPacma), 1);
    }

    #[test]
    fn bndstr_size_must_match_pacma_size() {
        let p = signed(0x4000, 7, 64);
        let report = lint([
            Op::Pacma { pointer: p, size: 64 },
            Op::BndStr { pointer: p, size: 32 },
        ]);
        assert_eq!(report.count(Rule::BndstrWithoutPacma), 1);
        assert!(report.diagnostics[0].detail.contains("disagrees"));
    }

    #[test]
    fn pac_collisions_with_distinct_ahc_classes_stay_clean() {
        // Two live chunks under one PAC, different AHC classes —
        // the HBT stores both; so does the abstract state.
        let small = signed(0x4000, 7, 16);
        let large = signed(0x8000, 7, 1 << 13);
        assert_ne!(layout().ahc(small), layout().ahc(large));
        let ops: Vec<Op> = malloc(small, 16)
            .into_iter()
            .chain(malloc(large, 1 << 13))
            .chain([load(small), load(large)])
            .chain(free(large))
            .chain([load(small)])
            .chain(free(small))
            .collect();
        let report = lint(ops);
        assert!(report.clean(), "{}", report.to_table());
    }

    #[test]
    fn access_in_the_wrong_ahc_class_is_flagged() {
        let small = signed(0x4000, 7, 16);
        let wrong_class = layout().compose(0x4000, 7, 3);
        let ops: Vec<Op> = malloc(small, 16).into_iter().chain([load(wrong_class)]).collect();
        let report = lint(ops);
        assert_eq!(report.count(Rule::AccessAhcMismatch), 1);
    }

    #[test]
    fn unsigned_accesses_are_ignored() {
        let report = lint([
            load(0x4000),
            Op::Store { pointer: 0x8000, bytes: 4 },
            Op::IntAlu,
            Op::PacCrypto,
        ]);
        assert!(report.clean());
        assert_eq!(report.distinct_pacs, 0);
    }

    #[test]
    fn diagnostic_storage_is_capped_but_counts_are_exact() {
        let p = signed(0x4000, 7, 64);
        let n = MAX_STORED_DIAGNOSTICS as u64 + 100;
        let ops = std::iter::repeat_n(load(p), n as usize);
        let report = lint_stream(ops, layout());
        assert_eq!(report.count(Rule::UnknownPac), n);
        assert_eq!(report.diagnostics.len(), MAX_STORED_DIAGNOSTICS);
        assert_eq!(report.dropped_diagnostics, 100);
    }

    #[test]
    fn telemetry_counters_record_the_scan() {
        let p = signed(0x4000, 7, 64);
        let t = Telemetry::enabled();
        let ops: Vec<Op> = malloc(p, 64).into_iter().chain(free(p)).chain([load(p)]).collect();
        let report = lint_stream_with_telemetry(ops.into_iter(), layout(), &t);
        let snap = t.snapshot();
        assert_eq!(snap.counter(Counter::LintOpsScanned), report.ops_scanned);
        assert_eq!(
            snap.counter(Counter::LintDiagnostics),
            report.total_diagnostics()
        );
    }

    #[test]
    fn linting_adapter_is_transparent_and_bufferless() {
        let p = signed(0x4000, 7, 64);
        let ops: Vec<Op> = malloc(p, 64).into_iter().chain(free(p)).collect();
        let mut adapter = Linting::new(ops.iter().copied(), layout());
        let seen: Vec<Op> = (&mut adapter).collect();
        assert_eq!(seen, ops, "ops must flow through unchanged");
        assert_eq!(adapter.peak_buffered_ops(), 0, "the linter buffers nothing");
        assert_eq!(adapter.linter().tracked_pacs(), 1);
        let report = adapter.into_report(&Telemetry::disabled());
        assert!(report.clean());
    }

    #[test]
    fn metered_scan_reports_the_pipeline_high_water_mark() {
        let p = signed(0x4000, 7, 64);
        let ops: Vec<Op> = malloc(p, 64).into_iter().chain(free(p)).collect();
        // insert_at buffers at most one op; the linter adds none.
        let stream = ops.iter().copied().insert_at(2, load(p));
        let report = lint_stream_metered(stream, layout(), &Telemetry::disabled());
        assert_eq!(report.ops_scanned, 6);
        assert!(report.pipeline_peak_buffered_ops <= 1);
        assert!(report.clean());
    }
}
