//! PAC-collision analysis (paper §VI).
//!
//! The HBT's viability rests on two claims: QARMA distributes PACs
//! like a good hash (Fig. 11), and live sets are small enough that few
//! rows overflow their capacity. This module quantifies both: it
//! *measures* row occupancy by signing real allocator addresses, and
//! compares against the Poisson model a uniform hash predicts —
//! including the expected number of gradual resizes for a given live
//! set, which is how the §IX-A1 counts (sphinx3: 1, omnetpp: 2) can be
//! predicted before simulating a single cycle.

use aos_heap::{HeapAllocator, HeapConfig};
use aos_ptrauth::PointerLayout;
use aos_qarma::{truncate_pac, PacKey, Qarma64};
use aos_util::rng::{DiscreteTable, Xoshiro256StarStar};
use aos_util::stats::Histogram;

use crate::generator::{SIGNING_CONTEXT, SIGNING_KEY};

/// Result of a collision study for one live-set size.
#[derive(Debug, Clone, PartialEq)]
pub struct CollisionStudy {
    /// Live chunks signed.
    pub live_chunks: u64,
    /// PAC width in bits.
    pub pac_bits: u32,
    /// Largest measured row occupancy.
    pub max_row_occupancy: u64,
    /// Number of rows exceeding the initial 8-record capacity.
    pub rows_over_initial_capacity: u64,
    /// Measured mean row occupancy (= λ of the Poisson model).
    pub mean_row_occupancy: f64,
    /// Resizes the measured maximum implies, starting from one way of
    /// eight records and doubling capacity per resize.
    pub implied_resizes: u32,
}

/// Signs `live_chunks` simultaneously-live allocations (drawn from a
/// realistic small-object mix) and reports the PAC row-occupancy
/// statistics.
///
/// # Examples
///
/// ```
/// let s = aos_workloads::collisions::study(10_000, 16);
/// assert_eq!(s.live_chunks, 10_000);
/// assert!(s.max_row_occupancy >= 1);
/// ```
pub fn study(live_chunks: u64, pac_bits: u32) -> CollisionStudy {
    let mut heap = HeapAllocator::new(HeapConfig {
        limit_bytes: 1 << 44,
        ..HeapConfig::default()
    });
    let qarma = Qarma64::new(PacKey::from_u128(SIGNING_KEY));
    let layout = PointerLayout::default();
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xC0_111D);
    let sizes = DiscreteTable::new(vec![(24u64, 3.0), (48, 2.0), (128, 1.0), (1024, 0.3)]);
    let mut rows = Histogram::new(1usize << pac_bits);
    // Same batching as the Fig. 11 microbenchmark: the whole live set
    // signs under one context, so runs of allocator addresses go
    // through the uniform-modifier QARMA lanes.
    const RUN: usize = 1024;
    let mut addrs = Vec::with_capacity(RUN);
    let mut pacs = [0u64; RUN];
    let mut remaining = live_chunks;
    while remaining > 0 {
        let n = remaining.min(RUN as u64) as usize;
        addrs.clear();
        for _ in 0..n {
            let size = *sizes.sample(&mut rng);
            let a = heap.malloc(size).expect("study fits in the heap");
            addrs.push(layout.address(a.base));
        }
        qarma.compute_batch_uniform(&addrs, SIGNING_CONTEXT, &mut pacs[..n]);
        for &pac in &pacs[..n] {
            rows.record(truncate_pac(pac, pac_bits));
        }
        remaining -= n as u64;
    }
    let summary = rows.occupancy_summary();
    let rows_over = rows.iter().filter(|&c| c > 8).count() as u64;
    CollisionStudy {
        live_chunks,
        pac_bits,
        max_row_occupancy: summary.max,
        rows_over_initial_capacity: rows_over,
        mean_row_occupancy: summary.mean,
        implied_resizes: implied_resizes(summary.max),
    }
}

/// Number of capacity doublings needed so a row of eight records can
/// hold `max_occupancy`.
pub fn implied_resizes(max_occupancy: u64) -> u32 {
    let mut capacity = 8u64;
    let mut resizes = 0;
    while capacity < max_occupancy {
        capacity *= 2;
        resizes += 1;
    }
    resizes
}

/// The Poisson tail `P(X > capacity)` for occupancy `lambda` — the
/// uniform-hash model of a row overflowing.
pub fn poisson_overflow_probability(lambda: f64, capacity: u64) -> f64 {
    // P(X > c) = 1 - sum_{k=0..c} e^-λ λ^k / k!
    let mut term = (-lambda).exp();
    let mut cumulative = term;
    for k in 1..=capacity {
        term *= lambda / k as f64;
        cumulative += term;
    }
    (1.0 - cumulative).max(0.0)
}

/// Expected number of rows (out of `2^pac_bits`) that exceed
/// `capacity` records when `live` chunks hash uniformly.
pub fn expected_overflowing_rows(live: u64, pac_bits: u32, capacity: u64) -> f64 {
    let rows = (1u64 << pac_bits) as f64;
    let lambda = live as f64 / rows;
    rows * poisson_overflow_probability(lambda, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implied_resizes_thresholds() {
        assert_eq!(implied_resizes(0), 0);
        assert_eq!(implied_resizes(8), 0);
        assert_eq!(implied_resizes(9), 1);
        assert_eq!(implied_resizes(16), 1);
        assert_eq!(implied_resizes(17), 2);
        assert_eq!(implied_resizes(33), 3);
    }

    #[test]
    fn poisson_tail_sanity() {
        // λ = 1: P(X > 8) is tiny; P(X > 0) = 1 - e^-1.
        assert!(poisson_overflow_probability(1.0, 8) < 1e-5);
        let p0 = poisson_overflow_probability(1.0, 0);
        assert!((p0 - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        // Monotone in λ.
        assert!(
            poisson_overflow_probability(6.0, 8) > poisson_overflow_probability(3.0, 8)
        );
    }

    #[test]
    fn measured_occupancy_tracks_poisson() {
        // 100K live chunks over 2^16 rows: λ ≈ 1.53. The measured
        // overflowing-row count should be within a small factor of the
        // Poisson expectation if QARMA hashes well.
        let s = study(100_000, 16);
        assert!((s.mean_row_occupancy - 100_000.0 / 65536.0).abs() < 1e-9);
        let expected = expected_overflowing_rows(100_000, 16, 8);
        let measured = s.rows_over_initial_capacity as f64;
        assert!(
            measured <= expected * 4.0 + 4.0,
            "measured {measured} vs Poisson {expected:.2}"
        );
    }

    #[test]
    fn paper_resize_counts_are_predicted() {
        // §IX-A1: sphinx3 (live ≈ 135K in-window) resizes once;
        // omnetpp (≈ 400K) resizes twice. The Poisson model plus the
        // measured occupancy should agree.
        let sphinx3 = study(135_000, 16);
        assert_eq!(sphinx3.implied_resizes, 1, "{sphinx3:?}");
        let omnetpp = study(400_000, 16);
        assert_eq!(omnetpp.implied_resizes, 2, "{omnetpp:?}");
        // And small live sets never resize.
        let gcc = study(60_000, 16);
        assert_eq!(gcc.implied_resizes, 0, "{gcc:?}");
    }

    #[test]
    fn smaller_pac_spaces_overflow_sooner() {
        let wide = study(30_000, 16);
        let narrow = study(30_000, 11);
        assert!(narrow.max_row_occupancy > wide.max_row_occupancy);
        assert!(narrow.implied_resizes >= 1);
    }
}
